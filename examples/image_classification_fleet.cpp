// Image-classification fleet: the §3.2 scenario as a library user would
// run it. Compares all four SGD variants (AdaSGD / DynSGD / FedAvg / SSGD)
// under controlled staleness on non-IID data, printing a convergence table
// — a miniature, scriptable Fig 8.
#include <iostream>
#include <map>

#include "fleet/core/online_trainer.hpp"
#include "fleet/nn/zoo.hpp"

using namespace fleet;

int main(int argc, char** argv) {
  // Optional arguments: steps, staleness mean.
  const std::size_t steps = argc > 1 ? std::stoul(argv[1]) : 1200;
  const double staleness_mean = argc > 2 ? std::stod(argv[2]) : 8.0;

  data::SyntheticImageConfig data_cfg = data::SyntheticImageConfig::mnist_like();
  data_cfg.noise_stddev = 0.25f;
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng rng(1);
  const auto users =
      data::partition_noniid_shards(split.train.labels(), 50, 2, rng);

  const stats::GaussianDistribution staleness(staleness_mean,
                                              staleness_mean / 3.0);
  std::cout << "non-IID MNIST-like, " << users.size()
            << " users, staleness ~ " << staleness.describe() << ", "
            << steps << " steps\n\n";

  std::map<std::string, core::ControlledRunResult> results;
  for (const auto& [name, scheme] :
       std::vector<std::pair<std::string, learning::Scheme>>{
           {"SSGD (ideal)", learning::Scheme::kSsgd},
           {"AdaSGD", learning::Scheme::kAdaSgd},
           {"DynSGD", learning::Scheme::kDynSgd},
           {"FedAvg", learning::Scheme::kFedAvg}}) {
    core::ControlledRunConfig cfg;
    cfg.aggregator.scheme = scheme;
    cfg.staleness = scheme == learning::Scheme::kSsgd ? nullptr : &staleness;
    cfg.learning_rate = 0.05f;
    cfg.steps = steps;
    cfg.mini_batch = 32;
    cfg.eval_every = std::max<std::size_t>(steps / 6, 1);
    cfg.seed = 3;
    auto model = nn::zoo::small_cnn(1, 14, 14, 10);
    model->init(5);
    results.emplace(name, core::run_controlled(*model, split.train, users,
                                               split.test, cfg));
    std::cout << name << ": final accuracy "
              << results.at(name).final_accuracy << "\n";
  }

  std::cout << "\naccuracy vs step\nstep";
  for (const auto& [name, _] : results) std::cout << "  " << name;
  std::cout << "\n";
  const auto& reference = results.begin()->second.curve;
  for (std::size_t p = 0; p < reference.size(); ++p) {
    std::cout << reference[p].request;
    for (const auto& [_, result] : results) {
      std::cout << "  " << result.curve[p].accuracy;
    }
    std::cout << "\n";
  }
  return 0;
}
