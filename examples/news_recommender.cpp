// News/hashtag recommender: the motivating scenario of the paper's intro
// (Alice & Bob). A temporal hashtag stream is recommended by (a) Online FL
// with hourly updates and (b) Standard FL with nightly updates. Fresh
// models capture trending topics; stale ones miss them.
#include <iostream>

#include "fleet/core/hashtag_experiment.hpp"

using namespace fleet;

int main(int argc, char** argv) {
  data::TweetStreamConfig stream_cfg;
  stream_cfg.days = argc > 1 ? std::stod(argv[1]) : 6.0;
  stream_cfg.tweets_per_hour = 150.0;
  data::TweetStream stream(stream_cfg);
  std::cout << "generated " << stream.tweets().size() << " tweets over "
            << stream_cfg.days << " days, " << stream_cfg.n_hashtags
            << " hashtags\n";

  core::HashtagExperimentConfig cfg;
  const auto result = core::run_online_vs_standard(stream, cfg);

  std::cout << "\nper-chunk F1@top-5 (hourly):\n"
            << "hour  online  standard  popular\n";
  for (std::size_t i = 0; i < result.chunks.size(); i += 4) {
    const auto& c = result.chunks[i];
    std::cout << c.start_hour << "  " << c.f1_online << "  " << c.f1_standard
              << "  " << c.f1_popular << "\n";
  }
  std::cout << "\nmean F1: online " << result.mean_f1_online << " | standard "
            << result.mean_f1_standard << " | popular "
            << result.mean_f1_popular << "\n"
            << "online/standard boost: " << result.mean_boost << "x\n";

  const auto impact = core::measure_energy_impact(stream);
  std::cout << "\nworker energy (Raspberry-Pi-like): avg "
            << impact.avg_daily_mwh << " mWh/user/day (~"
            << impact.avg_daily_mwh / 11000.0 * 100.0
            << "% of an 11 Wh battery)\n";
  return 0;
}
