// Quickstart: wire up the whole FLeet middleware in ~60 lines.
//
// 1. Generate a dataset and split it across users (non-IID).
// 2. Build the global model and the I-Prof profiler.
// 3. Start a FleetServer (AdaSGD aggregation + controller).
// 4. Create workers on simulated phones and run the discrete-event
//    simulation for one virtual hour of Online FL.
#include <iostream>
#include <memory>

#include "fleet/core/simulation.hpp"
#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"

using namespace fleet;

int main() {
  // 1. Data: an MNIST-like synthetic dataset, 10 users, 2 label-shards each.
  const auto split =
      data::generate_synthetic_images(data::SyntheticImageConfig::mnist_like());
  stats::Rng rng(1);
  const auto users =
      data::partition_noniid_shards(split.train.labels(), 10, 2, rng);

  // 2. Global model + profiler (cold-start pre-training on a device corpus).
  auto model = nn::zoo::small_cnn(1, 14, 14, 10);
  model->init(42);
  auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
  iprof->pretrain(profiler::collect_profile_dataset(device::training_fleet(),
                                                    profiler::Slo{}, 7));

  // 3. Server: AdaSGD with similarity boosting, K = 1, lr = 0.05.
  core::ServerConfig server_cfg;
  server_cfg.learning_rate = 0.05f;
  server_cfg.aggregator.scheme = learning::Scheme::kAdaSgd;
  core::FleetServer server(*model, std::move(iprof), server_cfg);

  // 4. Workers on a mixed fleet of simulated phones.
  const auto phones = device::aws_fleet();
  std::vector<core::FleetWorker> workers;
  for (std::size_t u = 0; u < users.size(); ++u) {
    auto replica = nn::zoo::small_cnn(1, 14, 14, 10);
    replica->init(42);
    workers.emplace_back(static_cast<int>(u), std::move(replica), split.train,
                         users[u], device::spec(phones[u % phones.size()]),
                         100 + u);
  }

  std::cout << "initial accuracy: "
            << data::evaluate_accuracy(*model, split.test) << "\n";

  core::FleetSimulation::Config sim_cfg;
  sim_cfg.duration_s = 3600.0;  // one virtual hour of Online FL
  sim_cfg.think_time_mean_s = 10.0;
  core::FleetSimulation sim(server, workers, sim_cfg);
  const auto stats = sim.run();

  std::cout << "requests: " << stats.requests
            << ", gradients: " << stats.gradients
            << ", model updates: " << stats.model_updates << "\n";
  // The snapshot store materializes one buffer per model version; every
  // other request shares a handle (see DESIGN.md §4).
  std::cout << "model snapshots materialized: " << server.store().publishes()
            << " for " << (stats.requests - stats.rejected)
            << " accepted requests\n";
  std::cout << "final accuracy: "
            << data::evaluate_accuracy(*model, split.test) << "\n";
  double max_tau = 0.0;
  for (double tau : stats.staleness_values) max_tau = std::max(max_tau, tau);
  std::cout << "max staleness observed: " << max_tau
            << " model updates (dampened by AdaSGD)\n";
  return 0;
}
