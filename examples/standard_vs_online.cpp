// Standard FL vs Online FL, end to end on the image task.
//
// Standard FL: synchronous FedAvg rounds that can only run when devices
// are idle + charging + on WiFi (in practice: at night), so the model
// updates once per day. Online FL: the FLeet middleware trains whenever
// data arrives, with I-Prof bounding the per-task work and AdaSGD
// absorbing the resulting staleness. Same data, same virtual duration.
#include <iostream>
#include <memory>

#include "fleet/core/simulation.hpp"
#include "fleet/core/standard_fl.hpp"
#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"

using namespace fleet;

int main() {
  data::SyntheticImageConfig data_cfg;
  data_cfg.n_classes = 6;
  data_cfg.n_train = 1800;
  data_cfg.n_test = 400;
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng rng(1);
  const auto users = data::partition_iid(split.train.size(), 12, rng);
  const double duration_s = 3.0 * 24.0 * 3600.0;  // three virtual days

  // --- Standard FL: one nightly FedAvg round. ----------------------------
  auto standard_model = nn::zoo::small_cnn(1, 14, 14, 6);
  standard_model->init(42);
  core::StandardFlConfig std_cfg;
  std_cfg.duration_s = duration_s;
  std_cfg.round_period_s = 25.0 * 3600.0;  // lands in the night window
  std_cfg.devices_per_round = 8;
  std_cfg.local_steps = 20;
  std_cfg.learning_rate = 0.1f;
  const auto std_result = core::run_standard_fl(
      *standard_model, split.train, users, split.test, std_cfg);

  // --- Online FL: the FLeet middleware, continuously. ---------------------
  auto online_model = nn::zoo::small_cnn(1, 14, 14, 6);
  online_model->init(42);
  auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
  iprof->pretrain(profiler::collect_profile_dataset(device::training_fleet(),
                                                    profiler::Slo{}, 7));
  core::ServerConfig server_cfg;
  server_cfg.learning_rate = 0.02f;
  core::FleetServer server(*online_model, std::move(iprof), server_cfg);
  const auto phones = device::aws_fleet();
  std::vector<core::FleetWorker> workers;
  for (std::size_t u = 0; u < users.size(); ++u) {
    auto replica = nn::zoo::small_cnn(1, 14, 14, 6);
    replica->init(42);
    workers.emplace_back(static_cast<int>(u), std::move(replica), split.train,
                         users[u], device::spec(phones[u % phones.size()]),
                         500 + u);
  }
  core::FleetSimulation::Config sim_cfg;
  sim_cfg.duration_s = duration_s;
  sim_cfg.think_time_mean_s = 600.0;  // a learning task every ~10 minutes
  core::FleetSimulation sim(server, workers, sim_cfg);
  const auto online_stats = sim.run();

  std::cout << "three virtual days, same users and data\n\n"
            << "Standard FL: " << std_result.rounds << " nightly rounds, "
            << std_result.participating_devices << " device-rounds\n"
            << "  accuracy after each night:";
  for (double acc : std_result.round_accuracy) std::cout << " " << acc;
  std::cout << "\n\nOnline FL (FLeet): " << online_stats.model_updates
            << " asynchronous updates, max staleness "
            << [&] {
                 double m = 0.0;
                 for (double tau : online_stats.staleness_values) {
                   m = std::max(m, tau);
                 }
                 return m;
               }()
            << "\n  final accuracy: "
            << data::evaluate_accuracy(*online_model, split.test)
            << " (standard: " << std_result.final_accuracy << ")\n\n"
            << "The point of the paper's Fig 1: Online FL incorporates "
               "fresh data within\nminutes instead of the next morning — "
               "and with I-Prof + AdaSGD it does so\nwithout wrecking "
               "either the battery or the model.\n";
  return 0;
}
