// Profiler demo: watch I-Prof learn a device. The cold-start model serves
// the first request of a never-seen phone; every observation then updates
// the per-device-model passive-aggressive regressor, driving the measured
// task time toward the SLO.
#include <iomanip>
#include <iostream>

#include "fleet/device/allocation.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"

using namespace fleet;

int main(int argc, char** argv) {
  const std::string device_name = argc > 1 ? argv[1] : "Galaxy S7";
  const double slo_s = argc > 2 ? std::stod(argv[2]) : 3.0;

  profiler::IProf::Config cfg;
  cfg.slo.latency_s = slo_s;
  cfg.slo.energy_pct = 100.0;  // latency-only demo
  profiler::IProf iprof(cfg);
  iprof.pretrain(profiler::collect_profile_dataset(device::training_fleet(),
                                                   profiler::Slo{}, 3));
  std::cout << "cold-start model trained on " << device::training_fleet().size()
            << " training devices; target device: " << device_name
            << ", latency SLO " << slo_s << " s\n\n";

  device::DeviceSim device(device::spec(device_name), 17);
  const auto alloc = device::fleet_allocation(device.spec());
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "req  model        n      time_s  |err|_s  temp_C\n";
  for (int request = 0; request < 15; ++request) {
    const auto features = device.features();
    const std::size_t n = iprof.predict_batch(features, device_name);
    const device::TaskExecution exec = device.run_task(n, alloc);

    profiler::Observation ob;
    ob.device_model = device_name;
    ob.features = features;
    ob.mini_batch = n;
    ob.time_s = exec.time_s;
    ob.energy_pct = exec.energy_pct;
    iprof.observe(ob);

    std::cout << std::setw(3) << request << "  "
              << (request == 0 ? "cold-start " : "personalized") << " "
              << std::setw(6) << n << "  " << exec.time_s << "   "
              << std::abs(exec.time_s - slo_s) << "    "
              << device.temperature_c() << "\n";
    device.idle(90.0);
  }
  std::cout << "\nThe per-device PA model converges within a few requests;\n"
               "try './profiler_demo \"Xperia E3\" 1.5' for a slow phone.\n";
  return 0;
}
