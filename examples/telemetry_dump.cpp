// Telemetry dump (DESIGN.md §11): drive a two-tenant fleet on the
// concurrent host with the observability substrate enabled, then export
// everything it captured — a JSON metrics snapshot (metrics.json), a
// Prometheus text exposition (metrics.prom) and a Chrome trace-event file
// (trace.json, loadable in Perfetto / chrome://tracing to see the
// submit -> dequeue -> fold -> publish lifecycle of every gradient) —
// and print a latency breakdown table from the same histograms, plus the
// planner control-plane view (drain batch sizes, adaptive batch limits,
// batch occupancy against those limits) and the host health/degradation
// view (per-planner progress, degraded sessions, shed/quarantine/restart
// counters, DESIGN.md §14).
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"
#include "fleet/runtime/parallel_fleet.hpp"
#include "fleet/telemetry/export.hpp"
#include "fleet/telemetry/telemetry.hpp"

using namespace fleet;

namespace {

std::unique_ptr<profiler::Profiler> pretrained_iprof() {
  auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
  iprof->pretrain(profiler::collect_profile_dataset(
      device::training_fleet(), profiler::IProf::Config{}.slo, 20));
  return iprof;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  out << body;
  std::cout << "wrote " << path << " (" << body.size() << " bytes)\n";
}

void latency_row(const telemetry::MetricsSnapshot& snapshot,
                 const std::string& name) {
  const telemetry::HistogramSnapshot* hist = snapshot.histogram(name);
  if (hist == nullptr || hist->count == 0) return;
  std::cout << "  " << std::left << std::setw(26) << name << std::right
            << std::setw(8) << hist->count << std::setw(12) << std::fixed
            << std::setprecision(1) << hist->mean() / 1e3 << std::setw(12)
            << hist->quantile(0.5) / 1e3 << std::setw(12)
            << hist->quantile(0.99) / 1e3 << "\n";
}

/// Row for count/percent-valued histograms (drain batch sizes, planner
/// occupancy): same columns as latency_row but without the ns -> us scale.
void value_row(const telemetry::MetricsSnapshot& snapshot,
               const std::string& name) {
  const telemetry::HistogramSnapshot* hist = snapshot.histogram(name);
  if (hist == nullptr || hist->count == 0) return;
  std::cout << "  " << std::left << std::setw(26) << name << std::right
            << std::setw(8) << hist->count << std::setw(12) << std::fixed
            << std::setprecision(1) << hist->mean() << std::setw(12)
            << hist->quantile(0.5) << std::setw(12) << hist->quantile(0.99)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rounds = argc > 1 ? std::stoul(argv[1]) : 6;

  // Two tenants on one concurrent host — one planner per tenant with
  // adaptive drain batching, so the planner occupancy and batch-limit
  // histograms below have something to show — telemetry on.
  runtime::RuntimeConfig runtime_cfg;
  runtime_cfg.aggregation_shards = 2;
  runtime_cfg.planner_threads = 2;
  runtime_cfg.max_drain_batch = 16;
  runtime_cfg.adaptive_batch.enabled = true;
  runtime_cfg.adaptive_batch.min_batch = 4;
  runtime_cfg.adaptive_batch.max_batch = 64;
  runtime_cfg.telemetry.enabled = true;
  runtime::ConcurrentFleetServer host(runtime_cfg);

  core::ServerConfig server_cfg;
  server_cfg.learning_rate = 0.05f;
  std::vector<std::unique_ptr<nn::Sequential>> models;
  std::vector<core::ModelId> ids;
  for (std::size_t m = 0; m < 2; ++m) {
    models.push_back(nn::zoo::small_cnn(1, 14, 14, 4));
    models.back()->init(1 + m);
    ids.push_back(
        host.register_model(*models.back(), pretrained_iprof(), server_cfg));
  }

  // A small synthetic fleet: 8 devices, each worker pinned to one tenant.
  const auto split = data::generate_synthetic_images([] {
    data::SyntheticImageConfig cfg;
    cfg.n_classes = 4;
    cfg.n_train = 320;
    cfg.n_test = 40;
    return cfg;
  }());
  stats::Rng rng(2);
  const auto partition = data::partition_iid(split.train.size(), 8, rng);
  const auto fleet = device::lab_fleet();
  std::vector<core::FleetWorker> workers;
  runtime::ParallelFleet::Config drive;
  for (std::size_t u = 0; u < partition.size(); ++u) {
    auto replica = nn::zoo::small_cnn(1, 14, 14, 4);
    replica->init(1 + u % 2);
    workers.emplace_back(static_cast<int>(u), std::move(replica), split.train,
                         partition[u], device::spec(fleet[u % fleet.size()]),
                         100 + u);
    drive.worker_models.push_back(ids[u % 2]);
  }
  drive.n_threads = 4;
  drive.rounds = rounds;
  drive.max_arrival_delay = 2;
  drive.seed = 7;

  runtime::ParallelFleet driver(host, workers, drive);
  const auto stats = driver.run();
  const runtime::HealthSnapshot health = host.health();
  std::vector<runtime::RuntimeStats> per_session;
  for (const core::ModelId id : ids) per_session.push_back(host.stats(id));
  host.stop();
  std::cout << "drove " << workers.size() << " workers x " << rounds
            << " rounds across " << ids.size() << " tenants: "
            << stats.runtime.processed << " gradients folded, "
            << stats.runtime.model_updates << " model updates\n\n";

  telemetry::Telemetry* telemetry = host.telemetry();
  const telemetry::MetricsSnapshot snapshot = telemetry->metrics().snapshot();
  const std::vector<telemetry::TraceRecord> records =
      telemetry->tracer().collect();

  write_file("metrics.json", telemetry::metrics_to_json(snapshot));
  write_file("metrics.prom", telemetry::metrics_to_prometheus(snapshot));
  write_file("trace.json", telemetry::trace_to_chrome_json(records));
  std::cout << records.size() << " trace events captured, "
            << telemetry->tracer().dropped()
            << " dropped (load trace.json in Perfetto)\n\n";

  std::cout << "latency breakdown (microseconds)\n  " << std::left
            << std::setw(26) << "histogram" << std::right << std::setw(8)
            << "count" << std::setw(12) << "mean" << std::setw(12) << "p50"
            << std::setw(12) << "p99" << "\n";
  latency_row(snapshot, "queue.admit_ns");
  latency_row(snapshot, "queue.wait_ns");
  latency_row(snapshot, "server.session_fold_ns");
  latency_row(snapshot, "server.publish_ns");
  latency_row(snapshot, "pool.task_ns");

  std::cout << "\nplanner control plane (counts / percent)\n  " << std::left
            << std::setw(26) << "histogram" << std::right << std::setw(8)
            << "count" << std::setw(12) << "mean" << std::setw(12) << "p50"
            << std::setw(12) << "p99" << "\n";
  value_row(snapshot, "server.drain_batch");
  value_row(snapshot, "planner.batch_limit");
  value_row(snapshot, "planner.occupancy_pct");

  // Health / degradation view (DESIGN.md §14): is every planner making
  // progress, did any session quarantine a fold task, and what has the
  // overload policy cost so far. All zeros on a healthy faultless drive —
  // the table is the point: CI greps it, operators read it.
  std::cout << "\nhost health\n";
  std::cout << "  planner progress (batches)";
  for (const std::size_t ticks : health.planner_progress) {
    std::cout << "  " << ticks;
  }
  std::cout << "\n  shed drops                " << health.shed_drops
            << "\n  fold quarantines          " << health.fold_quarantines
            << "\n  degraded sessions         ";
  if (health.degraded_sessions.empty()) {
    std::cout << "none";
  } else {
    for (const core::ModelId id : health.degraded_sessions) {
      std::cout << id << " ";
    }
  }
  std::cout << "\n";
  for (std::size_t m = 0; m < ids.size(); ++m) {
    const runtime::RuntimeStats& session = per_session[m];
    std::cout << "  session " << ids[m] << ": "
              << (session.degraded ? "DEGRADED" : "healthy") << ", "
              << session.processed << " folded, " << session.invalid_jobs
              << " invalid, " << session.shed_drops << " shed\n";
  }
  return 0;
}
