// Figure 9: long-tail staleness + similarity-based boosting. All gradients
// carrying class 0 are forced to staleness 4*tau_thres = 48 (D1 setup, so
// tau_thres = 12). AdaSGD's similarity boost recovers class-0 knowledge
// much faster than DynSGD; panel (b) is the CDF of applied dampening
// weights with the tau_thres/2 and tau_thres anchors.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "fleet/core/online_trainer.hpp"
#include "fleet/learning/dampening.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/stats/histogram.hpp"

using namespace fleet;

int main() {
  data::SyntheticImageConfig data_cfg = data::SyntheticImageConfig::mnist_like();
  data_cfg.noise_stddev = 0.25f;
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng rng(2);
  // "This setup essentially captures the case where a particular label is
  // only present in stragglers" (§3.2): class 0 lives on dedicated users
  // (who will all be stragglers); everyone else gets the usual 2-shard
  // non-IID split of the remaining classes.
  std::vector<std::size_t> class0_indices;
  std::vector<std::size_t> other_indices;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    (split.train.label(i) == 0 ? class0_indices : other_indices).push_back(i);
  }
  std::vector<int> other_labels;
  for (std::size_t i : other_indices) {
    other_labels.push_back(split.train.label(i));
  }
  auto users = data::partition_noniid_shards(other_labels, 90, 2, rng);
  for (auto& user : users) {
    for (std::size_t& idx : user) idx = other_indices[idx];
  }
  const std::size_t class0_users = 10;
  for (std::size_t u = 0; u < class0_users; ++u) {
    std::vector<std::size_t> local;
    for (std::size_t i = u; i < class0_indices.size(); i += class0_users) {
      local.push_back(class0_indices[i]);
    }
    users.push_back(std::move(local));
  }

  const stats::GaussianDistribution d1(6.0, 2.0);
  const std::size_t steps = bench::scaled(2400);

  std::map<std::string, core::ControlledRunResult> results;
  for (const auto& [label, scheme] :
       std::vector<std::pair<std::string, learning::Scheme>>{
           {"AdaSGD", learning::Scheme::kAdaSgd},
           {"DynSGD", learning::Scheme::kDynSgd},
           {"SSGD_ideal", learning::Scheme::kSsgd}}) {
    core::ControlledRunConfig cfg;
    cfg.aggregator.scheme = scheme;
    // §3.2: "we employ the non-IID MNIST dataset, D1 (thus tau_thres is
    // 12)" — pinned, since the injected stragglers would otherwise drag
    // the online percentile up to 48.
    cfg.aggregator.fixed_tau_thres = 12.0;
    cfg.staleness = scheme == learning::Scheme::kSsgd ? nullptr : &d1;
    cfg.longtail_class = scheme == learning::Scheme::kSsgd ? -1 : 0;
    cfg.longtail_staleness = 48.0;  // 4 * tau_thres
    cfg.eval_class = 0;
    cfg.learning_rate = 0.04f;
    cfg.steps = steps;
    cfg.mini_batch = 32;
    cfg.eval_every = std::max<std::size_t>(steps / 8, 1);
    cfg.seed = 7;
    auto model = nn::zoo::small_cnn(1, data_cfg.height, data_cfg.width,
                                    data_cfg.n_classes);
    model->init(9);
    results.emplace(label, core::run_controlled(*model, split.train, users,
                                                split.test, cfg));
  }

  bench::header("Figure 9(a): accuracy for class 0 vs step");
  bench::row({"step", "AdaSGD", "DynSGD", "SSGD_ideal"});
  const auto& reference = results.at("AdaSGD").curve;
  for (std::size_t p = 0; p < reference.size(); ++p) {
    bench::row({std::to_string(reference[p].request),
                bench::fmt(results.at("AdaSGD").curve[p].class_accuracy, 3),
                bench::fmt(results.at("DynSGD").curve[p].class_accuracy, 3),
                bench::fmt(results.at("SSGD_ideal").curve[p].class_accuracy,
                           3)});
  }

  bench::header("Figure 9(b): CDF of applied gradient scaling factors");
  bench::row({"weight", "AdaSGD_cdf", "DynSGD_cdf"});
  const stats::EmpiricalCdf ada_cdf(results.at("AdaSGD").weights);
  const stats::EmpiricalCdf dyn_cdf(results.at("DynSGD").weights);
  for (double w = 0.01; w <= 1.0; w *= 1.6) {
    bench::row({bench::fmt(w, 4), bench::fmt(ada_cdf.fraction_below(w), 3),
                bench::fmt(dyn_cdf.fraction_below(w), 3)});
  }
  bench::row({bench::fmt(1.0, 4), bench::fmt(ada_cdf.fraction_below(1.0), 3),
              bench::fmt(dyn_cdf.fraction_below(1.0), 3)});

  const learning::ExponentialDampening damp(12.0);
  bench::header("anchors (tau_thres = 12)");
  std::cout << "Lambda(tau_thres/2) = " << bench::fmt(damp.factor(6.0), 3)
            << " (both schemes agree here: 1/(6+1) = 0.143)\n"
            << "Lambda(tau_thres)   = " << bench::fmt(damp.factor(12.0), 3)
            << "\n";
  std::cout << "\nShape check: AdaSGD's class-0 curve rises while DynSGD's "
               "stays flat;\nboosted stragglers appear as AdaSGD mass at the "
               "tau_thres/2 anchor (0.143)\ndespite tau=48, where DynSGD "
               "leaves them at 1/49 = 0.02.\n";
  return 0;
}
