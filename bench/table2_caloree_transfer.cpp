// Table 2: CALOREE's deadline error when the performance hash table is
// collected on Galaxy S7 and the workload runs on a *different* device.
// Paper: 1.4% (same device) -> 9% (Galaxy S8) -> 46% (Honor 9) -> 255%
// (Honor 10). The error explodes because per-config speeds and thermal
// behaviour do not transfer across device models.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/profiler/caloree.hpp"

using namespace fleet;

int main() {
  // Collect the PHT on Galaxy S7, as the paper does.
  device::DeviceSpec s7 = device::spec("Galaxy S7");
  s7.execution_noise = 0.01;
  device::DeviceSim profile_dev(s7, 3);
  const profiler::PerformanceHashTable pht =
      profiler::profile_device(profile_dev);

  // Workload sized so the S7 needs most of the deadline (sustained load
  // long enough for thermal behaviour to matter, as in repeated learning
  // tasks back to back).
  const std::size_t workload = 8000;
  const double deadline = 25.0;

  bench::header("Table 2: CALOREE with a Galaxy S7 PHT on new devices");
  bench::row({"running_device", "deadline_error_pct", "time_s",
              "peak_temp_C", "paper_error_pct"});
  const std::vector<std::pair<std::string, std::string>> rows{
      {"Galaxy S7", "1.4"},
      {"Galaxy S8", "9"},
      {"Honor 9", "46"},
      {"Honor 10", "255"},
  };
  for (const auto& [name, paper] : rows) {
    // Median over a few seeds for stability.
    std::vector<double> errors;
    double time_s = 0.0, temp = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      device::DeviceSpec spec = device::spec(name);
      spec.execution_noise = 0.01;
      device::DeviceSim device(spec, 40 + seed);
      profiler::CaloreeController caloree(pht);
      const auto result = caloree.run(device, workload, deadline);
      errors.push_back(result.deadline_error_pct);
      time_s = result.time_s;
      temp = device.temperature_c();
    }
    std::sort(errors.begin(), errors.end());
    bench::row({name, bench::fmt(errors[errors.size() / 2], 1),
                bench::fmt(time_s, 1), bench::fmt(temp, 1), paper});
  }
  std::cout << "\nShape check: error grows from ~1% (same device) to >2x "
               "for a same-vendor\nsibling and explodes on the "
               "different-vendor, thermally-aggressive Honor 10.\n";
  return 0;
}
