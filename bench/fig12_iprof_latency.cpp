// Figure 12: I-Prof vs the adapted MAUI profiler against a 3 s computation
// time SLO on the AWS device-farm fleet. Requests from each device are
// alternated between the two profilers by a round-robin dispatcher; both
// are pre-trained on the 15 training devices. Panels: (a) request
// schedule, (b) CDF of |t_comp - t_SLO|, (c) per-request computation time,
// (d) CDF of emitted mini-batch sizes.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/device/allocation.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/maui.hpp"
#include "fleet/profiler/training_data.hpp"
#include "fleet/stats/histogram.hpp"

using namespace fleet;

int main() {
  const profiler::Slo slo;  // 3 s latency, 0.075% energy
  // For the latency experiment the energy SLO is effectively disabled.
  profiler::IProf::Config iprof_cfg;
  iprof_cfg.slo = slo;
  iprof_cfg.slo.energy_pct = 100.0;
  profiler::MauiProfiler::Config maui_cfg;
  maui_cfg.slo = iprof_cfg.slo;

  profiler::IProf iprof(iprof_cfg);
  profiler::MauiProfiler maui(maui_cfg);
  const auto pretrain = profiler::collect_profile_dataset(
      device::training_fleet(), slo, 900);
  iprof.pretrain(pretrain);
  maui.pretrain(pretrain);

  const auto fleet = device::aws_fleet();
  std::vector<device::DeviceSim> devices;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    devices.emplace_back(device::spec(fleet[i]), 7000 + i);
  }

  // Staggered log-ins (Fig 12a): device i issues its requests starting at
  // request number i * stagger; ~280 requests in total, as in the paper.
  const std::size_t total_requests = bench::scaled(280, 100);
  const std::size_t stagger =
      std::max<std::size_t>(total_requests / fleet.size() / 2, 1);
  struct Sample {
    std::string profiler;
    std::size_t request = 0;
    std::string device;
    std::size_t n = 0;
    double time_s = 0.0;
  };
  std::vector<Sample> samples;
  stats::Rng rng(77);
  std::size_t parity = 0;

  bench::header("Figure 12(a): request schedule (device, log-in request#)");
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    bench::row({fleet[i], std::to_string(i * stagger)});
  }

  for (std::size_t r = 0; r < total_requests; ++r) {
    // Devices that have logged in by now take turns.
    const std::size_t logged_in =
        std::min(fleet.size(), r / std::max<std::size_t>(stagger, 1) + 1);
    const std::size_t d = r % logged_in;
    device::DeviceSim& device = devices[d];
    const auto features = device.features();
    const bool use_iprof = (parity++ % 2) == 0;

    profiler::Profiler& prof =
        use_iprof ? static_cast<profiler::Profiler&>(iprof)
                  : static_cast<profiler::Profiler&>(maui);
    const std::size_t n = prof.predict_batch(features, fleet[d]);
    const device::TaskExecution exec =
        device.run_task(n, device::fleet_allocation(device.spec()));
    profiler::Observation ob;
    ob.device_model = fleet[d];
    ob.features = features;
    ob.mini_batch = n;
    ob.time_s = exec.time_s;
    ob.energy_pct = exec.energy_pct;
    prof.observe(ob);
    device.idle(30.0 + rng.uniform(0.0, 30.0));
    samples.push_back({use_iprof ? "I-Prof" : "MAUI", r, fleet[d], n,
                       exec.time_s});
  }

  const auto errors_for = [&](const std::string& name) {
    std::vector<double> errors;
    for (const Sample& s : samples) {
      if (s.profiler == name) {
        errors.push_back(std::abs(s.time_s - slo.latency_s));
      }
    }
    return errors;
  };
  const stats::EmpiricalCdf iprof_cdf(errors_for("I-Prof"));
  const stats::EmpiricalCdf maui_cdf(errors_for("MAUI"));

  bench::header("Figure 12(b): CDF of |t_comp - t_SLO| (seconds)");
  bench::row({"error_s", "I-Prof_cdf", "MAUI_cdf"});
  for (double e = 0.25; e <= 6.0; e += 0.25) {
    bench::row({bench::fmt(e, 2), bench::fmt(iprof_cdf.fraction_below(e), 3),
                bench::fmt(maui_cdf.fraction_below(e), 3)});
  }
  std::cout << "90th-percentile error: I-Prof = "
            << bench::fmt(iprof_cdf.quantile(0.9), 2) << " s, MAUI = "
            << bench::fmt(maui_cdf.quantile(0.9), 2)
            << " s (paper: 0.75 s vs 2.7 s)\n";

  bench::header("Figure 12(c): computation time per request (every 10th)");
  bench::row({"request", "profiler", "device", "n", "time_s"});
  for (std::size_t i = 0; i < samples.size(); i += 10) {
    const Sample& s = samples[i];
    bench::row({std::to_string(s.request), s.profiler, s.device,
                std::to_string(s.n), bench::fmt(s.time_s, 2)});
  }

  bench::header("Figure 12(d): CDF of emitted mini-batch sizes");
  std::vector<double> iprof_sizes, maui_sizes;
  for (const Sample& s : samples) {
    (s.profiler == "I-Prof" ? iprof_sizes : maui_sizes)
        .push_back(static_cast<double>(s.n));
  }
  const stats::EmpiricalCdf ic(iprof_sizes), mc(maui_sizes);
  bench::row({"n", "I-Prof_cdf", "MAUI_cdf"});
  for (double n = 100.0; n <= 3200.0; n *= 2.0) {
    bench::row({bench::fmt(n, 0), bench::fmt(ic.fraction_below(n), 3),
                bench::fmt(mc.fraction_below(n), 3)});
  }
  std::cout << "I-Prof output range: [" << ic.sorted().front() << ", "
            << ic.sorted().back() << "], MAUI range: ["
            << mc.sorted().front() << ", " << mc.sorted().back()
            << "]\n(paper: I-Prof emits a wide per-device range, MAUI "
               "collapses to a narrow band)\n";
  return 0;
}
