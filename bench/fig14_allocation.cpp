// Figure 14: FLeet's simple resource-allocation scheme vs CALOREE in its
// ideal setting (PHT trained on the *same* device). For each lab device
// the workload is the mini-batch I-Prof assigns for a 3 s SLO; CALOREE
// runs with a deadline equal to FLeet's measured time, and with double
// that deadline. 10 runs; median with p10/p90.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "fleet/device/allocation.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/profiler/caloree.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"

using namespace fleet;

namespace {

struct Summary {
  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
};

Summary summarize(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const auto q = [&](double f) {
    return values[static_cast<std::size_t>(f * (values.size() - 1))];
  };
  return {q(0.5), q(0.1), q(0.9)};
}

}  // namespace

int main() {
  profiler::IProf iprof{profiler::IProf::Config{}};
  iprof.pretrain(profiler::collect_profile_dataset(device::training_fleet(),
                                                   profiler::Slo{}, 21));

  bench::header(
      "Figure 14: energy (% battery) per learning task — FLeet vs CALOREE");
  bench::row({"device", "n", "fleet_med", "fleet_p10-p90", "caloree_med",
              "caloree_2x_med", "switches"});

  const std::size_t runs = 10;
  for (const std::string& name : device::lab_fleet()) {
    // Workload: I-Prof's mini-batch for this device at the 3 s SLO.
    device::DeviceSim probe(device::spec(name), 31);
    const std::size_t n = iprof.predict_batch(probe.features(), name);

    // FLeet scheme: one task on the big cores.
    std::vector<double> fleet_energy, fleet_time;
    for (std::size_t r = 0; r < runs; ++r) {
      device::DeviceSim device(device::spec(name), 100 + r);
      const auto exec =
          device.run_task(n, device::fleet_allocation(device.spec()));
      fleet_energy.push_back(exec.energy_pct);
      fleet_time.push_back(exec.time_s);
    }
    const double deadline = summarize(fleet_time).median;

    // CALOREE in its ideal setting: PHT from this very device.
    device::DeviceSim profile_dev(device::spec(name), 77);
    const profiler::PerformanceHashTable pht =
        profiler::profile_device(profile_dev);
    std::vector<double> caloree_energy, caloree2_energy;
    std::size_t switches = 0;
    for (std::size_t r = 0; r < runs; ++r) {
      device::DeviceSim device(device::spec(name), 200 + r);
      profiler::CaloreeController caloree(pht);
      const auto result = caloree.run(device, n, deadline);
      caloree_energy.push_back(result.energy_pct);
      switches += result.config_switches;

      device::DeviceSim device2(device::spec(name), 300 + r);
      profiler::CaloreeController caloree2(pht);
      caloree2_energy.push_back(device2.battery_pct_used() +
                                caloree2.run(device2, n, 2.0 * deadline)
                                    .energy_pct);
    }
    const Summary fe = summarize(fleet_energy);
    const Summary ce = summarize(caloree_energy);
    const Summary c2 = summarize(caloree2_energy);
    bench::row({name, std::to_string(n), bench::fmt(fe.median, 4),
                bench::fmt(fe.p10, 4) + "-" + bench::fmt(fe.p90, 4),
                bench::fmt(ce.median, 4), bench::fmt(c2.median, 4),
                std::to_string(switches / runs)});
  }
  std::cout << "\nShape check (paper): FLeet's static big-core allocation "
               "matches or beats CALOREE's\nenergy even when CALOREE gets "
               "double the deadline — config switches cost more than\nthe "
               "advanced allocation saves on compute-bound gradient tasks.\n";
  return 0;
}
