// Wire ingest bench (DESIGN.md §12): what the binary gradient wire format
// costs and saves on the serving path.
//
//   1. Wire density — bytes per gradient for the int8 frame vs the
//      raw-float32 fallback frame vs an unframed float payload (the
//      "no wire format" baseline). The paper's motivation for quantized
//      uploads is the 4G/3G uplink; int8 framing must stay ~4x denser.
//   2. Decode overhead — ns per gradient for WireDecoder::decode into a
//      reused GradientJob (the injector hot path), per payload kind.
//   3. End-to-end throughput — gradients/s into a ConcurrentFleetServer
//      through the LoopbackIngest ring vs direct in-process try_submit of
//      pre-built jobs, same gradient stream, drained to fold completion.
//
// Emits BENCH_wire.json via bench::JsonReport.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "fleet/net/compression.hpp"
#include "fleet/net/ingest.hpp"
#include "fleet/net/wire.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/runtime/concurrent_server.hpp"
#include "fleet/stats/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace fleet;

std::unique_ptr<profiler::Profiler> pretrained_iprof() {
  auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
  iprof->pretrain(profiler::collect_profile_dataset(
      device::training_fleet(), profiler::IProf::Config{}.slo, 20));
  return iprof;
}

runtime::GradientJob make_job(const nn::TrainableModel& model,
                              std::size_t salt, stats::Rng& rng) {
  runtime::GradientJob job;
  job.model_id = core::kDefaultModelId;
  job.task_version = 0;
  job.gradient.resize(model.parameter_count());
  for (float& g : job.gradient) {
    g = static_cast<float>(rng.gaussian(0.0, 0.01));
  }
  job.label_dist = stats::LabelDistribution(model.n_classes());
  job.label_dist.add(static_cast<int>(salt % model.n_classes()), 2);
  job.mini_batch = 4;
  return job;
}

double elapsed_s(Clock::time_point start, Clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main() {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(1);
  const std::size_t param_count = model->parameter_count();

  const std::size_t n_gradients = bench::scaled(20000, 2000);
  stats::Rng rng(7);

  // Pre-build the gradient stream once; every path measures the same jobs.
  std::vector<runtime::GradientJob> jobs;
  jobs.reserve(n_gradients);
  for (std::size_t i = 0; i < n_gradients; ++i) {
    jobs.push_back(make_job(*model, i, rng));
  }

  bench::header("Wire ingest (" + std::to_string(param_count) +
                " parameters, " + std::to_string(n_gradients) +
                " gradients)");

  // --- 1. Wire density -----------------------------------------------------
  std::vector<std::uint8_t> frame;
  net::encode_job(jobs[0], net::PayloadKind::kInt8, frame);
  const double int8_bytes = static_cast<double>(frame.size());
  net::encode_job(jobs[0], net::PayloadKind::kFloat32, frame);
  const double raw_bytes = static_cast<double>(frame.size());
  const double unframed_bytes =
      static_cast<double>(param_count * sizeof(float));
  bench::row({"int8 frame", bench::fmt(int8_bytes, 0) + " B/gradient"});
  bench::row({"float32 frame", bench::fmt(raw_bytes, 0) + " B/gradient"});
  bench::row({"unframed floats", bench::fmt(unframed_bytes, 0) + " B"});

  // --- 2. Decode overhead --------------------------------------------------
  // Pre-encode all frames so the loop times decode alone, into one reused
  // job — exactly the injector's steady state.
  std::vector<std::vector<std::uint8_t>> int8_frames(n_gradients);
  std::vector<std::vector<std::uint8_t>> raw_frames(n_gradients);
  for (std::size_t i = 0; i < n_gradients; ++i) {
    net::encode_job(jobs[i], net::PayloadKind::kInt8, int8_frames[i]);
    net::encode_job(jobs[i], net::PayloadKind::kFloat32, raw_frames[i]);
  }
  net::WireDecoder decoder;
  runtime::GradientJob scratch;
  float sink = 0.0f;

  auto start = Clock::now();
  for (const auto& f : int8_frames) {
    if (decoder.decode(f, scratch) != net::WireError::kOk) return 1;
    sink += scratch.gradient[0];
  }
  auto stop = Clock::now();
  const double int8_decode_ns =
      elapsed_s(start, stop) * 1e9 / static_cast<double>(n_gradients);

  start = Clock::now();
  for (const auto& f : raw_frames) {
    if (decoder.decode(f, scratch) != net::WireError::kOk) return 1;
    sink += scratch.gradient[0];
  }
  stop = Clock::now();
  const double raw_decode_ns =
      elapsed_s(start, stop) * 1e9 / static_cast<double>(n_gradients);
  bench::row({"int8 decode", bench::fmt(int8_decode_ns, 1) + " ns/gradient"});
  bench::row({"float32 decode",
              bench::fmt(raw_decode_ns, 1) + " ns/gradient"});

  // --- 3. End-to-end throughput -------------------------------------------
  core::ServerConfig server_cfg;
  server_cfg.learning_rate = 0.01f;

  // Baseline: in-process try_submit of pre-built jobs (copies, so the
  // stream is reusable), drained to fold completion.
  double inproc_s = 0.0;
  {
    auto m = nn::zoo::mlp(8, 4, 3);
    m->init(1);
    runtime::ConcurrentFleetServer server(*m, pretrained_iprof(), server_cfg,
                                          runtime::RuntimeConfig{});
    start = Clock::now();
    for (const auto& job : jobs) {
      runtime::GradientJob copy = job;
      while (!server.try_submit(copy).accepted) {
        copy = job;  // backpressure: rebuild (move may have consumed it)
      }
    }
    server.drain();
    inproc_s = elapsed_s(start, Clock::now());
    server.stop();
  }

  // Wire path: the same stream as pre-encoded int8 frames through the
  // loopback ring, one injector (the ordered configuration), drained.
  double wire_s = 0.0;
  {
    auto m = nn::zoo::mlp(8, 4, 3);
    m->init(1);
    runtime::ConcurrentFleetServer server(*m, pretrained_iprof(), server_cfg,
                                          runtime::RuntimeConfig{});
    net::LoopbackIngest ingest(server);
    start = Clock::now();
    for (const auto& f : int8_frames) {
      while (!ingest.try_send(f)) {}  // ring backpressure: spin
    }
    ingest.drain();
    server.drain();
    wire_s = elapsed_s(start, Clock::now());
    const auto stats = ingest.stats();
    if (stats.frames_submitted != n_gradients) return 1;
    ingest.close();
    server.stop();
  }

  const double inproc_grads_s = static_cast<double>(n_gradients) / inproc_s;
  const double wire_grads_s = static_cast<double>(n_gradients) / wire_s;
  bench::row({"in-process", bench::fmt(inproc_grads_s, 0) + " gradients/s"});
  bench::row({"loopback wire", bench::fmt(wire_grads_s, 0) + " gradients/s"});
  bench::row({"wire overhead",
              bench::fmt(inproc_grads_s / wire_grads_s, 2) + "x"});

  bench::JsonReport report("wire_ingest");
  report.metric("parameter_count", param_count);
  report.metric("gradients", n_gradients);
  report.metric("int8_bytes_per_gradient", int8_bytes);
  report.metric("float32_bytes_per_gradient", raw_bytes);
  report.metric("unframed_bytes_per_gradient", unframed_bytes);
  report.metric("int8_decode_ns_per_gradient", int8_decode_ns);
  report.metric("float32_decode_ns_per_gradient", raw_decode_ns);
  report.metric("inprocess_gradients_per_s", inproc_grads_s);
  report.metric("wire_gradients_per_s", wire_grads_s);
  report.write("BENCH_wire.json");
  std::cout << "\nwrote BENCH_wire.json\n";

  if (sink == 12345.678f) std::cerr << "";
  return 0;
}
