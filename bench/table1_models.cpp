// Table 1: the CNN architectures used in §3.2, built exactly as specified
// (kernel sizes, strides, pool shapes, FC widths) and verified by
// construction — Sequential::init() checks every shape transition.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/nn/zoo.hpp"

using namespace fleet;

int main() {
  bench::header("Table 1: CNN parameters");

  struct Entry {
    std::string name;
    std::unique_ptr<nn::Sequential> model;
  };
  std::vector<Entry> entries;
  entries.push_back({"MNIST", nn::zoo::mnist_cnn()});
  entries.push_back({"E-MNIST", nn::zoo::emnist_cnn()});
  entries.push_back({"CIFAR-100", nn::zoo::cifar_cnn(100)});

  for (auto& [name, model] : entries) {
    model->init(1);
    bench::header(name);
    std::cout << model->summary();
  }

  bench::header("spec check");
  std::cout
      << "MNIST:     28x28x1, Conv 5x5x8 /1, Pool 3x3 /3, Conv 5x5x48 /1, "
         "Pool 2x2 /2, FC 10\n"
      << "E-MNIST:   28x28x1, Conv 5x5x10 /1, Pool 2x2 /2, Conv 5x5x10 /1, "
         "Pool 2x2 /2, FC 15, FC 62\n"
      << "CIFAR-100: 32x32x3, Conv 3x3x16 /1, Pool 3x3 /2, Conv 3x3x64 /1, "
         "Pool 4x4 /4, FC 384, FC 192, FC 100\n";
  return 0;
}
