#include "bench_util.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fleet::bench {

double scale() {
  const char* env = std::getenv("FLEET_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

std::size_t scaled(std::size_t steps, std::size_t floor_value) {
  const auto scaled_steps =
      static_cast<std::size_t>(static_cast<double>(steps) * scale());
  return std::max(scaled_steps, floor_value);
}

void header(const std::string& title) {
  std::cout << "\n" << title << "\n"
            << std::string(title.size(), '-') << "\n";
}

void row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) std::cout << "  ";
    std::cout << cells[i];
  }
  std::cout << "\n";
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

}  // namespace fleet::bench
