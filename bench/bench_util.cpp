#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace fleet::bench {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // "inf"/"nan" are not JSON
  std::ostringstream os;
  os.precision(12);
  os << value;
  return os.str();
}

}  // namespace

double scale() {
  const char* env = std::getenv("FLEET_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

std::size_t scaled(std::size_t steps, std::size_t floor_value) {
  const auto scaled_steps =
      static_cast<std::size_t>(static_cast<double>(steps) * scale());
  return std::max(scaled_steps, floor_value);
}

void header(const std::string& title) {
  std::cout << "\n" << title << "\n"
            << std::string(title.size(), '-') << "\n";
}

void row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) std::cout << "  ";
    std::cout << cells[i];
  }
  std::cout << "\n";
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

JsonReport::JsonReport(std::string name) : name_(std::move(name)) {}

void JsonReport::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, json_number(value));
}

void JsonReport::metric(const std::string& key, std::size_t value) {
  metrics_.emplace_back(key, std::to_string(value));
}

void JsonReport::metric(const std::string& key, const std::string& value) {
  metrics_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

std::string JsonReport::to_json() const {
  std::ostringstream os;
  os << "{\"bench\": \"" << json_escape(name_) << "\", "
     << "\"scale\": " << json_number(scale()) << ", \"metrics\": {";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(metrics_[i].first)
       << "\": " << metrics_[i].second;
  }
  os << "}}";
  return os.str();
}

void JsonReport::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("JsonReport::write: cannot open " + path);
  }
  out << to_json() << "\n";
}

}  // namespace fleet::bench
