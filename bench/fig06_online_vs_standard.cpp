// Figure 6 (+ the §3.1 energy table): Online FL vs Standard FL on a
// temporal hashtag recommender. Online FL retrains hourly, Standard FL
// nightly; both perform the same gradient computations. The paper reports
// a 2.3x average F1@top-5 boost and a few mWh of daily energy per user.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/core/hashtag_experiment.hpp"

using namespace fleet;

int main() {
  data::TweetStreamConfig stream_cfg;  // 13 days, as collected in §3.1
  stream_cfg.days = std::max(4.0, 13.0 * bench::scale());
  // Hashtags live about a day (so nightly Standard FL retains *some*
  // value, as in the paper), and the user base is large enough that an
  // individual user contributes roughly one mini-batch per day.
  stream_cfg.hashtag_lifetime_hours = 24.0;
  stream_cfg.n_hashtags = 150;
  stream_cfg.n_users = 1000;
  data::TweetStream stream(stream_cfg);
  std::cout << "synthetic tweet stream: " << stream.tweets().size()
            << " tweets over " << stream_cfg.days
            << " days (substitution for the 2.6M collected tweets)\n";

  core::HashtagExperimentConfig cfg;
  const auto result = core::run_online_vs_standard(stream, cfg);

  bench::header("Figure 6: F1-score @ top-5 per chunk (1 chunk = 1 hour)");
  bench::row({"chunk_start_hour", "online_fl", "standard_fl", "most_popular"});
  // Print every 6th chunk to keep the table readable; means cover all.
  for (std::size_t i = 0; i < result.chunks.size(); i += 6) {
    const auto& c = result.chunks[i];
    bench::row({bench::fmt(c.start_hour, 0), bench::fmt(c.f1_online, 4),
                bench::fmt(c.f1_standard, 4), bench::fmt(c.f1_popular, 4)});
  }

  bench::header("summary (paper: online ~2.3x standard on average)");
  std::cout << "mean F1 online   = " << bench::fmt(result.mean_f1_online, 4)
            << "\nmean F1 standard = " << bench::fmt(result.mean_f1_standard, 4)
            << "\nmean F1 popular  = " << bench::fmt(result.mean_f1_popular, 4)
            << "\nboost (ratio of mean F1)       = "
            << bench::fmt(result.mean_f1_online /
                              std::max(result.mean_f1_standard, 1e-9),
                          2)
            << "x\nboost (mean per-chunk ratio)   = "
            << bench::fmt(result.mean_boost, 2) << "x\n";

  const auto impact = core::measure_energy_impact(stream);
  bench::header("energy impact on the Raspberry-Pi-like worker (paper §3.1)");
  std::cout << "idle power            = " << bench::fmt(impact.idle_power_w, 2)
            << " W (paper: 1.9 W)\n"
            << "active power          = "
            << bench::fmt(impact.power_batch100_w, 2)
            << " W (paper: 2.1-2.3 W)\n"
            << "daily energy per user (mWh): avg="
            << bench::fmt(impact.avg_daily_mwh, 2)
            << " median=" << bench::fmt(impact.median_daily_mwh, 2)
            << " p99=" << bench::fmt(impact.p99_daily_mwh, 2)
            << " max=" << bench::fmt(impact.max_daily_mwh, 2)
            << "\n(paper: 4 / 3.3 / 13.4 / 44 mWh; ~11000 mWh battery => "
            << bench::fmt(impact.avg_daily_mwh / 11000.0 * 100.0, 3)
            << "% of battery per day)\n";
  return 0;
}
