// Figure 15: threshold-based pruning by the controller. Non-IID MNIST-like
// data; mini-batch sizes follow N(100, 33) (the shape of I-Prof's outputs
// in Fig 12d). Thresholds are set to the n-th percentile of past values:
// (a) on the mini-batch size, (b) on the similarity value. The paper finds
// size-based pruning much cheaper: dropping 39.2% of the smallest-batch
// gradients costs <= 2.2% accuracy, while dropping 17% of the most similar
// gradients costs 4.8%.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/core/online_trainer.hpp"
#include "fleet/nn/zoo.hpp"

using namespace fleet;

namespace {

void run_sweep(const std::string& title, bool by_size,
               const data::TrainTestSplit& split, const data::Partition& users,
               const data::SyntheticImageConfig& data_cfg) {
  bench::header(title);
  bench::row({"threshold_pct", "tasks_executed", "tasks_rejected",
              "final_accuracy"});
  const std::size_t steps = fleet::bench::scaled(900);
  for (const double threshold : {0.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0}) {
    core::ControlledRunConfig cfg;
    cfg.aggregator.scheme = learning::Scheme::kSsgd;
    cfg.learning_rate = 0.05f;
    cfg.steps = steps;
    cfg.batch_mean = 100.0;
    cfg.batch_stddev = 33.0;
    cfg.eval_every = steps;
    cfg.seed = 11;
    if (by_size) {
      cfg.controller.size_percentile = threshold;
    } else {
      cfg.controller.similarity_percentile = 100.0 - threshold;
    }
    cfg.controller.min_history = 30;
    auto model = nn::zoo::small_cnn(1, data_cfg.height, data_cfg.width,
                                    data_cfg.n_classes);
    model->init(13);
    const auto result =
        core::run_controlled(*model, split.train, users, split.test, cfg);
    bench::row({bench::fmt(threshold, 0),
                std::to_string(result.tasks_executed),
                std::to_string(result.tasks_rejected),
                bench::fmt(result.final_accuracy, 3)});
  }
}

}  // namespace

int main() {
  data::SyntheticImageConfig data_cfg = data::SyntheticImageConfig::mnist_like();
  data_cfg.noise_stddev = 0.25f;
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng rng(2);
  const auto users =
      data::partition_noniid_shards(split.train.labels(), 20, 2, rng);

  std::cout << "Figure 15: controller threshold pruning "
            << "(SSGD, mini-batch ~ N(100, 33))\n";
  run_sweep("Figure 15(a): threshold on the mini-batch size", true, split,
            users, data_cfg);
  run_sweep("Figure 15(b): threshold on the similarity value", false, split,
            users, data_cfg);
  std::cout << "\nShape check: accuracy degrades slowly with size-based "
               "pruning\n(small batches carry little signal) and faster "
               "with similarity-based pruning.\n";
  return 0;
}
