// Figure 3: the motivation for lower-bounding the mini-batch size.
// A CNN is trained on a CIFAR-10-like dataset by synchronous fleets of
// "strong" workers (large mini-batch) optionally joined by "weak" workers
// (mini-batch of 1). The paper's observation: 2 weak workers cancel the
// benefit of 10 strong ones; accuracy falls to single-strong-worker level.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/core/online_trainer.hpp"
#include "fleet/nn/zoo.hpp"

using namespace fleet;

int main() {
  bench::header("Figure 3: weak workers perturb synchronous training");
  std::cout << "CIFAR-10-like prototype dataset (substitution, DESIGN.md par.3);"
            << "\nstrong mini-batch=64, weak mini-batch=1 (paper: 128 and 1, "
               "10 strong workers).\n";

  data::SyntheticImageConfig data_cfg = data::SyntheticImageConfig::cifar10_like();
  data_cfg.height = 10;
  data_cfg.width = 10;
  data_cfg.noise_stddev = 0.5f;  // CIFAR-10 is the hardest of their tasks
  data_cfg.n_train = 4000;
  data_cfg.n_test = 800;
  const auto split = data::generate_synthetic_images(data_cfg);

  const std::size_t kStrong = 64;
  const std::size_t kWeak = 1;
  struct Mix {
    std::string label;
    std::size_t strong;
    std::size_t weak;
  };
  const std::vector<Mix> mixes{
      {"1_strong", 1, 0},
      {"6_strong", 6, 0},
      {"6_strong_2_weak", 6, 2},
      {"6_strong_4_weak", 6, 4},
  };

  const std::size_t steps = bench::scaled(400);
  std::vector<std::vector<core::CurvePoint>> curves;
  for (const Mix& mix : mixes) {
    core::SynchronousMixConfig cfg;
    cfg.worker_batch_sizes.assign(mix.strong, kStrong);
    cfg.worker_batch_sizes.insert(cfg.worker_batch_sizes.end(), mix.weak,
                                  kWeak);
    cfg.steps = steps;
    cfg.learning_rate = 0.15f;
    cfg.eval_every = std::max<std::size_t>(steps / 8, 1);
    cfg.seed = 1;
    auto model = nn::zoo::small_cnn(data_cfg.channels, data_cfg.height,
                                    data_cfg.width, data_cfg.n_classes);
    model->init(3);
    curves.push_back(
        core::run_synchronous_mix(*model, split.train, split.test, cfg));
  }

  bench::header("accuracy vs step");
  std::vector<std::string> head{"step"};
  for (const Mix& mix : mixes) head.push_back(mix.label);
  bench::row(head);
  for (std::size_t p = 0; p < curves[0].size(); ++p) {
    std::vector<std::string> cells{std::to_string(curves[0][p].step)};
    for (const auto& curve : curves) {
      cells.push_back(bench::fmt(curve[p].accuracy, 3));
    }
    bench::row(cells);
  }

  const double all_strong = curves[1].back().accuracy;
  const double one_strong = curves[0].back().accuracy;
  const double with_2_weak = curves[2].back().accuracy;
  bench::header("paper-shape check");
  std::cout << "6 strong (" << bench::fmt(all_strong, 3)
            << ") > 6 strong + 2 weak (" << bench::fmt(with_2_weak, 3)
            << ") ~ 1 strong (" << bench::fmt(one_strong, 3) << ")\n";
  return 0;
}
