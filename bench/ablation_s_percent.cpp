// Ablation: sensitivity of AdaSGD to the s% system parameter (§2.3).
// "An underestimate of s% will slow down convergence, whereas an
// overestimate may lead to divergence." s sets tau_thres as a percentile
// of observed staleness, which in turn sets the dampening aggressiveness.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/core/online_trainer.hpp"
#include "fleet/learning/dampening.hpp"
#include "fleet/nn/zoo.hpp"

using namespace fleet;

int main() {
  data::SyntheticImageConfig data_cfg = data::SyntheticImageConfig::mnist_like();
  data_cfg.noise_stddev = 0.25f;
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng rng(2);
  const auto users =
      data::partition_noniid_shards(split.train.labels(), 100, 2, rng);

  // Long-tail staleness so the percentile choice matters: Gaussian body
  // with a heavy tail.
  const stats::LongTailGaussianDistribution staleness(8.0, 2.0, 0.08, 30.0,
                                                      60.0);
  const std::size_t steps = bench::scaled(1600);

  bench::header("Ablation: s% sensitivity (staleness = N(8,2) + 8% tail)");
  bench::row({"s_percent", "tau_thres_eq", "final_accuracy"});
  for (const double s : {50.0, 80.0, 90.0, 99.7, 100.0}) {
    core::ControlledRunConfig cfg;
    cfg.aggregator.scheme = learning::Scheme::kAdaSgd;
    cfg.aggregator.s_percent = s;
    cfg.staleness = &staleness;
    cfg.learning_rate = 0.10f;
    cfg.steps = steps;
    cfg.mini_batch = 32;
    cfg.eval_every = steps;
    cfg.seed = 7;
    auto model = nn::zoo::small_cnn(1, 14, 14, 10);
    model->init(9);
    const auto result =
        core::run_controlled(*model, split.train, users, split.test, cfg);
    // Reconstruct the tau_thres the run converged to from the staleness
    // distribution: its s-th percentile.
    stats::Rng sample_rng(1);
    std::vector<double> taus;
    for (int i = 0; i < 20000; ++i) {
      taus.push_back(std::max(0.0, staleness.sample(sample_rng)));
    }
    std::sort(taus.begin(), taus.end());
    const double tau_thres = std::max(
        2.0, taus[static_cast<std::size_t>(
                 std::min(s / 100.0, 0.99995) *
                 static_cast<double>(taus.size() - 1))]);
    bench::row({bench::fmt(s, 1), bench::fmt(tau_thres, 1),
                bench::fmt(result.final_accuracy, 3)});
  }
  std::cout
      << "\nExpectation (paper §2.3): an underestimate of s% slows "
         "convergence\n(over-dampening); an overestimate may lead to "
         "divergence (tau_thres absorbs\nthe tail and stale gradients keep "
         "full-ish weight). With ~8% stragglers the\ntail starts at the "
         "92nd percentile, so s=90 is 'the beginning of the tail'\nand "
         "performs best, exactly as the paper prescribes.\n";
  return 0;
}
