// Gradient-ingest throughput of the concurrent serving runtime
// (DESIGN.md §6) vs the serial single-threaded server path, on the same
// 111k-parameter model snapshot_store_bench uses.
//
// Each producer owns a model replica and drives the full learning-task
// inner loop: acquire the current snapshot (one atomic load), bulk-load it
// into the replica, compute a real gradient on a local mini-batch, and
// hand the owned buffer to the server. The serial baseline performs the
// identical work against `core::FleetServer::handle_gradient` on one
// thread; the runtime rows fan the compute across N producer threads
// feeding the bounded MPSC queue and its single aggregation thread.
// Speedup therefore measures what the subsystem promises: the gradient
// *computation* parallelizes across cores while AdaSGD stays sequential
// and exact on the aggregation thread.
//
// A second section isolates the *aggregation* side (DESIGN.md §6 sharded
// hierarchical fold): producers submit pre-computed gradients (one memcpy
// each) at K = 1, so every gradient costs the aggregation path a weighted
// fold plus a full model apply — the fold arithmetic dominates — and the
// shard sweep {1,2,4} measures how the span-partitioned fold scales.
//
// A third section sweeps tenancy (DESIGN.md §7): {1,2,4} models registered
// on one shared host, one producer per model in the same aggregation-bound
// regime — per-model and aggregate gradients/sec as tenants are added.
//
// A fourth section measures the concurrent fold scheduler (DESIGN.md §9):
// {1,2,4} models x {1,4} shards with all sessions' fold plans overlapped
// on the shared pool, reporting per-model/aggregate grads/s and the fold
// occupancy high-water mark, against the serialized-plan baseline
// (RuntimeConfig::serialize_folds) at 4 models x 4 shards.
//
// A fifth section sweeps the planner control plane (DESIGN.md §13):
// 8 tenants on one host with aggregation_shards = 1, so every session's
// fold runs inline on its planner thread — the planners are the bottleneck
// by construction — across {1,2,4} planner threads, plus a pinned-batch vs
// adaptive-drain-batching comparison at 2 planners (planner_* and
// adaptive_batch_* metrics).
//
// A sixth section measures the telemetry overhead (DESIGN.md §11): the
// aggregation-bound scenario twice, tracing off and on, best of two runs
// each — the on/off grads/s ratio is the design's <= 5% overhead budget —
// plus the traced run's latency histograms (queue wait, session fold,
// publish) and its trace-event accounting.
//
// Emits BENCH_runtime.json (gradients/sec vs thread count 1/2/4/8, plus
// aggregation throughput vs shard count 1/2/4, plus the multi-tenant
// model sweep 1/2/4, plus the concurrent_models_* scheduler sweep) and
// BENCH_telemetry.json (the tracing-on/off sweep).
#include <chrono>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "fleet/core/server.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"
#include "fleet/runtime/concurrent_server.hpp"
#include "fleet/stats/rng.hpp"
#include "fleet/telemetry/metrics.hpp"
#include "fleet/telemetry/telemetry.hpp"
#include "fleet/tensor/kernels/kernels.hpp"
#include "fleet/tensor/kernels/scratch.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using fleet::stats::Rng;

constexpr std::size_t kInputDim = 100;
constexpr std::size_t kHidden = 1000;
constexpr std::size_t kClasses = 10;
constexpr std::size_t kBatchSize = 32;
// K = 8 on both paths: the sequential section (apply + snapshot publish)
// amortizes over 8 gradients, as in the paper's K-sweeps.
constexpr std::size_t kAggregationK = 8;

std::unique_ptr<fleet::profiler::Profiler> pretrained_iprof() {
  auto iprof = std::make_unique<fleet::profiler::IProf>(
      fleet::profiler::IProf::Config{});
  iprof->pretrain(fleet::profiler::collect_profile_dataset(
      fleet::device::training_fleet(), fleet::profiler::IProf::Config{}.slo,
      20));
  return iprof;
}

/// A producer's fixed local mini-batch (inputs + labels + LD), seeded per
/// producer stream so every configuration computes on identical data.
struct LocalBatch {
  fleet::nn::Batch batch;
  fleet::stats::LabelDistribution label_dist{kClasses};
};

LocalBatch make_batch(std::uint64_t seed, std::uint64_t producer) {
  Rng rng = Rng::stream(seed, producer);
  std::vector<float> inputs(kBatchSize * kInputDim);
  for (float& x : inputs) x = static_cast<float>(rng.gaussian(0.0, 1.0));
  LocalBatch local;
  local.batch.inputs = fleet::tensor::Tensor(
      {kBatchSize, kInputDim}, std::move(inputs));
  local.batch.labels.resize(kBatchSize);
  for (int& label : local.batch.labels) {
    label = static_cast<int>(rng.uniform_int(0, kClasses - 1));
  }
  local.label_dist = fleet::stats::LabelDistribution::from_labels(
      local.batch.labels, kClasses);
  return local;
}

double grads_per_second(Clock::time_point start, Clock::time_point stop,
                        std::size_t gradients) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start);
  return static_cast<double>(gradients) * 1e9 /
         static_cast<double>(ns.count());
}

/// Serial baseline: the identical per-gradient work through the
/// single-threaded FleetServer ingest path.
double run_serial(std::size_t total_gradients) {
  auto model = fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses);
  model->init(1);
  fleet::core::ServerConfig config;
  config.aggregator.aggregation_k = kAggregationK;
  fleet::core::FleetServer server(*model, pretrained_iprof(), config);
  auto replica = fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses);
  replica->init(2);
  LocalBatch local = make_batch(99, 0);

  std::vector<float> gradient;
  const auto start = Clock::now();
  for (std::size_t g = 0; g < total_gradients; ++g) {
    replica->load_parameters(model->parameters_view());
    replica->gradient(local.batch, gradient);
    server.handle_gradient(server.version(), gradient, local.label_dist,
                           kBatchSize);
  }
  const auto stop = Clock::now();
  return grads_per_second(start, stop, total_gradients);
}

/// Concurrent runtime at `n_threads` producers.
double run_concurrent(std::size_t n_threads, std::size_t total_gradients) {
  auto model = fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses);
  model->init(1);
  fleet::core::ServerConfig config;
  config.aggregator.aggregation_k = kAggregationK;
  fleet::runtime::RuntimeConfig runtime;
  runtime.queue_capacity = 1024;
  runtime.queue_shards = std::max<std::size_t>(n_threads, 1);
  fleet::runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                               config, runtime);

  // Pre-build replicas and batches outside the timed region.
  std::vector<std::unique_ptr<fleet::nn::Sequential>> replicas;
  std::vector<LocalBatch> batches;
  for (std::size_t t = 0; t < n_threads; ++t) {
    replicas.push_back(fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses));
    replicas.back()->init(2 + t);
    batches.push_back(make_batch(99, t));
  }
  const std::size_t per_thread = total_gradients / n_threads;

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < n_threads; ++t) {
    producers.emplace_back([&, t] {
      fleet::nn::Sequential& replica = *replicas[t];
      const LocalBatch& local = batches[t];
      fleet::runtime::GradientJob job;
      for (std::size_t g = 0; g < per_thread; ++g) {
        const auto record = server.current();
        replica.load_parameters(*record.snapshot);
        replica.gradient(local.batch, job.gradient);
        job.task_version = record.version;
        job.label_dist = local.label_dist;
        job.mini_batch = kBatchSize;
        while (!server.try_submit(job).accepted) {
          // Bounded queue: back off long enough for the aggregation
          // thread to make progress even on an oversubscribed host.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server.drain();
  const auto stop = Clock::now();

  const std::size_t processed = server.stats().processed;
  server.stop();
  return grads_per_second(start, stop, processed);
}

/// Aggregation-bound scenario for the shard sweep: two producers replay a
/// pre-computed gradient (the submit path moves the owned buffer, so each
/// replay is one memcpy), K = 1 makes every gradient fold + apply +
/// count toward a publication — the aggregation side is the bottleneck by
/// construction, and the shard count is the only variable.
double run_sharded(std::size_t shards, std::size_t total_gradients) {
  constexpr std::size_t kProducers = 2;
  auto model = fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses);
  model->init(1);
  fleet::core::ServerConfig config;
  config.aggregator.aggregation_k = 1;
  fleet::runtime::RuntimeConfig runtime;
  runtime.queue_capacity = 1024;
  runtime.queue_shards = kProducers;
  runtime.aggregation_shards = shards;
  runtime.max_drain_batch = 64;
  fleet::runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                               config, runtime);

  // One real gradient per producer, computed outside the timed region.
  std::vector<std::vector<float>> templates;
  for (std::size_t t = 0; t < kProducers; ++t) {
    auto replica = fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses);
    replica->init(2 + t);
    LocalBatch local = make_batch(99, t);
    auto& gradient = templates.emplace_back();
    replica->load_parameters(model->parameters_view());
    replica->gradient(local.batch, gradient);
  }
  const LocalBatch label_source = make_batch(99, 0);
  const std::size_t per_thread = total_gradients / kProducers;

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      fleet::runtime::GradientJob job;
      for (std::size_t g = 0; g < per_thread; ++g) {
        job.task_version = server.current().version;
        job.gradient = templates[t];  // one memcpy: the producer's only work
        job.label_dist = label_source.label_dist;
        job.mini_batch = kBatchSize;
        while (!server.try_submit(job).accepted) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server.drain();
  const auto stop = Clock::now();

  const std::size_t processed = server.stats().processed;
  server.stop();
  return grads_per_second(start, stop, processed);
}

/// Multi-tenant sweep (DESIGN.md §7/§9): N models registered on ONE host,
/// one producer per model replaying a pre-computed gradient into its own
/// session at K = 1 (fold + apply + publish per gradient, the
/// aggregation-bound scenario above) — measures how the shared queue,
/// aggregation thread and fold scheduler carry added tenants.
/// `serialize_folds` selects the pre-scheduler baseline (each session's
/// plan waited before the next is submitted).
struct MultitenantResult {
  double aggregate = 0.0;       ///< grads/s across all models
  double per_model_mean = 0.0;  ///< mean per-model grads/s
  /// Fold-scheduler occupancy high-water mark (tasks queued + running at
  /// once; > shards means cross-session overlap happened).
  std::size_t fold_peak_pending = 0;
  std::size_t fold_tasks = 0;
};

MultitenantResult run_multitenant(std::size_t n_models, std::size_t shards,
                                  bool serialize_folds,
                                  std::size_t total_gradients) {
  fleet::core::ServerConfig config;
  config.aggregator.aggregation_k = 1;
  fleet::runtime::RuntimeConfig runtime;
  runtime.queue_capacity = 1024;
  runtime.queue_shards = n_models;
  runtime.aggregation_shards = shards;
  runtime.serialize_folds = serialize_folds;
  runtime.max_drain_batch = 64;
  fleet::runtime::ConcurrentFleetServer host(runtime);

  std::vector<std::unique_ptr<fleet::nn::Sequential>> models;
  std::vector<fleet::core::ModelId> ids;
  std::vector<std::vector<float>> templates;
  for (std::size_t m = 0; m < n_models; ++m) {
    models.push_back(fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses));
    models.back()->init(1 + m);
    ids.push_back(host.register_model(*models.back(), pretrained_iprof(),
                                      config));
    auto replica = fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses);
    replica->init(100 + m);
    LocalBatch local = make_batch(99, m);
    auto& gradient = templates.emplace_back();
    replica->load_parameters(models.back()->parameters_view());
    replica->gradient(local.batch, gradient);
  }
  const LocalBatch label_source = make_batch(99, 0);
  const std::size_t per_model = total_gradients / n_models;

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  for (std::size_t m = 0; m < n_models; ++m) {
    producers.emplace_back([&, m] {
      fleet::runtime::GradientJob job;
      for (std::size_t g = 0; g < per_model; ++g) {
        job.model_id = ids[m];
        job.task_version = host.current(ids[m]).version;
        job.gradient = templates[m];  // one memcpy: the producer's only work
        job.label_dist = label_source.label_dist;
        job.mini_batch = kBatchSize;
        while (!host.try_submit(job).accepted) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  host.drain();
  const auto stop = Clock::now();

  std::size_t processed = 0;
  double per_model_rate_sum = 0.0;
  for (const auto id : ids) {
    const std::size_t p = host.stats(id).processed;
    processed += p;
    per_model_rate_sum += grads_per_second(start, stop, p);
  }
  MultitenantResult result;
  const auto host_view = host.host_stats();
  result.fold_peak_pending = host_view.fold_peak_pending;
  result.fold_tasks = host_view.fold_tasks_executed;
  host.stop();
  result.aggregate = grads_per_second(start, stop, processed);
  result.per_model_mean =
      per_model_rate_sum / static_cast<double>(n_models);
  return result;
}

/// Planner-bound scenario (DESIGN.md §13): 8 tenants on one host with
/// aggregation_shards = 1, so each session's weighted fold and model apply
/// run INLINE on its planner thread — the planner control plane is the
/// bottleneck by construction, and the planner count is the variable.
/// 4 producers replay pre-computed gradients (one memcpy each) at K = 1,
/// each producer round-robining over its own tenant subset so every
/// planner group sees steady pressure.
struct PlannerSweepResult {
  double aggregate = 0.0;  ///< grads/s across all tenants
  std::size_t widenings = 0;
  std::size_t narrowings = 0;
  std::size_t batch_limit_max = 0;  ///< widest per-planner final limit
};

PlannerSweepResult run_planner_sweep(std::size_t planners, bool adaptive,
                                     std::size_t total_gradients) {
  constexpr std::size_t kTenants = 8;
  constexpr std::size_t kProducers = 4;
  fleet::core::ServerConfig config;
  config.aggregator.aggregation_k = 1;
  fleet::runtime::RuntimeConfig runtime;
  runtime.queue_capacity = 1024;
  runtime.queue_shards = kTenants;
  runtime.planner_threads = planners;
  runtime.aggregation_shards = 1;  // folds stay inline on the planners
  runtime.max_drain_batch = 64;
  if (adaptive) {
    runtime.adaptive_batch.enabled = true;
    runtime.adaptive_batch.min_batch = 8;
    runtime.adaptive_batch.max_batch = 256;
    runtime.adaptive_batch.window = 4;
    runtime.adaptive_batch.hysteresis = 2;
  }
  fleet::runtime::ConcurrentFleetServer host(runtime);

  std::vector<std::unique_ptr<fleet::nn::Sequential>> models;
  std::vector<fleet::core::ModelId> ids;
  std::vector<std::vector<float>> templates;
  for (std::size_t m = 0; m < kTenants; ++m) {
    models.push_back(fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses));
    models.back()->init(1 + m);
    ids.push_back(host.register_model(*models.back(), pretrained_iprof(),
                                      config));
    auto replica = fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses);
    replica->init(100 + m);
    LocalBatch local = make_batch(99, m);
    auto& gradient = templates.emplace_back();
    replica->load_parameters(models.back()->parameters_view());
    replica->gradient(local.batch, gradient);
  }
  const LocalBatch label_source = make_batch(99, 0);
  const std::size_t per_model = total_gradients / kTenants;

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      fleet::runtime::GradientJob job;
      for (std::size_t g = 0; g < per_model; ++g) {
        for (std::size_t m = t; m < kTenants; m += kProducers) {
          job.model_id = ids[m];
          job.task_version = host.current(ids[m]).version;
          job.gradient = templates[m];  // one memcpy
          job.label_dist = label_source.label_dist;
          job.mini_batch = kBatchSize;
          while (!host.try_submit(job).accepted) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  host.drain();
  const auto stop = Clock::now();

  std::size_t processed = 0;
  for (const auto id : ids) processed += host.stats(id).processed;
  PlannerSweepResult result;
  const auto host_view = host.host_stats();
  result.widenings = host_view.adaptive_widenings;
  result.narrowings = host_view.adaptive_narrowings;
  for (const std::size_t limit : host_view.planner_batch_limits) {
    result.batch_limit_max = std::max(result.batch_limit_max, limit);
  }
  host.stop();
  result.aggregate = grads_per_second(start, stop, processed);
  return result;
}

/// Telemetry-overhead scenario (DESIGN.md §11): the aggregation-bound
/// regime of run_sharded (2 producers, 2 shards, K = 1, batched drains) —
/// the configuration where per-gradient instrumentation (submit/dequeue/
/// fold events, queue-wait and fold histograms) is the largest fraction of
/// the work, i.e. the worst case for tracing overhead.
struct TelemetryBenchResult {
  double rate = 0.0;
  std::size_t trace_events = 0;
  std::size_t trace_dropped = 0;
  fleet::telemetry::HistogramSnapshot queue_wait;
  fleet::telemetry::HistogramSnapshot session_fold;
  fleet::telemetry::HistogramSnapshot publish;
};

TelemetryBenchResult run_telemetry(bool enabled,
                                   std::size_t total_gradients) {
  constexpr std::size_t kProducers = 2;
  auto model = fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses);
  model->init(1);
  fleet::core::ServerConfig config;
  config.aggregator.aggregation_k = 1;
  fleet::runtime::RuntimeConfig runtime;
  runtime.queue_capacity = 1024;
  runtime.queue_shards = kProducers;
  runtime.aggregation_shards = 2;
  runtime.max_drain_batch = 64;
  runtime.telemetry.enabled = enabled;
  fleet::runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                               config, runtime);

  std::vector<std::vector<float>> templates;
  for (std::size_t t = 0; t < kProducers; ++t) {
    auto replica = fleet::nn::zoo::mlp(kInputDim, kHidden, kClasses);
    replica->init(2 + t);
    LocalBatch local = make_batch(99, t);
    auto& gradient = templates.emplace_back();
    replica->load_parameters(model->parameters_view());
    replica->gradient(local.batch, gradient);
  }
  const LocalBatch label_source = make_batch(99, 0);
  const std::size_t per_thread = total_gradients / kProducers;

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      fleet::runtime::GradientJob job;
      for (std::size_t g = 0; g < per_thread; ++g) {
        job.task_version = server.current().version;
        job.gradient = templates[t];
        job.label_dist = label_source.label_dist;
        job.mini_batch = kBatchSize;
        while (!server.try_submit(job).accepted) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server.drain();
  const auto stop = Clock::now();

  TelemetryBenchResult result;
  const std::size_t processed = server.stats().processed;
  result.rate = grads_per_second(start, stop, processed);
  server.stop();
  if (fleet::telemetry::Telemetry* telemetry = server.telemetry()) {
    result.trace_events = telemetry->tracer().collect().size();
    result.trace_dropped = telemetry->tracer().dropped();
    const auto snapshot = telemetry->metrics().snapshot();
    if (const auto* h = snapshot.histogram("queue.wait_ns")) {
      result.queue_wait = *h;
    }
    if (const auto* h = snapshot.histogram("server.session_fold_ns")) {
      result.session_fold = *h;
    }
    if (const auto* h = snapshot.histogram("server.publish_ns")) {
      result.publish = *h;
    }
  }
  return result;
}

}  // namespace

int main() {
  using namespace fleet;

  const std::size_t total = bench::scaled(400, 80);
  const unsigned hw = std::thread::hardware_concurrency();

  bench::header("Concurrent runtime gradient-ingest throughput (" +
                std::to_string(kInputDim * kHidden + kHidden +
                               kHidden * kClasses + kClasses) +
                " parameters, " + std::to_string(total) +
                " gradients/config, " + std::to_string(hw) +
                " hardware threads)");

  bench::JsonReport report("runtime_throughput");
  report.metric("gradients_per_config", total);
  report.metric("mini_batch", kBatchSize);
  report.metric("hardware_concurrency", static_cast<std::size_t>(hw));
  // The arithmetic backend every fold and forward/backward ran on — a
  // throughput number is only comparable across PRs per kernel backend.
  report.metric("kernel_backend",
                std::string(tensor::kernels::name(
                    tensor::kernels::active_backend())));
  report.metric("kernel_selection_source", tensor::kernels::selection_source());

  const double serial = run_serial(total);
  bench::row({"serial FleetServer", bench::fmt(serial, 1) + " grads/s"});
  report.metric("serial_grads_per_s", serial);

  double at4 = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double rate = run_concurrent(threads, total);
    if (threads == 4) at4 = rate;
    bench::row({"runtime x" + std::to_string(threads),
                bench::fmt(rate, 1) + " grads/s  (" +
                    bench::fmt(rate / serial, 2) + "x serial)"});
    report.metric("threads_" + std::to_string(threads) + "_grads_per_s",
                  rate);
  }
  report.metric("speedup_4t_vs_serial", at4 / serial);

  bench::header("Sharded hierarchical aggregation throughput (K=1, " +
                std::to_string(total) + " gradients/config, 2 producers)");
  double sharded_at1 = 0.0;
  double sharded_at4 = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    const double rate = run_sharded(shards, total);
    if (shards == 1) sharded_at1 = rate;
    if (shards == 4) sharded_at4 = rate;
    bench::row({"aggregation shards x" + std::to_string(shards),
                bench::fmt(rate, 1) + " grads/s  (" +
                    bench::fmt(shards == 1 ? 1.0 : rate / sharded_at1, 2) +
                    "x unsharded)"});
    report.metric("shards_" + std::to_string(shards) + "_grads_per_s", rate);
  }
  report.metric("sharded_speedup_4s_vs_1s", sharded_at4 / sharded_at1);

  bench::header("Multi-tenant host throughput (K=1, " + std::to_string(total) +
                " gradients/config, 1 producer/model, shared host)");
  double tenant_at1 = 0.0;
  for (const std::size_t models : {1u, 2u, 4u}) {
    const auto result =
        run_multitenant(models, /*shards=*/2, /*serialize_folds=*/false, total);
    if (models == 1) tenant_at1 = result.aggregate;
    bench::row({"models x" + std::to_string(models),
                bench::fmt(result.aggregate, 1) + " grads/s aggregate, " +
                    bench::fmt(result.per_model_mean, 1) + " grads/s/model  (" +
                    bench::fmt(models == 1 ? 1.0
                                           : result.aggregate / tenant_at1,
                               2) +
                    "x single-tenant)"});
    report.metric("models_" + std::to_string(models) + "_grads_per_s",
                  result.aggregate);
    report.metric(
        "models_" + std::to_string(models) + "_per_model_grads_per_s",
        result.per_model_mean);
  }

  // Concurrent fold scheduling sweep (DESIGN.md §9): tenants x shards with
  // the shared scheduler overlapping sessions' folds, against the
  // serialized-plan baseline (the pre-scheduler behavior) at the widest
  // configuration. Occupancy > shards means cross-session overlap
  // actually happened on this hardware.
  bench::header("Concurrent fold scheduling (K=1, " + std::to_string(total) +
                " gradients/config, {1,2,4} models x {1,4} shards)");
  double concurrent_4m4s = 0.0;
  for (const std::size_t models : {1u, 2u, 4u}) {
    for (const std::size_t shards : {1u, 4u}) {
      const auto result =
          run_multitenant(models, shards, /*serialize_folds=*/false, total);
      if (models == 4 && shards == 4) concurrent_4m4s = result.aggregate;
      const std::string key = "concurrent_models_" + std::to_string(models) +
                              "_shards_" + std::to_string(shards);
      bench::row({"models x" + std::to_string(models) + " shards x" +
                      std::to_string(shards),
                  bench::fmt(result.aggregate, 1) + " grads/s aggregate, " +
                      bench::fmt(result.per_model_mean, 1) +
                      " grads/s/model, fold occupancy peak " +
                      std::to_string(result.fold_peak_pending)});
      report.metric(key + "_grads_per_s", result.aggregate);
      report.metric(key + "_per_model_grads_per_s", result.per_model_mean);
      report.metric(key + "_fold_peak_pending", result.fold_peak_pending);
      report.metric(key + "_fold_tasks", result.fold_tasks);
    }
  }
  const auto serialized =
      run_multitenant(4, /*shards=*/4, /*serialize_folds=*/true, total);
  bench::row({"models x4 shards x4 serialized (baseline)",
              bench::fmt(serialized.aggregate, 1) + " grads/s aggregate  (" +
                  bench::fmt(concurrent_4m4s / serialized.aggregate, 2) +
                  "x -> concurrent)"});
  report.metric("serialized_models_4_shards_4_grads_per_s",
                serialized.aggregate);
  report.metric("concurrent_vs_serialized_4m4s",
                concurrent_4m4s / serialized.aggregate);

  // Planner control-plane sweep (DESIGN.md §13): folds inline on the
  // planners (shards = 1), 8 tenants, 4 producers — planner threads are
  // the bottleneck, so added planners should carry added throughput on
  // multi-core hosts (CI gates planner_scaling_2v1 >= 1.0 when hw >= 2).
  bench::header("Planner scaling (K=1, 8 tenants, folds inline, " +
                std::to_string(total) + " gradients/config)");
  double planner_at1 = 0.0;
  double planner_at2 = 0.0;
  for (const std::size_t planners : {1u, 2u, 4u}) {
    const auto result = run_planner_sweep(planners, /*adaptive=*/false, total);
    if (planners == 1) planner_at1 = result.aggregate;
    if (planners == 2) planner_at2 = result.aggregate;
    bench::row({"planners x" + std::to_string(planners),
                bench::fmt(result.aggregate, 1) + " grads/s aggregate  (" +
                    bench::fmt(planners == 1 ? 1.0
                                             : result.aggregate / planner_at1,
                               2) +
                    "x single-planner)"});
    report.metric("planner_" + std::to_string(planners) + "_grads_per_s",
                  result.aggregate);
  }
  report.metric("planner_scaling_2v1", planner_at2 / planner_at1);

  // Adaptive drain batching vs the pinned-batch baseline at 2 planners:
  // same pressure, the controller free to widen/narrow each planner's
  // limit from its own occupancy counters.
  bench::header("Adaptive drain batching (2 planners, pinned vs adaptive)");
  const auto adaptive_result =
      run_planner_sweep(/*planners=*/2, /*adaptive=*/true, total);
  const double adaptive_ratio =
      planner_at2 > 0.0 ? adaptive_result.aggregate / planner_at2 : 0.0;
  bench::row({"pinned batch (64)", bench::fmt(planner_at2, 1) + " grads/s"});
  bench::row({"adaptive batch",
              bench::fmt(adaptive_result.aggregate, 1) + " grads/s  (" +
                  bench::fmt(adaptive_ratio, 2) + "x pinned), " +
                  std::to_string(adaptive_result.widenings) + " widenings, " +
                  std::to_string(adaptive_result.narrowings) +
                  " narrowings, widest final limit " +
                  std::to_string(adaptive_result.batch_limit_max)});
  report.metric("adaptive_batch_pinned_grads_per_s", planner_at2);
  report.metric("adaptive_batch_adaptive_grads_per_s",
                adaptive_result.aggregate);
  report.metric("adaptive_batch_ratio", adaptive_ratio);
  report.metric("adaptive_batch_widenings", adaptive_result.widenings);
  report.metric("adaptive_batch_narrowings", adaptive_result.narrowings);
  report.metric("adaptive_batch_final_limit_max",
                adaptive_result.batch_limit_max);

  // Scratch-arena high-water mark across the whole run: with the slab
  // arenas warmed up this is flat across PRs unless a hot loop started
  // asking for more scratch (companion to fold_buffer_growths).
  report.metric("scratch_bytes_peak",
                tensor::kernels::ScratchAllocator::global_bytes_peak());

  report.write("BENCH_runtime.json");
  std::cout << "\nwrote BENCH_runtime.json\n";

  // --- Telemetry overhead sweep (DESIGN.md §11) -----------------------
  // Aggregation-bound scenario (2 producers, 2 shards, K = 1) with tracing
  // off and on, best of two runs per mode: per-gradient instrumentation is
  // the largest relative cost here, so the on/off ratio bounds the
  // overhead everywhere else. The design budget is <= 5% (ratio >= 0.95);
  // CI gates a looser floor and only on multi-core hosts, where the ratio
  // is a measurement rather than scheduler noise.
  bench::header("Telemetry overhead (tracing off vs on, " +
                std::to_string(total) + " gradients, 2 producers x 2 shards)");
  double off_rate = 0.0;
  TelemetryBenchResult traced;
  for (int rep = 0; rep < 2; ++rep) {
    off_rate = std::max(off_rate, run_telemetry(false, total).rate);
    const TelemetryBenchResult on = run_telemetry(true, total);
    if (on.rate > traced.rate) traced = on;
  }
  const double ratio = off_rate > 0.0 ? traced.rate / off_rate : 0.0;
  bench::row({"tracing off", bench::fmt(off_rate, 1) + " grads/s"});
  bench::row({"tracing on", bench::fmt(traced.rate, 1) + " grads/s  (" +
                                bench::fmt(ratio, 3) + "x off)"});
  bench::row({"trace events",
              std::to_string(traced.trace_events) + " collected, " +
                  std::to_string(traced.trace_dropped) + " dropped"});
  bench::row({"queue wait",
              "p50 " + bench::fmt(traced.queue_wait.quantile(0.5) / 1e3, 1) +
                  " us, p99 " +
                  bench::fmt(traced.queue_wait.quantile(0.99) / 1e3, 1) +
                  " us"});
  bench::row({"session fold",
              "p50 " + bench::fmt(traced.session_fold.quantile(0.5) / 1e3, 1) +
                  " us, p99 " +
                  bench::fmt(traced.session_fold.quantile(0.99) / 1e3, 1) +
                  " us"});

  bench::JsonReport telemetry_report("telemetry_overhead");
  telemetry_report.metric("gradients_per_config", total);
  telemetry_report.metric("hardware_concurrency",
                          static_cast<std::size_t>(hw));
  telemetry_report.metric("kernel_backend",
                          std::string(tensor::kernels::name(
                              tensor::kernels::active_backend())));
  telemetry_report.metric("telemetry_off_grads_per_s", off_rate);
  telemetry_report.metric("telemetry_on_grads_per_s", traced.rate);
  telemetry_report.metric("on_off_ratio", ratio);
  telemetry_report.metric("trace_events_collected", traced.trace_events);
  telemetry_report.metric("trace_events_dropped", traced.trace_dropped);
  telemetry_report.metric("queue_wait_p50_ns", traced.queue_wait.quantile(0.5));
  telemetry_report.metric("queue_wait_p99_ns",
                          traced.queue_wait.quantile(0.99));
  telemetry_report.metric("session_fold_p50_ns",
                          traced.session_fold.quantile(0.5));
  telemetry_report.metric("session_fold_p99_ns",
                          traced.session_fold.quantile(0.99));
  telemetry_report.metric("publish_p50_ns", traced.publish.quantile(0.5));
  telemetry_report.metric("publish_p99_ns", traced.publish.quantile(0.99));
  telemetry_report.write("BENCH_telemetry.json");
  std::cout << "wrote BENCH_telemetry.json\n";
  return 0;
}
