// Fault-resilience bench (DESIGN.md §14): what the serving stack delivers
// when the wire is hostile and the queue must choose what to keep.
//
//   1. Corruption sweep — end-to-end gradients/s into a
//      ConcurrentFleetServer through LoopbackIngest under {0%, 1%, 10%}
//      seeded wire corruption, crossed with the overload policy
//      {reject-newest, shed-stalest}. Alongside throughput each cell
//      reports the folded fraction (gradients folded / frames sent) — the
//      accuracy proxy: a corrupted or shed gradient never trains the model.
//   2. Injector-kill recovery — a bounded schedule of injector-thread
//      deaths mid-stream; the supervisor must respawn each one (counted)
//      and every frame must still be delivered.
//
// All schedules come from a seeded FaultInjector, so the numbers are
// comparable run to run. Emits BENCH_faults.json via bench::JsonReport.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/net/ingest.hpp"
#include "fleet/net/wire.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"
#include "fleet/runtime/concurrent_server.hpp"
#include "fleet/runtime/fault.hpp"
#include "fleet/stats/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace fleet;

std::unique_ptr<profiler::Profiler> pretrained_iprof() {
  auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
  iprof->pretrain(profiler::collect_profile_dataset(
      device::training_fleet(), profiler::IProf::Config{}.slo, 20));
  return iprof;
}

runtime::GradientJob make_job(const nn::TrainableModel& model,
                              std::size_t salt, stats::Rng& rng) {
  runtime::GradientJob job;
  job.model_id = core::kDefaultModelId;
  job.task_version = 0;
  job.gradient.resize(model.parameter_count());
  for (float& g : job.gradient) {
    g = static_cast<float>(rng.gaussian(0.0, 0.01));
  }
  job.label_dist = stats::LabelDistribution(model.n_classes());
  job.label_dist.add(static_cast<int>(salt % model.n_classes()), 2);
  job.mini_batch = 4;
  return job;
}

double elapsed_s(Clock::time_point start, Clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

struct CellResult {
  double grads_per_s = 0.0;
  double folded_fraction = 0.0;
  std::size_t corrupted = 0;
  std::size_t shed = 0;
};

}  // namespace

int main() {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(1);
  const std::size_t n_frames = bench::scaled(8000, 800);

  // One pre-encoded stream; every cell replays the identical frames.
  stats::Rng rng(7);
  std::vector<std::vector<std::uint8_t>> frames(n_frames);
  for (std::size_t i = 0; i < n_frames; ++i) {
    net::encode_job(make_job(*model, i, rng), net::PayloadKind::kInt8,
                    frames[i]);
  }

  core::ServerConfig server_cfg;
  server_cfg.learning_rate = 0.01f;

  const auto run_cell = [&](double corruption,
                            runtime::OverloadPolicy policy) {
    runtime::FaultInjector fault(11);
    if (corruption > 0.0) {
      runtime::FaultPlan plan;
      plan.site = runtime::FaultSite::kWireCorrupt;
      plan.probability = corruption;
      fault.arm(plan);
    }
    auto m = nn::zoo::mlp(8, 4, 3);
    m->init(1);
    runtime::RuntimeConfig runtime_cfg;
    runtime_cfg.queue_capacity = 256;
    runtime_cfg.overload_policy = policy;
    runtime_cfg.shed_watermark = 192;
    runtime_cfg.fault_injector = &fault;
    runtime::ConcurrentFleetServer server(*m, pretrained_iprof(), server_cfg,
                                          runtime_cfg);
    net::LoopbackIngest::Config ingest_cfg;
    ingest_cfg.fault = &fault;
    net::LoopbackIngest ingest(server, ingest_cfg);
    const auto start = Clock::now();
    for (const auto& f : frames) {
      while (!ingest.try_send(f)) {}  // ring backpressure: spin
    }
    ingest.drain();
    server.drain();
    const double wall_s = elapsed_s(start, Clock::now());
    ingest.close();
    const net::IngestStats in = ingest.stats();
    const std::size_t processed = server.stats().processed;
    const std::size_t shed_total = server.host_stats().shed_drops;
    server.stop();
    CellResult cell;
    cell.grads_per_s = static_cast<double>(processed) / wall_s;
    cell.folded_fraction =
        static_cast<double>(processed) / static_cast<double>(n_frames);
    cell.corrupted = in.frames_corrupted;
    cell.shed = shed_total;
    return cell;
  };

  bench::header("Fault resilience (" + std::to_string(n_frames) +
                " frames per cell)");
  bench::JsonReport report("fault_resilience");
  report.metric("frames_per_cell", n_frames);

  const struct {
    double corruption;
    const char* tag;
  } levels[] = {{0.0, "none"}, {0.01, "corrupt1"}, {0.10, "corrupt10"}};
  const struct {
    runtime::OverloadPolicy policy;
    const char* tag;
  } policies[] = {
      {runtime::OverloadPolicy::kRejectNewest, "reject_newest"},
      {runtime::OverloadPolicy::kShedStalest, "shed_stalest"},
  };
  for (const auto& level : levels) {
    for (const auto& policy : policies) {
      const CellResult cell = run_cell(level.corruption, policy.policy);
      const std::string key =
          std::string(level.tag) + "_" + policy.tag;
      bench::row({key, bench::fmt(cell.grads_per_s, 0) + " gradients/s",
                  "folded " + bench::fmt(cell.folded_fraction, 3),
                  "corrupted " + std::to_string(cell.corrupted),
                  "shed " + std::to_string(cell.shed)});
      report.metric(key + "_grads_per_s", cell.grads_per_s);
      report.metric(key + "_folded_fraction", cell.folded_fraction);
    }
  }

  // --- 2. Injector-kill recovery -------------------------------------------
  // Three seeded deaths spread through the stream; the healed pipeline must
  // deliver every frame and count every respawn.
  double recovery_grads_per_s = 0.0;
  std::size_t restarts = 0;
  std::size_t recovered_frames = 0;
  {
    runtime::FaultInjector fault(11);
    runtime::FaultPlan death;
    death.site = runtime::FaultSite::kInjectorDeath;
    death.every = n_frames / 4;
    death.max_fires = 3;
    fault.arm(death);
    auto m = nn::zoo::mlp(8, 4, 3);
    m->init(1);
    runtime::RuntimeConfig runtime_cfg;
    runtime_cfg.fault_injector = &fault;
    runtime::ConcurrentFleetServer server(*m, pretrained_iprof(), server_cfg,
                                          runtime_cfg);
    net::LoopbackIngest::Config ingest_cfg;
    ingest_cfg.injector_threads = 2;
    ingest_cfg.fault = &fault;
    net::LoopbackIngest ingest(server, ingest_cfg);
    const auto start = Clock::now();
    for (const auto& f : frames) {
      while (!ingest.try_send(f)) {}
    }
    ingest.drain();
    server.drain();
    const double wall_s = elapsed_s(start, Clock::now());
    ingest.close();
    const net::IngestStats in = ingest.stats();
    restarts = in.injector_restarts;
    recovered_frames = in.frames_submitted;
    recovery_grads_per_s = static_cast<double>(server.stats().processed) /
                           wall_s;
    server.stop();
    if (recovered_frames != n_frames) {
      std::cerr << "recovery lost frames: " << recovered_frames << "/"
                << n_frames << "\n";
      return 1;
    }
  }
  bench::row({"recovery", bench::fmt(recovery_grads_per_s, 0) + " gradients/s",
              "restarts " + std::to_string(restarts),
              "frames " + std::to_string(recovered_frames)});
  report.metric("recovery_grads_per_s", recovery_grads_per_s);
  report.metric("recovery_injector_restarts", restarts);
  report.metric("recovery_frames_submitted", recovered_frames);

  report.write("BENCH_faults.json");
  std::cout << "\nwrote BENCH_faults.json\n";
  return 0;
}
