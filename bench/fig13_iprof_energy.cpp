// Figure 13: I-Prof vs MAUI against an energy SLO of 0.075% battery drop,
// on the 5 lab devices (AWS prohibits energy measurements). 36 learning
// tasks; the paper reports a 90th-percentile deviation of 0.01% for I-Prof
// vs 0.19% for MAUI.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/device/allocation.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/maui.hpp"
#include "fleet/profiler/training_data.hpp"
#include "fleet/stats/histogram.hpp"

using namespace fleet;

int main() {
  profiler::Slo slo;
  slo.latency_s = 1e6;  // energy experiment: latency unconstrained
  slo.energy_pct = 0.075;
  profiler::IProf::Config iprof_cfg;
  iprof_cfg.slo = slo;
  profiler::MauiProfiler::Config maui_cfg;
  maui_cfg.slo = slo;

  profiler::IProf iprof(iprof_cfg);
  profiler::MauiProfiler maui(maui_cfg);
  const auto pretrain = profiler::collect_profile_dataset(
      device::training_fleet(), profiler::Slo{}, 1300);
  iprof.pretrain(pretrain);
  maui.pretrain(pretrain);

  const auto fleet = device::lab_fleet();  // log-in order of §3.3
  std::vector<device::DeviceSim> devices;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    devices.emplace_back(device::spec(fleet[i]), 1500 + i);
  }

  const std::size_t total_requests = bench::scaled(72, 40);
  struct Sample {
    std::string profiler;
    std::string device;
    std::size_t n;
    double energy_pct;
  };
  std::vector<Sample> samples;
  const std::size_t stagger =
      std::max<std::size_t>(total_requests / fleet.size() / 2, 1);
  std::size_t parity = 0;
  for (std::size_t r = 0; r < total_requests; ++r) {
    const std::size_t logged_in = std::min(fleet.size(), r / stagger + 1);
    const std::size_t d = r % logged_in;
    device::DeviceSim& device = devices[d];
    const auto features = device.features();
    const bool use_iprof = (parity++ % 2) == 0;
    profiler::Profiler& prof =
        use_iprof ? static_cast<profiler::Profiler&>(iprof)
                  : static_cast<profiler::Profiler&>(maui);
    const std::size_t n = prof.predict_batch(features, fleet[d]);
    const device::TaskExecution exec =
        device.run_task(n, device::fleet_allocation(device.spec()));
    profiler::Observation ob;
    ob.device_model = fleet[d];
    ob.features = features;
    ob.mini_batch = n;
    ob.time_s = exec.time_s;
    ob.energy_pct = exec.energy_pct;
    prof.observe(ob);
    device.idle(120.0);
    samples.push_back(
        {use_iprof ? "I-Prof" : "MAUI", fleet[d], n, exec.energy_pct});
  }

  bench::header("Figure 13: energy per request vs the 0.075% SLO");
  bench::row({"request", "profiler", "device", "n", "energy_pct"});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    bench::row({std::to_string(i), s.profiler, s.device, std::to_string(s.n),
                bench::fmt(s.energy_pct, 4)});
  }

  const auto deviations = [&](const std::string& name) {
    std::vector<double> out;
    for (const Sample& s : samples) {
      if (s.profiler == name) {
        out.push_back(std::abs(s.energy_pct - slo.energy_pct));
      }
    }
    return out;
  };
  const stats::EmpiricalCdf iprof_cdf(deviations("I-Prof"));
  const stats::EmpiricalCdf maui_cdf(deviations("MAUI"));
  bench::header("summary");
  std::cout << "90th-percentile |energy - SLO|: I-Prof = "
            << bench::fmt(iprof_cdf.quantile(0.9), 4) << "%, MAUI = "
            << bench::fmt(maui_cdf.quantile(0.9), 4)
            << "% (paper: 0.01% vs 0.19%)\n"
            << "median |energy - SLO|: I-Prof = "
            << bench::fmt(iprof_cdf.quantile(0.5), 4) << "%, MAUI = "
            << bench::fmt(maui_cdf.quantile(0.5), 4) << "%\n";
  return 0;
}
