// Figure 8: impact of staleness on learning, non-IID MNIST-like data.
// Staleness distributions D1 = N(6,2) and D2 = N(12,4), s = 99.7%
// (tau_thres = mu + 3 sigma). SSGD is the staleness-free ideal; FedAvg is
// staleness-unaware and degrades/diverges; AdaSGD converges faster than
// DynSGD, and its advantage grows from D1 to D2.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "fleet/core/online_trainer.hpp"
#include "fleet/nn/zoo.hpp"

using namespace fleet;

namespace {

struct RunSpec {
  std::string label;
  learning::Scheme scheme;
  const stats::Distribution* staleness;
};

}  // namespace

int main() {
  data::SyntheticImageConfig data_cfg = data::SyntheticImageConfig::mnist_like();
  data_cfg.noise_stddev = 0.25f;
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng rng(2);
  // The standard non-IID decentralization: 2 shards per user (§3.2).
  const auto users =
      data::partition_noniid_shards(split.train.labels(), 100, 2, rng);

  const stats::GaussianDistribution d1(6.0, 2.0);
  const stats::GaussianDistribution d2(12.0, 4.0);
  const std::vector<RunSpec> runs{
      {"SSGD_ideal", learning::Scheme::kSsgd, nullptr},
      {"AdaSGD_D1", learning::Scheme::kAdaSgd, &d1},
      {"DynSGD_D1", learning::Scheme::kDynSgd, &d1},
      {"AdaSGD_D2", learning::Scheme::kAdaSgd, &d2},
      {"DynSGD_D2", learning::Scheme::kDynSgd, &d2},
      {"FedAvg_D2", learning::Scheme::kFedAvg, &d2},
  };

  const std::size_t steps = bench::scaled(1600);
  const std::size_t eval_every = std::max<std::size_t>(steps / 8, 1);
  std::map<std::string, core::ControlledRunResult> results;
  for (const RunSpec& run : runs) {
    core::ControlledRunConfig cfg;
    cfg.aggregator.scheme = run.scheme;
    cfg.aggregator.s_percent = 99.7;
    cfg.staleness = run.staleness;
    cfg.learning_rate = 0.08f;
    cfg.steps = steps;
    cfg.mini_batch = 32;
    cfg.eval_every = eval_every;
    cfg.seed = 7;
    auto model = nn::zoo::small_cnn(1, data_cfg.height, data_cfg.width,
                                    data_cfg.n_classes);
    model->init(9);
    results.emplace(run.label, core::run_controlled(*model, split.train, users,
                                                    split.test, cfg));
  }

  bench::header("Figure 8: accuracy vs step (non-IID MNIST-like)");
  std::vector<std::string> head{"step"};
  for (const RunSpec& run : runs) head.push_back(run.label);
  bench::row(head);
  const auto& reference = results.at(runs[0].label).curve;
  for (std::size_t p = 0; p < reference.size(); ++p) {
    std::vector<std::string> cells{std::to_string(reference[p].request)};
    for (const RunSpec& run : runs) {
      cells.push_back(bench::fmt(results.at(run.label).curve[p].accuracy, 3));
    }
    bench::row(cells);
  }

  // Convergence-speed comparison: requests to reach the target accuracy.
  const auto steps_to = [&](const std::string& label, double target) {
    for (const auto& point : results.at(label).curve) {
      if (point.accuracy >= target) return static_cast<double>(point.request);
    }
    return -1.0;
  };
  const double target = 0.55 * results.at("SSGD_ideal").final_accuracy;
  bench::header("paper-shape check");
  std::cout << "target accuracy " << bench::fmt(target, 3)
            << " reached at request:\n";
  for (const RunSpec& run : runs) {
    std::cout << "  " << run.label << ": " << steps_to(run.label, target)
              << "\n";
  }
  const double ada1 = steps_to("AdaSGD_D1", target);
  const double dyn1 = steps_to("DynSGD_D1", target);
  const double ada2 = steps_to("AdaSGD_D2", target);
  const double dyn2 = steps_to("DynSGD_D2", target);
  if (ada1 > 0 && dyn1 > 0) {
    std::cout << "D1 speedup AdaSGD vs DynSGD: "
              << bench::fmt((dyn1 - ada1) / dyn1 * 100.0, 1)
              << "% (paper: 14.4%)\n";
  }
  if (ada2 > 0 && dyn2 > 0) {
    std::cout << "D2 speedup AdaSGD vs DynSGD: "
              << bench::fmt((dyn2 - ada2) / dyn2 * 100.0, 1)
              << "% (paper: 18.4%)\n";
  }
  std::cout << "FedAvg final accuracy: "
            << bench::fmt(results.at("FedAvg_D2").final_accuracy, 3)
            << " (paper: diverges)\n";
  return 0;
}
