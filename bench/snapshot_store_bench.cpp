// Micro-benchmark for the versioned snapshot store (DESIGN.md §4): the
// seed's copy-per-request assignment path vs ModelStore's shared immutable
// snapshot handles, on a >= 100k-parameter model.
//
// The copy path re-materializes the full flat parameter vector for every
// request, which is what `FleetServer::handle_request` did before the
// store existed. The snapshot path materializes once per model *version*
// and hands every request at that version the same refcounted buffer.
// Emits BENCH_snapshot.json via bench::JsonReport.
#include <chrono>
#include <iostream>
#include <numeric>

#include "bench_util.hpp"
#include "fleet/core/model_store.hpp"
#include "fleet/nn/zoo.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ns_per_request(Clock::time_point start, Clock::time_point stop,
                      std::size_t requests) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start);
  return static_cast<double>(ns.count()) / static_cast<double>(requests);
}

/// Touch one element per page so neither path can skip faulting the buffer.
float touch(std::span<const float> params) {
  float sink = 0.0f;
  for (std::size_t i = 0; i < params.size(); i += 1024) sink += params[i];
  return sink;
}

}  // namespace

int main() {
  using namespace fleet;

  // 100*1000 + 1000 + 1000*10 + 10 = 111,010 parameters.
  auto model = nn::zoo::mlp(100, 1000, 10);
  model->init(1);
  const std::size_t param_count = model->parameter_count();

  const std::size_t requests = bench::scaled(20000, 2000);
  const std::size_t requests_per_update = 32;  // fleet requests per version

  bench::header("Snapshot store vs copy-per-request (" +
                std::to_string(param_count) + " parameters, " +
                std::to_string(requests) + " requests)");

  float sink = 0.0f;

  // --- Seed path: a full parameter-vector copy on every request. ---
  const auto copy_start = Clock::now();
  for (std::size_t r = 0; r < requests; ++r) {
    const std::vector<float> assignment = model->parameters();
    sink += touch(assignment);
  }
  const auto copy_stop = Clock::now();
  const double copy_ns = ns_per_request(copy_start, copy_stop, requests);

  // --- Snapshot path: one publish per version, shared handles after. ---
  core::ModelStore store(64);
  std::size_t version = 0;
  const auto snap_start = Clock::now();
  for (std::size_t r = 0; r < requests; ++r) {
    if (r % requests_per_update == 0) {
      // A model update advanced the clock; materialize the new version once.
      ++version;
      const auto view = model->parameters_view();
      store.publish(version, core::ModelStore::Buffer(view.begin(),
                                                      view.end()));
    }
    const core::ModelStore::Snapshot assignment = store.at(version);
    sink += touch(*assignment);
  }
  const auto snap_stop = Clock::now();
  const double snap_ns = ns_per_request(snap_start, snap_stop, requests);

  const double speedup = copy_ns / snap_ns;
  bench::row({"copy path", bench::fmt(copy_ns / 1000.0, 2) + " us/request"});
  bench::row({"snapshot store",
              bench::fmt(snap_ns / 1000.0, 2) + " us/request"});
  bench::row({"speedup", bench::fmt(speedup, 2) + "x"});
  bench::row({"snapshot publishes",
              std::to_string(store.publishes()) + " (vs " +
                  std::to_string(requests) + " copies on the seed path)"});

  bench::JsonReport report("snapshot_store");
  report.metric("parameter_count", param_count);
  report.metric("requests", requests);
  report.metric("requests_per_update", requests_per_update);
  report.metric("copy_ns_per_request", copy_ns);
  report.metric("snapshot_ns_per_request", snap_ns);
  report.metric("speedup", speedup);
  report.metric("snapshot_publishes", store.publishes());
  report.write("BENCH_snapshot.json");
  std::cout << "\nwrote BENCH_snapshot.json\n";

  // Keep the optimizer honest; the value itself is meaningless.
  if (sink == 12345.678f) std::cerr << "";
  return 0;
}
