// Ablation: the aggregation parameter K (§2.3 — "each update takes place
// after AdaSGD receives K gradients"). Larger K averages more gradients
// per model update: fewer, smoother updates per gradient budget, and less
// staleness per update clock.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/core/online_trainer.hpp"
#include "fleet/nn/zoo.hpp"

using namespace fleet;

int main() {
  data::SyntheticImageConfig data_cfg = data::SyntheticImageConfig::mnist_like();
  data_cfg.noise_stddev = 0.25f;
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng rng(2);
  const auto users =
      data::partition_noniid_shards(split.train.labels(), 100, 2, rng);
  const stats::GaussianDistribution d1(6.0, 2.0);

  const std::size_t gradients = bench::scaled(1600);
  bench::header(
      "Ablation: aggregation parameter K (AdaSGD, D1, same gradient budget)");
  bench::row({"K", "model_updates", "final_accuracy"});
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    core::ControlledRunConfig cfg;
    cfg.aggregator.scheme = learning::Scheme::kAdaSgd;
    cfg.aggregator.aggregation_k = k;
    cfg.staleness = &d1;
    cfg.learning_rate = 0.10f;
    cfg.steps = gradients;
    cfg.mini_batch = 32;
    cfg.eval_every = gradients;
    cfg.seed = 7;
    auto model = nn::zoo::small_cnn(1, 14, 14, 10);
    model->init(9);
    const auto result =
        core::run_controlled(*model, split.train, users, split.test, cfg);
    bench::row({std::to_string(k),
                std::to_string(result.curve.back().step),
                bench::fmt(result.final_accuracy, 3)});
  }
  std::cout << "\nK=1 maximizes update frequency (the paper's default for "
               "online learning);\nlarge K trades freshness for smoothness "
               "— with a fixed gradient budget the\nupdate count drops "
               "1/K and convergence slows.\n";
  return 0;
}
