// Figure 7: the staleness distribution induced by tweet timestamps under
// an exponential round-trip latency model (min 7.1 s, mean 8.45 s, §3.1).
// The paper's corpus is ~2.6M tweets over 13 days (~2.3 tweets/s on
// average) with peak times reaching hundreds of tweets per second; each
// tweet triggers one asynchronous model update, and the staleness of an
// update is the number of updates applied while it was in flight. The body
// is approximately Gaussian; the bursts produce a long tail.
//
// Only timestamps matter here, so they are generated directly as a
// non-homogeneous Poisson process (diurnal modulation + short bursts)
// rather than through the full TweetStream generator.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "fleet/net/network_model.hpp"
#include "fleet/stats/histogram.hpp"
#include "fleet/stats/rng.hpp"

using namespace fleet;

namespace {

std::vector<double> generate_timestamps(double days, double base_per_s,
                                        stats::Rng& rng) {
  const double duration = days * 24.0 * 3600.0;
  // Burst schedule: a few short high-rate windows per day (peak times).
  struct Burst {
    double start, len, rate;
  };
  std::vector<Burst> bursts;
  for (double t = 0.0; t < duration; t += 24.0 * 3600.0) {
    const int n_bursts = 2 + static_cast<int>(rng.uniform_int(0, 2));
    for (int b = 0; b < n_bursts; ++b) {
      Burst burst;
      burst.start = t + rng.uniform(8.0, 23.0) * 3600.0;
      burst.len = rng.uniform(30.0, 120.0);
      burst.rate = rng.uniform(20.0, 40.0);  // tweets/s inside the burst
      bursts.push_back(burst);
    }
  }
  const auto rate_at = [&](double t) {
    const double hour = std::fmod(t / 3600.0, 24.0);
    double rate =
        base_per_s * (0.55 + 0.45 * std::sin((hour - 6.0) / 24.0 * 2 * M_PI));
    for (const Burst& b : bursts) {
      if (t >= b.start && t < b.start + b.len) rate += b.rate;
    }
    return std::max(rate, 0.01);
  };
  // Thinning with a global max rate.
  const double max_rate = base_per_s + 45.0;
  std::vector<double> ts;
  double t = 0.0;
  while (t < duration) {
    t += rng.exponential(1.0 / max_rate);
    if (t >= duration) break;
    if (rng.uniform() < rate_at(t) / max_rate) ts.push_back(t);
  }
  return ts;
}

}  // namespace

int main() {
  stats::Rng rng(5);
  const double days = std::max(2.0, 13.0 * bench::scale());
  const auto timestamps = generate_timestamps(days, 3.3, rng);
  std::cout << "generated " << timestamps.size() << " tweet timestamps over "
            << days << " days (paper: ~2.6M over 13 days)\n";

  const net::RoundTripModel round_trip = net::RoundTripModel::paper_default();
  std::vector<std::pair<double, double>> events;  // (arrival, dispatch)
  events.reserve(timestamps.size());
  for (double t : timestamps) {
    events.emplace_back(t + round_trip.sample_s(rng), t);
  }
  std::sort(events.begin(), events.end());
  std::vector<double> arrivals;
  arrivals.reserve(events.size());
  for (const auto& [arrival, dispatch] : events) arrivals.push_back(arrival);

  // Staleness = model updates applied between dispatch and arrival.
  std::vector<double> staleness_values;
  staleness_values.reserve(events.size());
  for (const auto& [arrival, dispatch] : events) {
    const auto lo =
        std::lower_bound(arrivals.begin(), arrivals.end(), dispatch);
    const auto hi = std::lower_bound(arrivals.begin(), arrivals.end(), arrival);
    staleness_values.push_back(static_cast<double>(hi - lo));
  }

  stats::Histogram body(0.0, 65.0, 26);
  stats::Histogram tail(65.0, 325.0, 26);
  std::size_t in_tail = 0;
  double max_tau = 0.0, sum = 0.0;
  for (double tau : staleness_values) {
    body.add(tau);
    tail.add(tau);
    if (tau > 65.0) ++in_tail;
    max_tau = std::max(max_tau, tau);
    sum += tau;
  }

  bench::header("Figure 7(a): staleness distribution, body (tau < 65)");
  bench::row({"tau_bin_center", "probability"});
  std::cout << body.to_rows();

  bench::header("Figure 7(b): long tail (65 <= tau < 325), log-scale in paper");
  bench::row({"tau_bin_center", "probability"});
  std::cout << tail.to_rows();

  bench::header("summary");
  std::cout << "samples=" << staleness_values.size() << " mean tau = "
            << bench::fmt(sum / static_cast<double>(staleness_values.size()), 1)
            << " max tau = " << max_tau << " tail fraction (tau>65) = "
            << bench::fmt(static_cast<double>(in_tail) /
                              static_cast<double>(staleness_values.size()),
                          5)
            << "\nShape check: Gaussian-like body plus a long tail driven "
               "by peak-time bursts.\n";
  return 0;
}
