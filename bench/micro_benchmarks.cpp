// google-benchmark microbenchmarks for FLeet's hot paths: gradient
// computation (the workload I-Prof sizes), aggregation weighting, the
// profiler prediction path, the similarity computation, and the dispatched
// arithmetic kernels (per available backend).
#include <benchmark/benchmark.h>

#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/learning/aggregator.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/privacy/gaussian_mechanism.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"
#include "fleet/stats/rng.hpp"
#include "fleet/tensor/kernels/kernels.hpp"

namespace {

using namespace fleet;

std::vector<float> kernel_bench_data(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.gaussian(0.0, 1.0));
  return v;
}

/// range(0) selects the backend (0 = whatever active() dispatched to,
/// 1 = portable reference) so one run shows the SIMD-vs-scalar gap;
/// range(1) is the span length.
const tensor::kernels::KernelTable& kernel_for(std::int64_t which) {
  return which == 1
             ? tensor::kernels::table(tensor::kernels::Backend::kPortable)
             : tensor::kernels::active();
}

void BM_KernelAxpy(benchmark::State& state) {
  const auto& kern = kernel_for(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const std::vector<float> x = kernel_bench_data(n, 1);
  std::vector<float> y = kernel_bench_data(n, 2);
  for (auto _ : state) {
    kern.axpy(0.5f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 12);
  state.SetLabel(kern.name);
}
BENCHMARK(BM_KernelAxpy)
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Args({0, 262144})
    ->Args({1, 262144});

void BM_KernelMatmul(benchmark::State& state) {
  const auto& kern = kernel_for(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const std::vector<float> a = kernel_bench_data(d * d, 3);
  const std::vector<float> b = kernel_bench_data(d * d, 4);
  std::vector<float> c(d * d, 0.0f);
  for (auto _ : state) {
    kern.matmul(a.data(), b.data(), c.data(), d, d, d);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * d * d * d));
  state.SetLabel(kern.name);
}
BENCHMARK(BM_KernelMatmul)->Args({0, 128})->Args({1, 128});

void BM_GradientMnistCnn(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  auto model = nn::zoo::mnist_cnn();
  model->init(1);
  data::SyntheticImageConfig cfg;
  cfg.height = 28;
  cfg.width = 28;
  cfg.n_train = 256;
  cfg.n_test = 1;
  const auto split = data::generate_synthetic_images(cfg);
  stats::Rng rng(2);
  const nn::Batch batch = split.train.sample_batch(batch_size, rng);
  std::vector<float> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->gradient(batch, grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_GradientMnistCnn)->Arg(1)->Arg(8)->Arg(32);

void BM_GradientSmallCnn(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  auto model = nn::zoo::small_cnn(1, 14, 14, 10);
  model->init(1);
  data::SyntheticImageConfig cfg = data::SyntheticImageConfig::mnist_like();
  cfg.n_train = 512;
  cfg.n_test = 1;
  const auto split = data::generate_synthetic_images(cfg);
  stats::Rng rng(2);
  const nn::Batch batch = split.train.sample_batch(batch_size, rng);
  std::vector<float> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->gradient(batch, grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_GradientSmallCnn)->Arg(32)->Arg(128);

void BM_AggregatorSubmit(benchmark::State& state) {
  learning::AsyncAggregator::Config cfg;
  cfg.scheme = learning::Scheme::kAdaSgd;
  learning::AsyncAggregator agg(12000, 10, cfg);
  const std::vector<float> gradient(12000, 0.01f);
  learning::WorkerUpdate update;
  update.gradient = gradient;
  update.staleness = 6.0;
  update.label_dist = stats::LabelDistribution(10);
  update.label_dist.add(3, 100);
  update.mini_batch = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.submit(update));
  }
}
BENCHMARK(BM_AggregatorSubmit);

void BM_IProfPredict(benchmark::State& state) {
  profiler::IProf iprof{profiler::IProf::Config{}};
  iprof.pretrain(profiler::collect_profile_dataset(device::training_fleet(),
                                                   profiler::Slo{}, 5));
  device::DeviceSim device(device::spec("Galaxy S7"), 1);
  const auto features = device.features();
  for (auto _ : state) {
    benchmark::DoNotOptimize(iprof.predict_batch(features, "Galaxy S7"));
  }
}
BENCHMARK(BM_IProfPredict);

void BM_PrivatizeGradient(benchmark::State& state) {
  privacy::DpConfig cfg;
  cfg.clip_norm = 1.0;
  cfg.noise_multiplier = 1.0;
  stats::Rng rng(1);
  std::vector<float> gradient(static_cast<std::size_t>(state.range(0)), 0.01f);
  for (auto _ : state) {
    privacy::privatize_gradient(gradient, cfg, 100, rng);
    benchmark::DoNotOptimize(gradient.data());
  }
}
BENCHMARK(BM_PrivatizeGradient)->Arg(12000)->Arg(120000);

void BM_DeviceTask(benchmark::State& state) {
  device::DeviceSim device(device::spec("Galaxy S7"), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.run_task(1000, {4, 0}));
    device.idle(60.0);
  }
}
BENCHMARK(BM_DeviceTask);

}  // namespace
