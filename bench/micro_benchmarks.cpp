// google-benchmark microbenchmarks for FLeet's hot paths: gradient
// computation (the workload I-Prof sizes), aggregation weighting, the
// profiler prediction path and the similarity computation.
#include <benchmark/benchmark.h>

#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/learning/aggregator.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/privacy/gaussian_mechanism.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"

namespace {

using namespace fleet;

void BM_GradientMnistCnn(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  auto model = nn::zoo::mnist_cnn();
  model->init(1);
  data::SyntheticImageConfig cfg;
  cfg.height = 28;
  cfg.width = 28;
  cfg.n_train = 256;
  cfg.n_test = 1;
  const auto split = data::generate_synthetic_images(cfg);
  stats::Rng rng(2);
  const nn::Batch batch = split.train.sample_batch(batch_size, rng);
  std::vector<float> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->gradient(batch, grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_GradientMnistCnn)->Arg(1)->Arg(8)->Arg(32);

void BM_GradientSmallCnn(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  auto model = nn::zoo::small_cnn(1, 14, 14, 10);
  model->init(1);
  data::SyntheticImageConfig cfg = data::SyntheticImageConfig::mnist_like();
  cfg.n_train = 512;
  cfg.n_test = 1;
  const auto split = data::generate_synthetic_images(cfg);
  stats::Rng rng(2);
  const nn::Batch batch = split.train.sample_batch(batch_size, rng);
  std::vector<float> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->gradient(batch, grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_GradientSmallCnn)->Arg(32)->Arg(128);

void BM_AggregatorSubmit(benchmark::State& state) {
  learning::AsyncAggregator::Config cfg;
  cfg.scheme = learning::Scheme::kAdaSgd;
  learning::AsyncAggregator agg(12000, 10, cfg);
  const std::vector<float> gradient(12000, 0.01f);
  learning::WorkerUpdate update;
  update.gradient = gradient;
  update.staleness = 6.0;
  update.label_dist = stats::LabelDistribution(10);
  update.label_dist.add(3, 100);
  update.mini_batch = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.submit(update));
  }
}
BENCHMARK(BM_AggregatorSubmit);

void BM_IProfPredict(benchmark::State& state) {
  profiler::IProf iprof{profiler::IProf::Config{}};
  iprof.pretrain(profiler::collect_profile_dataset(device::training_fleet(),
                                                   profiler::Slo{}, 5));
  device::DeviceSim device(device::spec("Galaxy S7"), 1);
  const auto features = device.features();
  for (auto _ : state) {
    benchmark::DoNotOptimize(iprof.predict_batch(features, "Galaxy S7"));
  }
}
BENCHMARK(BM_IProfPredict);

void BM_PrivatizeGradient(benchmark::State& state) {
  privacy::DpConfig cfg;
  cfg.clip_norm = 1.0;
  cfg.noise_multiplier = 1.0;
  stats::Rng rng(1);
  std::vector<float> gradient(static_cast<std::size_t>(state.range(0)), 0.01f);
  for (auto _ : state) {
    privacy::privatize_gradient(gradient, cfg, 100, rng);
    benchmark::DoNotOptimize(gradient.data());
  }
}
BENCHMARK(BM_PrivatizeGradient)->Arg(12000)->Arg(120000);

void BM_DeviceTask(benchmark::State& state) {
  device::DeviceSim device(device::spec("Galaxy S7"), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.run_task(1000, {4, 0}));
    device.idle(60.0);
  }
}
BENCHMARK(BM_DeviceTask);

}  // namespace
