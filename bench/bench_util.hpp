#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fleet::bench {

/// Scale factor for experiment sizes, read from FLEET_BENCH_SCALE
/// (default 1.0). 0.2 makes every bench a smoke run; 2-4 tightens curves
/// toward the paper's full step counts.
double scale();

/// steps * scale(), at least `floor_value`.
std::size_t scaled(std::size_t steps, std::size_t floor_value = 50);

/// Print an underlined section header.
void header(const std::string& title);

/// Print one row of space-separated columns.
void row(const std::vector<std::string>& cells);

std::string fmt(double value, int precision = 4);

}  // namespace fleet::bench
