#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace fleet::bench {

/// Scale factor for experiment sizes, read from FLEET_BENCH_SCALE
/// (default 1.0). 0.2 makes every bench a smoke run; 2-4 tightens curves
/// toward the paper's full step counts.
double scale();

/// steps * scale(), at least `floor_value`.
std::size_t scaled(std::size_t steps, std::size_t floor_value = 50);

/// Print an underlined section header.
void header(const std::string& title);

/// Print one row of space-separated columns.
void row(const std::vector<std::string>& cells);

std::string fmt(double value, int precision = 4);

/// Machine-readable benchmark output: accumulates metrics and writes one
/// flat JSON object, e.g.
///
///   {"bench": "snapshot_store", "scale": 1.0,
///    "metrics": {"copy_ns_per_request": 81234.5, ...}}
///
/// Benches write these as BENCH_<name>.json next to where they run so the
/// perf trajectory can be tracked across PRs without parsing stdout tables.
class JsonReport {
 public:
  explicit JsonReport(std::string name);

  void metric(const std::string& key, double value);
  void metric(const std::string& key, std::size_t value);
  void metric(const std::string& key, const std::string& value);

  /// Serialize the report (stable key order = insertion order).
  std::string to_json() const;

  /// Write to `path`; throws std::runtime_error when the file can't be
  /// opened.
  void write(const std::string& path) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> metrics_;  // key -> literal
};

}  // namespace fleet::bench
