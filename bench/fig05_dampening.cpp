// Figure 5: gradient scaling schemes. Prints Lambda(tau) for AdaSGD's
// exponential dampening, DynSGD's inverse dampening and FedAvg (constant),
// with tau_thres = 24, plus the similarity-boosted straggler at tau = 48
// that the figure annotates.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/learning/dampening.hpp"
#include "fleet/learning/similarity.hpp"

using namespace fleet;

int main() {
  const double tau_thres = 24.0;
  learning::ExponentialDampening ada(tau_thres);
  learning::InverseDampening dyn;
  learning::NoDampening fed;

  bench::header("Figure 5: gradient scaling factor vs staleness (tau_thres=24)");
  bench::row({"tau", "AdaSGD", "DynSGD", "FedAvg"});
  for (double tau = 0.0; tau <= 48.0; tau += 3.0) {
    bench::row({bench::fmt(tau, 0), bench::fmt(ada.factor(tau), 5),
                bench::fmt(dyn.factor(tau), 5), bench::fmt(fed.factor(tau), 5)});
  }

  bench::header("anchor points");
  std::cout << "tau_thres/2 = " << tau_thres / 2.0
            << ": AdaSGD = " << bench::fmt(ada.factor(tau_thres / 2.0), 5)
            << ", DynSGD = " << bench::fmt(dyn.factor(tau_thres / 2.0), 5)
            << "  (curves intersect by construction)\n";
  std::cout << "beta = " << bench::fmt(ada.beta(), 5) << "\n";

  // The boosted straggler: staleness 48, but computed on a label that the
  // global distribution has never seen -> sim = 0 -> weight boosted to 1.
  learning::SimilarityTracker tracker(4);
  stats::LabelDistribution seen(4);
  seen.add(0, 50);
  seen.add(1, 50);
  tracker.record_used(seen);
  stats::LabelDistribution novel(4);
  novel.add(3, 10);
  const double sim = tracker.similarity(novel);
  const double lambda = ada.factor(48.0);
  double boosted = sim <= 1e-12 ? 1.0 : std::min(1.0, lambda / sim);
  // Straggler boosts are capped at the tau_thres/2 anchor (see
  // learning::AsyncAggregator): novel data makes a straggler count like a
  // median-staleness gradient, not like a fresh one.
  boosted = std::min(boosted, ada.factor(tau_thres / 2.0));
  bench::header("similarity-boosted straggler (tau=48)");
  std::cout << "Lambda(48) = " << bench::fmt(lambda, 6) << ", sim = "
            << bench::fmt(sim, 3) << " -> weight = " << bench::fmt(boosted, 3)
            << " (boosted from ~1e-5 to the tau_thres/2 anchor, the point "
               "Fig 5 annotates)\n";
  return 0;
}
