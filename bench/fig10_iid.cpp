// Figure 10: staleness awareness with IID data — E-MNIST-like (62 classes)
// and CIFAR-100-like, staleness D2 = N(12,4). The Fig 8 ordering must
// hold: SSGD > AdaSGD > DynSGD >> FedAvg.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "fleet/core/online_trainer.hpp"
#include "fleet/nn/zoo.hpp"

using namespace fleet;

namespace {

void run_dataset(const std::string& title,
                 const data::SyntheticImageConfig& data_cfg, float lr,
                 std::size_t steps) {
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng rng(2);
  const auto users = data::partition_iid(split.train.size(), 100, rng);
  const stats::GaussianDistribution d2(12.0, 4.0);

  std::map<std::string, core::ControlledRunResult> results;
  const std::vector<std::pair<std::string, learning::Scheme>> runs{
      {"SSGD_ideal", learning::Scheme::kSsgd},
      {"AdaSGD", learning::Scheme::kAdaSgd},
      {"DynSGD", learning::Scheme::kDynSgd},
      {"FedAvg", learning::Scheme::kFedAvg}};
  for (const auto& [label, scheme] : runs) {
    core::ControlledRunConfig cfg;
    cfg.aggregator.scheme = scheme;
    cfg.staleness = scheme == learning::Scheme::kSsgd ? nullptr : &d2;
    cfg.learning_rate = lr;
    cfg.steps = steps;
    cfg.mini_batch = 24;
    cfg.eval_every = std::max<std::size_t>(steps / 8, 1);
    cfg.seed = 3;
    auto model = nn::zoo::small_cnn(data_cfg.channels, data_cfg.height,
                                    data_cfg.width, data_cfg.n_classes);
    model->init(5);
    results.emplace(label, core::run_controlled(*model, split.train, users,
                                                split.test, cfg));
  }

  fleet::bench::header(title);
  fleet::bench::row({"step", "SSGD_ideal", "AdaSGD", "DynSGD", "FedAvg"});
  const auto& reference = results.at("SSGD_ideal").curve;
  for (std::size_t p = 0; p < reference.size(); ++p) {
    fleet::bench::row(
        {std::to_string(reference[p].request),
         fleet::bench::fmt(results.at("SSGD_ideal").curve[p].accuracy, 3),
         fleet::bench::fmt(results.at("AdaSGD").curve[p].accuracy, 3),
         fleet::bench::fmt(results.at("DynSGD").curve[p].accuracy, 3),
         fleet::bench::fmt(results.at("FedAvg").curve[p].accuracy, 3)});
  }
  std::cout << "final: SSGD=" << results.at("SSGD_ideal").final_accuracy
            << " AdaSGD=" << results.at("AdaSGD").final_accuracy
            << " DynSGD=" << results.at("DynSGD").final_accuracy
            << " FedAvg=" << results.at("FedAvg").final_accuracy << "\n";
}

}  // namespace

int main() {
  std::cout << "Figure 10: staleness awareness with IID data, D2=N(12,4)\n";
  data::SyntheticImageConfig emnist = data::SyntheticImageConfig::emnist_like();
  emnist.n_train = 6200;
  emnist.n_test = 1240;
  run_dataset("Figure 10(a): E-MNIST-like (62 classes, IID)", emnist, 0.35f,
              fleet::bench::scaled(2500));

  data::SyntheticImageConfig cifar =
      data::SyntheticImageConfig::cifar100_like();
  cifar.n_train = 6000;
  cifar.n_test = 1200;
  run_dataset("Figure 10(b): CIFAR-100-like (100 classes, IID)", cifar, 0.10f,
              fleet::bench::scaled(2500));
  std::cout << "\nShape check: AdaSGD > DynSGD, FedAvg flat/diverging, on "
               "both datasets.\n";
  return 0;
}
