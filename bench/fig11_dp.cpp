// Figure 11: staleness awareness with differential privacy. MNIST-like IID
// data, staleness D2 = N(12,4); gradients are clipped and perturbed as in
// DP-SGD. epsilon is measured with the moments accountant at
// delta = 1/N^2. Smaller epsilon (more noise) slows both schemes; AdaSGD
// keeps its advantage over DynSGD at every privacy level.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "fleet/core/online_trainer.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/privacy/rdp_accountant.hpp"

using namespace fleet;

int main() {
  data::SyntheticImageConfig data_cfg = data::SyntheticImageConfig::mnist_like();
  data_cfg.noise_stddev = 0.25f;
  // Larger corpus => smaller sampling ratio q, as in the paper
  // (q = 100/60000 there; 32/12000 here).
  data_cfg.n_train = 12000;
  data_cfg.n_test = 1500;
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng rng(2);
  const auto users = data::partition_iid(split.train.size(), 100, rng);
  const stats::GaussianDistribution d2(12.0, 4.0);

  const std::size_t steps = bench::scaled(1600);
  const std::size_t mini_batch = 32;
  const double q = static_cast<double>(mini_batch) /
                   static_cast<double>(split.train.size());
  const double delta = 1.0 / (static_cast<double>(split.train.size()) *
                              static_cast<double>(split.train.size()));

  // Noise levels: none, then sigmas chosen by the accountant to hit the
  // paper's privacy budgets eps = 13.66 and eps = 1.75 at delta = 1/N^2.
  std::vector<double> sigmas{0.0};
  std::vector<std::string> labels{"no_DP"};
  for (double target_eps : {13.66, 1.75}) {
    const double sigma =
        privacy::noise_for_epsilon(q, steps, delta, target_eps);
    sigmas.push_back(sigma);
    labels.push_back("eps=" + bench::fmt(target_eps, 2));
    std::cout << "accountant: eps=" << target_eps << " -> sigma="
              << bench::fmt(sigma, 3) << "\n";
  }

  std::map<std::string, core::ControlledRunResult> results;
  std::vector<std::string> columns;
  for (const auto& [name, scheme] :
       std::vector<std::pair<std::string, learning::Scheme>>{
           {"AdaSGD", learning::Scheme::kAdaSgd},
           {"DynSGD", learning::Scheme::kDynSgd}}) {
    for (std::size_t s = 0; s < sigmas.size(); ++s) {
      core::ControlledRunConfig cfg;
      cfg.aggregator.scheme = scheme;
      cfg.staleness = &d2;
      cfg.learning_rate = 0.10f;
      cfg.steps = steps;
      cfg.mini_batch = mini_batch;
      cfg.eval_every = std::max<std::size_t>(steps / 8, 1);
      cfg.seed = 3;
      if (sigmas[s] > 0.0) {
        cfg.dp.clip_norm = 2.0;
        cfg.dp.noise_multiplier = sigmas[s];
      }
      auto model = nn::zoo::small_cnn(1, data_cfg.height, data_cfg.width,
                                      data_cfg.n_classes);
      model->init(5);
      const std::string column = name + "_" + labels[s];
      columns.push_back(column);
      results.emplace(column, core::run_controlled(*model, split.train, users,
                                                   split.test, cfg));
    }
  }

  bench::header("Figure 11: accuracy vs step under differential privacy");
  std::cout << "q=" << bench::fmt(q, 5) << " delta=" << delta
            << " clip C=2.0; sigma in {1.0, 3.0}\n";
  std::vector<std::string> head{"step"};
  for (const auto& c : columns) head.push_back(c);
  bench::row(head);
  const auto& reference = results.at(columns[0]).curve;
  for (std::size_t p = 0; p < reference.size(); ++p) {
    std::vector<std::string> cells{std::to_string(reference[p].request)};
    for (const auto& c : columns) {
      cells.push_back(bench::fmt(results.at(c).curve[p].accuracy, 3));
    }
    bench::row(cells);
  }

  bench::header("paper-shape check");
  for (std::size_t s = 0; s < sigmas.size(); ++s) {
    const double ada = results.at(columns[s]).final_accuracy;
    const double dyn = results.at(columns[3 + s]).final_accuracy;
    std::cout << labels[s] << ": AdaSGD " << bench::fmt(ada, 3) << " vs DynSGD "
              << bench::fmt(dyn, 3)
              << (ada >= dyn ? "  (AdaSGD ahead)" : "  (!)") << "\n";
  }
  std::cout << "Smaller epsilon (more noise) slows convergence for both.\n";
  return 0;
}
