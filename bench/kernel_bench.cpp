// Per-kernel throughput of the runtime-dispatched arithmetic backends
// (src/fleet/tensor/kernels/, DESIGN.md §10), measured per *available*
// backend on this machine: the portable scalar reference (compiled with
// auto-vectorization disabled — the honest baseline) against whichever
// SIMD table the CPU supports.
//
//  - axpy / scale at an L1-resident and an L2-resident span size, in GB/s
//    (axpy is THE fold primitive: AsyncAggregator submit/fold_into, the
//    ShardedAggregator span folds and every model's apply_gradient run on
//    it, so its ratio is the headline number for the aggregation runtime).
//  - The three GEMM shapes (matmul, matmul_at_b, matmul_a_bt) at a square
//    blocked size, in GFLOP/s — the Dense/Conv2d/Rnn forward+backward hot
//    loops.
//
// Emits BENCH_kernels.json: hardware_concurrency, the backend the startup
// selection chose (and why), per-backend per-kernel throughput, and
// simd_vs_portable_* ratios when a SIMD backend exists. SIMD speedup is
// core-count independent (one thread, wider lanes), so the ratios are
// meaningful even on a 1-core CI runner.
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "fleet/stats/rng.hpp"
#include "fleet/tensor/kernels/kernels.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace kernels = fleet::tensor::kernels;

constexpr std::size_t kL1Elems = 4096;     // 2 x 16 KiB spans: L1-resident
constexpr std::size_t kL2Elems = 262144;   // 2 x 1 MiB spans: L2/L3
constexpr std::size_t kGemmDim = 128;      // m = k = n, ~4.2 MFLOP per call

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  fleet::stats::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.gaussian(0.0, 1.0));
  return v;
}

/// Best-of-3 trials of `reps` calls; returns mean ns per call of the best
/// trial (best-of filters scheduler noise on a shared runner).
template <typename F>
double best_ns_per_call(F&& fn, std::size_t reps) {
  double best = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) fn();
    const auto stop = Clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(reps);
    if (ns < best) best = ns;
  }
  return best;
}

struct BackendNumbers {
  double axpy_l1_gbps = 0.0;
  double axpy_l2_gbps = 0.0;
  double scale_l1_gbps = 0.0;
  double matmul_gflops = 0.0;
  double matmul_at_b_gflops = 0.0;
  double matmul_a_bt_gflops = 0.0;
};

BackendNumbers measure(const kernels::KernelTable& t) {
  BackendNumbers out;
  const std::size_t reps_l1 = fleet::bench::scaled(8000, 500);
  const std::size_t reps_l2 = fleet::bench::scaled(200, 20);
  const std::size_t reps_gemm = fleet::bench::scaled(120, 10);

  {
    const std::vector<float> x = random_floats(kL1Elems, 1);
    std::vector<float> y = random_floats(kL1Elems, 2);
    const double ns = best_ns_per_call(
        [&] { t.axpy(0.5f, x.data(), y.data(), kL1Elems); }, reps_l1);
    // axpy traffic: read x, read y, write y.
    out.axpy_l1_gbps = static_cast<double>(kL1Elems) * 12.0 / ns;
  }
  {
    const std::vector<float> x = random_floats(kL2Elems, 3);
    std::vector<float> y = random_floats(kL2Elems, 4);
    const double ns = best_ns_per_call(
        [&] { t.axpy(0.5f, x.data(), y.data(), kL2Elems); }, reps_l2);
    out.axpy_l2_gbps = static_cast<double>(kL2Elems) * 12.0 / ns;
  }
  {
    std::vector<float> x = random_floats(kL1Elems, 5);
    // Alternate alpha and 1/alpha so x neither overflows nor denormalizes.
    bool flip = false;
    const double ns = best_ns_per_call(
        [&] {
          t.scale(x.data(), flip ? 1.25f : 0.8f, kL1Elems);
          flip = !flip;
        },
        reps_l1);
    out.scale_l1_gbps = static_cast<double>(kL1Elems) * 8.0 / ns;
  }

  const std::size_t d = kGemmDim;
  const double gemm_flops = 2.0 * static_cast<double>(d * d * d);
  const std::vector<float> a = random_floats(d * d, 6);
  const std::vector<float> b = random_floats(d * d, 7);
  std::vector<float> c(d * d, 0.0f);
  {
    const double ns = best_ns_per_call(
        [&] { t.matmul(a.data(), b.data(), c.data(), d, d, d); }, reps_gemm);
    out.matmul_gflops = gemm_flops / ns;
  }
  {
    std::fill(c.begin(), c.end(), 0.0f);
    const double ns = best_ns_per_call(
        [&] { t.matmul_at_b(a.data(), b.data(), c.data(), d, d, d); },
        reps_gemm);
    out.matmul_at_b_gflops = gemm_flops / ns;
  }
  {
    std::fill(c.begin(), c.end(), 0.0f);
    const double ns = best_ns_per_call(
        [&] { t.matmul_a_bt(a.data(), b.data(), c.data(), d, d, d); },
        reps_gemm);
    out.matmul_a_bt_gflops = gemm_flops / ns;
  }
  return out;
}

void report_backend(fleet::bench::JsonReport& report, const std::string& key,
                    const BackendNumbers& n) {
  report.metric(key + "_axpy_l1_gbps", n.axpy_l1_gbps);
  report.metric(key + "_axpy_l2_gbps", n.axpy_l2_gbps);
  report.metric(key + "_scale_l1_gbps", n.scale_l1_gbps);
  report.metric(key + "_matmul_gflops", n.matmul_gflops);
  report.metric(key + "_matmul_at_b_gflops", n.matmul_at_b_gflops);
  report.metric(key + "_matmul_a_bt_gflops", n.matmul_a_bt_gflops);
}

}  // namespace

int main() {
  using namespace fleet;

  const unsigned hw = std::thread::hardware_concurrency();
  bench::header("Kernel backend throughput (" + std::to_string(hw) +
                " hardware threads, active backend '" +
                std::string(kernels::name(kernels::active_backend())) +
                "' via " + kernels::selection_source() + ")");

  bench::JsonReport report("kernels");
  report.metric("hardware_concurrency", static_cast<std::size_t>(hw));
  report.metric("active_backend",
                std::string(kernels::name(kernels::active_backend())));
  report.metric("selection_source", kernels::selection_source());
  report.metric("axpy_l1_elems", kL1Elems);
  report.metric("axpy_l2_elems", kL2Elems);
  report.metric("gemm_dim", kGemmDim);

  const BackendNumbers portable =
      measure(kernels::table(kernels::Backend::kPortable));
  bench::row({"portable", "axpy L1 " + bench::fmt(portable.axpy_l1_gbps, 2) +
                              " GB/s, matmul " +
                              bench::fmt(portable.matmul_gflops, 2) +
                              " GFLOP/s"});
  report_backend(report, "portable", portable);

  // Every compiled-and-usable SIMD backend, compared against portable.
  const kernels::Backend simd_candidates[] = {kernels::Backend::kAvx2,
                                              kernels::Backend::kNeon};
  bool have_simd = false;
  for (const kernels::Backend backend : simd_candidates) {
    if (!kernels::available(backend)) continue;
    const std::string key(kernels::name(backend));
    const BackendNumbers n = measure(kernels::table(backend));
    bench::row({key, "axpy L1 " + bench::fmt(n.axpy_l1_gbps, 2) + " GB/s (" +
                         bench::fmt(n.axpy_l1_gbps / portable.axpy_l1_gbps,
                                    2) +
                         "x portable), matmul " +
                         bench::fmt(n.matmul_gflops, 2) + " GFLOP/s (" +
                         bench::fmt(n.matmul_gflops / portable.matmul_gflops,
                                    2) +
                         "x portable)"});
    report_backend(report, key, n);
    if (!have_simd) {
      // The first available candidate is what auto-detection would pick:
      // these are the headline acceptance ratios.
      have_simd = true;
      report.metric("simd_backend", key);
      report.metric("simd_vs_portable_axpy",
                    n.axpy_l1_gbps / portable.axpy_l1_gbps);
      report.metric("simd_vs_portable_matmul",
                    n.matmul_gflops / portable.matmul_gflops);
      report.metric("simd_vs_portable_a_bt",
                    n.matmul_a_bt_gflops / portable.matmul_a_bt_gflops);
    }
  }
  if (!have_simd) {
    bench::row({"(no SIMD backend available on this build/CPU — portable "
                "only)"});
  }

  report.write("BENCH_kernels.json");
  std::cout << "\nwrote BENCH_kernels.json\n";
  return 0;
}
