// Figure 4: computation time and energy consumption vs mini-batch size on
// Galaxy S7, Xperia E3 and Honor 10. The relation is linear with a
// device-specific slope; for hot-running devices (Honor 10, Galaxy S7) the
// slope changes with temperature, visible as hysteresis between the "up"
// sweep and the post-cool-down "down" sweep.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/device/allocation.hpp"
#include "fleet/device/catalog.hpp"

using namespace fleet;

namespace {

struct SweepPoint {
  std::size_t n;
  double time_s;
  double energy_pct;
  double temp_c;
};

std::vector<SweepPoint> sweep(device::DeviceSim& device,
                              const std::vector<std::size_t>& batches) {
  std::vector<SweepPoint> points;
  const auto alloc = device::fleet_allocation(device.spec());
  for (std::size_t n : batches) {
    const device::TaskExecution exec = device.run_task(n, alloc);
    points.push_back({n, exec.time_s, exec.energy_pct,
                      device.temperature_c()});
  }
  return points;
}

}  // namespace

int main() {
  bench::header("Figure 4: per-device linearity of time & energy in n");
  const std::vector<std::string> devices{"Galaxy S7", "Xperia E3", "Honor 10"};

  for (const std::string& name : devices) {
    device::DeviceSim device(device::spec(name), 11);
    // Up sweep: increasing n back-to-back (device heats up)...
    std::vector<std::size_t> up;
    const std::size_t max_n = name == "Xperia E3" ? 800 : 3200;
    for (std::size_t n = max_n / 16; n <= max_n; n += max_n / 16) {
      up.push_back(n);
    }
    const auto up_points = sweep(device, up);
    // ...then cool down and sweep back down.
    device.idle(1800.0);
    std::vector<std::size_t> down(up.rbegin(), up.rend());
    const auto down_points = sweep(device, down);

    bench::header(name);
    bench::row({"phase", "n", "time_s", "energy_pct", "temp_C"});
    for (const auto& p : up_points) {
      bench::row({"up", std::to_string(p.n), bench::fmt(p.time_s, 3),
                  bench::fmt(p.energy_pct, 4), bench::fmt(p.temp_c, 1)});
    }
    for (const auto& p : down_points) {
      bench::row({"down", std::to_string(p.n), bench::fmt(p.time_s, 3),
                  bench::fmt(p.energy_pct, 4), bench::fmt(p.temp_c, 1)});
    }
    // Linearity summary: slope at small n vs large n within the up sweep.
    const auto& first = up_points.front();
    const auto& last = up_points.back();
    std::cout << "slope(up,start)=" << bench::fmt(first.time_s / first.n * 1e3, 4)
              << " ms/sample, slope(up,end)="
              << bench::fmt(last.time_s / last.n * 1e3, 4) << " ms/sample\n";
  }
  std::cout << "\nShape check: Honor 10 < Galaxy S7 << Xperia E3 in slope;"
            << "\nhot devices show a steeper end-of-up-sweep slope (throttling).\n";
  return 0;
}
