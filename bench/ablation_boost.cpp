// Ablation: AdaSGD's two ingredients, separated.
//  (a) similarity boosting on/off under the Fig 9 long-tail setup — boost
//      off must lose the straggler-only class;
//  (b) exponential vs inverse dampening at a pinned tau_thres under D2 —
//      the pure dampening-curve comparison behind Fig 8.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "fleet/core/online_trainer.hpp"
#include "fleet/nn/zoo.hpp"

using namespace fleet;

int main() {
  data::SyntheticImageConfig data_cfg = data::SyntheticImageConfig::mnist_like();
  data_cfg.noise_stddev = 0.25f;
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng rng(2);

  // ---- (a) similarity boost on/off (Fig 9 setup) -------------------------
  std::vector<std::size_t> class0_indices, other_indices;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    (split.train.label(i) == 0 ? class0_indices : other_indices).push_back(i);
  }
  std::vector<int> other_labels;
  for (std::size_t i : other_indices) {
    other_labels.push_back(split.train.label(i));
  }
  auto users = data::partition_noniid_shards(other_labels, 90, 2, rng);
  for (auto& user : users) {
    for (std::size_t& idx : user) idx = other_indices[idx];
  }
  for (std::size_t u = 0; u < 10; ++u) {
    std::vector<std::size_t> local;
    for (std::size_t i = u; i < class0_indices.size(); i += 10) {
      local.push_back(class0_indices[i]);
    }
    users.push_back(std::move(local));
  }

  const stats::GaussianDistribution d1(6.0, 2.0);
  const std::size_t steps = bench::scaled(2400);
  bench::header("Ablation (a): AdaSGD similarity boost, long-tail class 0");
  bench::row({"variant", "class0_accuracy", "overall_accuracy"});
  for (const bool boost : {true, false}) {
    core::ControlledRunConfig cfg;
    cfg.aggregator.scheme = learning::Scheme::kAdaSgd;
    cfg.aggregator.similarity_boost = boost;
    cfg.aggregator.fixed_tau_thres = 12.0;
    cfg.staleness = &d1;
    cfg.longtail_class = 0;
    cfg.longtail_staleness = 48.0;
    cfg.eval_class = 0;
    cfg.learning_rate = 0.04f;
    cfg.steps = steps;
    cfg.mini_batch = 32;
    cfg.eval_every = steps;
    cfg.seed = 7;
    auto model = nn::zoo::small_cnn(1, 14, 14, 10);
    model->init(9);
    const auto result =
        core::run_controlled(*model, split.train, users, split.test, cfg);
    bench::row({boost ? "boost_on" : "boost_off",
                bench::fmt(result.curve.back().class_accuracy, 3),
                bench::fmt(result.final_accuracy, 3)});
  }
  std::cout << "Expectation: boost_off loses class 0 entirely; boost_on "
               "recovers it at tiny overall cost.\n";

  // ---- (b) dampening curve shape at pinned tau_thres ---------------------
  const auto users_plain =
      data::partition_noniid_shards(split.train.labels(), 100, 2, rng);
  const stats::GaussianDistribution d2(12.0, 4.0);
  bench::header("Ablation (b): exponential vs inverse dampening (D2, "
                "tau_thres=24, boost off)");
  bench::row({"dampening", "final_accuracy"});
  for (const auto& [label, scheme] :
       std::vector<std::pair<std::string, learning::Scheme>>{
           {"exponential(AdaSGD)", learning::Scheme::kAdaSgd},
           {"inverse(DynSGD)", learning::Scheme::kDynSgd}}) {
    core::ControlledRunConfig cfg;
    cfg.aggregator.scheme = scheme;
    cfg.aggregator.similarity_boost = false;  // isolate the curve shape
    cfg.aggregator.fixed_tau_thres = 24.0;
    cfg.staleness = &d2;
    cfg.learning_rate = 0.04f;
    cfg.steps = steps;
    cfg.mini_batch = 32;
    cfg.eval_every = steps;
    cfg.seed = 7;
    auto model = nn::zoo::small_cnn(1, 14, 14, 10);
    model->init(9);
    const auto result = core::run_controlled(*model, split.train, users_plain,
                                             split.test, cfg);
    bench::row({label, bench::fmt(result.final_accuracy, 3)});
  }
  std::cout << "Expectation: the exponential curve (heavier damping of the "
               "very stale,\nlighter damping of the fresh) converges "
               "faster — the paper's §2.3 hypothesis.\n";
  return 0;
}
