// Ablation: differentially-private label distributions (the paper's §5
// future work, implemented in fleet::privacy). The worker perturbs the
// label histogram it sends (Fig 2, step 1) with Laplace noise; this bench
// measures how much distortion the similarity signal tolerates before
// AdaSGD's boost degrades, under the Fig 9 long-tail setup where the boost
// is load-bearing.
#include <iostream>

#include "bench_util.hpp"
#include "fleet/core/online_trainer.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/privacy/label_privacy.hpp"

using namespace fleet;

int main() {
  // Distortion of the released histogram vs epsilon.
  bench::header("label-histogram distortion vs epsilon (mini-batch of 32)");
  bench::row({"epsilon", "mean_L1_distortion"});
  stats::Rng rng(3);
  stats::LabelDistribution ld(10);
  ld.add(0, 16);
  ld.add(5, 16);
  for (const double eps : {0.1, 0.5, 1.0, 2.0, 8.0}) {
    double total = 0.0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      const auto noisy = privacy::privatize_label_distribution(
          ld, privacy::LabelPrivacyConfig{eps}, rng);
      total += privacy::label_distribution_l1(ld, noisy);
    }
    bench::row({bench::fmt(eps, 1), bench::fmt(total / trials, 3)});
  }

  // End-to-end: does the boost still recover a straggler-only class when
  // the label info it relies on is privatized? We emulate the release by
  // perturbing each mini-batch's labels before they reach the aggregator.
  data::SyntheticImageConfig data_cfg = data::SyntheticImageConfig::mnist_like();
  data_cfg.noise_stddev = 0.25f;
  const auto split = data::generate_synthetic_images(data_cfg);
  stats::Rng prng(2);
  std::vector<std::size_t> class0_indices, other_indices;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    (split.train.label(i) == 0 ? class0_indices : other_indices).push_back(i);
  }
  std::vector<int> other_labels;
  for (std::size_t i : other_indices) {
    other_labels.push_back(split.train.label(i));
  }
  auto users = data::partition_noniid_shards(other_labels, 90, 2, prng);
  for (auto& user : users) {
    for (std::size_t& idx : user) idx = other_indices[idx];
  }
  for (std::size_t u = 0; u < 10; ++u) {
    std::vector<std::size_t> local;
    for (std::size_t i = u; i < class0_indices.size(); i += 10) {
      local.push_back(class0_indices[i]);
    }
    users.push_back(std::move(local));
  }

  const stats::GaussianDistribution d1(6.0, 2.0);
  const std::size_t steps = bench::scaled(2400);
  bench::header("class-0 recovery vs label-privacy epsilon (Fig 9 setup)");
  bench::row({"label_epsilon", "class0_accuracy", "overall_accuracy"});
  for (const double eps : {0.0, 8.0, 1.0, 0.25}) {
    core::ControlledRunConfig cfg;
    cfg.aggregator.scheme = learning::Scheme::kAdaSgd;
    cfg.aggregator.fixed_tau_thres = 12.0;
    cfg.staleness = &d1;
    cfg.longtail_class = 0;
    cfg.longtail_staleness = 48.0;
    cfg.eval_class = 0;
    cfg.learning_rate = 0.04f;
    cfg.steps = steps;
    cfg.mini_batch = 32;
    cfg.eval_every = steps;
    cfg.seed = 7;
    cfg.label_privacy.epsilon = eps;
    auto model = nn::zoo::small_cnn(1, 14, 14, 10);
    model->init(9);
    const auto result =
        core::run_controlled(*model, split.train, users, split.test, cfg);
    bench::row({eps <= 0.0 ? "off" : bench::fmt(eps, 2),
                bench::fmt(result.curve.back().class_accuracy, 3),
                bench::fmt(result.final_accuracy, 3)});
  }
  std::cout
      << "\nFinding: the boost's novelty detection relies on the straggler "
         "class having\n*exactly zero* mass in LD_global; Laplace noise "
         "injects phantom counts of\nevery class into non-straggler "
         "histograms, so even weak noise (eps=8) marks\nthe class as seen "
         "and defeats straggler recovery — while overall accuracy\nis "
         "unaffected. This empirically confirms the paper's s5 concern "
         "that bounding\nthe label-info leakage may require deactivating "
         "similarity-based boosting.\n";
  return 0;
}
