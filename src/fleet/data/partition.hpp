#pragma once

#include <vector>

#include "fleet/data/dataset.hpp"
#include "fleet/stats/rng.hpp"

namespace fleet::data {

/// Per-user index lists into a dataset.
using Partition = std::vector<std::vector<std::size_t>>;

/// IID split: shuffle, deal round-robin.
Partition partition_iid(std::size_t n_samples, std::size_t n_users,
                        stats::Rng& rng);

/// The standard FL non-IID decentralization scheme (McMahan et al., used in
/// §3.2): sort sample indices by label, cut into
/// `n_users * shards_per_user` contiguous shards, hand each user
/// `shards_per_user` random shards — so each user holds examples of only a
/// few labels.
Partition partition_noniid_shards(const std::vector<int>& labels,
                                  std::size_t n_users,
                                  std::size_t shards_per_user,
                                  stats::Rng& rng);

/// Label histogram per user (for inspecting skew; also feeds LD(x_i)).
std::vector<std::vector<std::size_t>> partition_label_counts(
    const Partition& partition, const std::vector<int>& labels,
    std::size_t n_classes);

}  // namespace fleet::data
