#pragma once

#include <cstdint>

#include "fleet/data/dataset.hpp"

namespace fleet::data {

/// Configuration for the procedural image datasets that stand in for
/// MNIST / E-MNIST / CIFAR (substitution #1 in DESIGN.md §3).
///
/// Each class owns a fixed smooth random prototype; a sample is the
/// prototype plus Gaussian pixel noise plus a small random translation,
/// min-max scaled to [0,1]. This preserves what the paper's experiments
/// measure — relative convergence of SGD variants on class-structured,
/// optionally non-IID data — without shipping the original corpora.
struct SyntheticImageConfig {
  std::size_t n_classes = 10;
  std::size_t channels = 1;
  std::size_t height = 14;
  std::size_t width = 14;
  std::size_t n_train = 4000;
  std::size_t n_test = 1000;
  float noise_stddev = 0.30f;
  int max_shift = 1;          // translation radius in pixels
  std::uint64_t seed = 42;

  /// Shape/cardinality presets mirroring the paper's datasets, scaled so a
  /// full experiment runs in seconds on one core (see DESIGN.md §5).
  static SyntheticImageConfig mnist_like();
  static SyntheticImageConfig emnist_like();
  static SyntheticImageConfig cifar10_like();
  static SyntheticImageConfig cifar100_like();
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Generate a train/test pair from the config (deterministic in seed).
TrainTestSplit generate_synthetic_images(const SyntheticImageConfig& config);

}  // namespace fleet::data
