#include "fleet/data/synthetic_images.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleet::data {

SyntheticImageConfig SyntheticImageConfig::mnist_like() {
  SyntheticImageConfig c;
  c.n_classes = 10;
  c.channels = 1;
  c.height = 14;
  c.width = 14;
  c.n_train = 4000;
  c.n_test = 1000;
  c.seed = 42;
  return c;
}

SyntheticImageConfig SyntheticImageConfig::emnist_like() {
  SyntheticImageConfig c;
  c.n_classes = 62;
  c.channels = 1;
  c.height = 14;
  c.width = 14;
  c.n_train = 9300;
  c.n_test = 2480;
  c.seed = 43;
  return c;
}

SyntheticImageConfig SyntheticImageConfig::cifar10_like() {
  SyntheticImageConfig c;
  c.n_classes = 10;
  c.channels = 3;
  c.height = 16;
  c.width = 16;
  c.n_train = 5000;
  c.n_test = 1000;
  c.noise_stddev = 0.40f;
  c.seed = 44;
  return c;
}

SyntheticImageConfig SyntheticImageConfig::cifar100_like() {
  SyntheticImageConfig c = cifar10_like();
  c.n_classes = 100;
  c.n_train = 10000;
  c.n_test = 2000;
  c.seed = 45;
  return c;
}

namespace {

/// Smooth prototype: random values on a coarse grid, bilinearly upsampled.
/// Smoothness matters: it gives convolution kernels local structure to
/// latch onto, like strokes/edges in the real datasets.
std::vector<float> make_prototype(const SyntheticImageConfig& cfg,
                                  stats::Rng& rng) {
  const std::size_t coarse = 4;
  std::vector<float> grid(cfg.channels * coarse * coarse);
  for (float& g : grid) g = static_cast<float>(rng.uniform(0.0, 1.0));

  std::vector<float> proto(cfg.channels * cfg.height * cfg.width);
  for (std::size_t c = 0; c < cfg.channels; ++c) {
    for (std::size_t y = 0; y < cfg.height; ++y) {
      for (std::size_t x = 0; x < cfg.width; ++x) {
        const double gy = static_cast<double>(y) /
                          static_cast<double>(cfg.height - 1) *
                          static_cast<double>(coarse - 1);
        const double gx = static_cast<double>(x) /
                          static_cast<double>(cfg.width - 1) *
                          static_cast<double>(coarse - 1);
        const auto y0 = static_cast<std::size_t>(gy);
        const auto x0 = static_cast<std::size_t>(gx);
        const std::size_t y1 = std::min(y0 + 1, coarse - 1);
        const std::size_t x1 = std::min(x0 + 1, coarse - 1);
        const auto fy = static_cast<float>(gy - static_cast<double>(y0));
        const auto fx = static_cast<float>(gx - static_cast<double>(x0));
        const float* g = grid.data() + c * coarse * coarse;
        const float v = g[y0 * coarse + x0] * (1 - fy) * (1 - fx) +
                        g[y0 * coarse + x1] * (1 - fy) * fx +
                        g[y1 * coarse + x0] * fy * (1 - fx) +
                        g[y1 * coarse + x1] * fy * fx;
        proto[(c * cfg.height + y) * cfg.width + x] = v;
      }
    }
  }
  return proto;
}

void render_sample(const SyntheticImageConfig& cfg,
                   const std::vector<float>& proto, stats::Rng& rng,
                   std::vector<float>& out) {
  const int dy = static_cast<int>(rng.uniform_int(-cfg.max_shift, cfg.max_shift));
  const int dx = static_cast<int>(rng.uniform_int(-cfg.max_shift, cfg.max_shift));
  out.resize(proto.size());
  const auto h = static_cast<int>(cfg.height);
  const auto w = static_cast<int>(cfg.width);
  float lo = 1e30f, hi = -1e30f;
  for (std::size_t c = 0; c < cfg.channels; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        // Toroidal shift keeps all mass in frame.
        const int sy = ((y + dy) % h + h) % h;
        const int sx = ((x + dx) % w + w) % w;
        float v = proto[(c * cfg.height + static_cast<std::size_t>(sy)) *
                            cfg.width + static_cast<std::size_t>(sx)] +
                  static_cast<float>(rng.gaussian(0.0, cfg.noise_stddev));
        out[(c * cfg.height + static_cast<std::size_t>(y)) * cfg.width +
            static_cast<std::size_t>(x)] = v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  // Min-max scaling, the paper's preprocessing step (§3.2).
  const float range = std::max(hi - lo, 1e-6f);
  for (float& v : out) v = (v - lo) / range;
}

}  // namespace

TrainTestSplit generate_synthetic_images(const SyntheticImageConfig& cfg) {
  if (cfg.n_classes == 0 || cfg.n_train == 0) {
    throw std::invalid_argument("generate_synthetic_images: empty config");
  }
  stats::Rng rng(cfg.seed);
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(cfg.n_classes);
  for (std::size_t c = 0; c < cfg.n_classes; ++c) {
    prototypes.push_back(make_prototype(cfg, rng));
  }

  const std::vector<std::size_t> shape{cfg.channels, cfg.height, cfg.width};
  TrainTestSplit split{Dataset(shape, cfg.n_classes),
                       Dataset(shape, cfg.n_classes)};
  split.train.reserve(cfg.n_train);
  split.test.reserve(cfg.n_test);

  std::vector<float> sample;
  for (std::size_t i = 0; i < cfg.n_train + cfg.n_test; ++i) {
    const auto label = static_cast<int>(i % cfg.n_classes);
    render_sample(cfg, prototypes[static_cast<std::size_t>(label)], rng,
                  sample);
    if (i < cfg.n_train) {
      split.train.add_sample(sample, label);
    } else {
      split.test.add_sample(sample, label);
    }
  }
  return split;
}

}  // namespace fleet::data
