#include "fleet/data/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fleet::data {

Partition partition_iid(std::size_t n_samples, std::size_t n_users,
                        stats::Rng& rng) {
  if (n_users == 0) throw std::invalid_argument("partition_iid: 0 users");
  if (n_samples < n_users) {
    throw std::invalid_argument("partition_iid: fewer samples than users");
  }
  std::vector<std::size_t> indices(n_samples);
  std::iota(indices.begin(), indices.end(), 0);
  rng.shuffle(indices);
  Partition partition(n_users);
  for (std::size_t i = 0; i < n_samples; ++i) {
    partition[i % n_users].push_back(indices[i]);
  }
  return partition;
}

Partition partition_noniid_shards(const std::vector<int>& labels,
                                  std::size_t n_users,
                                  std::size_t shards_per_user,
                                  stats::Rng& rng) {
  if (n_users == 0 || shards_per_user == 0) {
    throw std::invalid_argument("partition_noniid_shards: zero-sized config");
  }
  const std::size_t n_shards = n_users * shards_per_user;
  if (labels.size() < n_shards) {
    throw std::invalid_argument(
        "partition_noniid_shards: fewer samples than shards");
  }
  // Sort indices by label (stable so ties keep dataset order).
  std::vector<std::size_t> order(labels.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return labels[a] < labels[b];
  });

  std::vector<std::size_t> shard_ids(n_shards);
  std::iota(shard_ids.begin(), shard_ids.end(), 0);
  rng.shuffle(shard_ids);

  const std::size_t shard_size = labels.size() / n_shards;
  Partition partition(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    for (std::size_t s = 0; s < shards_per_user; ++s) {
      const std::size_t shard = shard_ids[u * shards_per_user + s];
      const std::size_t begin = shard * shard_size;
      // Last shard absorbs the remainder.
      const std::size_t end =
          (shard == n_shards - 1) ? labels.size() : begin + shard_size;
      for (std::size_t i = begin; i < end; ++i) {
        partition[u].push_back(order[i]);
      }
    }
  }
  return partition;
}

std::vector<std::vector<std::size_t>> partition_label_counts(
    const Partition& partition, const std::vector<int>& labels,
    std::size_t n_classes) {
  std::vector<std::vector<std::size_t>> counts(
      partition.size(), std::vector<std::size_t>(n_classes, 0));
  for (std::size_t u = 0; u < partition.size(); ++u) {
    for (std::size_t idx : partition[u]) {
      const int label = labels.at(idx);
      if (label < 0 || static_cast<std::size_t>(label) >= n_classes) {
        throw std::out_of_range("partition_label_counts: label out of range");
      }
      ++counts[u][static_cast<std::size_t>(label)];
    }
  }
  return counts;
}

}  // namespace fleet::data
