#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fleet/nn/model.hpp"
#include "fleet/stats/rng.hpp"

namespace fleet::data {

/// An in-memory labeled image dataset (NCHW, min-max scaled to [0,1] as the
/// paper pre-processes its inputs).
class Dataset {
 public:
  Dataset(std::vector<std::size_t> sample_shape, std::size_t n_classes);

  void add_sample(std::span<const float> features, int label);
  void reserve(std::size_t n);

  std::size_t size() const { return labels_.size(); }
  std::size_t n_classes() const { return n_classes_; }
  const std::vector<std::size_t>& sample_shape() const { return sample_shape_; }
  std::size_t sample_size() const { return sample_size_; }

  int label(std::size_t i) const { return labels_.at(i); }
  const std::vector<int>& labels() const { return labels_; }
  std::span<const float> sample(std::size_t i) const;

  /// Gather the given sample indices into a training batch.
  nn::Batch make_batch(std::span<const std::size_t> indices) const;

  /// Batch of `k` samples drawn uniformly without replacement.
  nn::Batch sample_batch(std::size_t k, stats::Rng& rng) const;

  /// The whole dataset as one batch (for evaluation).
  nn::Batch all() const;

 private:
  std::vector<std::size_t> sample_shape_;
  std::size_t sample_size_;
  std::size_t n_classes_;
  std::vector<float> data_;
  std::vector<int> labels_;
};

/// Top-1 accuracy of `model` on `dataset`, evaluated in chunks to bound
/// peak memory.
double evaluate_accuracy(nn::TrainableModel& model, const Dataset& dataset,
                         std::size_t chunk = 256);

/// Top-1 accuracy restricted to samples of one class (Fig 9a).
double evaluate_class_accuracy(nn::TrainableModel& model,
                               const Dataset& dataset, int target_class,
                               std::size_t chunk = 256);

}  // namespace fleet::data
