#include "fleet/data/dataset.hpp"

#include <numeric>
#include <stdexcept>

#include "fleet/stats/metrics.hpp"

namespace fleet::data {

Dataset::Dataset(std::vector<std::size_t> sample_shape, std::size_t n_classes)
    : sample_shape_(std::move(sample_shape)),
      sample_size_(tensor::Tensor::shape_size(sample_shape_)),
      n_classes_(n_classes) {
  if (sample_size_ == 0) throw std::invalid_argument("Dataset: empty shape");
  if (n_classes == 0) throw std::invalid_argument("Dataset: 0 classes");
}

void Dataset::add_sample(std::span<const float> features, int label) {
  if (features.size() != sample_size_) {
    throw std::invalid_argument("Dataset::add_sample: feature size mismatch");
  }
  if (label < 0 || static_cast<std::size_t>(label) >= n_classes_) {
    throw std::out_of_range("Dataset::add_sample: label out of range");
  }
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

void Dataset::reserve(std::size_t n) {
  data_.reserve(n * sample_size_);
  labels_.reserve(n);
}

std::span<const float> Dataset::sample(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("Dataset::sample");
  return {data_.data() + i * sample_size_, sample_size_};
}

nn::Batch Dataset::make_batch(std::span<const std::size_t> indices) const {
  if (indices.empty()) {
    throw std::invalid_argument("Dataset::make_batch: empty index list");
  }
  std::vector<std::size_t> shape;
  shape.push_back(indices.size());
  shape.insert(shape.end(), sample_shape_.begin(), sample_shape_.end());
  nn::Batch batch{tensor::Tensor(std::move(shape)), {}};
  batch.labels.reserve(indices.size());
  float* out = batch.inputs.data();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const auto s = sample(indices[k]);
    std::copy(s.begin(), s.end(), out + k * sample_size_);
    batch.labels.push_back(labels_[indices[k]]);
  }
  return batch;
}

nn::Batch Dataset::sample_batch(std::size_t k, stats::Rng& rng) const {
  if (k == 0) throw std::invalid_argument("Dataset::sample_batch: k=0");
  k = std::min(k, size());
  const auto indices = rng.sample_without_replacement(size(), k);
  return make_batch(indices);
}

nn::Batch Dataset::all() const {
  std::vector<std::size_t> indices(size());
  std::iota(indices.begin(), indices.end(), 0);
  return make_batch(indices);
}

namespace {

double evaluate_impl(nn::TrainableModel& model, const Dataset& dataset,
                     int target_class, std::size_t chunk) {
  if (dataset.size() == 0) return 0.0;
  std::size_t correct = 0, total = 0;
  const std::size_t n_classes = model.n_classes();
  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < dataset.size(); start += chunk) {
    const std::size_t stop = std::min(start + chunk, dataset.size());
    indices.resize(stop - start);
    std::iota(indices.begin(), indices.end(), start);
    const nn::Batch batch = dataset.make_batch(indices);
    const std::vector<float> scores = model.predict(batch.inputs);
    for (std::size_t i = 0; i < batch.labels.size(); ++i) {
      if (target_class >= 0 && batch.labels[i] != target_class) continue;
      ++total;
      const auto top = stats::top_k(
          std::span<const float>(scores.data() + i * n_classes, n_classes), 1);
      if (top[0] == static_cast<std::size_t>(batch.labels[i])) ++correct;
    }
  }
  if (total == 0) return -1.0;
  return static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace

double evaluate_accuracy(nn::TrainableModel& model, const Dataset& dataset,
                         std::size_t chunk) {
  return evaluate_impl(model, dataset, -1, chunk);
}

double evaluate_class_accuracy(nn::TrainableModel& model,
                               const Dataset& dataset, int target_class,
                               std::size_t chunk) {
  return evaluate_impl(model, dataset, target_class, chunk);
}

}  // namespace fleet::data
