#include "fleet/data/tweet_stream.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace fleet::data {

namespace {

constexpr double kSecondsPerHour = 3600.0;

struct HashtagProfile {
  double birth_s = 0.0;
  double lifetime_s = 1.0;
  double peak_weight = 1.0;
  std::vector<int> topic_words;
};

/// Popularity of a hashtag at time t: ramps up fast after birth, then
/// decays exponentially with its lifetime.
double popularity(const HashtagProfile& h, double t) {
  if (t < h.birth_s) return 0.0;
  const double age = t - h.birth_s;
  const double ramp = 1.0 - std::exp(-age / (0.1 * h.lifetime_s));
  return h.peak_weight * ramp * std::exp(-age / h.lifetime_s);
}

/// Diurnal activity modulation (fewer tweets at night), period 24 h.
double diurnal(double t_s) {
  const double hour_of_day = std::fmod(t_s / kSecondsPerHour, 24.0);
  return 0.55 + 0.45 * std::sin((hour_of_day - 6.0) / 24.0 * 2.0 * M_PI);
}

}  // namespace

TweetStream::TweetStream(const TweetStreamConfig& config) : config_(config) {
  if (config.n_hashtags == 0 || config.vocab_size == 0 || config.n_users == 0) {
    throw std::invalid_argument("TweetStream: zero-sized config");
  }
  if (config.topic_word_prob < 0.0 || config.topic_word_prob > 1.0) {
    throw std::invalid_argument("TweetStream: topic_word_prob outside [0,1]");
  }
  stats::Rng rng(config.seed);
  const double duration_s = config.days * 24.0 * kSecondsPerHour;

  std::vector<HashtagProfile> profiles(config.n_hashtags);
  for (auto& h : profiles) {
    h.birth_s = rng.uniform(0.0, duration_s * 0.95);
    h.lifetime_s =
        rng.exponential(config.hashtag_lifetime_hours * kSecondsPerHour);
    h.lifetime_s = std::max(h.lifetime_s, 0.5 * kSecondsPerHour);
    h.peak_weight = 0.2 + rng.exponential(1.0);
    for (std::size_t w = 0; w < config.topic_words_per_hashtag; ++w) {
      h.topic_words.push_back(static_cast<int>(
          rng.uniform_int(0, static_cast<std::int64_t>(config.vocab_size) - 1)));
    }
  }

  // Homogeneous-rate Poisson arrivals thinned by the diurnal profile.
  const double max_rate_per_s = config.tweets_per_hour / kSecondsPerHour;
  double t = 0.0;
  std::vector<double> weights(config.n_hashtags);
  while (t < duration_s) {
    t += rng.exponential(1.0 / max_rate_per_s);
    if (t >= duration_s) break;
    if (!rng.bernoulli(diurnal(t))) continue;

    double total = 0.0;
    for (std::size_t h = 0; h < config.n_hashtags; ++h) {
      weights[h] = popularity(profiles[h], t);
      total += weights[h];
    }
    if (total <= 1e-12) continue;  // nothing trending at this instant

    Tweet tweet;
    tweet.time_s = t;
    tweet.user = static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.n_users) - 1));
    tweet.hashtags.push_back(static_cast<int>(rng.categorical(weights)));
    if (rng.bernoulli(config.second_hashtag_prob)) {
      const auto second = static_cast<int>(rng.categorical(weights));
      if (second != tweet.hashtags[0]) tweet.hashtags.push_back(second);
    }
    for (std::size_t k = 0; k < config.tokens_per_tweet; ++k) {
      const auto& topic =
          profiles[static_cast<std::size_t>(
                       tweet.hashtags[k % tweet.hashtags.size()])]
              .topic_words;
      if (rng.bernoulli(config.topic_word_prob)) {
        tweet.tokens.push_back(topic[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(topic.size()) - 1))]);
      } else {
        tweet.tokens.push_back(static_cast<int>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.vocab_size) - 1)));
      }
    }
    tweets_.push_back(std::move(tweet));
  }
  std::sort(tweets_.begin(), tweets_.end(),
            [](const Tweet& a, const Tweet& b) { return a.time_s < b.time_s; });
}

std::vector<const Tweet*> TweetStream::window(double t0_s, double t1_s) const {
  std::vector<const Tweet*> out;
  for (const Tweet& tw : tweets_) {
    if (tw.time_s >= t0_s && tw.time_s < t1_s) out.push_back(&tw);
    if (tw.time_s >= t1_s) break;
  }
  return out;
}

std::vector<nn::SequenceSample> TweetStream::to_samples(
    const std::vector<const Tweet*>& tweets) {
  std::vector<nn::SequenceSample> samples;
  for (const Tweet* tw : tweets) {
    for (int hashtag : tw->hashtags) {
      nn::SequenceSample s;
      s.tokens = tw->tokens;
      s.target = hashtag;
      samples.push_back(std::move(s));
    }
  }
  return samples;
}

std::vector<std::size_t> TweetStream::most_popular(double t0_s, double t1_s,
                                                   std::size_t k) const {
  std::map<int, std::size_t> counts;
  for (const Tweet* tw : window(t0_s, t1_s)) {
    for (int h : tw->hashtags) ++counts[h];
  }
  std::vector<std::pair<std::size_t, int>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [hashtag, count] : counts) {
    ranked.emplace_back(count, hashtag);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::vector<std::size_t> top;
  for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    top.push_back(static_cast<std::size_t>(ranked[i].second));
  }
  return top;
}

}  // namespace fleet::data
