#pragma once

#include <cstdint>
#include <vector>

#include "fleet/nn/rnn.hpp"
#include "fleet/stats/rng.hpp"

namespace fleet::data {

/// One synthetic tweet: timestamp (seconds from stream start), author, word
/// tokens and ground-truth hashtags.
struct Tweet {
  double time_s = 0.0;
  int user = 0;
  std::vector<int> tokens;
  std::vector<int> hashtags;
};

/// Synthetic temporal hashtag stream standing in for the paper's 2.6M
/// collected tweets (substitution #2 in DESIGN.md §3).
///
/// Hashtags are born throughout the stream, burst, then decay with a
/// lifetime of hours — reproducing the "data becomes obsolete in a matter
/// of hours" property (§1) that makes Online FL beat Standard FL in Fig 6.
/// Each hashtag owns a topic vocabulary; tweet tokens are drawn mostly from
/// the topic words of the tweet's hashtags, so content predicts hashtags.
struct TweetStreamConfig {
  std::size_t n_hashtags = 120;
  std::size_t vocab_size = 400;
  std::size_t topic_words_per_hashtag = 12;
  std::size_t n_users = 60;
  double days = 13.0;
  double tweets_per_hour = 120.0;
  double hashtag_lifetime_hours = 8.0;   // mean popularity half-life scale
  double topic_word_prob = 0.80;         // P(token from the hashtag topic)
  std::size_t tokens_per_tweet = 8;
  double second_hashtag_prob = 0.25;
  std::uint64_t seed = 7;
};

class TweetStream {
 public:
  explicit TweetStream(const TweetStreamConfig& config);

  /// All tweets, sorted by time.
  const std::vector<Tweet>& tweets() const { return tweets_; }
  const TweetStreamConfig& config() const { return config_; }

  /// Tweets with time in [t0, t1).
  std::vector<const Tweet*> window(double t0_s, double t1_s) const;

  /// Expand tweets into (token sequence, target hashtag) training samples,
  /// one per hashtag occurrence.
  static std::vector<nn::SequenceSample> to_samples(
      const std::vector<const Tweet*>& tweets);

  /// Hashtag ids ranked by frequency inside a window (the "most popular"
  /// baseline of Fig 6).
  std::vector<std::size_t> most_popular(double t0_s, double t1_s,
                                        std::size_t k) const;

 private:
  TweetStreamConfig config_;
  std::vector<Tweet> tweets_;
};

}  // namespace fleet::data
