#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fleet::stats {

/// Top-1 accuracy: fraction of rows whose argmax matches the label.
/// `scores` is row-major [n_samples x n_classes].
double accuracy(std::span<const float> scores, std::span<const int> labels,
                std::size_t n_classes);

/// Per-class top-1 accuracy (used by Fig 9a: accuracy for class 0 only).
/// Returns -1 if no sample of `target_class` is present.
double class_accuracy(std::span<const float> scores,
                      std::span<const int> labels, std::size_t n_classes,
                      int target_class);

/// Indices of the k largest entries of `scores`, descending.
std::vector<std::size_t> top_k(std::span<const float> scores, std::size_t k);

/// Precision/recall/F1 at top-k for a multi-label recommendation:
/// `recommended` are the predicted item ids (top-k), `relevant` the ground
/// truth. Used by the hashtag recommender (Fig 6, F1-score @ top-5).
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

PrecisionRecall precision_recall_at_k(std::span<const std::size_t> recommended,
                                      std::span<const std::size_t> relevant);

/// Mean of a vector (0 on empty).
double mean(std::span<const double> xs);

/// Population standard deviation (0 on empty).
double stddev(std::span<const double> xs);

}  // namespace fleet::stats
