#include "fleet/stats/label_distribution.hpp"

#include <cmath>
#include <stdexcept>

namespace fleet::stats {

LabelDistribution::LabelDistribution(std::size_t n_classes)
    : counts_(n_classes, 0) {
  if (n_classes == 0) {
    throw std::invalid_argument("LabelDistribution: n_classes=0");
  }
}

LabelDistribution LabelDistribution::from_counts(
    std::span<const std::size_t> counts) {
  LabelDistribution ld(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ld.add(static_cast<int>(i), counts[i]);
  }
  return ld;
}

LabelDistribution LabelDistribution::from_labels(std::span<const int> labels,
                                                 std::size_t n_classes) {
  LabelDistribution ld(n_classes);
  for (int label : labels) ld.add(label);
  return ld;
}

void LabelDistribution::add(int label, std::size_t count) {
  if (label < 0 || static_cast<std::size_t>(label) >= counts_.size()) {
    throw std::out_of_range("LabelDistribution::add: label out of range");
  }
  counts_[static_cast<std::size_t>(label)] += count;
  total_ += count;
}

void LabelDistribution::merge(const LabelDistribution& other) {
  if (other.n_classes() != n_classes()) {
    throw std::invalid_argument("LabelDistribution::merge: class mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LabelDistribution::probability(std::size_t label) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(label)) /
         static_cast<double>(total_);
}

std::vector<double> LabelDistribution::probabilities() const {
  std::vector<double> probs(counts_.size(), 0.0);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    probs[i] = probability(i);
  }
  return probs;
}

double bhattacharyya_coefficient(const LabelDistribution& p,
                                 const LabelDistribution& q) {
  if (p.n_classes() != q.n_classes()) {
    throw std::invalid_argument("bhattacharyya: class mismatch");
  }
  const auto pp = p.probabilities();
  const auto qq = q.probabilities();
  return bhattacharyya_coefficient(pp, qq);
}

double bhattacharyya_coefficient(std::span<const double> p,
                                 std::span<const double> q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("bhattacharyya: size mismatch");
  }
  double bc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    bc += std::sqrt(p[i] * q[i]);
  }
  // Guard against floating-point drift slightly above 1.
  return std::min(1.0, bc);
}

}  // namespace fleet::stats
