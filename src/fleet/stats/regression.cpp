#include "fleet/stats/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace fleet::stats {

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b,
                                        std::size_t n) {
  if (a.size() != n * n || b.size() != n) {
    throw std::invalid_argument("solve_linear_system: shape mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::abs(a[pivot * n + col]) < 1e-14) {
      throw std::runtime_error("solve_linear_system: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= a[i * n + k] * x[k];
    x[i] = s / a[i * n + i];
  }
  return x;
}

OlsRegression::OlsRegression(std::size_t n_features, double ridge)
    : n_features_(n_features), ridge_(ridge), theta_(n_features, 0.0) {
  if (n_features == 0) throw std::invalid_argument("OlsRegression: 0 features");
}

void OlsRegression::add_observation(std::span<const double> x, double y,
                                    double weight) {
  if (x.size() != n_features_) {
    throw std::invalid_argument("OlsRegression: feature size mismatch");
  }
  if (weight <= 0.0) {
    throw std::invalid_argument("OlsRegression: non-positive weight");
  }
  xs_.emplace_back(x.begin(), x.end());
  ys_.push_back(y);
  weights_.push_back(weight);
}

void OlsRegression::fit() {
  if (ys_.empty()) {
    throw std::runtime_error("OlsRegression::fit: no observations");
  }
  const std::size_t n = n_features_;
  std::vector<double> xtx(n * n, 0.0);
  std::vector<double> xty(n, 0.0);
  for (std::size_t s = 0; s < ys_.size(); ++s) {
    const auto& x = xs_[s];
    const double w = weights_[s];
    for (std::size_t i = 0; i < n; ++i) {
      xty[i] += w * x[i] * ys_[s];
      for (std::size_t j = 0; j < n; ++j) {
        xtx[i * n + j] += w * x[i] * x[j];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) xtx[i * n + i] += ridge_;
  theta_ = solve_linear_system(std::move(xtx), std::move(xty), n);
}

double OlsRegression::predict(std::span<const double> x) const {
  return dot(x, theta_);
}

void OlsRegression::set_coefficients(std::vector<double> theta) {
  if (theta.size() != n_features_) {
    throw std::invalid_argument("OlsRegression: coefficient size mismatch");
  }
  theta_ = std::move(theta);
}

PassiveAggressiveRegression::PassiveAggressiveRegression(
    std::vector<double> initial_theta, double epsilon)
    : theta_(std::move(initial_theta)), epsilon_(epsilon) {
  if (theta_.empty()) {
    throw std::invalid_argument("PassiveAggressiveRegression: empty theta");
  }
  if (epsilon < 0.0) {
    throw std::invalid_argument("PassiveAggressiveRegression: epsilon < 0");
  }
}

double PassiveAggressiveRegression::predict(std::span<const double> x) const {
  return dot(x, theta_);
}

double PassiveAggressiveRegression::update(std::span<const double> x,
                                           double y) {
  if (x.size() != theta_.size()) {
    throw std::invalid_argument("PassiveAggressiveRegression: size mismatch");
  }
  const double prediction = predict(x);
  const double error = y - prediction;
  const double loss = std::max(0.0, std::abs(error) - epsilon_);
  ++updates_;
  if (loss == 0.0) return 0.0;  // passive: within the insensitive band
  const double norm_sq = dot(x, x);
  if (norm_sq <= 0.0) return loss;  // degenerate zero feature vector
  const double scale = loss / norm_sq;
  const double direction = (error > 0.0) ? 1.0 : -1.0;
  for (std::size_t i = 0; i < theta_.size(); ++i) {
    theta_[i] += scale * direction * x[i];
  }
  return loss;
}

}  // namespace fleet::stats
