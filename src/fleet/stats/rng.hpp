#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace fleet::stats {

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
/// Used to derive statistically independent seeds from (base, stream)
/// pairs without consuming any generator state — the basis of Rng::stream.
std::uint64_t mix64(std::uint64_t x);

/// Deterministic random source used by every stochastic component.
///
/// Wraps a seeded mt19937_64. All simulation components take an Rng (or a
/// seed) explicitly so experiments are reproducible run-to-run; there is no
/// global generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Stream splitting: the `stream_id`-th independent generator derived
  /// from `base_seed`. Unlike fork(), this is a pure function of its
  /// arguments — it consumes no generator state — so N parallel components
  /// (e.g. the workers of a ParallelFleet thread pool) can each construct
  /// their own stream in any order, on any thread, and still reproduce the
  /// exact same sequences run-to-run.
  static Rng stream(std::uint64_t base_seed, std::uint64_t stream_id) {
    return Rng(mix64(base_seed + 0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian sample with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential sample with the given mean (= 1/rate).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Poisson sample with the given mean.
  int poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Index sampled from an unnormalized weight vector.
  std::size_t categorical(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// k distinct indices drawn uniformly from [0, n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child generator (for parallel components).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fleet::stats
