#include "fleet/stats/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

namespace fleet::stats {

namespace {

std::size_t argmax_row(std::span<const float> scores, std::size_t row,
                       std::size_t n_classes) {
  const float* begin = scores.data() + row * n_classes;
  return static_cast<std::size_t>(
      std::max_element(begin, begin + n_classes) - begin);
}

}  // namespace

double accuracy(std::span<const float> scores, std::span<const int> labels,
                std::size_t n_classes) {
  if (n_classes == 0) throw std::invalid_argument("accuracy: n_classes=0");
  if (scores.size() != labels.size() * n_classes) {
    throw std::invalid_argument("accuracy: shape mismatch");
  }
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (argmax_row(scores, i, n_classes) ==
        static_cast<std::size_t>(labels[i])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double class_accuracy(std::span<const float> scores,
                      std::span<const int> labels, std::size_t n_classes,
                      int target_class) {
  if (scores.size() != labels.size() * n_classes) {
    throw std::invalid_argument("class_accuracy: shape mismatch");
  }
  std::size_t total = 0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != target_class) continue;
    ++total;
    if (argmax_row(scores, i, n_classes) ==
        static_cast<std::size_t>(target_class)) {
      ++correct;
    }
  }
  if (total == 0) return -1.0;
  return static_cast<double>(correct) / static_cast<double>(total);
}

std::vector<std::size_t> top_k(std::span<const float> scores, std::size_t k) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min(k, scores.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return scores[a] > scores[b];
                    });
  order.resize(k);
  return order;
}

PrecisionRecall precision_recall_at_k(std::span<const std::size_t> recommended,
                                      std::span<const std::size_t> relevant) {
  PrecisionRecall pr;
  if (recommended.empty() || relevant.empty()) return pr;
  const std::set<std::size_t> truth(relevant.begin(), relevant.end());
  std::size_t hits = 0;
  for (std::size_t item : recommended) {
    if (truth.count(item) > 0) ++hits;
  }
  pr.precision = static_cast<double>(hits) /
                 static_cast<double>(recommended.size());
  pr.recall = static_cast<double>(hits) / static_cast<double>(truth.size());
  if (pr.precision + pr.recall > 0.0) {
    pr.f1 = 2.0 * pr.precision * pr.recall / (pr.precision + pr.recall);
  }
  return pr;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

}  // namespace fleet::stats
