#pragma once

#include <cstddef>
#include <vector>

namespace fleet::stats {

/// Running quantile tracker over a (bounded) window of observations.
///
/// AdaSGD estimates tau_thres as the s-th percentile of past staleness
/// values (§2.3). The stream of staleness values is unbounded, so we keep a
/// sliding window (default 4096 observations) and answer percentile queries
/// over it. Exact within the window; O(window) memory.
class RunningQuantile {
 public:
  explicit RunningQuantile(std::size_t window = 4096);

  void add(double value);

  /// Percentile in [0, 100]. Returns `fallback` until any value was added.
  double percentile(double p, double fallback = 0.0) const;

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

 private:
  std::size_t window_;
  std::size_t next_ = 0;   // ring-buffer write position once full
  bool full_ = false;
  std::vector<double> values_;
};

}  // namespace fleet::stats
