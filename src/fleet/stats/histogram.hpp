#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fleet::stats {

/// Fixed-bin histogram over [lo, hi); used to plot the staleness
/// distribution of Fig 7 and the dampening-factor CDF of Fig 9(b).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t total_count() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

  /// Probability mass of a bin (count / total).
  double probability(std::size_t bin) const;

  /// Render "center probability" rows, one per non-empty bin.
  std::string to_rows() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Empirical CDF utility: sorted copy + quantile/fraction-below queries.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> values);

  /// x such that a `q` fraction of samples are <= x (q in [0,1]).
  double quantile(double q) const;
  /// Fraction of samples <= x.
  double fraction_below(double x) const;
  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace fleet::stats
