#include "fleet/stats/rng.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fleet::stats {

std::uint64_t mix64(std::uint64_t x) {
  // Sebastiano Vigna's SplitMix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("categorical: empty weight vector");
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: non-positive total weight");
  }
  double u = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  // Partial Fisher-Yates: only the first k positions need to be finalized.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n - 1)));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace fleet::stats
