#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fleet::stats {

/// Discrete label distribution LD(x) over class indices (§2.3).
///
/// For a local dataset with 1 example of label 0 and 2 of label 1 out of 4
/// classes, LD = [1/3, 2/3, 0, 0]. The server only ever sees label *indices*
/// (never semantic label names), matching FLeet's privacy posture.
class LabelDistribution {
 public:
  explicit LabelDistribution(std::size_t n_classes);

  /// Build directly from label counts.
  static LabelDistribution from_counts(std::span<const std::size_t> counts);
  /// Build from a list of labels in [0, n_classes).
  static LabelDistribution from_labels(std::span<const int> labels,
                                       std::size_t n_classes);

  void add(int label, std::size_t count = 1);
  /// Merge another distribution's raw counts (used for LD_global, which the
  /// paper computes over the aggregate of previously used samples).
  void merge(const LabelDistribution& other);

  std::size_t n_classes() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t count(std::size_t label) const { return counts_.at(label); }

  /// Normalized probability of a label (0 if no samples at all).
  double probability(std::size_t label) const;
  std::vector<double> probabilities() const;

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Bhattacharyya coefficient BC(p, q) = sum_i sqrt(p_i * q_i), in [0, 1].
/// 1 means identical distributions, 0 means disjoint support. AdaSGD uses
/// sim(x_i) = BC(LD(x_i), LD_global) as the similarity value (§2.3, Eq. 4).
double bhattacharyya_coefficient(const LabelDistribution& p,
                                 const LabelDistribution& q);

/// Raw-vector overload for histogram-based (regression-task) distributions.
double bhattacharyya_coefficient(std::span<const double> p,
                                 std::span<const double> q);

}  // namespace fleet::stats
