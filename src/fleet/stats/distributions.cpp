#include "fleet/stats/distributions.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fleet::stats {

GaussianDistribution::GaussianDistribution(double mean, double stddev,
                                           double floor)
    : mean_(mean), stddev_(stddev), floor_(floor) {
  if (stddev < 0.0) {
    throw std::invalid_argument("GaussianDistribution: negative stddev");
  }
}

double GaussianDistribution::sample(Rng& rng) const {
  return std::max(floor_, rng.gaussian(mean_, stddev_));
}

std::string GaussianDistribution::describe() const {
  std::ostringstream os;
  os << "N(" << mean_ << ", " << stddev_ << ")";
  return os.str();
}

ShiftedExponentialDistribution::ShiftedExponentialDistribution(double minimum,
                                                               double mean)
    : minimum_(minimum), mean_(mean) {
  if (mean <= minimum) {
    throw std::invalid_argument(
        "ShiftedExponentialDistribution: mean must exceed minimum");
  }
}

double ShiftedExponentialDistribution::sample(Rng& rng) const {
  return minimum_ + rng.exponential(mean_ - minimum_);
}

std::string ShiftedExponentialDistribution::describe() const {
  std::ostringstream os;
  os << "min+Exp(min=" << minimum_ << ", mean=" << mean_ << ")";
  return os.str();
}

std::string ConstantDistribution::describe() const {
  std::ostringstream os;
  os << "Const(" << value_ << ")";
  return os.str();
}

LongTailGaussianDistribution::LongTailGaussianDistribution(
    double mean, double stddev, double tail_prob, double tail_start,
    double tail_mean)
    : body_(mean, stddev),
      tail_prob_(tail_prob),
      tail_start_(tail_start),
      tail_mean_(tail_mean) {
  if (tail_prob < 0.0 || tail_prob > 1.0) {
    throw std::invalid_argument(
        "LongTailGaussianDistribution: tail_prob outside [0,1]");
  }
  if (tail_mean <= tail_start) {
    throw std::invalid_argument(
        "LongTailGaussianDistribution: tail_mean must exceed tail_start");
  }
}

double LongTailGaussianDistribution::sample(Rng& rng) const {
  if (rng.bernoulli(tail_prob_)) {
    return tail_start_ + rng.exponential(tail_mean_ - tail_start_);
  }
  return body_.sample(rng);
}

double LongTailGaussianDistribution::mean() const {
  return (1.0 - tail_prob_) * body_.mean() + tail_prob_ * tail_mean_;
}

std::string LongTailGaussianDistribution::describe() const {
  std::ostringstream os;
  os << body_.describe() << " + " << tail_prob_ << "*tail(" << tail_start_
     << "," << tail_mean_ << ")";
  return os.str();
}

}  // namespace fleet::stats
