#pragma once

#include <memory>
#include <string>

#include "fleet/stats/rng.hpp"

namespace fleet::stats {

/// A sampleable non-negative distribution. Used for staleness and latency
/// models, which the paper draws from Gaussians (D1, D2) and shifted
/// exponentials (round-trip latency, §3.1).
class Distribution {
 public:
  virtual ~Distribution() = default;
  /// Draw one sample (implementations clamp to their natural support).
  virtual double sample(Rng& rng) const = 0;
  virtual double mean() const = 0;
  virtual std::string describe() const = 0;
};

/// Gaussian clipped below at `floor` (staleness cannot be negative).
class GaussianDistribution final : public Distribution {
 public:
  GaussianDistribution(double mean, double stddev, double floor = 0.0);
  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  double stddev() const { return stddev_; }
  std::string describe() const override;

 private:
  double mean_;
  double stddev_;
  double floor_;
};

/// Exponential shifted by a minimum value: min + Exp(mean - min).
/// Matches §3.1: round-trip latency with a 7.1 s floor and 8.45 s mean.
class ShiftedExponentialDistribution final : public Distribution {
 public:
  ShiftedExponentialDistribution(double minimum, double mean);
  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  double minimum() const { return minimum_; }
  std::string describe() const override;

 private:
  double minimum_;
  double mean_;
};

/// Point mass (useful for deterministic tests).
class ConstantDistribution final : public Distribution {
 public:
  explicit ConstantDistribution(double value) : value_(value) {}
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  std::string describe() const override;

 private:
  double value_;
};

/// Gaussian body with an occasional long tail, as observed for staleness in
/// Fig 7: with probability `tail_prob` the sample is drawn from a shifted
/// exponential tail instead of the Gaussian body.
class LongTailGaussianDistribution final : public Distribution {
 public:
  LongTailGaussianDistribution(double mean, double stddev, double tail_prob,
                               double tail_start, double tail_mean);
  double sample(Rng& rng) const override;
  double mean() const override;
  std::string describe() const override;

 private:
  GaussianDistribution body_;
  double tail_prob_;
  double tail_start_;
  double tail_mean_;
};

}  // namespace fleet::stats
