#include "fleet/stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleet::stats {

RunningQuantile::RunningQuantile(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("RunningQuantile: window=0");
  values_.reserve(window);
}

void RunningQuantile::add(double value) {
  if (!full_) {
    values_.push_back(value);
    if (values_.size() == window_) {
      full_ = true;
      next_ = 0;
    }
    return;
  }
  values_[next_] = value;
  next_ = (next_ + 1) % window_;
}

double RunningQuantile::percentile(double p, double fallback) const {
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p not in [0,100]");
  }
  if (values_.empty()) return fallback;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace fleet::stats
