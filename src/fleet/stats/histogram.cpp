#include "fleet/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fleet::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (hi <= lo) throw std::invalid_argument("Histogram: hi <= lo");
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + width_;
}

double Histogram::bin_center(std::size_t bin) const {
  return bin_lo(bin) + width_ / 2.0;
}

double Histogram::probability(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::to_rows() const {
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    os << bin_center(b) << " " << probability(b) << "\n";
  }
  return os.str();
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> values)
    : sorted_(std::move(values)) {
  if (sorted_.empty()) throw std::invalid_argument("EmpiricalCdf: empty");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  if (sorted_.size() == 1) return sorted_.front();
  // Linear interpolation between order statistics.
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double EmpiricalCdf::fraction_below(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

}  // namespace fleet::stats
