#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fleet::stats {

/// (Weighted) least squares over raw feature vectors.
///
/// Solves theta = argmin sum_i w_i (x_i . theta - y_i)^2 via the normal
/// equations with a small ridge term for numerical safety. This is the
/// cold-start model of I-Prof (§2.2): pre-trained offline on (device
/// features, slope) pairs and periodically re-fit as new device data
/// arrives. Weights let the caller optimize *relative* error (w = 1/y^2),
/// which matters when slopes span two orders of magnitude across a
/// heterogeneous fleet.
class OlsRegression {
 public:
  explicit OlsRegression(std::size_t n_features, double ridge = 1e-8);

  /// Accumulate one observation (kept so the model can be re-fit later,
  /// mirroring I-Prof's periodic cold-start re-training).
  void add_observation(std::span<const double> x, double y,
                       double weight = 1.0);
  std::size_t observation_count() const { return ys_.size(); }

  /// Solve the normal equations over all observations seen so far.
  /// Throws std::runtime_error if no observations are available.
  void fit();

  double predict(std::span<const double> x) const;
  const std::vector<double>& coefficients() const { return theta_; }
  void set_coefficients(std::vector<double> theta);
  std::size_t n_features() const { return n_features_; }

 private:
  std::size_t n_features_;
  double ridge_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  std::vector<double> weights_;
  std::vector<double> theta_;
};

/// Online passive-aggressive regression (Crammer et al. 2006, PA-I style)
/// with epsilon-insensitive loss — the personalized per-device-model
/// predictor of I-Prof (§2.2):
///
///   theta_{k+1} = theta_k + (f_k / ||x_k||^2) * v_k,
///   v_k = sign(y_k - x_k . theta_k) * x_k,
///   f(theta, x, y) = max(0, |x.theta - y| - epsilon).
///
/// Smaller epsilon => larger updates per observation (more aggressive).
class PassiveAggressiveRegression {
 public:
  PassiveAggressiveRegression(std::vector<double> initial_theta,
                              double epsilon);

  double predict(std::span<const double> x) const;

  /// One online update; returns the loss incurred before the update.
  double update(std::span<const double> x, double y);

  const std::vector<double>& coefficients() const { return theta_; }
  double epsilon() const { return epsilon_; }
  std::size_t update_count() const { return updates_; }

 private:
  std::vector<double> theta_;
  double epsilon_;
  std::size_t updates_ = 0;
};

/// Dot product helper shared by the regressors.
double dot(std::span<const double> a, std::span<const double> b);

/// Solve the dense symmetric positive-definite system A x = b in place via
/// Gaussian elimination with partial pivoting. A is row-major n x n.
/// Exposed for testing.
std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b,
                                        std::size_t n);

}  // namespace fleet::stats
