#include "fleet/learning/similarity.hpp"

#include <cmath>
#include <stdexcept>

namespace fleet::learning {

SimilarityTracker::SimilarityTracker(std::size_t n_classes)
    : counts_(n_classes, 0.0) {
  if (n_classes == 0) {
    throw std::invalid_argument("SimilarityTracker: n_classes=0");
  }
}

double SimilarityTracker::similarity(
    const stats::LabelDistribution& local) const {
  if (local.n_classes() != counts_.size()) {
    throw std::invalid_argument("SimilarityTracker: class count mismatch");
  }
  if (total_ <= 0.0) return 0.0;
  double bc = 0.0;
  for (std::size_t c = 0; c < counts_.size(); ++c) {
    bc += std::sqrt(local.probability(c) * counts_[c] / total_);
  }
  return std::min(1.0, bc);
}

void SimilarityTracker::record_used(const stats::LabelDistribution& local,
                                    double weight) {
  if (local.n_classes() != counts_.size()) {
    throw std::invalid_argument("SimilarityTracker: class count mismatch");
  }
  if (weight < 0.0) {
    throw std::invalid_argument("SimilarityTracker: negative weight");
  }
  for (std::size_t c = 0; c < counts_.size(); ++c) {
    counts_[c] += weight * static_cast<double>(local.count(c));
  }
  total_ += weight * static_cast<double>(local.total());
}

double SimilarityTracker::global_probability(std::size_t label) const {
  if (label >= counts_.size()) {
    throw std::out_of_range("SimilarityTracker::global_probability");
  }
  if (total_ <= 0.0) return 0.0;
  return counts_[label] / total_;
}

}  // namespace fleet::learning
