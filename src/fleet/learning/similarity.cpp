#include "fleet/learning/similarity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fleet/tensor/kernels/kernels.hpp"
#include "fleet/tensor/kernels/scratch.hpp"

namespace fleet::learning {

SimilarityTracker::SimilarityTracker(std::size_t n_classes)
    : counts_(n_classes, 0.0) {
  if (n_classes == 0) {
    throw std::invalid_argument("SimilarityTracker: n_classes=0");
  }
}

double SimilarityTracker::similarity(
    const stats::LabelDistribution& local) const {
  if (local.n_classes() != counts_.size()) {
    throw std::invalid_argument("SimilarityTracker: class count mismatch");
  }
  if (total_ <= 0.0) return 0.0;
  // Stage the local probabilities in per-thread scratch and run the
  // order-pinned bhattacharyya reduction: sum_c sqrt(p_c * counts_c /
  // total), sequential ascending-c double accumulation in every kernel
  // backend — bitwise equal to the original inline loop.
  auto& scratch = tensor::kernels::ScratchAllocator::tls();
  tensor::kernels::ScratchAllocator::Scope scope(scratch);
  std::span<double> p = scratch.doubles(counts_.size());
  for (std::size_t c = 0; c < counts_.size(); ++c) {
    p[c] = local.probability(c);
  }
  const double bc = tensor::kernels::active().bhattacharyya(
      p.data(), counts_.data(), total_, counts_.size());
  return std::min(1.0, bc);
}

void SimilarityTracker::record_used(const stats::LabelDistribution& local,
                                    double weight) {
  if (local.n_classes() != counts_.size()) {
    throw std::invalid_argument("SimilarityTracker: class count mismatch");
  }
  if (weight < 0.0) {
    throw std::invalid_argument("SimilarityTracker: negative weight");
  }
  for (std::size_t c = 0; c < counts_.size(); ++c) {
    counts_[c] += weight * static_cast<double>(local.count(c));
  }
  total_ += weight * static_cast<double>(local.total());
}

double SimilarityTracker::global_probability(std::size_t label) const {
  if (label >= counts_.size()) {
    throw std::out_of_range("SimilarityTracker::global_probability");
  }
  if (total_ <= 0.0) return 0.0;
  return counts_[label] / total_;
}

}  // namespace fleet::learning
