#pragma once

#include <memory>
#include <string>

namespace fleet::learning {

/// SGD variants evaluated in §3.2.
enum class Scheme {
  kAdaSgd,   // exponential staleness dampening + similarity boost (ours)
  kDynSgd,   // inverse dampening 1/(tau+1) (Jiang et al., SIGMOD'17)
  kFedAvg,   // staleness-unaware gradient averaging
  kSsgd,     // synchronous ideal (no staleness by construction)
};

std::string scheme_name(Scheme scheme);

/// Staleness-to-weight mapping Lambda(tau) (Fig 5).
class Dampening {
 public:
  virtual ~Dampening() = default;
  virtual double factor(double staleness) const = 0;
  virtual std::string name() const = 0;
};

/// AdaSGD's exponential dampening: Lambda(tau) = exp(-beta * tau), with
/// beta chosen so the curve meets DynSGD's inverse curve at tau_thres / 2:
///   exp(-beta * tau_thres/2) = 1 / (tau_thres/2 + 1)
///   => beta = ln(tau_thres/2 + 1) / (tau_thres/2).
/// tau_thres is the s-th percentile of past staleness values (§2.3). The
/// hypothesis: perturbation from stale gradients grows exponentially, not
/// linearly, with staleness.
class ExponentialDampening final : public Dampening {
 public:
  explicit ExponentialDampening(double tau_thres);

  double factor(double staleness) const override;
  std::string name() const override { return "AdaSGD-exponential"; }

  double beta() const { return beta_; }
  double tau_thres() const { return tau_thres_; }

 private:
  double tau_thres_;
  double beta_;
};

/// DynSGD's inverse dampening: Lambda(tau) = 1 / (tau + 1).
class InverseDampening final : public Dampening {
 public:
  double factor(double staleness) const override;
  std::string name() const override { return "DynSGD-inverse"; }
};

/// Staleness-unaware: Lambda(tau) = 1 (FedAvg / plain async SGD).
class NoDampening final : public Dampening {
 public:
  double factor(double) const override { return 1.0; }
  std::string name() const override { return "none"; }
};

}  // namespace fleet::learning
