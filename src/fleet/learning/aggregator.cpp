#include "fleet/learning/aggregator.hpp"

#include <algorithm>
#include <stdexcept>

#include "fleet/tensor/ops.hpp"

namespace fleet::learning {

AsyncAggregator::AsyncAggregator(std::size_t parameter_count,
                                 std::size_t n_classes, const Config& config)
    : config_(config),
      parameter_count_(parameter_count),
      staleness_(config.s_percent, /*bootstrap_count=*/30,
                 config.staleness_window),
      similarity_(n_classes),
      accumulator_(parameter_count, 0.0f),
      flushed_(parameter_count, 0.0f) {
  if (parameter_count == 0) {
    throw std::invalid_argument("AsyncAggregator: zero parameters");
  }
  if (config.aggregation_k == 0) {
    throw std::invalid_argument("AsyncAggregator: K must be >= 1");
  }
}

double AsyncAggregator::tau_thres() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tau_thres_unlocked();
}

double AsyncAggregator::tau_thres_unlocked() const {
  if (config_.fixed_tau_thres > 0.0) return config_.fixed_tau_thres;
  return staleness_.tau_thres();
}

double AsyncAggregator::dampening_factor(double staleness) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dampening_factor_unlocked(staleness);
}

double AsyncAggregator::dampening_factor_unlocked(double staleness) const {
  switch (config_.scheme) {
    case Scheme::kAdaSgd: {
      // Bootstrap phase: fall back to the inverse dampening, as §2.3
      // prescribes until past staleness values are representative.
      if (config_.fixed_tau_thres <= 0.0 && !staleness_.bootstrapped()) {
        return InverseDampening().factor(staleness);
      }
      return ExponentialDampening(tau_thres_unlocked()).factor(staleness);
    }
    case Scheme::kDynSgd:
      return InverseDampening().factor(staleness);
    case Scheme::kFedAvg:
    case Scheme::kSsgd:
      return 1.0;
  }
  throw std::logic_error("AsyncAggregator: unknown scheme");
}

double AsyncAggregator::weight_for(const WorkerUpdate& update) const {
  std::lock_guard<std::mutex> lock(mu_);
  return weight_for_unlocked(update);
}

double AsyncAggregator::similarity_of(
    const stats::LabelDistribution& label_dist) const {
  std::lock_guard<std::mutex> lock(mu_);
  return similarity_.similarity(label_dist);
}

double AsyncAggregator::weight_for_unlocked(const WorkerUpdate& update) const {
  const double lambda = dampening_factor_unlocked(update.staleness);
  double weight = lambda;
  if (config_.scheme == Scheme::kAdaSgd && config_.similarity_boost) {
    const double sim = similarity_.similarity(update.label_dist);
    // min(1, Lambda / sim): novel data (small sim) boosts the weight back
    // up (§2.3).
    weight = sim <= 1e-12 ? 1.0 : std::min(1.0, lambda / sim);
    // A *straggler's* boost is capped at the tau_thres/2 anchor — the
    // weight of a median-staleness gradient (the operating point Fig 5
    // annotates at ~0.1). Novel data justifies treating a very stale
    // gradient like a typical one, but restoring it to full weight would
    // reinject exactly the staleness noise the dampening protects
    // against.
    const double thres = tau_thres_unlocked();
    if (update.staleness > thres) {
      const double cap = ExponentialDampening(thres).factor(thres / 2.0);
      weight = std::min(weight, std::max(lambda, cap));
    }
  } else if (config_.scheme == Scheme::kFedAvg) {
    // Gradient averaging across the aggregation window.
    weight = 1.0 / static_cast<double>(config_.aggregation_k);
  }
  return weight;
}

double AsyncAggregator::record_submit_unlocked(const WorkerUpdate& update) {
  const double weight = weight_for_unlocked(update);
  if (weight_log_.size() < config_.weight_log_capacity) {
    weight_log_.push_back(weight);
  } else {
    ++weights_dropped_;
  }
  // Only non-straggler gradients (tau <= tau_thres, the s% the system
  // expects to arrive in time, §2.3) count toward LD_global, weighted by
  // the factor they were applied with. A straggler's data has not been
  // reliably incorporated, so its labels must stay "novel" — otherwise the
  // boost could never recover a class that lives only on stragglers
  // (Fig 9a).
  if (update.staleness <= tau_thres_unlocked()) {
    similarity_.record_used(update.label_dist, weight);
  }
  staleness_.observe(update.staleness);
  return weight;
}

SubmitResult AsyncAggregator::submit(const WorkerUpdate& update) {
  if (update.gradient.size() != parameter_count_) {
    throw std::invalid_argument("AsyncAggregator::submit: gradient size");
  }
  std::lock_guard<std::mutex> lock(mu_);
  SubmitResult result;
  result.weight = record_submit_unlocked(update);

  tensor::axpy(static_cast<float>(result.weight), update.gradient,
               std::span<float>(accumulator_));
  if (++pending_ >= config_.aggregation_k) {
    result.aggregate = flush_unlocked();
  }
  return result;
}

PlannedSubmit AsyncAggregator::plan_submit(const WorkerUpdate& update) {
  if (update.gradient.size() != parameter_count_) {
    throw std::invalid_argument("AsyncAggregator::plan_submit: gradient size");
  }
  std::lock_guard<std::mutex> lock(mu_);
  PlannedSubmit planned;
  planned.weight = record_submit_unlocked(update);
  if (++pending_ >= config_.aggregation_k) {
    // The deferred flush_span() sweep performs the arithmetic; the round
    // boundary itself is decided (and recorded) here, centrally.
    pending_ = 0;
    planned.flush = true;
  }
  return planned;
}

void AsyncAggregator::fold_into(std::size_t begin, std::size_t end,
                                double weight,
                                std::span<const float> gradient) {
  if (gradient.size() != parameter_count_) {
    throw std::invalid_argument("AsyncAggregator::fold_into: gradient size");
  }
  if (begin > end || end > parameter_count_) {
    throw std::invalid_argument("AsyncAggregator::fold_into: bad span");
  }
  // Same fused axpy (and the same double->float cast) as submit(), on a
  // slice. No lock: disjoint-span writers, coordinated by the caller.
  tensor::axpy(static_cast<float>(weight), gradient.subspan(begin, end - begin),
               std::span<float>(accumulator_).subspan(begin, end - begin));
}

std::span<const float> AsyncAggregator::flush_span(std::size_t begin,
                                                   std::size_t end) {
  if (begin > end || end > parameter_count_) {
    throw std::invalid_argument("AsyncAggregator::flush_span: bad span");
  }
  std::copy(accumulator_.begin() + static_cast<std::ptrdiff_t>(begin),
            accumulator_.begin() + static_cast<std::ptrdiff_t>(end),
            flushed_.begin() + static_cast<std::ptrdiff_t>(begin));
  std::fill(accumulator_.begin() + static_cast<std::ptrdiff_t>(begin),
            accumulator_.begin() + static_cast<std::ptrdiff_t>(end), 0.0f);
  return std::span<const float>(flushed_).subspan(begin, end - begin);
}

std::optional<std::span<const float>> AsyncAggregator::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return flush_unlocked();
}

std::optional<std::span<const float>> AsyncAggregator::flush_unlocked() {
  if (pending_ == 0) return std::nullopt;
  accumulator_.swap(flushed_);
  std::fill(accumulator_.begin(), accumulator_.end(), 0.0f);
  pending_ = 0;
  return std::span<const float>(flushed_);
}

}  // namespace fleet::learning
