#include "fleet/learning/staleness.hpp"

#include <algorithm>
#include <stdexcept>

namespace fleet::learning {

StalenessTracker::StalenessTracker(double s_percent,
                                   std::size_t bootstrap_count,
                                   std::size_t window)
    : s_percent_(s_percent), bootstrap_count_(bootstrap_count),
      quantile_(window) {
  if (s_percent <= 0.0 || s_percent > 100.0) {
    throw std::invalid_argument("StalenessTracker: s_percent outside (0,100]");
  }
}

void StalenessTracker::observe(double staleness) {
  if (staleness < 0.0) {
    throw std::invalid_argument("StalenessTracker: negative staleness");
  }
  quantile_.add(staleness);
}

double StalenessTracker::tau_thres() const {
  return std::max(2.0, quantile_.percentile(s_percent_, 2.0));
}

}  // namespace fleet::learning
