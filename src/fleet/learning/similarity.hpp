#pragma once

#include "fleet/stats/label_distribution.hpp"

namespace fleet::learning {

/// Similarity-based boosting state (§2.3, Eq. 4).
///
/// Keeps the global label distribution LD_global over previously *used*
/// samples and scores an incoming learning task's label distribution by
/// the Bhattacharyya coefficient against it. Low similarity (unseen or
/// rare labels) boosts the gradient weight.
///
/// Interpretation note (see DESIGN.md): samples are accumulated into
/// LD_global weighted by the dampening weight their gradient was applied
/// with. A gradient that was effectively nullified by staleness dampening
/// did not contribute knowledge, so its labels must stay "novel" —
/// otherwise the long-tail experiment of Fig 9(a) could not recover
/// straggler-only classes, because their first (discarded) gradients
/// would mark the class as seen.
class SimilarityTracker {
 public:
  explicit SimilarityTracker(std::size_t n_classes);

  /// sim(x_i) = BC(LD(x_i), LD_global), in [0, 1]. Before any sample has
  /// been used, every task is maximally novel: returns 0.
  double similarity(const stats::LabelDistribution& local) const;

  /// Record that a gradient computed on this label distribution was
  /// applied with the given weight.
  void record_used(const stats::LabelDistribution& local,
                   double weight = 1.0);

  /// Normalized mass of a label in LD_global.
  double global_probability(std::size_t label) const;
  double total_weight() const { return total_; }
  std::size_t n_classes() const { return counts_.size(); }

 private:
  std::vector<double> counts_;  // weighted per-label sample counts
  double total_ = 0.0;
};

}  // namespace fleet::learning
