#pragma once

#include "fleet/stats/quantile.hpp"

namespace fleet::learning {

/// Tracks observed staleness values and derives tau_thres as the s-th
/// percentile (§2.3). `s` is a *system* parameter — the expected percentage
/// of non-stragglers — not an ML hyperparameter. During the bootstrap phase
/// (before `bootstrap_count` observations) callers are expected to use
/// DynSGD's dampening, as the paper prescribes.
class StalenessTracker {
 public:
  explicit StalenessTracker(double s_percent = 99.7,
                            std::size_t bootstrap_count = 30,
                            std::size_t window = 4096);

  void observe(double staleness);

  /// s-th percentile of past staleness values, floored at 2 so the
  /// exponential dampening stays well-defined early on.
  double tau_thres() const;

  bool bootstrapped() const { return quantile_.count() >= bootstrap_count_; }
  double s_percent() const { return s_percent_; }
  std::size_t count() const { return quantile_.count(); }

 private:
  double s_percent_;
  std::size_t bootstrap_count_;
  stats::RunningQuantile quantile_;
};

}  // namespace fleet::learning
