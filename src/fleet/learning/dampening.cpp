#include "fleet/learning/dampening.hpp"

#include <cmath>
#include <stdexcept>

namespace fleet::learning {

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kAdaSgd: return "AdaSGD";
    case Scheme::kDynSgd: return "DynSGD";
    case Scheme::kFedAvg: return "FedAvg";
    case Scheme::kSsgd: return "SSGD";
  }
  throw std::invalid_argument("scheme_name: unknown scheme");
}

ExponentialDampening::ExponentialDampening(double tau_thres)
    : tau_thres_(tau_thres) {
  if (tau_thres <= 0.0) {
    throw std::invalid_argument("ExponentialDampening: tau_thres must be > 0");
  }
  const double half = tau_thres / 2.0;
  // Intersection with the inverse curve at tau_thres/2 (see class comment).
  beta_ = std::log(half + 1.0) / half;
}

double ExponentialDampening::factor(double staleness) const {
  if (staleness < 0.0) {
    throw std::invalid_argument("ExponentialDampening: negative staleness");
  }
  return std::exp(-beta_ * staleness);
}

double InverseDampening::factor(double staleness) const {
  if (staleness < 0.0) {
    throw std::invalid_argument("InverseDampening: negative staleness");
  }
  return 1.0 / (staleness + 1.0);
}

}  // namespace fleet::learning
