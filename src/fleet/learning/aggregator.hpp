#pragma once

#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "fleet/learning/dampening.hpp"
#include "fleet/learning/similarity.hpp"
#include "fleet/learning/staleness.hpp"
#include "fleet/stats/label_distribution.hpp"

namespace fleet::learning {

/// A gradient as received from a worker, together with the metadata the
/// server needs to weight it (Fig 2, step 5). The gradient is a view into
/// caller-owned storage — the aggregator folds it into its accumulator
/// in-place and never takes a copy (DESIGN.md §4), so the storage only has
/// to stay alive for the duration of the submit() call.
struct WorkerUpdate {
  std::span<const float> gradient;
  double staleness = 0.0;                   // tau_i = t - t_i
  stats::LabelDistribution label_dist{1};   // LD(x_i) of the local data
  std::size_t mini_batch = 0;
};

/// What one submit() yields: the dampening weight that was applied (the
/// bookkeeping and the accumulation share one computation), and — when this
/// submission completed an aggregation round — a view of the summed
/// weighted update, valid until the next submit()/flush().
struct SubmitResult {
  double weight = 0.0;
  std::optional<std::span<const float>> aggregate;
};

/// What plan_submit() yields: the weight the deferred fold must apply and
/// whether this submission completes an aggregation round (the fold plan
/// inserts a flush/apply step there). See the sharded-fold contract on
/// plan_submit().
struct PlannedSubmit {
  double weight = 0.0;
  bool flush = false;
};

/// Server-side gradient aggregation implementing Eq. 3:
///
///   theta_{t+1} = theta_t - lr * sum_{i<K} min(1, Lambda(tau_i)/sim(x_i))
///                                 * G(theta_{t_i}, xi_i)
///
/// Scheme selects the dampening: AdaSGD (exponential + similarity boost),
/// DynSGD (inverse, no boost), FedAvg (uniform average, staleness-unaware),
/// SSGD (weight 1 each; callers guarantee zero staleness). The aggregator
/// buffers weighted gradients until K have arrived, then hands back the
/// summed update for the caller to apply with its learning rate.
///
/// Thread safety: submit(), flush(), weight_for(), similarity_of(),
/// tau_thres(), dampening_factor() and pending() are serialized by an
/// internal mutex, so one aggregation thread can submit while request
/// threads query similarity concurrently (DESIGN.md §6). The *sequence* of
/// model updates is still defined by submission order — the runtime keeps
/// AdaSGD sequential by funneling all submits through a single aggregation
/// thread. The reference accessors (weight_log(), staleness(),
/// similarity()) hand out views of internal state and are for serial
/// harnesses and post-run inspection only.
class AsyncAggregator {
 public:
  struct Config {
    Scheme scheme = Scheme::kAdaSgd;
    std::size_t aggregation_k = 1;  // K in §2.3
    double s_percent = 99.7;        // expected % of non-stragglers
    bool similarity_boost = true;   // AdaSGD's boosting term
    std::size_t staleness_window = 4096;
    /// Pin tau_thres to a fixed value instead of estimating it from the
    /// observed staleness percentile (> 0 enables). The paper does this in
    /// controlled experiments, e.g. "D1, thus tau_thres is 12" in §3.2 —
    /// with injected stragglers the online percentile would absorb them.
    double fixed_tau_thres = 0.0;
    /// Cap on weight_log(): a long-lived server must not grow memory per
    /// gradient forever. Far above any experiment harness's submission
    /// count; once reached, weights stop being logged (dampening itself is
    /// unaffected).
    std::size_t weight_log_capacity = 1u << 20;
  };

  AsyncAggregator(std::size_t parameter_count, std::size_t n_classes,
                  const Config& config);

  /// Weight this update would receive right now (pure query; submit() does
  /// the bookkeeping and reports the weight it actually applied, so callers
  /// never need both).
  double weight_for(const WorkerUpdate& update) const;

  /// Submit a gradient: one fused weighted-axpy folds it into the
  /// accumulator. The result carries the applied weight and, when the K-th
  /// gradient arrives, a view of the summed weighted update.
  SubmitResult submit(const WorkerUpdate& update);

  /// The bookkeeping half of submit(), with the numeric fold deferred:
  /// computes and records the weight exactly as submit() would (weight
  /// log, LD_global, staleness observation, round counter) and reports
  /// whether this submission completes an aggregation round. The caller
  /// owns the deferred arithmetic: one fold_into() per planned submission
  /// and, where flush was reported, a flush_span() sweep — in plan order,
  /// span by span (runtime::ShardedAggregator). Because the weight is
  /// fixed here, at planning time, and each parameter index sees the same
  /// operation sequence as submit(), the deferred fold is bitwise
  /// identical to the sequential one for any span partition.
  PlannedSubmit plan_submit(const WorkerUpdate& update);

  /// Span-wise fold: accumulator[begin,end) += weight * gradient[begin,end),
  /// the same fused axpy (and the same double->float weight cast) submit()
  /// performs over the full arena. Deliberately NOT internally locked:
  /// callers run one writer per disjoint span (the sharded fold) strictly
  /// between plan_submit() calls, so the accumulator is never touched by
  /// submit()/flush() concurrently. `gradient` is the full-length vector;
  /// the span selects the slice.
  void fold_into(std::size_t begin, std::size_t end, double weight,
                 std::span<const float> gradient);

  /// Span-wise flush: copy accumulator[begin,end) into the flushed buffer
  /// and zero it, returning a view of the flushed slice (valid until the
  /// next fold/flush of that span). Bitwise identical to the swap-based
  /// flush() — a copy preserves every bit — but leaves other spans alone.
  /// Round bookkeeping (pending reset) already happened in plan_submit();
  /// same locking contract as fold_into().
  std::span<const float> flush_span(std::size_t begin, std::size_t end);

  /// Flush whatever is buffered regardless of K (std::nullopt when empty).
  /// §2.3: "the aggregation parameter K can be either fixed or based on a
  /// time window (e.g., update the model every 1 hour)" — a time-window
  /// deployment calls flush() on its timer. The returned view stays valid
  /// until the next submit()/flush().
  std::optional<std::span<const float>> flush();

  /// sim(x) of a label distribution against the current LD_global, under
  /// the aggregator lock — the thread-safe form of
  /// `similarity().similarity(ld)` for concurrent request paths.
  double similarity_of(const stats::LabelDistribution& label_dist) const;

  /// Gradients currently buffered toward the next update.
  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
  }

  /// Dampening weights applied so far (Fig 9b plots their CDF), capped at
  /// Config::weight_log_capacity entries.
  const std::vector<double>& weight_log() const { return weight_log_; }

  /// Weights that were applied but NOT logged because weight_log() hit
  /// Config::weight_log_capacity. Dampening itself is unaffected. Unlike
  /// weight_log() — a reference accessor, post-run/quiescent only — this
  /// counter is internally locked and safe to poll live: a running
  /// deployment checks it to learn the Fig-9b trace went incomplete, and
  /// reads the log itself only after quiescing.
  std::size_t weights_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return weights_dropped_;
  }

  std::size_t parameter_count() const { return parameter_count_; }

  const StalenessTracker& staleness() const { return staleness_; }
  const SimilarityTracker& similarity() const { return similarity_; }
  const Config& config() const { return config_; }

  /// Current tau_thres-derived dampening curve value (for inspection).
  double dampening_factor(double staleness) const;

  /// Effective tau_thres: the fixed override when configured, otherwise
  /// the s-th percentile of observed staleness.
  double tau_thres() const;

 private:
  double weight_for_unlocked(const WorkerUpdate& update) const;
  double dampening_factor_unlocked(double staleness) const;
  double tau_thres_unlocked() const;
  std::optional<std::span<const float>> flush_unlocked();
  /// Shared bookkeeping of submit()/plan_submit(): weight computation and
  /// log, LD_global update, staleness observation. Returns the weight.
  double record_submit_unlocked(const WorkerUpdate& update);

  mutable std::mutex mu_;
  Config config_;
  std::size_t parameter_count_;
  StalenessTracker staleness_;
  SimilarityTracker similarity_;
  // Double buffer: submit() accumulates into accumulator_; flush() swaps the
  // buffers and returns a view of the flushed one, so the hot path never
  // allocates after construction.
  std::vector<float> accumulator_;
  std::vector<float> flushed_;
  std::size_t pending_ = 0;
  std::vector<double> weight_log_;
  std::size_t weights_dropped_ = 0;
};

}  // namespace fleet::learning
