#pragma once

#include <string>

#include "fleet/core/config.hpp"
#include "fleet/stats/quantile.hpp"

namespace fleet::core {

/// The FLeet controller (Fig 2): prevents learning tasks with low or no
/// utility from being computed at all — *before* any battery is spent —
/// by thresholding the mini-batch bound and the similarity value.
class Controller {
 public:
  explicit Controller(const ControllerConfig& config);

  struct Decision {
    bool admitted = true;
    std::string reason;  // set when rejected
  };

  /// Decide and record this request.
  Decision admit(std::size_t mini_batch, double similarity);

  std::size_t admitted_count() const { return admitted_; }
  std::size_t rejected_count() const { return rejected_; }

  /// Current effective thresholds (for inspection/benches).
  double size_threshold() const;
  double similarity_threshold() const;

 private:
  ControllerConfig config_;
  stats::RunningQuantile sizes_;
  stats::RunningQuantile similarities_;
  std::size_t admitted_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace fleet::core
