#include "fleet/core/controller.hpp"

namespace fleet::core {

Controller::Controller(const ControllerConfig& config) : config_(config) {}

double Controller::size_threshold() const {
  if (sizes_.count() < config_.min_history) return 0.0;
  return sizes_.percentile(config_.size_percentile, 0.0);
}

double Controller::similarity_threshold() const {
  if (similarities_.count() < config_.min_history) return 1.0;
  return similarities_.percentile(config_.similarity_percentile, 1.0);
}

Controller::Decision Controller::admit(std::size_t mini_batch,
                                       double similarity) {
  Decision decision;
  if (mini_batch < config_.absolute_min_batch) {
    decision.admitted = false;
    decision.reason = "mini-batch below absolute floor";
  } else if (sizes_.count() >= config_.min_history &&
             static_cast<double>(mini_batch) < size_threshold()) {
    decision.admitted = false;
    decision.reason = "mini-batch below size percentile threshold";
  } else if (similarities_.count() >= config_.min_history &&
             similarity > similarity_threshold()) {
    decision.admitted = false;
    decision.reason = "similarity above percentile threshold";
  }
  // Record after deciding so a request is not judged against itself.
  sizes_.add(static_cast<double>(mini_batch));
  similarities_.add(similarity);
  if (decision.admitted) {
    ++admitted_;
  } else {
    ++rejected_;
  }
  return decision;
}

}  // namespace fleet::core
