#include "fleet/core/config.hpp"

#include <stdexcept>

namespace fleet::core {

void validate(const ServerConfig& config) {
  if (config.learning_rate <= 0.0f) {
    throw std::invalid_argument("ServerConfig: learning_rate must be > 0");
  }
  if (config.aggregator.aggregation_k == 0) {
    throw std::invalid_argument("ServerConfig: aggregation K must be >= 1");
  }
  if (config.controller.size_percentile < 0.0 ||
      config.controller.size_percentile > 100.0) {
    throw std::invalid_argument(
        "ServerConfig: size_percentile outside [0,100]");
  }
  if (config.controller.similarity_percentile < 0.0 ||
      config.controller.similarity_percentile > 100.0) {
    throw std::invalid_argument(
        "ServerConfig: similarity_percentile outside [0,100]");
  }
  if (config.slo.latency_s <= 0.0 || config.slo.energy_pct <= 0.0) {
    throw std::invalid_argument("ServerConfig: non-positive SLO");
  }
  if (config.snapshot_window == 0) {
    throw std::invalid_argument("ServerConfig: snapshot_window must be >= 1");
  }
}

}  // namespace fleet::core
