#include "fleet/core/server.hpp"

#include <stdexcept>

namespace fleet::core {

FleetServer::FleetServer(nn::TrainableModel& model,
                         std::unique_ptr<profiler::Profiler> profiler,
                         const ServerConfig& config)
    : model_(model),
      profiler_(std::move(profiler)),
      config_(config),
      controller_(config.controller),
      aggregator_(model.parameter_count(), model.n_classes(),
                  config.aggregator),
      store_(config.snapshot_window) {
  if (profiler_ == nullptr) {
    throw std::invalid_argument("FleetServer: null profiler");
  }
}

void FleetServer::refresh_snapshot() {
  if (!store_.contains(version_)) return;  // nothing cached; lazy path serves
  const auto view = model_.parameters_view();
  store_.publish(version_, ModelStore::Buffer(view.begin(), view.end()));
}

ModelStore::Snapshot FleetServer::current_snapshot() {
  if (auto snapshot = store_.at(version_)) return snapshot;
  // First request since the last model update: materialize theta^(t) once
  // (a single bulk copy out of the parameter arena) and publish it; every
  // further request at this version shares the handle.
  const auto view = model_.parameters_view();
  return store_.publish(version_, ModelStore::Buffer(view.begin(), view.end()));
}

TaskAssignment FleetServer::handle_request(
    const profiler::DeviceFeatures& features, const std::string& device_model,
    const stats::LabelDistribution& label_info) {
  TaskAssignment assignment;
  const std::size_t bound = profiler_->predict_batch(features, device_model);
  const double similarity = aggregator_.similarity_of(label_info);
  const Controller::Decision decision = controller_.admit(bound, similarity);
  if (!decision.admitted) {
    assignment.accepted = false;
    assignment.reject_reason = decision.reason;
    return assignment;
  }
  assignment.accepted = true;
  assignment.model_version = version_;
  assignment.mini_batch = bound;
  assignment.snapshot = current_snapshot();
  return assignment;
}

GradientReceipt FleetServer::handle_gradient(
    std::size_t task_version, std::span<const float> gradient,
    const stats::LabelDistribution& label_info, std::size_t mini_batch,
    const std::optional<profiler::Observation>& feedback) {
  if (task_version > version_) {
    throw std::invalid_argument(
        "FleetServer::handle_gradient: task version from the future");
  }
  GradientReceipt receipt;
  // tau_i = t - t_i is known exactly from the logical clock (Eq. 3) —
  // ring eviction affects which *snapshot* a version resolves to, never
  // the staleness: an ultra-stale gradient must see Lambda(tau) for its
  // true tau, not the window edge.
  receipt.staleness = static_cast<double>(version_ - task_version);
  receipt.similarity = aggregator_.similarity_of(label_info);

  learning::WorkerUpdate update;
  update.gradient = gradient;
  update.staleness = receipt.staleness;
  update.label_dist = label_info;
  update.mini_batch = mini_batch;
  // submit() reports the weight it applied — no second dampening pass.
  const learning::SubmitResult result = aggregator_.submit(update);
  receipt.weight = result.weight;
  if (result.aggregate) {
    model_.apply_gradient(*result.aggregate, config_.learning_rate);
    ++version_;
    receipt.model_updated = true;
  }
  receipt.version = version_;

  if (feedback.has_value()) {
    profiler_->observe(*feedback);
  }
  return receipt;
}

}  // namespace fleet::core
