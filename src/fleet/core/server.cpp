#include "fleet/core/server.hpp"

#include <stdexcept>

namespace fleet::core {

FleetServer::FleetServer(nn::TrainableModel& model,
                         std::unique_ptr<profiler::Profiler> profiler,
                         const ServerConfig& config)
    : model_(model),
      profiler_(std::move(profiler)),
      config_(config),
      controller_(config.controller),
      aggregator_(model.parameter_count(), model.n_classes(),
                  config.aggregator) {
  if (profiler_ == nullptr) {
    throw std::invalid_argument("FleetServer: null profiler");
  }
}

TaskAssignment FleetServer::handle_request(
    const profiler::DeviceFeatures& features, const std::string& device_model,
    const stats::LabelDistribution& label_info) {
  TaskAssignment assignment;
  const std::size_t bound = profiler_->predict_batch(features, device_model);
  const double similarity = aggregator_.similarity().similarity(label_info);
  const Controller::Decision decision = controller_.admit(bound, similarity);
  if (!decision.admitted) {
    assignment.accepted = false;
    assignment.reject_reason = decision.reason;
    return assignment;
  }
  assignment.accepted = true;
  assignment.model_version = version_;
  assignment.mini_batch = bound;
  assignment.parameters = model_.parameters();
  return assignment;
}

GradientReceipt FleetServer::handle_gradient(
    std::size_t task_version, std::vector<float> gradient,
    const stats::LabelDistribution& label_info, std::size_t mini_batch,
    const std::optional<profiler::Observation>& feedback) {
  if (task_version > version_) {
    throw std::invalid_argument(
        "FleetServer::handle_gradient: task version from the future");
  }
  GradientReceipt receipt;
  receipt.staleness = static_cast<double>(version_ - task_version);
  receipt.similarity = aggregator_.similarity().similarity(label_info);

  learning::WorkerUpdate update;
  update.gradient = std::move(gradient);
  update.staleness = receipt.staleness;
  update.label_dist = label_info;
  update.mini_batch = mini_batch;
  receipt.weight = aggregator_.weight_for(update);

  if (auto summed = aggregator_.submit(update)) {
    model_.apply_gradient(*summed, config_.learning_rate);
    ++version_;
    receipt.model_updated = true;
  }
  receipt.version = version_;

  if (feedback.has_value()) {
    profiler_->observe(*feedback);
  }
  return receipt;
}

}  // namespace fleet::core
