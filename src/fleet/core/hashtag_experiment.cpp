#include "fleet/core/hashtag_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "fleet/device/catalog.hpp"
#include "fleet/stats/metrics.hpp"

namespace fleet::core {

namespace {

constexpr double kSecondsPerHour = 3600.0;

/// Group chunk samples by user and emit per-user mini-batches, matching the
/// paper's "group the data into mini-batches based on the user id".
std::vector<std::vector<nn::SequenceSample>> user_batches(
    const std::vector<const data::Tweet*>& tweets) {
  std::map<int, std::vector<nn::SequenceSample>> by_user;
  for (const data::Tweet* tw : tweets) {
    for (int hashtag : tw->hashtags) {
      nn::SequenceSample s;
      s.tokens = tw->tokens;
      s.target = hashtag;
      by_user[tw->user].push_back(std::move(s));
    }
  }
  std::vector<std::vector<nn::SequenceSample>> batches;
  batches.reserve(by_user.size());
  for (auto& [user, samples] : by_user) batches.push_back(std::move(samples));
  return batches;
}

/// One SGD pass over per-user mini-batches (one gradient per user batch).
void train_on(nn::RnnClassifier& model,
              const std::vector<std::vector<nn::SequenceSample>>& batches,
              float lr, std::vector<float>& scratch) {
  for (const auto& batch : batches) {
    if (batch.empty()) continue;
    model.gradient(batch, scratch);
    model.apply_gradient(scratch, lr);
  }
}

double evaluate_f1(nn::RnnClassifier& model,
                   const std::vector<const data::Tweet*>& tweets,
                   std::size_t top_k) {
  if (tweets.empty()) return 0.0;
  double sum_f1 = 0.0;
  for (const data::Tweet* tw : tweets) {
    const std::vector<float> scores = model.scores(tw->tokens);
    const auto recommended = stats::top_k(scores, top_k);
    std::vector<std::size_t> relevant;
    for (int h : tw->hashtags) relevant.push_back(static_cast<std::size_t>(h));
    sum_f1 += stats::precision_recall_at_k(recommended, relevant).f1;
  }
  return sum_f1 / static_cast<double>(tweets.size());
}

double evaluate_popular_f1(const std::vector<std::size_t>& top,
                           const std::vector<const data::Tweet*>& tweets) {
  if (tweets.empty() || top.empty()) return 0.0;
  double sum_f1 = 0.0;
  for (const data::Tweet* tw : tweets) {
    std::vector<std::size_t> relevant;
    for (int h : tw->hashtags) relevant.push_back(static_cast<std::size_t>(h));
    sum_f1 += stats::precision_recall_at_k(top, relevant).f1;
  }
  return sum_f1 / static_cast<double>(tweets.size());
}

}  // namespace

HashtagExperimentResult run_online_vs_standard(
    const data::TweetStream& stream, const HashtagExperimentConfig& config) {
  const auto& sc = stream.config();
  const double chunk_s = config.chunk_hours * kSecondsPerHour;
  const double shard_s = config.shard_days * 24.0 * kSecondsPerHour;
  const double standard_period_s =
      config.standard_period_hours * kSecondsPerHour;
  const double duration_s = sc.days * 24.0 * kSecondsPerHour;

  nn::RnnClassifier online(sc.vocab_size, config.embed_dim, config.hidden_dim,
                           sc.n_hashtags, config.max_bptt);
  nn::RnnClassifier standard(sc.vocab_size, config.embed_dim,
                             config.hidden_dim, sc.n_hashtags,
                             config.max_bptt);

  HashtagExperimentResult result;
  std::vector<float> scratch;
  std::vector<double> boosts;

  // Standard FL trains nightly on the previous day; we accumulate the day's
  // batches and flush at each period boundary.
  std::vector<std::vector<nn::SequenceSample>> standard_backlog;
  // Popularity counts within the current shard (training data seen so far).
  std::map<int, std::size_t> popular_counts;

  double next_standard_update = standard_period_s;
  double shard_start = 0.0;
  online.init(config.seed);
  standard.init(config.seed);

  for (double t = 0.0; t + chunk_s <= duration_s; t += chunk_s) {
    if (t - shard_start >= shard_s) {
      // Shard boundary: reset models and popularity, per §3.1.
      shard_start = t;
      online.init(config.seed + static_cast<std::uint64_t>(t));
      standard.init(config.seed + static_cast<std::uint64_t>(t));
      standard_backlog.clear();
      popular_counts.clear();
    }

    const auto eval_tweets = stream.window(t, t + chunk_s);

    // Evaluate on this chunk *before* training on it: both models predict
    // the future from what they have seen so far.
    ChunkScore score;
    score.start_hour = t / kSecondsPerHour;
    score.n_eval_tweets = eval_tweets.size();
    if (!eval_tweets.empty()) {
      score.f1_online = evaluate_f1(online, eval_tweets, config.top_k);
      score.f1_standard = evaluate_f1(standard, eval_tweets, config.top_k);
      std::vector<std::pair<std::size_t, int>> ranked;
      for (const auto& [h, c] : popular_counts) ranked.emplace_back(c, h);
      std::sort(ranked.rbegin(), ranked.rend());
      std::vector<std::size_t> top;
      for (std::size_t i = 0; i < std::min(config.top_k, ranked.size()); ++i) {
        top.push_back(static_cast<std::size_t>(ranked[i].second));
      }
      score.f1_popular = evaluate_popular_f1(top, eval_tweets);
      result.chunks.push_back(score);
      if (score.f1_standard > 1e-9) {
        boosts.push_back(score.f1_online / score.f1_standard);
      }
    }

    // Online FL: absorb this chunk immediately.
    auto batches = user_batches(eval_tweets);
    train_on(online, batches, config.learning_rate, scratch);

    // Standard FL: queue the same batches for the nightly round.
    for (auto& b : batches) standard_backlog.push_back(std::move(b));
    if (t + chunk_s >= next_standard_update) {
      train_on(standard, standard_backlog, config.learning_rate, scratch);
      standard_backlog.clear();
      next_standard_update += standard_period_s;
    }

    for (const data::Tweet* tw : eval_tweets) {
      for (int h : tw->hashtags) ++popular_counts[h];
    }
  }

  double so = 0.0, ss = 0.0, sp = 0.0;
  for (const ChunkScore& c : result.chunks) {
    so += c.f1_online;
    ss += c.f1_standard;
    sp += c.f1_popular;
  }
  const auto n = static_cast<double>(std::max<std::size_t>(
      result.chunks.size(), 1));
  result.mean_f1_online = so / n;
  result.mean_f1_standard = ss / n;
  result.mean_f1_popular = sp / n;
  result.mean_boost =
      boosts.empty() ? 0.0 : stats::mean(boosts);
  return result;
}

EnergyImpact measure_energy_impact(const data::TweetStream& stream,
                                   std::uint64_t seed) {
  device::DeviceSim pi(device::spec("Raspberry Pi 4"), seed);
  const device::CoreAllocation all_cores{pi.spec().n_big, pi.spec().n_little};

  EnergyImpact impact;
  impact.idle_power_w = pi.spec().idle_power_w;
  impact.power_batch1_w = pi.power(all_cores);
  impact.power_batch100_w = pi.power(all_cores);

  // Replay the stream chunk by chunk; each user's per-hour mini-batch is
  // one gradient computation on the Pi-like worker. Aggregate energy per
  // user per day, as the paper reports daily consumption per user.
  constexpr double kChunk = 3600.0;
  const double duration_s = stream.config().days * 24.0 * 3600.0;
  std::map<std::pair<int, int>, double> user_day_mwh;  // (user, day) -> mWh
  for (double t = 0.0; t + kChunk <= duration_s; t += kChunk) {
    std::map<int, std::size_t> batch_per_user;
    for (const data::Tweet* tw : stream.window(t, t + kChunk)) {
      batch_per_user[tw->user] += tw->hashtags.size();
    }
    const int day = static_cast<int>(t / (24.0 * 3600.0));
    for (const auto& [user, n] : batch_per_user) {
      const device::TaskExecution exec = pi.run_task(n, all_cores);
      user_day_mwh[{user, day}] += exec.energy_mwh;
      pi.idle(kChunk / 4.0);  // plenty of cool-down between hourly tasks
    }
  }
  std::vector<double> daily;
  daily.reserve(user_day_mwh.size());
  for (const auto& [key, mwh] : user_day_mwh) daily.push_back(mwh);
  if (daily.empty()) return impact;
  std::sort(daily.begin(), daily.end());
  impact.avg_daily_mwh = stats::mean(daily);
  impact.median_daily_mwh = daily[daily.size() / 2];
  impact.p99_daily_mwh = daily[static_cast<std::size_t>(
      std::min<double>(static_cast<double>(daily.size()) - 1.0,
                       std::ceil(0.99 * static_cast<double>(daily.size()))))];
  impact.max_daily_mwh = daily.back();
  return impact;
}

}  // namespace fleet::core
