#pragma once

#include <memory>
#include <vector>

#include "fleet/core/server.hpp"
#include "fleet/data/dataset.hpp"
#include "fleet/device/allocation.hpp"
#include "fleet/device/device_model.hpp"

namespace fleet::core {

/// A FLeet worker: the library embedded in the mobile ML application
/// (Fig 2, right side). Owns the local data slice, a simulated device and a
/// private model replica used to compute gradients on server-provided
/// parameters. User data never leaves the worker — only gradients and label
/// *indices* do, matching the paper's privacy posture.
///
/// Thread affinity: a worker is a single-threaded object (replica, device
/// sim and RNG are all private mutable state), but different workers are
/// fully independent — the dataset reference is read-only — so a driver may
/// run disjoint workers on parallel OS threads, which is exactly what
/// `runtime::ParallelFleet` does (DESIGN.md §6).
class FleetWorker {
 public:
  FleetWorker(int user_id, std::unique_ptr<nn::TrainableModel> replica,
              const data::Dataset& dataset,
              std::vector<std::size_t> local_indices,
              const device::DeviceSpec& device_spec, std::uint64_t seed);

  /// Step 1 of the protocol: device info + label info.
  profiler::DeviceFeatures device_info();
  stats::LabelDistribution label_info() const;

  struct ExecutionResult {
    std::vector<float> gradient;
    stats::LabelDistribution minibatch_labels{1};
    std::size_t mini_batch = 0;
    double loss = 0.0;
    device::TaskExecution execution;       // measured time/energy
    profiler::Observation observation;     // profiler feedback payload
  };

  /// Execute an accepted assignment: sample a local mini-batch of the
  /// assigned size, compute the gradient at the given parameters, and
  /// charge the simulated device for it.
  ExecutionResult execute(const TaskAssignment& assignment);

  int user_id() const { return user_id_; }
  device::DeviceSim& device() { return device_; }
  std::size_t local_size() const { return local_indices_.size(); }

 private:
  int user_id_;
  std::unique_ptr<nn::TrainableModel> replica_;
  const data::Dataset& dataset_;
  std::vector<std::size_t> local_indices_;
  device::DeviceSim device_;
  stats::Rng rng_;
};

}  // namespace fleet::core
