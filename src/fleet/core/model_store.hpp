#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace fleet::core {

/// Ring buffer of immutable, reference-counted model snapshots keyed by the
/// server's logical clock (DESIGN.md §4).
///
/// The FLeet protocol hands every worker the parameter vector theta^(t_i)
/// it must compute its gradient against (Fig 2, step 4), and resolves the
/// returning gradient's staleness tau_i = t - t_i against that version
/// (§2.3). Materializing a fresh copy per request makes the request path
/// O(|theta|) allocations per worker; the store instead publishes one
/// immutable snapshot per version and hands out shared_ptr handles, so a
/// 10k-worker fleet at the same clock value shares a single buffer and the
/// system holds O(window) parameter buffers total, regardless of request
/// volume. A snapshot stays alive while any in-flight task still references
/// it, even after the ring evicts its slot.
class ModelStore {
 public:
  using Buffer = std::vector<float>;
  /// Immutable shared snapshot handle. Cheap to copy, never deep-copied.
  using Snapshot = std::shared_ptr<const Buffer>;

  /// `window`: number of versions retained (>= 1). Like the paper's
  /// bounded-staleness setups, anything staler than the window resolves to
  /// the oldest retained snapshot.
  explicit ModelStore(std::size_t window);

  /// Store the snapshot for `version`, evicting whatever occupied its ring
  /// slot. Returns the shared handle. Publishing the same version twice
  /// replaces the snapshot (the last write wins).
  Snapshot publish(std::size_t version, Buffer parameters);

  /// Exact lookup; nullptr when `version` was never published or has been
  /// evicted from the ring.
  Snapshot at(std::size_t version) const;

  /// Lookup with staleness clamping: the snapshot for `version`, or the
  /// oldest retained snapshot when `version` fell off the ring. nullptr
  /// only when the store is empty.
  Snapshot resolve(std::size_t version) const;

  /// Existence probe; unlike at(), does not count toward hits().
  bool contains(std::size_t version) const {
    const Entry& slot = entries_[version % entries_.size()];
    return slot.valid && slot.version == version;
  }

  /// Clamp a task's origin version to the oldest version the ring can still
  /// hold at logical clock `current`: staleness beyond the window resolves
  /// to the window edge (bounded-staleness history semantics).
  std::size_t clamp(std::size_t version, std::size_t current) const {
    const std::size_t w = entries_.size();
    if (current >= w && version + w <= current) return current - w + 1;
    return version;
  }

  std::size_t window() const { return entries_.size(); }
  bool empty() const { return published_ == 0; }

  /// Highest version ever published (0 when empty).
  std::size_t latest_version() const { return latest_; }

  /// Total publishes — the number of parameter buffers ever materialized.
  /// Contrast with hits() to see how much the ring amortizes.
  std::size_t publishes() const { return published_; }

  /// Successful shared lookups served without materializing anything.
  std::size_t hits() const { return hits_; }

 private:
  struct Entry {
    bool valid = false;
    std::size_t version = 0;
    Snapshot snapshot;
  };

  std::vector<Entry> entries_;
  std::size_t latest_ = 0;
  std::size_t published_ = 0;
  mutable std::size_t hits_ = 0;
};

}  // namespace fleet::core
