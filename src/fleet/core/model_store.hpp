#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "fleet/core/atomic_shared.hpp"

namespace fleet::core {

/// Ring buffer of immutable, reference-counted model snapshots keyed by the
/// server's logical clock (DESIGN.md §4, threading model §6).
///
/// The FLeet protocol hands every worker the parameter vector theta^(t_i)
/// it must compute its gradient against (Fig 2, step 4), and resolves the
/// returning gradient's staleness tau_i = t - t_i against that version
/// (§2.3). Materializing a fresh copy per request makes the request path
/// O(|theta|) allocations per worker; the store instead publishes one
/// immutable snapshot per version and hands out shared_ptr handles, so a
/// 10k-worker fleet at the same clock value shares a single buffer and the
/// system holds O(window) parameter buffers total, regardless of request
/// volume. A snapshot stays alive while any in-flight task still references
/// it, even after the ring evicts its slot.
///
/// Concurrency contract (single publisher, many readers): each ring slot is
/// an atomically swapped shared_ptr to an immutable (version, snapshot)
/// record (AtomicSharedPtr — a constant-time handle swap; see that header
/// for why std::atomic<shared_ptr> is not usable), so at()/resolve()/
/// contains() are safe from any thread while one thread publishes, and the
/// snapshot buffers themselves are kept alive by the shared_ptr control
/// block's atomic refcounts. publish() asserts the single-publisher
/// invariant: two threads publishing concurrently is a protocol violation
/// (the logical clock has exactly one owner) and throws std::logic_error
/// when detected.
class ModelStore {
 public:
  using Buffer = std::vector<float>;
  /// Immutable shared snapshot handle. Cheap to copy, never deep-copied;
  /// refcount updates are atomic, so handles may be acquired and released
  /// from any thread.
  using Snapshot = std::shared_ptr<const Buffer>;

  /// `window`: number of versions retained (>= 1). Like the paper's
  /// bounded-staleness setups, anything staler than the window resolves to
  /// the oldest retained snapshot.
  explicit ModelStore(std::size_t window);

  /// Store the snapshot for `version`, evicting whatever occupied its ring
  /// slot. Returns the shared handle. Publishing the same version twice
  /// replaces the snapshot (the last write wins). Single-publisher only.
  Snapshot publish(std::size_t version, Buffer parameters);

  /// Exact lookup; nullptr when `version` was never published or has been
  /// evicted from the ring. One constant-time atomic record copy (a
  /// micro-spinlocked handle, see AtomicSharedPtr — not formally
  /// lock-free); safe concurrently with publish().
  Snapshot at(std::size_t version) const;

  /// Lookup with staleness clamping: the snapshot for `version`, or the
  /// oldest retained snapshot when `version` fell off the ring. nullptr
  /// only when the store is empty.
  Snapshot resolve(std::size_t version) const;

  /// Existence probe; unlike at(), does not count toward hits().
  bool contains(std::size_t version) const {
    const SlotPtr slot = slots_[version % window_].load();
    return slot != nullptr && slot->version == version;
  }

  /// Clamp a task's origin version to the oldest version the ring can still
  /// hold at logical clock `current`: staleness beyond the window resolves
  /// to the window edge (bounded-staleness history semantics).
  std::size_t clamp(std::size_t version, std::size_t current) const {
    const std::size_t w = window_;
    if (current >= w && version + w <= current) return current - w + 1;
    return version;
  }

  std::size_t window() const { return window_; }
  bool empty() const { return published_.load(std::memory_order_acquire) == 0; }

  /// Highest version ever published (0 when empty).
  std::size_t latest_version() const {
    return latest_.load(std::memory_order_acquire);
  }

  /// Total publishes — the number of parameter buffers ever materialized.
  /// Contrast with hits() to see how much the ring amortizes.
  std::size_t publishes() const {
    return published_.load(std::memory_order_relaxed);
  }

  /// Successful shared lookups served without materializing anything.
  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  /// Immutable once published; the slot swaps whole records so readers
  /// always observe a consistent (version, snapshot) pair.
  struct SlotRecord {
    std::size_t version = 0;
    Snapshot snapshot;
  };
  using SlotPtr = std::shared_ptr<const SlotRecord>;

  std::size_t window_;
  std::unique_ptr<AtomicSharedPtr<const SlotRecord>[]> slots_;
  std::atomic<std::size_t> latest_{0};
  std::atomic<std::size_t> published_{0};
  mutable std::atomic<std::size_t> hits_{0};
  /// Single-publisher tripwire (see class comment).
  std::atomic_flag publishing_ = ATOMIC_FLAG_INIT;
};

}  // namespace fleet::core
