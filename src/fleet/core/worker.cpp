#include "fleet/core/worker.hpp"

#include <algorithm>
#include <stdexcept>

namespace fleet::core {

FleetWorker::FleetWorker(int user_id,
                         std::unique_ptr<nn::TrainableModel> replica,
                         const data::Dataset& dataset,
                         std::vector<std::size_t> local_indices,
                         const device::DeviceSpec& device_spec,
                         std::uint64_t seed)
    : user_id_(user_id),
      replica_(std::move(replica)),
      dataset_(dataset),
      local_indices_(std::move(local_indices)),
      device_(device_spec, seed),
      rng_(seed ^ 0x9e3779b97f4a7c15ULL) {
  if (replica_ == nullptr) {
    throw std::invalid_argument("FleetWorker: null model replica");
  }
  if (local_indices_.empty()) {
    throw std::invalid_argument("FleetWorker: empty local dataset");
  }
}

profiler::DeviceFeatures FleetWorker::device_info() {
  return device_.features();
}

stats::LabelDistribution FleetWorker::label_info() const {
  stats::LabelDistribution ld(dataset_.n_classes());
  for (std::size_t idx : local_indices_) {
    ld.add(dataset_.label(idx));
  }
  return ld;
}

FleetWorker::ExecutionResult FleetWorker::execute(
    const TaskAssignment& assignment) {
  if (!assignment.accepted) {
    throw std::invalid_argument("FleetWorker::execute: rejected assignment");
  }
  if (assignment.snapshot == nullptr) {
    throw std::invalid_argument("FleetWorker::execute: assignment without "
                                "model snapshot");
  }
  const std::size_t n = std::min(assignment.mini_batch, local_indices_.size());
  if (n == 0) {
    throw std::invalid_argument("FleetWorker::execute: zero mini-batch");
  }
  // Mini-batch drawn uniformly from the local dataset (§2.3).
  const auto picks = rng_.sample_without_replacement(local_indices_.size(), n);
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = local_indices_[picks[i]];
  const nn::Batch batch = dataset_.make_batch(indices);

  ExecutionResult result;
  result.mini_batch = n;
  result.minibatch_labels =
      stats::LabelDistribution::from_labels(batch.labels, dataset_.n_classes());

  // One bulk load out of the shared snapshot — the only copy on the
  // worker's side of the protocol.
  replica_->load_parameters(assignment.parameters());
  result.loss = replica_->gradient(batch, result.gradient);

  // Charge the device: features snapshot first (request-time state), then
  // the task execution itself.
  const profiler::DeviceFeatures features = device_.features();
  result.execution =
      device_.run_task(n, device::fleet_allocation(device_.spec()));
  result.observation.device_model = device_.model_name();
  result.observation.features = features;
  result.observation.mini_batch = n;
  result.observation.time_s = result.execution.time_s;
  result.observation.energy_pct = result.execution.energy_pct;
  return result;
}

}  // namespace fleet::core
