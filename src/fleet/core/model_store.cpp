#include "fleet/core/model_store.hpp"

#include <stdexcept>

namespace fleet::core {

namespace {

/// RAII guard for the single-publisher invariant: throws when a second
/// thread enters publish() while one is already inside.
class PublishGuard {
 public:
  explicit PublishGuard(std::atomic_flag& flag) : flag_(flag) {
    if (flag_.test_and_set(std::memory_order_acquire)) {
      throw std::logic_error(
          "ModelStore::publish: concurrent publish detected — the store has "
          "a single-publisher contract (one logical-clock owner)");
    }
  }
  ~PublishGuard() { flag_.clear(std::memory_order_release); }

  PublishGuard(const PublishGuard&) = delete;
  PublishGuard& operator=(const PublishGuard&) = delete;

 private:
  std::atomic_flag& flag_;
};

}  // namespace

ModelStore::ModelStore(std::size_t window)
    : window_(window),
      slots_(window > 0
                 ? std::make_unique<AtomicSharedPtr<const SlotRecord>[]>(window)
                 : nullptr) {
  if (window == 0) {
    throw std::invalid_argument("ModelStore: window must be >= 1");
  }
}

ModelStore::Snapshot ModelStore::publish(std::size_t version,
                                         Buffer parameters) {
  PublishGuard guard(publishing_);
  auto record = std::make_shared<const SlotRecord>(SlotRecord{
      version, std::make_shared<const Buffer>(std::move(parameters))});
  Snapshot snapshot = record->snapshot;
  slots_[version % window_].store(std::move(record));
  if (published_.load(std::memory_order_relaxed) == 0 ||
      version > latest_.load(std::memory_order_relaxed)) {
    latest_.store(version, std::memory_order_release);
  }
  published_.fetch_add(1, std::memory_order_release);
  return snapshot;
}

ModelStore::Snapshot ModelStore::at(std::size_t version) const {
  const SlotPtr slot = slots_[version % window_].load();
  if (slot == nullptr || slot->version != version) return nullptr;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return slot->snapshot;
}

ModelStore::Snapshot ModelStore::resolve(std::size_t version) const {
  if (auto exact = at(version)) return exact;
  // Evicted (or never published): clamp to the oldest snapshot the ring
  // still holds, mirroring bounded-staleness history semantics.
  SlotPtr oldest;
  for (std::size_t i = 0; i < window_; ++i) {
    const SlotPtr slot = slots_[i].load();
    if (slot == nullptr) continue;
    if (oldest == nullptr || slot->version < oldest->version) {
      oldest = slot;
    }
  }
  if (oldest == nullptr) return nullptr;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return oldest->snapshot;
}

}  // namespace fleet::core
