#include "fleet/core/model_store.hpp"

#include <stdexcept>

namespace fleet::core {

ModelStore::ModelStore(std::size_t window) : entries_(window) {
  if (window == 0) {
    throw std::invalid_argument("ModelStore: window must be >= 1");
  }
}

ModelStore::Snapshot ModelStore::publish(std::size_t version,
                                         Buffer parameters) {
  Entry& slot = entries_[version % entries_.size()];
  slot.valid = true;
  slot.version = version;
  slot.snapshot = std::make_shared<const Buffer>(std::move(parameters));
  if (published_ == 0 || version > latest_) latest_ = version;
  ++published_;
  return slot.snapshot;
}

ModelStore::Snapshot ModelStore::at(std::size_t version) const {
  const Entry& slot = entries_[version % entries_.size()];
  if (!slot.valid || slot.version != version) return nullptr;
  ++hits_;
  return slot.snapshot;
}

ModelStore::Snapshot ModelStore::resolve(std::size_t version) const {
  if (auto exact = at(version)) return exact;
  // Evicted (or never published): clamp to the oldest snapshot the ring
  // still holds, mirroring bounded-staleness history semantics.
  const Entry* oldest = nullptr;
  for (const Entry& entry : entries_) {
    if (!entry.valid) continue;
    if (oldest == nullptr || entry.version < oldest->version) {
      oldest = &entry;
    }
  }
  if (oldest == nullptr) return nullptr;
  ++hits_;
  return oldest->snapshot;
}

}  // namespace fleet::core
