#pragma once

#include <queue>
#include <vector>

#include "fleet/core/server.hpp"
#include "fleet/core/worker.hpp"
#include "fleet/net/network_model.hpp"

namespace fleet::core {

/// Discrete-event simulation of a FLeet deployment (substitution #6 in
/// DESIGN.md §3): workers request tasks, compute gradients on their
/// simulated devices and return them over the network model; the server
/// clock advances with model updates, so staleness emerges endogenously
/// from compute + network latency overlap.
class FleetSimulation {
 public:
  struct Config {
    double duration_s = 3600.0;
    /// Mean idle time between a worker's gradient upload and its next
    /// request (exponential).
    double think_time_mean_s = 30.0;
    /// Probability that a computed gradient never arrives at the server
    /// (device churn: the app is killed, the uplink drops, the user walks
    /// out of coverage). The battery was still spent, but the server never
    /// hears back — while surviving uploads pin their model snapshot for
    /// the whole simulated flight (the arrival event holds the handle), a
    /// dropped one releases it at the loss. 0 disables (and draws nothing
    /// from the RNG, preserving the event sequences of dropout-free runs).
    double dropout_prob = 0.0;
    net::NetworkModel::Config network;
    std::uint64_t seed = 1;
  };

  struct Stats {
    std::size_t requests = 0;
    std::size_t rejected = 0;
    std::size_t gradients = 0;
    /// Gradients computed but lost to dropout before reaching the server.
    std::size_t dropped = 0;
    std::size_t model_updates = 0;
    std::vector<double> staleness_values;
    std::vector<double> task_times_s;
    std::vector<double> task_energies_pct;
    std::vector<double> round_trip_s;
  };

  FleetSimulation(FleetServer& server, std::vector<FleetWorker>& workers,
                  const Config& config);

  /// Run until the virtual clock passes the configured duration.
  Stats run();

 private:
  struct Event {
    double time_s = 0.0;
    std::size_t worker = 0;
    enum class Kind { kRequest, kGradientArrival } kind = Kind::kRequest;
    // Payload for gradient arrivals. The snapshot handle rides along so an
    // in-flight task pins theta^(t_i) for its whole simulated round trip —
    // ring eviction during a straggler's flight must not free the buffer.
    std::size_t task_version = 0;
    std::shared_ptr<FleetWorker::ExecutionResult> result;
    ModelStore::Snapshot snapshot;

    bool operator>(const Event& other) const { return time_s > other.time_s; }
  };

  FleetServer& server_;
  std::vector<FleetWorker>& workers_;
  Config config_;
  net::NetworkModel network_;
  stats::Rng rng_;
};

}  // namespace fleet::core
