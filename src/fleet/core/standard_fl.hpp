#pragma once

#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/stats/rng.hpp"

namespace fleet::core {

/// Device availability under Standard FL's constraint (§1): a device is
/// eligible only while idle, charging and on unmetered WiFi — which for
/// most phones means overnight. Availability is a diurnal probability,
/// high at night and low during the day; Google's reported effect is that
/// day-time rounds see a small, skewed population.
struct AvailabilityModel {
  double night_probability = 0.8;  // eligible during the night window
  double day_probability = 0.04;   // eligible during the day
  double night_start_hour = 23.0;
  double night_end_hour = 6.0;

  bool is_night(double time_s) const;
  bool available(double time_s, stats::Rng& rng) const;
};

/// Synchronous Standard-FL training (FedAvg, McMahan et al.): at each
/// round the server samples available devices, ships the model, averages
/// the returned gradients and applies one update. Rounds fire on a fixed
/// period (24 h by default, matching "with most devices available at
/// night the model is generally updated every 24 hours").
struct StandardFlConfig {
  double round_period_s = 24.0 * 3600.0;
  double duration_s = 10.0 * 24.0 * 3600.0;
  std::size_t devices_per_round = 20;
  std::size_t mini_batch = 32;
  /// Local SGD steps each selected device performs per round.
  std::size_t local_steps = 5;
  float learning_rate = 0.05f;
  AvailabilityModel availability;
  std::uint64_t seed = 1;
};

struct StandardFlResult {
  std::size_t rounds = 0;
  std::size_t participating_devices = 0;  // across all rounds
  std::size_t skipped_rounds = 0;         // no eligible devices
  std::vector<double> round_accuracy;     // after each round
  double final_accuracy = 0.0;
};

/// Run Standard FL over a user partition. Devices perform FedAvg-style
/// local training (local_steps mini-batch steps) and the server averages
/// the resulting model deltas.
StandardFlResult run_standard_fl(nn::TrainableModel& model,
                                 const data::Dataset& train,
                                 const data::Partition& users,
                                 const data::Dataset& test,
                                 const StandardFlConfig& config);

}  // namespace fleet::core
