#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "fleet/core/controller.hpp"
#include "fleet/core/model_store.hpp"
#include "fleet/nn/model.hpp"
#include "fleet/profiler/features.hpp"

namespace fleet::core {

/// Identifies one learning task (model + profiler + controller + AdaSGD
/// state) on a multi-tenant server. The single-model serial `FleetServer`
/// always serves `kDefaultModelId`; `runtime::ConcurrentFleetServer` hosts
/// many ids side by side (DESIGN.md §7) and every assignment, gradient and
/// receipt carries the id it belongs to.
using ModelId = std::size_t;
inline constexpr ModelId kDefaultModelId = 0;

/// What the server hands a worker for one learning task (Fig 2, steps 2-4).
/// The model snapshot theta^(t_i) is a shared handle into the server's
/// ModelStore: every worker assigned at the same logical clock value holds
/// the *same* immutable buffer, so the request path copies nothing.
struct TaskAssignment {
  bool accepted = false;
  std::string reject_reason;
  ModelId model_id = kDefaultModelId;  // learning task this assignment is for
  std::size_t model_version = 0;   // logical clock t_i the task starts from
  std::size_t mini_batch = 0;      // I-Prof's workload bound
  ModelStore::Snapshot snapshot;   // shared model snapshot theta^(t_i)

  /// Flat view of the snapshot (empty when rejected).
  std::span<const float> parameters() const {
    return snapshot ? std::span<const float>(*snapshot)
                    : std::span<const float>();
  }
};

/// Server's acknowledgment of a received gradient (step 5).
struct GradientReceipt {
  /// False when the server refused to take the gradient at all — in the
  /// concurrent runtime, a full ingest queue rejects at admission
  /// (backpressure, DESIGN.md §6) and the gradient never touches the model.
  bool accepted = true;
  std::string reject_reason;
  ModelId model_id = kDefaultModelId;  // learning task the gradient targeted
  /// Meaningful only when !accepted: true for transient conditions (queue
  /// backpressure) where resubmitting the same job can succeed, false for
  /// permanent ones (validation failure, server shut down) where retrying
  /// is futile.
  bool retryable = false;
  /// True when !accepted because an overload shed policy judged this
  /// gradient the least valuable in its shard (runtime OverloadPolicy,
  /// DESIGN.md §14). Non-retryable by design — immediately resubmitting
  /// the same job under the same pressure would be refused again — and
  /// counted separately from ordinary rejects so ingest front ends can
  /// keep their accounting identity exact (IngestStats::shed_drops).
  bool shed = false;
  bool model_updated = false;
  double weight = 0.0;       // min(1, Lambda(tau)/sim) actually applied
  double staleness = 0.0;    // tau_i in model updates
  double similarity = 0.0;   // sim(x_i)
  std::size_t version = 0;   // server clock after handling this gradient
};

/// The FLeet server (§2.1): profiler + controller + AdaSGD aggregation
/// around a global model. Single-threaded by design — the discrete-event
/// simulation serializes handler calls, like the HTTP server serializes
/// stream handling in the original implementation. For real hardware
/// parallelism, `runtime::ConcurrentFleetServer` wraps the same components
/// behind a thread-safe facade (DESIGN.md §6); its `RuntimeConfig`
/// additionally shards the fold arithmetic itself across parameter spans
/// (`aggregation_shards`) and batches queue drains (`max_drain_batch`)
/// while this serial path remains the semantic reference — every
/// configuration of the concurrent server is bitwise equivalent to
/// replaying the same submission sequence through handle_gradient().
class FleetServer {
 public:
  FleetServer(nn::TrainableModel& model,
              std::unique_ptr<profiler::Profiler> profiler,
              const ServerConfig& config);

  /// Steps 1-4 of the protocol: device info + label info in, size bound and
  /// a shared model-snapshot handle out (or a rejection). The snapshot for
  /// the current version is materialized at most once; concurrent requests
  /// at the same version share one buffer.
  TaskAssignment handle_request(const profiler::DeviceFeatures& features,
                                const std::string& device_model,
                                const stats::LabelDistribution& label_info);

  /// Step 5: gradient in (a view into caller-owned storage — nothing is
  /// copied); dampen, maybe update the model. `feedback` carries the
  /// measured task cost back into the profiler.
  GradientReceipt handle_gradient(
      std::size_t task_version, std::span<const float> gradient,
      const stats::LabelDistribution& label_info, std::size_t mini_batch,
      const std::optional<profiler::Observation>& feedback = std::nullopt);

  /// Re-publish the current version's snapshot from the live model. The
  /// server caches one snapshot per logical-clock value, so after mutating
  /// the model's parameters externally (e.g. warm-starting from a
  /// checkpoint via nn::load_model) call this — otherwise requests at the
  /// current version keep receiving the pre-mutation snapshot. Assignments
  /// already handed out keep their original buffer.
  void refresh_snapshot();

  /// Logical clock t: number of model updates so far.
  std::size_t version() const { return version_; }

  const Controller& controller() const { return controller_; }
  const learning::AsyncAggregator& aggregator() const { return aggregator_; }
  const ModelStore& store() const { return store_; }
  profiler::Profiler& profiler() { return *profiler_; }
  /// The global model. If you overwrite its parameters out-of-band, call
  /// refresh_snapshot() so the store serves the new state.
  nn::TrainableModel& model() { return model_; }

 private:
  /// Snapshot for the current version, publishing it on first use.
  ModelStore::Snapshot current_snapshot();

  nn::TrainableModel& model_;
  std::unique_ptr<profiler::Profiler> profiler_;
  ServerConfig config_;
  Controller controller_;
  learning::AsyncAggregator aggregator_;
  ModelStore store_;
  std::size_t version_ = 0;
};

}  // namespace fleet::core
