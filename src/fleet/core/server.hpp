#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "fleet/core/controller.hpp"
#include "fleet/nn/model.hpp"
#include "fleet/profiler/features.hpp"

namespace fleet::core {

/// What the server hands a worker for one learning task (Fig 2, steps 2-4).
struct TaskAssignment {
  bool accepted = false;
  std::string reject_reason;
  std::size_t model_version = 0;   // logical clock t_i the task starts from
  std::size_t mini_batch = 0;      // I-Prof's workload bound
  std::vector<float> parameters;   // model snapshot theta^(t_i)
};

/// Server's acknowledgment of a received gradient (step 5).
struct GradientReceipt {
  bool model_updated = false;
  double weight = 0.0;       // min(1, Lambda(tau)/sim) actually applied
  double staleness = 0.0;    // tau_i in model updates
  double similarity = 0.0;   // sim(x_i)
  std::size_t version = 0;   // server clock after handling this gradient
};

/// The FLeet server (§2.1): profiler + controller + AdaSGD aggregation
/// around a global model. Single-threaded by design — the discrete-event
/// simulation serializes handler calls, like the HTTP server serializes
/// stream handling in the original implementation.
class FleetServer {
 public:
  FleetServer(nn::TrainableModel& model,
              std::unique_ptr<profiler::Profiler> profiler,
              const ServerConfig& config);

  /// Steps 1-4 of the protocol: device info + label info in, size bound and
  /// model snapshot out (or a rejection).
  TaskAssignment handle_request(const profiler::DeviceFeatures& features,
                                const std::string& device_model,
                                const stats::LabelDistribution& label_info);

  /// Step 5: gradient in; dampen, maybe update the model. `feedback`
  /// carries the measured task cost back into the profiler.
  GradientReceipt handle_gradient(
      std::size_t task_version, std::vector<float> gradient,
      const stats::LabelDistribution& label_info, std::size_t mini_batch,
      const std::optional<profiler::Observation>& feedback = std::nullopt);

  /// Logical clock t: number of model updates so far.
  std::size_t version() const { return version_; }

  const Controller& controller() const { return controller_; }
  const learning::AsyncAggregator& aggregator() const { return aggregator_; }
  profiler::Profiler& profiler() { return *profiler_; }
  nn::TrainableModel& model() { return model_; }

 private:
  nn::TrainableModel& model_;
  std::unique_ptr<profiler::Profiler> profiler_;
  ServerConfig config_;
  Controller controller_;
  learning::AsyncAggregator aggregator_;
  std::size_t version_ = 0;
};

}  // namespace fleet::core
