#pragma once

#include <cstddef>

#include "fleet/learning/aggregator.hpp"
#include "fleet/profiler/features.hpp"

namespace fleet::core {

/// Controller admission thresholds (Fig 2, step 4). Thresholds are
/// percentiles over the history of past requests, matching the A/B-style
/// gradual threshold setting of §2.4 and the sweep of Fig 15.
struct ControllerConfig {
  /// Reject requests whose mini-batch bound falls below this percentile of
  /// past bounds (0 disables size-based pruning).
  double size_percentile = 0.0;
  /// Reject requests whose similarity exceeds this percentile of past
  /// similarities (100 disables similarity-based pruning).
  double similarity_percentile = 100.0;
  /// Admission decisions are unconditioned until this much history exists.
  std::size_t min_history = 20;
  /// Hard floor: mini-batch bounds below this are always rejected.
  std::size_t absolute_min_batch = 1;
};

/// Everything the FLeet server needs (§2.1).
struct ServerConfig {
  learning::AsyncAggregator::Config aggregator;
  ControllerConfig controller;
  profiler::Slo slo;
  float learning_rate = 5e-4f;
  /// Model versions retained in the snapshot ring (ModelStore). Bounds how
  /// far back a straggler's t_i can reach before its staleness is clamped;
  /// must be >= 1.
  std::size_t snapshot_window = 64;
};

/// Throws std::invalid_argument on out-of-range settings.
void validate(const ServerConfig& config);

}  // namespace fleet::core
