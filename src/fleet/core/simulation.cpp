#include "fleet/core/simulation.hpp"

#include <stdexcept>

namespace fleet::core {

FleetSimulation::FleetSimulation(FleetServer& server,
                                 std::vector<FleetWorker>& workers,
                                 const Config& config)
    : server_(server),
      workers_(workers),
      config_(config),
      network_(config.network),
      rng_(config.seed) {
  if (workers_.empty()) {
    throw std::invalid_argument("FleetSimulation: no workers");
  }
  if (config.duration_s <= 0.0) {
    throw std::invalid_argument("FleetSimulation: non-positive duration");
  }
  if (config.dropout_prob < 0.0 || config.dropout_prob > 1.0) {
    throw std::invalid_argument("FleetSimulation: dropout_prob outside [0,1]");
  }
}

FleetSimulation::Stats FleetSimulation::run() {
  Stats stats;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;

  // Stagger initial requests so the fleet does not arrive in lockstep.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Event e;
    e.time_s = rng_.uniform(0.0, config_.think_time_mean_s);
    e.worker = w;
    e.kind = Event::Kind::kRequest;
    queue.push(e);
  }

  while (!queue.empty() && queue.top().time_s < config_.duration_s) {
    const Event event = queue.top();
    queue.pop();
    FleetWorker& worker = workers_[event.worker];

    switch (event.kind) {
      case Event::Kind::kRequest: {
        ++stats.requests;
        // One half of the network exchange: model download.
        const double download_s = 0.5 * network_.sample_transfer_s(rng_);
        const TaskAssignment assignment = server_.handle_request(
            worker.device_info(), worker.device().model_name(),
            worker.label_info());
        if (!assignment.accepted) {
          ++stats.rejected;
          Event next;
          next.time_s =
              event.time_s + rng_.exponential(config_.think_time_mean_s);
          next.worker = event.worker;
          next.kind = Event::Kind::kRequest;
          queue.push(next);
          break;
        }
        auto result = std::make_shared<FleetWorker::ExecutionResult>(
            worker.execute(assignment));
        const double upload_s = 0.5 * network_.sample_transfer_s(rng_);
        const double round_trip =
            download_s + result->execution.time_s + upload_s;
        stats.round_trip_s.push_back(round_trip);
        stats.task_times_s.push_back(result->execution.time_s);
        stats.task_energies_pct.push_back(result->execution.energy_pct);

        // Churn: the computed gradient may never arrive (Config::
        // dropout_prob). The device cost above was already charged; only
        // the upload is lost, so the worker goes back to thinking. Guarded
        // so dropout-free configs draw nothing and replay the exact event
        // sequences of older runs.
        if (config_.dropout_prob > 0.0 &&
            rng_.bernoulli(config_.dropout_prob)) {
          ++stats.dropped;
          Event next;
          next.time_s =
              event.time_s + round_trip +
              rng_.exponential(config_.think_time_mean_s);
          next.worker = event.worker;
          next.kind = Event::Kind::kRequest;
          queue.push(next);
          break;
        }

        Event arrival;
        arrival.time_s = event.time_s + round_trip;
        arrival.worker = event.worker;
        arrival.kind = Event::Kind::kGradientArrival;
        arrival.task_version = assignment.model_version;
        arrival.result = std::move(result);
        arrival.snapshot = assignment.snapshot;  // pinned for the flight
        queue.push(arrival);
        break;
      }
      case Event::Kind::kGradientArrival: {
        ++stats.gradients;
        const GradientReceipt receipt = server_.handle_gradient(
            event.task_version, event.result->gradient,
            event.result->minibatch_labels, event.result->mini_batch,
            event.result->observation);
        stats.staleness_values.push_back(receipt.staleness);
        if (receipt.model_updated) ++stats.model_updates;

        Event next;
        next.time_s =
            event.time_s + rng_.exponential(config_.think_time_mean_s);
        next.worker = event.worker;
        next.kind = Event::Kind::kRequest;
        queue.push(next);
        break;
      }
    }
  }
  return stats;
}

}  // namespace fleet::core
