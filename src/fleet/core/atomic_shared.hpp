#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <utility>

namespace fleet::core {

/// Atomically swappable shared_ptr cell for single-writer / many-reader
/// snapshot publication (DESIGN.md §6).
///
/// Why not std::atomic<std::shared_ptr<T>>: libstdc++'s _Sp_atomic guards
/// its raw pointer with an embedded lock bit but releases the reader side
/// with a *relaxed* fetch_sub, so a reader's critical section is not
/// happens-before-ordered against the next writer's — formally a data race
/// (it relies on an RMW-coherence argument outside the C++ memory model),
/// and ThreadSanitizer reports it as one. This cell does the same
/// pointer-swap-under-a-byte-spinlock with proper acquire/release pairing
/// on BOTH paths, so it is race-free by the letter of the model and
/// TSan-clean in CI.
///
/// The critical section is a handful of instructions — one shared_ptr
/// refcount bump (itself an atomic) or one pointer swap — and destruction
/// of a displaced value always happens outside the lock, so readers never
/// wait on an O(|theta|) buffer teardown.
template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;
  explicit AtomicSharedPtr(std::shared_ptr<T> value)
      : value_(std::move(value)) {}

  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

  /// Acquire a shared handle to the current value.
  std::shared_ptr<T> load() const {
    lock();
    std::shared_ptr<T> copy = value_;
    unlock();
    return copy;
  }

  /// Publish a new value; the displaced one is released after the lock
  /// drops (possibly freeing a large buffer, never under the lock).
  void store(std::shared_ptr<T> value) {
    lock();
    value_.swap(value);
    unlock();
  }

 private:
  void lock() const {
    // Test-and-test-and-set: the exchange only hits the cache line
    // exclusively when the relaxed probe saw it free.
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(std::memory_order_relaxed)) {
        // Holders leave within a few instructions; yielding covers the
        // pathological preempted-holder case on oversubscribed hosts.
        std::this_thread::yield();
      }
    }
  }
  void unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<T> value_;
};

}  // namespace fleet::core
