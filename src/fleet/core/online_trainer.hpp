#pragma once

#include <memory>
#include <optional>

#include "fleet/core/config.hpp"
#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/learning/aggregator.hpp"
#include "fleet/privacy/gaussian_mechanism.hpp"
#include "fleet/privacy/label_privacy.hpp"
#include "fleet/stats/distributions.hpp"

namespace fleet::core {

/// Controlled-staleness training harness used by the §3.2 experiments
/// (Figs 8-11 and 15): like the paper, staleness is *imposed* from a chosen
/// distribution so SGD variants can be compared precisely. At global step t
/// a random user computes a gradient against the parameter snapshot from
/// step t - tau (tau sampled), and the aggregator weights it per scheme.
struct ControlledRunConfig {
  learning::AsyncAggregator::Config aggregator;
  float learning_rate = 5e-4f;
  std::size_t steps = 2000;          // number of worker requests
  std::size_t mini_batch = 100;      // fixed size (paper default, §3.2)
  /// Staleness source; nullptr means zero staleness (SSGD uses this).
  const stats::Distribution* staleness = nullptr;
  /// Fig 9: force this staleness on gradients carrying `longtail_class`.
  int longtail_class = -1;
  double longtail_staleness = 48.0;
  /// Fig 15: draw the mini-batch size from N(batch_mean, batch_stddev)
  /// instead of `mini_batch` when batch_stddev > 0.
  double batch_mean = 0.0;
  double batch_stddev = 0.0;
  /// Controller thresholds (percentile-based; see Fig 15).
  ControllerConfig controller;
  /// Differential privacy (Fig 11); noise_multiplier 0 disables.
  privacy::DpConfig dp;
  /// DP release of the per-task label distribution (§5 future work,
  /// implemented in fleet::privacy); epsilon <= 0 disables.
  privacy::LabelPrivacyConfig label_privacy;
  std::size_t eval_every = 250;
  /// Also track accuracy restricted to this class (Fig 9a); -1 disables.
  int eval_class = -1;
  std::size_t history_window = 96;   // parameter snapshots kept (>= max tau)
  std::uint64_t seed = 1;
};

struct CurvePoint {
  std::size_t request = 0;   // worker requests issued so far
  std::size_t step = 0;      // model updates applied so far
  double accuracy = 0.0;
  double class_accuracy = -1.0;
};

struct ControlledRunResult {
  std::vector<CurvePoint> curve;
  std::vector<double> weights;   // dampening weights applied (Fig 9b)
  std::size_t tasks_executed = 0;
  std::size_t tasks_rejected = 0;
  double final_accuracy = 0.0;
};

/// Run the harness on an image model. `model` must be freshly initialized;
/// it is trained in place.
ControlledRunResult run_controlled(nn::TrainableModel& model,
                                   const data::Dataset& train,
                                   const data::Partition& users,
                                   const data::Dataset& test,
                                   const ControlledRunConfig& config);

/// Synchronous mixed-capability training (Fig 3): every step, each worker
/// contributes one gradient on its own mini-batch size and the model takes
/// the uniform average. Weak workers (tiny batches) inject gradient noise.
struct SynchronousMixConfig {
  std::vector<std::size_t> worker_batch_sizes;  // one entry per worker
  float learning_rate = 5e-4f;
  std::size_t steps = 1500;
  std::size_t eval_every = 100;
  std::uint64_t seed = 1;
};

std::vector<CurvePoint> run_synchronous_mix(nn::TrainableModel& model,
                                            const data::Dataset& train,
                                            const data::Dataset& test,
                                            const SynchronousMixConfig& config);

}  // namespace fleet::core
