#include "fleet/core/online_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fleet/core/controller.hpp"
#include "fleet/core/model_store.hpp"
#include "fleet/tensor/ops.hpp"

namespace fleet::core {

ControlledRunResult run_controlled(nn::TrainableModel& model,
                                   const data::Dataset& train,
                                   const data::Partition& users,
                                   const data::Dataset& test,
                                   const ControlledRunConfig& config) {
  if (users.empty()) {
    throw std::invalid_argument("run_controlled: no users");
  }
  stats::Rng rng(config.seed);
  learning::AsyncAggregator aggregator(model.parameter_count(),
                                       model.n_classes(), config.aggregator);
  Controller controller(config.controller);
  // Snapshot ring shared with the live server path (DESIGN.md §4): the
  // imposed-staleness harness reads theta^(t - tau) from the same store.
  ModelStore history(config.history_window);
  history.publish(0, model.parameters());

  ControlledRunResult result;
  std::size_t version = 0;  // model updates applied
  std::vector<float> gradient;

  const auto evaluate = [&](std::size_t request) {
    CurvePoint point;
    point.request = request;
    point.step = version;
    point.accuracy = data::evaluate_accuracy(model, test);
    if (config.eval_class >= 0) {
      point.class_accuracy =
          data::evaluate_class_accuracy(model, test, config.eval_class);
    }
    result.curve.push_back(point);
  };

  evaluate(0);
  for (std::size_t request = 1; request <= config.steps; ++request) {
    // Pick a user and a mini-batch size.
    const auto user = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(users.size()) - 1));
    const auto& local = users[user];
    std::size_t batch_size = config.mini_batch;
    if (config.batch_stddev > 0.0) {
      batch_size = static_cast<std::size_t>(std::max(
          1.0, std::round(rng.gaussian(config.batch_mean, config.batch_stddev))));
    }
    batch_size = std::min(batch_size, local.size());
    if (batch_size == 0) continue;

    // Draw the mini-batch up-front so similarity reflects the actual data.
    const auto picks = rng.sample_without_replacement(local.size(), batch_size);
    std::vector<std::size_t> indices(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) indices[i] = local[picks[i]];
    const nn::Batch batch = train.make_batch(indices);
    auto label_dist = stats::LabelDistribution::from_labels(
        batch.labels, train.n_classes());
    if (config.label_privacy.epsilon > 0.0) {
      // The worker only ever releases a privatized label histogram.
      label_dist = privacy::privatize_label_distribution(
          label_dist, config.label_privacy, rng);
    }

    // Controller admission (Fig 15): size and similarity thresholds.
    const double similarity = aggregator.similarity().similarity(label_dist);
    if (!controller.admit(batch_size, similarity).admitted) {
      ++result.tasks_rejected;
      if (request % config.eval_every == 0) evaluate(request);
      continue;
    }

    // Impose staleness: gradient is computed against theta^(version - tau).
    double staleness = 0.0;
    if (config.staleness != nullptr) {
      staleness = std::max(0.0, std::round(config.staleness->sample(rng)));
    }
    if (config.longtail_class >= 0) {
      // §3.2 "similarity-based boosting" setup: *all* gradients computed on
      // data containing the long-tail class are stragglers.
      const bool carries_class =
          std::find(batch.labels.begin(), batch.labels.end(),
                    config.longtail_class) != batch.labels.end();
      if (carries_class) {
        // A straggler result delayed by tau updates cannot arrive before
        // the model has advanced tau steps; until then the task is simply
        // still in flight.
        if (static_cast<double>(version) < config.longtail_staleness) {
          if (request % config.eval_every == 0) evaluate(request);
          continue;
        }
        staleness = config.longtail_staleness;
      }
    }
    staleness = std::min(staleness, static_cast<double>(version));
    staleness =
        std::min(staleness, static_cast<double>(config.history_window - 1));

    const auto stale_version = version - static_cast<std::size_t>(staleness);
    // Hold the current snapshot across the stale-gradient computation: the
    // handles keep both buffers alive even if the ring advances.
    const ModelStore::Snapshot current = history.resolve(version);
    const ModelStore::Snapshot stale = history.resolve(stale_version);
    model.load_parameters(*stale);
    model.gradient(batch, gradient);
    model.load_parameters(*current);
    ++result.tasks_executed;

    if (config.dp.clip_norm > 0.0) {
      privacy::privatize_gradient(gradient, config.dp, batch_size, rng);
    }

    learning::WorkerUpdate update;
    update.gradient = gradient;
    update.staleness = staleness;
    update.label_dist = label_dist;
    update.mini_batch = batch_size;
    if (const auto submitted = aggregator.submit(update);
        submitted.aggregate) {
      model.apply_gradient(*submitted.aggregate, config.learning_rate);
      ++version;
      history.publish(version, model.parameters());
    }

    if (request % config.eval_every == 0) evaluate(request);
  }
  if (result.curve.empty() || result.curve.back().request != config.steps) {
    evaluate(config.steps);
  }
  result.weights = aggregator.weight_log();
  result.final_accuracy = result.curve.back().accuracy;
  return result;
}

std::vector<CurvePoint> run_synchronous_mix(
    nn::TrainableModel& model, const data::Dataset& train,
    const data::Dataset& test, const SynchronousMixConfig& config) {
  if (config.worker_batch_sizes.empty()) {
    throw std::invalid_argument("run_synchronous_mix: no workers");
  }
  stats::Rng rng(config.seed);
  std::vector<CurvePoint> curve;
  std::vector<float> gradient;
  std::vector<float> sum(model.parameter_count(), 0.0f);

  const auto evaluate = [&](std::size_t step) {
    CurvePoint point;
    point.request = step;
    point.step = step;
    point.accuracy = data::evaluate_accuracy(model, test);
    curve.push_back(point);
  };

  evaluate(0);
  const float inv_workers =
      1.0f / static_cast<float>(config.worker_batch_sizes.size());
  for (std::size_t step = 1; step <= config.steps; ++step) {
    std::fill(sum.begin(), sum.end(), 0.0f);
    for (const std::size_t batch_size : config.worker_batch_sizes) {
      const nn::Batch batch = train.sample_batch(batch_size, rng);
      model.gradient(batch, gradient);
      tensor::axpy(1.0f, gradient, std::span<float>(sum));
    }
    tensor::scale(std::span<float>(sum), inv_workers);
    model.apply_gradient(sum, config.learning_rate);
    if (step % config.eval_every == 0 || step == config.steps) evaluate(step);
  }
  return curve;
}

}  // namespace fleet::core
