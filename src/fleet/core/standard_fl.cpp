#include "fleet/core/standard_fl.hpp"

#include <cmath>
#include <stdexcept>

#include "fleet/core/model_store.hpp"

namespace fleet::core {

bool AvailabilityModel::is_night(double time_s) const {
  const double hour = std::fmod(time_s / 3600.0, 24.0);
  if (night_start_hour > night_end_hour) {
    return hour >= night_start_hour || hour < night_end_hour;
  }
  return hour >= night_start_hour && hour < night_end_hour;
}

bool AvailabilityModel::available(double time_s, stats::Rng& rng) const {
  return rng.bernoulli(is_night(time_s) ? night_probability
                                        : day_probability);
}

StandardFlResult run_standard_fl(nn::TrainableModel& model,
                                 const data::Dataset& train,
                                 const data::Partition& users,
                                 const data::Dataset& test,
                                 const StandardFlConfig& config) {
  if (users.empty()) {
    throw std::invalid_argument("run_standard_fl: no users");
  }
  if (config.devices_per_round == 0 || config.local_steps == 0) {
    throw std::invalid_argument("run_standard_fl: zero-sized round config");
  }
  stats::Rng rng(config.seed);
  StandardFlResult result;
  std::vector<float> scratch_grad;

  // Rounds start in the middle of the first night window so the canonical
  // configuration actually finds devices.
  for (double t = config.round_period_s; t <= config.duration_s;
       t += config.round_period_s) {
    // Device selection: only currently-available devices are eligible.
    std::vector<std::size_t> selected;
    for (std::size_t u = 0; u < users.size(); ++u) {
      if (config.availability.available(t, rng)) selected.push_back(u);
    }
    rng.shuffle(selected);
    if (selected.size() > config.devices_per_round) {
      selected.resize(config.devices_per_round);
    }
    if (selected.empty()) {
      ++result.skipped_rounds;
      continue;
    }

    // FedAvg: each device trains locally from the same immutable global
    // snapshot handle; the server averages the parameter deltas. Rounds are
    // strictly sequential, so one handle suffices — no ring needed.
    const ModelStore::Snapshot global =
        std::make_shared<const ModelStore::Buffer>(model.parameters());
    std::vector<double> delta_sum(global->size(), 0.0);
    for (std::size_t u : selected) {
      model.load_parameters(*global);
      const auto& local = users[u];
      for (std::size_t step = 0; step < config.local_steps; ++step) {
        const std::size_t batch_size =
            std::min(config.mini_batch, local.size());
        const auto picks =
            rng.sample_without_replacement(local.size(), batch_size);
        std::vector<std::size_t> indices(batch_size);
        for (std::size_t i = 0; i < batch_size; ++i) {
          indices[i] = local[picks[i]];
        }
        const nn::Batch batch = train.make_batch(indices);
        model.gradient(batch, scratch_grad);
        model.apply_gradient(scratch_grad, config.learning_rate);
      }
      // Read the trained replica's parameters in place — no copy.
      const std::span<const float> local_params = model.parameters_view();
      const std::span<const float> base = *global;
      for (std::size_t i = 0; i < base.size(); ++i) {
        delta_sum[i] += static_cast<double>(local_params[i]) - base[i];
      }
    }
    std::vector<float> averaged(global->size());
    const std::span<const float> base = *global;
    const double inv = 1.0 / static_cast<double>(selected.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      averaged[i] = base[i] + static_cast<float>(delta_sum[i] * inv);
    }
    model.load_parameters(averaged);

    ++result.rounds;
    result.participating_devices += selected.size();
    result.round_accuracy.push_back(data::evaluate_accuracy(model, test));
  }
  result.final_accuracy =
      result.round_accuracy.empty() ? 0.0 : result.round_accuracy.back();
  return result;
}

}  // namespace fleet::core
