#pragma once

#include <vector>

#include "fleet/data/tweet_stream.hpp"
#include "fleet/device/device_model.hpp"

namespace fleet::core {

/// Online-vs-Standard FL comparison on the hashtag recommender (§3.1,
/// Fig 6).
///
/// Both setups perform the *same* gradient computations over the same
/// per-user mini-batches; they differ only in when updates reach the model:
///  - Online FL retrains at the end of every chunk (1 hour) on that chunk's
///    data and serves the fresh model for the next chunk.
///  - Standard FL retrains once per day (nightly, when devices idle/charge)
///    on the previous day's data and serves that model all next day.
/// A "most popular" baseline recommends the top-k hashtags of the training
/// data seen so far in the shard. Models reset at each shard boundary, and
/// evaluation is the F1-score @ top-5 per chunk.
struct HashtagExperimentConfig {
  std::size_t embed_dim = 16;
  std::size_t hidden_dim = 24;
  std::size_t max_bptt = 16;
  float learning_rate = 0.08f;
  double chunk_hours = 1.0;
  double shard_days = 2.0;
  double standard_period_hours = 24.0;
  std::size_t top_k = 5;
  std::uint64_t seed = 11;
};

struct ChunkScore {
  double start_hour = 0.0;
  std::size_t n_eval_tweets = 0;
  double f1_online = 0.0;
  double f1_standard = 0.0;
  double f1_popular = 0.0;
};

struct HashtagExperimentResult {
  std::vector<ChunkScore> chunks;
  /// Mean of per-chunk ratios f1_online / f1_standard over chunks where
  /// standard is non-zero — the "quality boost" headline (2.3x in Fig 6).
  double mean_boost = 0.0;
  double mean_f1_online = 0.0;
  double mean_f1_standard = 0.0;
  double mean_f1_popular = 0.0;
};

HashtagExperimentResult run_online_vs_standard(
    const data::TweetStream& stream, const HashtagExperimentConfig& config);

/// §3.1 energy table: replay the online updates' mini-batches through the
/// Raspberry-Pi-like worker model and report daily energy (mWh).
struct EnergyImpact {
  double avg_daily_mwh = 0.0;
  double median_daily_mwh = 0.0;
  double p99_daily_mwh = 0.0;
  double max_daily_mwh = 0.0;
  double idle_power_w = 0.0;
  double power_batch1_w = 0.0;
  double power_batch100_w = 0.0;
};

EnergyImpact measure_energy_impact(const data::TweetStream& stream,
                                   std::uint64_t seed = 3);

}  // namespace fleet::core
