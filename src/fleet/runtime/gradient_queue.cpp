#include "fleet/runtime/gradient_queue.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <thread>

namespace fleet::runtime {

GradientQueue::GradientQueue(std::size_t capacity, std::size_t shards,
                             telemetry::Telemetry* telemetry)
    : capacity_(capacity), telemetry_(telemetry) {
  if (capacity == 0) {
    throw std::invalid_argument("GradientQueue: capacity must be >= 1");
  }
  if (shards == 0) {
    throw std::invalid_argument("GradientQueue: shards must be >= 1");
  }
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (telemetry_ != nullptr) {
    admit_ns_ = telemetry_->metrics().histogram(
        "queue.admit_ns", telemetry::latency_bounds_ns());
    wait_ns_ = telemetry_->metrics().histogram(
        "queue.wait_ns", telemetry::latency_bounds_ns());
    admitted_ctr_ = telemetry_->metrics().counter("queue.admitted");
    rejected_ctr_ = telemetry_->metrics().counter("queue.rejected");
  }
}

bool GradientQueue::try_push(GradientJob& job) {
  const std::size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      shards_.size();
  return push_to_shard(job, start);
}

bool GradientQueue::try_push(GradientJob& job, std::size_t shard_hint) {
  return push_to_shard(job, shard_hint % shards_.size());
}

bool GradientQueue::push_to_shard(GradientJob& job, std::size_t start_shard) {
  // Observation only: the timestamps stamp the job and feed histograms;
  // nothing downstream ever branches on them.
  const std::uint64_t t0 = telemetry_ != nullptr ? telemetry_->now_ns() : 0;
  const core::ModelId model = job.model_id;
  if (closed_.load(std::memory_order_acquire)) return false;
  // Reserve a slot against the global bound first; undo on failure. The
  // reservation also keeps a consumer from concluding "closed and empty"
  // while this push is mid-flight (wait_drain exits only at size() == 0).
  const std::size_t depth = size_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (depth > capacity_) {
    size_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) {
      rejected_ctr_->add(1);
      telemetry::TraceEvent ev;
      ev.ts_ns = t0;
      ev.model = model;
      ev.phase = telemetry::TracePhase::kReject;
      telemetry_->tracer().emit(ev);
    }
    return false;
  }
  std::uint64_t ticket = 0;
  Shard& shard = *shards_[start_shard];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Re-check under the shard lock: close() fences every shard after
    // setting the flag, so a push that sees closed==false here is
    // guaranteed to land before the consumer's final post-close sweep —
    // no job can be accepted into a queue nobody will ever drain.
    if (closed_.load(std::memory_order_acquire)) {
      size_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    Item item;
    // Ticket drawn under the shard lock: jobs pushed sequentially by one
    // producer always carry increasing tickets, so a quiesced drain
    // reproduces push order exactly.
    ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    job.ticket = ticket;
    job.enqueue_ns = t0;
    item.ticket = ticket;
    item.job = std::move(job);
    shard.items.push_back(std::move(item));
  }
  // High-water mark from the reservation depth, recorded only once the
  // push actually landed (a closed-race undo never raises the gauge). The
  // depth may be a transient over-count when a concurrent reserver is
  // about to bounce off the bound, but it never exceeds capacity and a
  // real burst reaches the same mark anyway.
  std::size_t seen = max_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_depth_.compare_exchange_weak(seen, depth,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
  }
  if (telemetry_ != nullptr) {
    admitted_ctr_->add(1);
    admit_ns_->record(static_cast<double>(telemetry_->now_ns() - t0));
    telemetry::TraceEvent ev;
    ev.ts_ns = t0;
    ev.ticket = ticket;
    ev.model = model;
    ev.phase = telemetry::TracePhase::kSubmit;
    telemetry_->tracer().emit(ev);
  }
  // Tap the wake mutex so a consumer that just evaluated "empty" and is
  // about to sleep observes either the new size or the notification.
  { std::lock_guard<std::mutex> lock(wake_mu_); }
  wake_cv_.notify_one();
  return true;
}

void GradientQueue::note_drained(const std::vector<GradientJob>& out,
                                 std::size_t from) {
  if (telemetry_ == nullptr || from >= out.size()) return;
  // One clock read for the whole batch: the per-job wait skew within a
  // single drain is far below bucket resolution, and the shared timestamp
  // keeps a drain batch's dequeue events aligned in the trace.
  const std::uint64_t now = telemetry_->now_ns();
  for (std::size_t i = from; i < out.size(); ++i) {
    const GradientJob& job = out[i];
    const std::uint64_t wait =
        now > job.enqueue_ns ? now - job.enqueue_ns : 0;
    wait_ns_->record(static_cast<double>(wait));
    telemetry::TraceEvent ev;
    ev.ts_ns = now;
    ev.ticket = job.ticket;
    ev.model = job.model_id;
    ev.b = wait;
    ev.phase = telemetry::TracePhase::kDequeue;
    telemetry_->tracer().emit(ev);
  }
}

std::size_t GradientQueue::drain(std::vector<GradientJob>& out,
                                 std::size_t max_batch) {
  const std::size_t out_start = out.size();
  if (max_batch > 0) {
    // Bounded pop: hold every shard lock at once and k-way merge the
    // fronts. Each shard's deque is ticket-sorted (tickets are drawn under
    // the shard lock at push), and with all locks held every drawn ticket
    // is visible — a push racing with this drain will draw a *later*
    // ticket once it gets its lock. Taking the `max_batch` smallest fronts
    // therefore removes an exact admission-order prefix of the queue's
    // contents, and tickets across successive bounded drains are globally
    // increasing. The full-lock hold is fine on the consumer side: there
    // is one consumer, and producers each take a single shard lock, so no
    // lock-order cycle exists.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto& shard_ptr : shards_) locks.emplace_back(shard_ptr->mu);
    std::size_t taken = 0;
    out.reserve(out.size() + std::min(max_batch, size()));
    while (taken < max_batch) {
      Shard* best = nullptr;
      for (auto& shard_ptr : shards_) {
        Shard& shard = *shard_ptr;
        if (!shard.items.empty() &&
            (best == nullptr ||
             shard.items.front().ticket < best->items.front().ticket)) {
          best = &shard;
        }
      }
      if (best == nullptr) break;
      out.push_back(std::move(best->items.front().job));
      best->items.pop_front();
      ++taken;
      // Release capacity per popped item, like the unbounded path: a
      // producer probing the bound should see space as soon as it exists
      // (it then queues on its shard lock and lands, with a later ticket,
      // after this merge) instead of eating spurious rejections for the
      // whole merge window.
      size_.fetch_sub(1, std::memory_order_acq_rel);
    }
    locks.clear();  // telemetry tail runs outside every shard lock
    note_drained(out, out_start);
    return taken;
  }
  std::vector<Item> taken;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::size_t from_shard = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      while (!shard.items.empty()) {
        taken.push_back(std::move(shard.items.front()));
        shard.items.pop_front();
        ++from_shard;
      }
    }
    // Release capacity shard-by-shard, not after the full sweep — a
    // producer probing the bound should see space as soon as it exists.
    if (from_shard > 0) {
      size_.fetch_sub(from_shard, std::memory_order_acq_rel);
    }
  }
  if (taken.empty()) return 0;
  std::sort(taken.begin(), taken.end(),
            [](const Item& a, const Item& b) { return a.ticket < b.ticket; });
  out.reserve(out.size() + taken.size());
  for (Item& item : taken) {
    out.push_back(std::move(item.job));
  }
  note_drained(out, out_start);
  return taken.size();
}

std::size_t GradientQueue::wait_drain(std::vector<GradientJob>& out,
                                      std::size_t max_batch) {
  while (true) {
    const std::size_t taken = drain(out, max_batch);
    if (taken > 0) return taken;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return size_.load(std::memory_order_acquire) > 0 ||
             closed_.load(std::memory_order_acquire);
    });
    if (closed_.load(std::memory_order_acquire) &&
        size_.load(std::memory_order_acquire) == 0) {
      // Closed and nothing left: one final sweep in case a producer won the
      // race between our drain and close().
      return drain(out, max_batch);
    }
  }
}

std::vector<std::size_t> GradientQueue::shard_depths() const {
  std::vector<std::size_t> depths;
  depths.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    depths.push_back(shard_ptr->items.size());
  }
  return depths;
}

void GradientQueue::close() {
  closed_.store(true, std::memory_order_release);
  // Fence every shard: producers re-check the flag under the shard lock,
  // so once these acquire/release pairs complete, any in-flight push has
  // either landed (and is covered by its size_ reservation) or will see
  // closed and refuse.
  for (auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
  }
  { std::lock_guard<std::mutex> lock(wake_mu_); }
  wake_cv_.notify_all();
}

}  // namespace fleet::runtime
