#include "fleet/runtime/gradient_queue.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <thread>

namespace fleet::runtime {

const char* overload_policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kRejectNewest:
      return "reject_newest";
    case OverloadPolicy::kShedStalest:
      return "shed_stalest";
    case OverloadPolicy::kShedLowestWeight:
      return "shed_lowest_weight";
  }
  return "unknown";
}

GradientQueue::GradientQueue(std::size_t capacity, std::size_t shards,
                             telemetry::Telemetry* telemetry,
                             std::size_t groups, OverloadPolicy policy,
                             std::size_t shed_watermark)
    : capacity_(capacity),
      policy_(policy),
      shed_trigger_(policy == OverloadPolicy::kRejectNewest
                        ? capacity
                        : std::min(shed_watermark == 0 ? capacity
                                                       : shed_watermark,
                                   capacity)),
      telemetry_(telemetry) {
  if (capacity == 0) {
    throw std::invalid_argument("GradientQueue: capacity must be >= 1");
  }
  if (shards == 0) {
    throw std::invalid_argument("GradientQueue: shards must be >= 1");
  }
  if (groups == 0) {
    throw std::invalid_argument("GradientQueue: groups must be >= 1");
  }
  // Every group needs at least one shard of its own.
  shards = std::max(shards, groups);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Contiguous shard ranges per group; the first `shards % groups` groups
  // absorb the remainder.
  const std::size_t base = shards / groups;
  const std::size_t rem = shards % groups;
  std::size_t begin = 0;
  groups_.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    auto group = std::make_unique<GroupState>();
    group->shard_begin = begin;
    group->shard_end = begin + base + (g < rem ? 1 : 0);
    group->staged.resize(group->shard_end - group->shard_begin);
    begin = group->shard_end;
    groups_.push_back(std::move(group));
  }
  if (telemetry_ != nullptr) {
    admit_ns_ = telemetry_->metrics().histogram(
        "queue.admit_ns", telemetry::latency_bounds_ns());
    wait_ns_ = telemetry_->metrics().histogram(
        "queue.wait_ns", telemetry::latency_bounds_ns());
    admitted_ctr_ = telemetry_->metrics().counter("queue.admitted");
    rejected_ctr_ = telemetry_->metrics().counter("queue.rejected");
  }
}

bool GradientQueue::try_push(GradientJob& job) {
  const std::size_t offset =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  const PushOutcome outcome =
      push_to_shard(job, group_of(job.model_id), offset, nullptr);
  return outcome == PushOutcome::kAccepted ||
         outcome == PushOutcome::kAcceptedEvicted;
}

bool GradientQueue::try_push(GradientJob& job, std::size_t shard_hint) {
  const PushOutcome outcome =
      push_to_shard(job, group_of(job.model_id), shard_hint, nullptr);
  return outcome == PushOutcome::kAccepted ||
         outcome == PushOutcome::kAcceptedEvicted;
}

GradientQueue::PushOutcome GradientQueue::push(GradientJob& job,
                                               GradientJob* evicted) {
  const std::size_t offset =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return push_to_shard(job, group_of(job.model_id), offset, evicted);
}

GradientQueue::PushOutcome GradientQueue::push_to_shard(
    GradientJob& job, std::size_t group, std::size_t group_offset,
    GradientJob* evicted) {
  // Observation only: the timestamps stamp the job and feed histograms;
  // nothing downstream ever branches on them.
  const std::uint64_t t0 = telemetry_ != nullptr ? telemetry_->now_ns() : 0;
  const core::ModelId model = job.model_id;
  if (closed_.load(std::memory_order_acquire)) {
    return PushOutcome::kRejectedClosed;
  }
  // Reserve a slot against the global bound first; undo on failure. The
  // reservation also keeps a consumer from concluding "closed and empty"
  // while this push is mid-flight (wait_drain exits only at group depth 0,
  // so the group counter is reserved pre-land as well).
  const std::size_t depth = size_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Shed path (DESIGN.md §14): above the trigger depth a shed policy weighs
  // the incoming job against its target shard instead of refusing it
  // outright. Under kRejectNewest the trigger equals capacity and `shed`
  // stays false — the path below is exactly the pre-policy queue.
  const bool shed =
      policy_ != OverloadPolicy::kRejectNewest && depth > shed_trigger_;
  if (depth > capacity_ && !shed) {
    size_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) {
      rejected_ctr_->add(1);
      telemetry::TraceEvent ev;
      ev.ts_ns = t0;
      ev.model = model;
      ev.phase = telemetry::TracePhase::kReject;
      telemetry_->tracer().emit(ev);
    }
    return PushOutcome::kRejectedFull;
  }
  GroupState& gs = *groups_[group];
  // In the shed-swap case the group's net size is unchanged (the victim
  // and the incoming job live in the same shard, hence the same group), so
  // the group counter is only reserved on the plain-insert path.
  const std::size_t gdepth =
      shed ? 0 : gs.size.fetch_add(1, std::memory_order_acq_rel) + 1;
  const std::size_t group_shards = gs.shard_end - gs.shard_begin;
  Shard& shard = *shards_[gs.shard_begin + group_offset % group_shards];
  std::uint64_t ticket = 0;
  bool swapped = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Re-check under the shard lock: close() fences every shard after
    // setting the flag, so a push that sees closed==false here is
    // guaranteed to land before the consumer's final post-close sweep —
    // no job can be accepted into a queue nobody will ever drain.
    if (closed_.load(std::memory_order_acquire)) {
      size_.fetch_sub(1, std::memory_order_acq_rel);
      if (!shed) gs.size.fetch_sub(1, std::memory_order_acq_rel);
      return PushOutcome::kRejectedClosed;
    }
    if (shed) {
      // Weigh the incoming job against the shard's cheapest queued job.
      // The scan is shard-local by design: one lock, bounded work, and the
      // thread-hash sharding spreads comparable jobs across the group —
      // DESIGN.md §14 documents the approximation.
      auto victim = shard.items.end();
      for (auto it = shard.items.begin(); it != shard.items.end(); ++it) {
        if (victim == shard.items.end() ||
            it->job.shed_cost < victim->job.shed_cost) {
          victim = it;
        }
      }
      if (victim == shard.items.end() ||
          victim->job.shed_cost >= job.shed_cost) {
        // Nothing cheaper queued here (or nothing at all): the incoming
        // job is the least valuable. Refuse it — no ticket is drawn, so
        // admission-order prefixes are untouched.
        size_.fetch_sub(1, std::memory_order_acq_rel);
        return PushOutcome::kShedIncoming;
      }
      // Evict the victim under the same critical section that admits the
      // incoming job: no consumer can observe the intermediate state, the
      // deque stays ticket-sorted (a middle erase removes, never reorders)
      // and the victim's ticket retires with it — it will simply never be
      // drained, which is why the caller must account the eviction.
      if (evicted != nullptr) *evicted = std::move(victim->job);
      shard.items.erase(victim);
      size_.fetch_sub(1, std::memory_order_acq_rel);
      swapped = true;
    }
    Item item;
    // Ticket drawn under the shard lock: jobs pushed sequentially by one
    // producer always carry increasing tickets, so a quiesced drain
    // reproduces push order exactly — and each shard's deque stays
    // ticket-sorted, which the bounded drain's snapshot relies on.
    ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    job.ticket = ticket;
    job.enqueue_ns = t0;
    item.ticket = ticket;
    item.job = std::move(job);
    shard.items.push_back(std::move(item));
  }
  // High-water mark from the reservation depth, recorded only once the
  // push actually landed (a closed-race undo never raises the gauge). The
  // depth may be a transient over-count when a concurrent reserver is
  // about to bounce off the bound, but it never exceeds capacity and a
  // real burst reaches the same mark anyway. A shed swap leaves the net
  // depth unchanged, so it never raises either mark.
  if (!shed) {
    std::size_t seen = max_depth_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_depth_.compare_exchange_weak(seen, depth,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
    }
    // Windowed group peak for the adaptive batcher — same transient
    // over-count caveat as the global mark, same reasoning.
    std::size_t gseen = gs.window_peak.load(std::memory_order_relaxed);
    while (gdepth > gseen &&
           !gs.window_peak.compare_exchange_weak(gseen, gdepth,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed)) {
    }
  }
  if (telemetry_ != nullptr) {
    admitted_ctr_->add(1);
    admit_ns_->record(static_cast<double>(telemetry_->now_ns() - t0));
    telemetry::TraceEvent ev;
    ev.ts_ns = t0;
    ev.ticket = ticket;
    ev.model = model;
    ev.phase = telemetry::TracePhase::kSubmit;
    telemetry_->tracer().emit(ev);
  }
  // Tap the wake mutex so a consumer that just evaluated "empty" and is
  // about to sleep observes either the new group size or the notification.
  { std::lock_guard<std::mutex> lock(gs.wake_mu); }
  gs.wake_cv.notify_one();
  return swapped ? PushOutcome::kAcceptedEvicted : PushOutcome::kAccepted;
}

void GradientQueue::note_drained(const std::vector<GradientJob>& out,
                                 std::size_t from) {
  if (telemetry_ == nullptr || from >= out.size()) return;
  // One clock read for the whole batch: the per-job wait skew within a
  // single drain is far below bucket resolution, and the shared timestamp
  // keeps a drain batch's dequeue events aligned in the trace.
  const std::uint64_t now = telemetry_->now_ns();
  for (std::size_t i = from; i < out.size(); ++i) {
    const GradientJob& job = out[i];
    const std::uint64_t wait =
        now > job.enqueue_ns ? now - job.enqueue_ns : 0;
    wait_ns_->record(static_cast<double>(wait));
    telemetry::TraceEvent ev;
    ev.ts_ns = now;
    ev.ticket = job.ticket;
    ev.model = job.model_id;
    ev.b = wait;
    ev.phase = telemetry::TracePhase::kDequeue;
    telemetry_->tracer().emit(ev);
  }
}

std::size_t GradientQueue::drain(std::vector<GradientJob>& out,
                                 std::size_t max_batch, std::size_t group) {
  GroupState& gs = *groups_[group];
  const std::size_t out_start = out.size();
  // Ticket fence, read before any shard is sampled: only tickets < fence
  // are eligible for this drain. A ticket is drawn inside its shard's
  // critical section, so any draw this load observes belongs to a push
  // whose critical section completes before we acquire that shard's lock
  // below (coherence on next_ticket_ plus mutual exclusion) — the item is
  // guaranteed visible. Conversely every draw after this load returns a
  // ticket >= fence. Restricting the drain to tickets < fence therefore
  // yields an exact admission-order prefix of the group while holding
  // only ONE shard lock at a time — planners in other groups, and
  // producers on other shards, never wait on this drain (DESIGN.md §13;
  // the original bounded drain held every shard lock for the full merge).
  const std::uint64_t fence = next_ticket_.load(std::memory_order_acquire);
  if (max_batch > 0) {
    // Phase 1 — snapshot: pop up to max_batch fenced items from each of
    // the group's shards into consumer-owned staging runs. Deques are
    // ticket-sorted, so fenced items are a front run.
    const std::size_t group_shards = gs.shard_end - gs.shard_begin;
    for (std::size_t i = 0; i < group_shards; ++i) {
      std::vector<Item>& run = gs.staged[i];
      run.clear();
      Shard& shard = *shards_[gs.shard_begin + i];
      std::lock_guard<std::mutex> lock(shard.mu);
      while (run.size() < max_batch && !shard.items.empty() &&
             shard.items.front().ticket < fence) {
        run.push_back(std::move(shard.items.front()));
        shard.items.pop_front();
      }
    }
    // Phase 2 — merge outside every lock: take the max_batch globally
    // smallest tickets across the staged runs.
    std::vector<std::size_t> cursor(group_shards, 0);
    std::size_t taken = 0;
    out.reserve(out.size() + max_batch);
    while (taken < max_batch) {
      std::size_t best = group_shards;
      for (std::size_t i = 0; i < group_shards; ++i) {
        if (cursor[i] < gs.staged[i].size() &&
            (best == group_shards ||
             gs.staged[i][cursor[i]].ticket <
                 gs.staged[best][cursor[best]].ticket)) {
          best = i;
        }
      }
      if (best == group_shards) break;
      out.push_back(std::move(gs.staged[best][cursor[best]].job));
      ++cursor[best];
      ++taken;
    }
    // Release capacity for what was actually taken. Staged leftovers are
    // still queued (returned below), so they keep their reservations.
    if (taken > 0) {
      size_.fetch_sub(taken, std::memory_order_acq_rel);
      gs.size.fetch_sub(taken, std::memory_order_acq_rel);
    }
    // Phase 3 — return leftovers to their shard fronts, in reverse so each
    // deque stays ticket-sorted. Safe against concurrent pushes: every
    // leftover ticket is < fence, and anything appended since phase 1
    // carries a ticket >= fence.
    for (std::size_t i = 0; i < group_shards; ++i) {
      std::vector<Item>& run = gs.staged[i];
      if (cursor[i] >= run.size()) {
        run.clear();
        continue;
      }
      Shard& shard = *shards_[gs.shard_begin + i];
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (std::size_t j = run.size(); j-- > cursor[i];) {
          shard.items.push_front(std::move(run[j]));
        }
      }
      run.clear();
    }
    note_drained(out, out_start);
    return taken;
  }
  // Unbounded sweep: take every fenced item, shard by shard, then restore
  // global ticket order with one sort. The fence keeps this an exact
  // admission-order prefix too; anything pushed mid-sweep (ticket >=
  // fence) is left for the next drain, which wait_drain's loop picks up.
  std::vector<Item> taken;
  std::size_t group_taken = 0;
  for (std::size_t s = gs.shard_begin; s < gs.shard_end; ++s) {
    Shard& shard = *shards_[s];
    std::size_t from_shard = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      while (!shard.items.empty() && shard.items.front().ticket < fence) {
        taken.push_back(std::move(shard.items.front()));
        shard.items.pop_front();
        ++from_shard;
      }
    }
    // Release capacity shard-by-shard, not after the full sweep — a
    // producer probing the bound should see space as soon as it exists.
    if (from_shard > 0) {
      size_.fetch_sub(from_shard, std::memory_order_acq_rel);
      group_taken += from_shard;
    }
  }
  if (taken.empty()) return 0;
  gs.size.fetch_sub(group_taken, std::memory_order_acq_rel);
  std::sort(taken.begin(), taken.end(),
            [](const Item& a, const Item& b) { return a.ticket < b.ticket; });
  out.reserve(out.size() + taken.size());
  for (Item& item : taken) {
    out.push_back(std::move(item.job));
  }
  note_drained(out, out_start);
  return taken.size();
}

std::size_t GradientQueue::wait_drain(std::vector<GradientJob>& out,
                                      std::size_t max_batch,
                                      std::size_t group) {
  GroupState& gs = *groups_[group];
  while (true) {
    const std::size_t taken = drain(out, max_batch, group);
    if (taken > 0) return taken;
    std::unique_lock<std::mutex> lock(gs.wake_mu);
    gs.wake_cv.wait(lock, [this, &gs] {
      return gs.size.load(std::memory_order_acquire) > 0 ||
             closed_.load(std::memory_order_acquire);
    });
    if (closed_.load(std::memory_order_acquire) &&
        gs.size.load(std::memory_order_acquire) == 0) {
      // Closed and nothing left in this group: one final sweep in case a
      // producer won the race between our drain and close().
      return drain(out, max_batch, group);
    }
  }
}

std::size_t GradientQueue::take_group_depth_peak(std::size_t group) {
  GroupState& gs = *groups_[group];
  // Re-arm the window at the current depth: a standing backlog keeps the
  // next window's peak at least that deep, while a fully absorbed burst
  // resets to zero. The max with `current` covers a drain that emptied the
  // group between the two loads.
  const std::size_t current = gs.size.load(std::memory_order_acquire);
  const std::size_t peak =
      gs.window_peak.exchange(current, std::memory_order_acq_rel);
  return std::max(peak, current);
}

std::vector<std::size_t> GradientQueue::shard_depths() const {
  std::vector<std::size_t> depths;
  depths.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    depths.push_back(shard_ptr->items.size());
  }
  return depths;
}

void GradientQueue::close() {
  closed_.store(true, std::memory_order_release);
  // Fence every shard: producers re-check the flag under the shard lock,
  // so once these acquire/release pairs complete, any in-flight push has
  // either landed (and is covered by its size_ reservation) or will see
  // closed and refuse.
  for (auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
  }
  for (auto& group_ptr : groups_) {
    { std::lock_guard<std::mutex> lock(group_ptr->wake_mu); }
    group_ptr->wake_cv.notify_all();
  }
}

}  // namespace fleet::runtime
