#include "fleet/runtime/gradient_queue.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <thread>

namespace fleet::runtime {

GradientQueue::GradientQueue(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("GradientQueue: capacity must be >= 1");
  }
  if (shards == 0) {
    throw std::invalid_argument("GradientQueue: shards must be >= 1");
  }
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool GradientQueue::try_push(GradientJob& job) {
  const std::size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      shards_.size();
  return push_to_shard(job, start);
}

bool GradientQueue::try_push(GradientJob& job, std::size_t shard_hint) {
  return push_to_shard(job, shard_hint % shards_.size());
}

bool GradientQueue::push_to_shard(GradientJob& job, std::size_t start_shard) {
  if (closed_.load(std::memory_order_acquire)) return false;
  // Reserve a slot against the global bound first; undo on failure. The
  // reservation also keeps a consumer from concluding "closed and empty"
  // while this push is mid-flight (wait_drain exits only at size() == 0).
  if (size_.fetch_add(1, std::memory_order_acq_rel) >= capacity_) {
    size_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = *shards_[start_shard];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Re-check under the shard lock: close() fences every shard after
    // setting the flag, so a push that sees closed==false here is
    // guaranteed to land before the consumer's final post-close sweep —
    // no job can be accepted into a queue nobody will ever drain.
    if (closed_.load(std::memory_order_acquire)) {
      size_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    Item item;
    // Ticket drawn under the shard lock: jobs pushed sequentially by one
    // producer always carry increasing tickets, so a quiesced drain
    // reproduces push order exactly.
    item.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    item.job = std::move(job);
    shard.items.push_back(std::move(item));
  }
  // Tap the wake mutex so a consumer that just evaluated "empty" and is
  // about to sleep observes either the new size or the notification.
  { std::lock_guard<std::mutex> lock(wake_mu_); }
  wake_cv_.notify_one();
  return true;
}

std::size_t GradientQueue::drain(std::vector<GradientJob>& out) {
  std::vector<Item> taken;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::size_t from_shard = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      while (!shard.items.empty()) {
        taken.push_back(std::move(shard.items.front()));
        shard.items.pop_front();
        ++from_shard;
      }
    }
    // Release capacity shard-by-shard, not after the full sweep — a
    // producer probing the bound should see space as soon as it exists.
    if (from_shard > 0) {
      size_.fetch_sub(from_shard, std::memory_order_acq_rel);
    }
  }
  if (taken.empty()) return 0;
  std::sort(taken.begin(), taken.end(),
            [](const Item& a, const Item& b) { return a.ticket < b.ticket; });
  out.reserve(out.size() + taken.size());
  for (Item& item : taken) {
    out.push_back(std::move(item.job));
  }
  return taken.size();
}

std::size_t GradientQueue::wait_drain(std::vector<GradientJob>& out) {
  while (true) {
    const std::size_t taken = drain(out);
    if (taken > 0) return taken;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return size_.load(std::memory_order_acquire) > 0 ||
             closed_.load(std::memory_order_acquire);
    });
    if (closed_.load(std::memory_order_acquire) &&
        size_.load(std::memory_order_acquire) == 0) {
      // Closed and nothing left: one final sweep in case a producer won the
      // race between our drain and close().
      return drain(out);
    }
  }
}

void GradientQueue::close() {
  closed_.store(true, std::memory_order_release);
  // Fence every shard: producers re-check the flag under the shard lock,
  // so once these acquire/release pairs complete, any in-flight push has
  // either landed (and is covered by its size_ reservation) or will see
  // closed and refuse.
  for (auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
  }
  { std::lock_guard<std::mutex> lock(wake_mu_); }
  wake_cv_.notify_all();
}

}  // namespace fleet::runtime
