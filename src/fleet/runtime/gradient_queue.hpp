#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "fleet/core/server.hpp"
#include "fleet/profiler/features.hpp"
#include "fleet/stats/label_distribution.hpp"
#include "fleet/telemetry/telemetry.hpp"

namespace fleet::runtime {

/// One gradient in flight from a worker to the aggregation thread (Fig 2,
/// step 5, decoupled in time). Unlike the serial path's span-based
/// `learning::WorkerUpdate`, the job *owns* its gradient buffer: the
/// producer hands the vector it already computed into (zero extra copies)
/// and the aggregation thread folds it into the accumulator later, after
/// the producer has moved on. Staleness is deliberately NOT a field — it
/// is computed by the aggregation thread against the logical clock at
/// *processing* time, which is what keeps tau exact under queueing
/// (DESIGN.md §6).
struct GradientJob {
  /// Learning task this gradient belongs to: the ingest queue is shared by
  /// every registered model and the aggregation loop demultiplexes each
  /// drain batch by this id (DESIGN.md §7).
  core::ModelId model_id = core::kDefaultModelId;
  std::size_t task_version = 0;            // t_i the gradient was computed at
  std::vector<float> gradient;             // owned; moved, never copied
  stats::LabelDistribution label_dist{1};  // LD of the mini-batch
  std::size_t mini_batch = 0;
  std::optional<profiler::Observation> feedback;  // profiler payload
  /// Global admission ticket, stamped by the queue when the push lands —
  /// the key every lifecycle trace event for this gradient carries. 0
  /// before admission. Not an input: whatever the producer sets is
  /// overwritten.
  std::uint64_t ticket = 0;
  /// Telemetry-only enqueue timestamp (ns on the host telemetry clock),
  /// stamped at admission when tracing is on; the drain side turns it into
  /// the queue-wait observation. 0 when telemetry is off. Never consulted
  /// by any scheduling or learning decision.
  std::uint64_t enqueue_ns = 0;
};

/// Bounded, sharded multi-producer single-consumer queue feeding the
/// aggregation thread (DESIGN.md §6).
///
/// Producers spread across `shards` independently locked rings (selected by
/// producer thread hash, overridable with a hint), so under N-thread ingest
/// they contend pairwise instead of on one global lock. Every push takes a
/// global admission ticket; the consumer's drain merges all shards and
/// returns jobs in ticket order, so a quiesced queue always drains in exact
/// push order (what makes `ParallelFleet` runs reproducible) and concurrent
/// drains are FIFO per producer.
///
/// The bound is global: when `size() == capacity`, try_push refuses and the
/// caller surfaces backpressure (the runtime turns this into a rejected
/// `GradientReceipt` instead of letting an overloaded server grow an
/// unbounded backlog).
class GradientQueue {
 public:
  /// `capacity`: global bound on queued jobs (>= 1).
  /// `shards`: independently locked sub-queues (>= 1).
  /// `telemetry`: optional observability sink (owned by the caller,
  /// outliving the queue). When set, the queue records admission latency
  /// ("queue.admit_ns") and per-gradient queue wait ("queue.wait_ns")
  /// histograms and emits submit/reject/dequeue lifecycle trace events.
  GradientQueue(std::size_t capacity, std::size_t shards = 8,
                telemetry::Telemetry* telemetry = nullptr);

  /// Enqueue, sharded by producer thread hash. Consumes `job` (moves from
  /// it) only on success; on a full or closed queue returns false and
  /// leaves `job` intact so the caller can retry or drop it.
  bool try_push(GradientJob& job);

  /// Enqueue into the shard `shard_hint % shards()` — for producers that
  /// want a stable shard (e.g. one shard per driver thread).
  bool try_push(GradientJob& job, std::size_t shard_hint);

  /// Consumer side: append queued jobs to `out` in admission-ticket order
  /// and return how many were taken. `max_batch` bounds one drain (0 =
  /// take everything): a bounded drain removes exactly the `max_batch`
  /// globally smallest tickets, so successive bounded drains still consume
  /// the queue in exact admission order — what keeps staleness and the
  /// fold sequence deterministic under batched aggregation. Blocks while
  /// the queue is empty and open; returns 0 only once the queue is closed
  /// *and* drained.
  std::size_t wait_drain(std::vector<GradientJob>& out,
                         std::size_t max_batch = 0);

  /// Non-blocking drain (same ordering and `max_batch` contract); returns
  /// the number taken.
  std::size_t drain(std::vector<GradientJob>& out, std::size_t max_batch = 0);

  /// Close the queue: further pushes fail, wait_drain() returns what's left
  /// and then 0. Idempotent.
  void close();

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Occupancy gauge: queued-but-undrained jobs right now. Same value as
  /// size() (which exists for the capacity check); named for monitoring
  /// surfaces — ConcurrentFleetServer::stats() exports it.
  std::size_t depth() const { return size(); }

  /// High-water-mark gauge: the deepest the queue has ever been (depth
  /// observed right after a successful push). Monotone; never reset by
  /// drains, so a monitoring poll after the burst still sees how close the
  /// backlog came to `capacity()`. At most `capacity()`.
  std::size_t max_depth_seen() const {
    return max_depth_.load(std::memory_order_acquire);
  }

  /// Per-shard occupancy, one entry per ingest shard. Each shard is read
  /// under its own lock, shard by shard — a monitoring poll never holds
  /// more than one producer lock at a time — so the entries are each exact
  /// but the vector is not one atomic cut: under concurrent pushes/drains
  /// the sum may transiently disagree with depth().
  std::vector<std::size_t> shard_depths() const;

  /// Total jobs ever refused for lack of space (backpressure events).
  std::size_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// The live queue-wait histogram (enqueue -> drain, ns), or nullptr when
  /// the queue runs without telemetry. ConcurrentFleetServer surfaces its
  /// snapshot as RuntimeStats::queue_wait.
  const telemetry::Histogram* wait_histogram() const { return wait_ns_; }

 private:
  struct Item {
    std::uint64_t ticket = 0;
    GradientJob job;
  };
  /// Cache-line separated so producers on different shards never false-share.
  struct alignas(64) Shard {
    std::mutex mu;
    std::deque<Item> items;
  };

  bool push_to_shard(GradientJob& job, std::size_t start_shard);
  /// Telemetry tail of a drain: queue-wait observations + dequeue events
  /// for out[from..), stamped against one clock read.
  void note_drained(const std::vector<GradientJob>& out, std::size_t from);

  std::size_t capacity_;
  telemetry::Telemetry* telemetry_ = nullptr;  // optional, caller-owned
  telemetry::Histogram* admit_ns_ = nullptr;
  telemetry::Histogram* wait_ns_ = nullptr;
  telemetry::Counter* admitted_ctr_ = nullptr;
  telemetry::Counter* rejected_ctr_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> max_depth_{0};
  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<bool> closed_{false};
  // Consumer wakeup. Producers tap the mutex (empty critical section)
  // before notifying so a sleeping consumer can't miss the signal.
  mutable std::mutex wake_mu_;
  std::condition_variable wake_cv_;
};

}  // namespace fleet::runtime
