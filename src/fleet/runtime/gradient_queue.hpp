#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "fleet/core/server.hpp"
#include "fleet/profiler/features.hpp"
#include "fleet/stats/label_distribution.hpp"
#include "fleet/telemetry/telemetry.hpp"

namespace fleet::runtime {

/// What the host does with gradients above the ingest queue's shed
/// watermark (DESIGN.md §14). The baseline refuses the *incoming* job —
/// the freshest work, which is exactly what AdaSGD's staleness dampening
/// values most. The shed policies instead compare the incoming job against
/// the queued jobs of its target shard and drop whichever the dampening
/// function would down-weight most, so overload sheds the gradients
/// carrying the least learning signal.
enum class OverloadPolicy {
  /// Today's behavior: a full queue rejects the incoming submit with
  /// retryable backpressure. The default; bitwise identical to pre-policy
  /// builds.
  kRejectNewest,
  /// Evict the stalest queued gradient (largest submit-time staleness)
  /// when the incoming one is fresher; Lambda(tau) = exp(-beta tau) makes
  /// the stalest gradient the cheapest possible loss.
  kShedStalest,
  /// Evict the queued gradient with the smallest expected dampened weight
  /// (staleness AND similarity boost folded in) — strictly the least
  /// signal by the aggregator's own metric, at the cost of a weight query
  /// per submit.
  kShedLowestWeight,
};

const char* overload_policy_name(OverloadPolicy policy);

/// One gradient in flight from a worker to a planner thread (Fig 2,
/// step 5, decoupled in time). Unlike the serial path's span-based
/// `learning::WorkerUpdate`, the job *owns* its gradient buffer: the
/// producer hands the vector it already computed into (zero extra copies)
/// and the planner folds it into the accumulator later, after
/// the producer has moved on. Staleness is deliberately NOT a field — it
/// is computed by the planner against the logical clock at
/// *processing* time, which is what keeps tau exact under queueing
/// (DESIGN.md §6).
struct GradientJob {
  /// Learning task this gradient belongs to: the ingest queue is shared by
  /// every registered model and the planner loop demultiplexes each
  /// drain batch by this id (DESIGN.md §7). It also selects the planner
  /// group the job is routed to (DESIGN.md §13).
  core::ModelId model_id = core::kDefaultModelId;
  std::size_t task_version = 0;            // t_i the gradient was computed at
  std::vector<float> gradient;             // owned; moved, never copied
  stats::LabelDistribution label_dist{1};  // LD of the mini-batch
  std::size_t mini_batch = 0;
  std::optional<profiler::Observation> feedback;  // profiler payload
  /// Global admission ticket, stamped by the queue when the push lands —
  /// the key every lifecycle trace event for this gradient carries. 0
  /// before admission. Not an input: whatever the producer sets is
  /// overwritten.
  std::uint64_t ticket = 0;
  /// Telemetry-only enqueue timestamp (ns on the host telemetry clock),
  /// stamped at admission when tracing is on; the drain side turns it into
  /// the queue-wait observation. 0 when telemetry is off. Never consulted
  /// by any scheduling or learning decision.
  std::uint64_t enqueue_ns = 0;
  /// Admission-time estimate of the learning signal this job carries,
  /// stamped by the server when an overload shed policy is active (never
  /// consulted under kRejectNewest). Higher = keep. kShedStalest: minus
  /// the staleness at submit; kShedLowestWeight: the dampened weight the
  /// aggregator would apply if the job were processed now. An estimate —
  /// staleness keeps growing while the job queues — but the *ordering*
  /// between queued jobs is all the shed comparison consumes, and queueing
  /// delay only makes an already-stale job staler (DESIGN.md §14).
  double shed_cost = 0.0;
};

/// Bounded, sharded multi-producer queue feeding the planner threads
/// (DESIGN.md §6, §13).
///
/// Producers spread across `shards` independently locked rings, so under
/// N-thread ingest they contend pairwise instead of on one global lock.
/// The shards are partitioned into `groups` contiguous *planner groups*;
/// a job routes to group `model_id % groups` (and to a shard within the
/// group by producer thread hash, overridable with a hint). Each group
/// has exactly one consumer — its planner thread — so the single-consumer
/// drain contract of the original design holds per group, while different
/// groups drain fully in parallel.
///
/// Every push takes a host-global admission ticket; a group drain returns
/// jobs in ticket order and removes an exact admission-order prefix of
/// the group's contents, so each session (pinned to one group by its id)
/// still observes the exact host-global admission order of its own jobs —
/// the invariant the determinism matrix checks bitwise (DESIGN.md §13).
///
/// The bound is global: when `size() == capacity`, try_push refuses and the
/// caller surfaces backpressure (the runtime turns this into a rejected
/// `GradientReceipt` instead of letting an overloaded server grow an
/// unbounded backlog).
class GradientQueue {
 public:
  /// `capacity`: global bound on queued jobs (>= 1).
  /// `shards`: independently locked sub-queues (>= 1; raised to `groups`
  /// when smaller so every group owns at least one shard).
  /// `telemetry`: optional observability sink (owned by the caller,
  /// outliving the queue). When set, the queue records admission latency
  /// ("queue.admit_ns") and per-gradient queue wait ("queue.wait_ns")
  /// histograms and emits submit/reject/dequeue lifecycle trace events.
  /// `groups`: planner groups (>= 1), one consumer thread per group.
  /// `policy` + `shed_watermark` (DESIGN.md §14): with a shed policy, a
  /// push that would raise the depth past min(shed_watermark, capacity)
  /// (watermark 0 = capacity, i.e. shed only when full) compares the
  /// incoming job's shed_cost against its target shard's queued jobs and
  /// drops whichever carries the least signal. kRejectNewest (the default)
  /// never evicts and is bitwise identical to the pre-policy queue.
  GradientQueue(std::size_t capacity, std::size_t shards = 8,
                telemetry::Telemetry* telemetry = nullptr,
                std::size_t groups = 1,
                OverloadPolicy policy = OverloadPolicy::kRejectNewest,
                std::size_t shed_watermark = 0);

  /// Enqueue, sharded by producer thread hash within the job's planner
  /// group. Consumes `job` (moves from it) only on success; on a full or
  /// closed queue returns false and leaves `job` intact so the caller can
  /// retry or drop it. Under a shed policy, shed outcomes also read false
  /// here — callers that must distinguish (and receive eviction victims)
  /// go through push().
  bool try_push(GradientJob& job);

  /// Enqueue into shard `shard_hint % <group shard count>` of the job's
  /// group — for producers that want a stable shard (e.g. one shard per
  /// driver thread).
  bool try_push(GradientJob& job, std::size_t shard_hint);

  /// Full-fidelity push outcome for the shed-aware runtime (DESIGN.md §14).
  enum class PushOutcome {
    kAccepted,        ///< admitted; `job` consumed
    kAcceptedEvicted, ///< admitted; a lower-cost queued job was evicted
                      ///< into *evicted (its ticket retires with it — the
                      ///< caller must account the eviction, see
                      ///< ConcurrentFleetServer::try_submit)
    kShedIncoming,    ///< refused by the shed policy: the incoming job was
                      ///< the least valuable. `job` intact, no ticket drawn
    kRejectedFull,    ///< capacity backpressure (kRejectNewest only)
    kRejectedClosed,  ///< queue closed
  };

  /// try_push with shed-policy fidelity: above the watermark under a shed
  /// policy the incoming job is weighed against its target shard and either
  /// admitted (possibly evicting the shard's lowest-shed_cost job into
  /// *evicted, when non-null) or refused as kShedIncoming. With
  /// kRejectNewest this is exactly try_push.
  PushOutcome push(GradientJob& job, GradientJob* evicted);

  /// Consumer side: append `group`'s queued jobs to `out` in
  /// admission-ticket order and return how many were taken. At most one
  /// thread may drain a given group (the group's planner); different
  /// groups drain concurrently. `max_batch` bounds one drain (0 = take
  /// everything): a bounded drain removes exactly the `max_batch`
  /// globally smallest tickets of the group, so successive bounded drains
  /// still consume the group in exact admission order — what keeps
  /// staleness and the fold sequence deterministic under batched
  /// aggregation. Blocks while the group is empty and the queue open;
  /// returns 0 only once the queue is closed *and* the group drained.
  std::size_t wait_drain(std::vector<GradientJob>& out,
                         std::size_t max_batch = 0, std::size_t group = 0);

  /// Non-blocking drain (same ordering and `max_batch` contract); returns
  /// the number taken.
  std::size_t drain(std::vector<GradientJob>& out, std::size_t max_batch = 0,
                    std::size_t group = 0);

  /// Close the queue: further pushes fail, wait_drain() returns what's left
  /// and then 0. Idempotent.
  void close();

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t group_count() const { return groups_.size(); }

  /// The planner group a model's jobs route to. Sessions map to groups by
  /// id, so a session's entire stream is consumed by exactly one planner.
  std::size_t group_of(core::ModelId model_id) const {
    return static_cast<std::size_t>(model_id) % groups_.size();
  }

  /// Occupancy gauge: queued-but-undrained jobs right now. Same value as
  /// size() (which exists for the capacity check); named for monitoring
  /// surfaces — ConcurrentFleetServer::stats() exports it.
  std::size_t depth() const { return size(); }

  /// One group's occupancy (reservation-counted, like depth()).
  std::size_t group_depth(std::size_t group) const {
    return groups_[group]->size.load(std::memory_order_acquire);
  }

  /// High-water-mark gauge: the deepest the queue has ever been (depth
  /// observed right after a successful push). Monotone; never reset by
  /// drains, so a monitoring poll after the burst still sees how close the
  /// backlog came to `capacity()`. At most `capacity()`.
  std::size_t max_depth_seen() const {
    return max_depth_.load(std::memory_order_acquire);
  }

  /// Windowed counterpart of max_depth_seen() for one group, owned by the
  /// adaptive drain batcher (DESIGN.md §13): returns the deepest the group
  /// has been since the previous take and re-arms the window at the
  /// group's *current* depth — so a standing backlog keeps reading deep
  /// while an absorbed burst decays immediately, which a monotone
  /// high-water mark cannot express. Call from the group's consumer.
  std::size_t take_group_depth_peak(std::size_t group);

  /// Per-shard occupancy, one entry per ingest shard. Each shard is read
  /// under its own lock, shard by shard — a monitoring poll never holds
  /// more than one producer lock at a time — so the entries are each exact
  /// but the vector is not one atomic cut: under concurrent pushes/drains
  /// the sum may transiently disagree with depth().
  std::vector<std::size_t> shard_depths() const;

  /// Total jobs ever refused for lack of space (backpressure events).
  std::size_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// The live queue-wait histogram (enqueue -> drain, ns), or nullptr when
  /// the queue runs without telemetry. ConcurrentFleetServer surfaces its
  /// snapshot as RuntimeStats::queue_wait.
  const telemetry::Histogram* wait_histogram() const { return wait_ns_; }

 private:
  struct Item {
    std::uint64_t ticket = 0;
    GradientJob job;
  };
  /// Cache-line separated so producers on different shards never false-share.
  struct alignas(64) Shard {
    std::mutex mu;
    std::deque<Item> items;
  };
  /// One planner group: a contiguous shard range plus its consumer wakeup
  /// channel and occupancy counters. Cache-line separated like shards.
  struct alignas(64) GroupState {
    std::size_t shard_begin = 0;
    std::size_t shard_end = 0;  // exclusive
    std::atomic<std::size_t> size{0};
    std::atomic<std::size_t> window_peak{0};
    // Consumer wakeup. Producers tap the mutex (empty critical section)
    // before notifying so a sleeping consumer can't miss the signal.
    std::mutex wake_mu;
    std::condition_variable wake_cv;
    /// Consumer-owned staging runs for the snapshot-then-merge bounded
    /// drain (one per shard of the group, capacity reused across drains).
    std::vector<std::vector<Item>> staged;
  };

  PushOutcome push_to_shard(GradientJob& job, std::size_t group,
                            std::size_t group_offset, GradientJob* evicted);
  /// Telemetry tail of a drain: queue-wait observations + dequeue events
  /// for out[from..), stamped against one clock read.
  void note_drained(const std::vector<GradientJob>& out, std::size_t from);

  std::size_t capacity_;
  OverloadPolicy policy_ = OverloadPolicy::kRejectNewest;
  /// Depth past which a shed policy starts weighing jobs:
  /// min(shed_watermark ? shed_watermark : capacity, capacity). Equal to
  /// capacity_ under kRejectNewest.
  std::size_t shed_trigger_;
  telemetry::Telemetry* telemetry_ = nullptr;  // optional, caller-owned
  telemetry::Histogram* admit_ns_ = nullptr;
  telemetry::Histogram* wait_ns_ = nullptr;
  telemetry::Counter* admitted_ctr_ = nullptr;
  telemetry::Counter* rejected_ctr_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<GroupState>> groups_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> max_depth_{0};
  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace fleet::runtime
