#pragma once

// Pressure-adaptive drain batching (DESIGN.md §13).
//
// Each planner thread owns one AdaptiveBatcher and feeds it two counters
// after every drain: how many jobs the drain took, and the group's
// windowed queue-depth peak. Every `window` drains the controller votes:
// widen when the backlog peak overran the current limit, narrow when the
// queue stayed shallow AND batches ran mostly empty, hold otherwise. A
// vote only acts after `hysteresis` consecutive windows agree, and the
// limit moves by powers of two inside [min_batch, max_batch].
//
// §11 invariant (counters, not clocks): the controller reads ONLY values
// derived from queue/batch occupancy — never telemetry timestamps or
// latency histograms. That keeps the drain schedule independent of
// whether telemetry is enabled, which the determinism matrix's
// telemetry on/off axis checks bitwise. Results are batch-size-invariant
// anyway (batching changes publication cadence, never fold order), but
// the counters-only rule keeps the *schedule* reproducible too.
//
// Single writer (the owning planner); `limit()` and `stats()` may be read
// concurrently by stats collectors, so the published fields are relaxed
// atomics.

#include <atomic>
#include <cstddef>

namespace fleet::runtime {

struct AdaptiveBatchConfig {
  /// Master switch. When false the server drains with the pinned
  /// `max_drain_batch` — the serialize_folds-style baseline mode.
  bool enabled = false;
  std::size_t min_batch = 8;
  std::size_t max_batch = 512;
  /// Drains per control window (one vote per window).
  std::size_t window = 4;
  /// Consecutive agreeing windows before a vote moves the limit.
  std::size_t hysteresis = 2;
  /// Widen when the windowed depth peak exceeds ratio × limit.
  double widen_depth_ratio = 1.0;
  /// Narrow only when the depth peak stays under ratio × limit ...
  double narrow_depth_ratio = 0.25;
  /// ... and mean batch fill is under this fraction of the limit.
  double narrow_occupancy = 0.5;
};

class AdaptiveBatcher {
 public:
  AdaptiveBatcher(const AdaptiveBatchConfig& config, std::size_t initial);

  /// Current drain limit (always in [min_batch, max_batch]).
  std::size_t limit() const { return limit_.load(std::memory_order_relaxed); }

  /// Feed one drain's counters: jobs taken and the owning group's depth
  /// peak over the window since the previous drain.
  void observe(std::size_t taken, std::size_t depth_peak);

  struct Stats {
    std::size_t limit = 0;
    std::size_t widenings = 0;
    std::size_t narrowings = 0;
    std::size_t windows = 0;
  };
  Stats stats() const;

 private:
  void decide();

  AdaptiveBatchConfig config_;
  std::atomic<std::size_t> limit_;
  std::atomic<std::size_t> widenings_{0};
  std::atomic<std::size_t> narrowings_{0};
  std::atomic<std::size_t> windows_{0};

  // Window accumulators and the hysteresis streak: planner-thread-only.
  std::size_t drains_in_window_ = 0;
  std::size_t taken_in_window_ = 0;
  std::size_t depth_peak_in_window_ = 0;
  int streak_ = 0;  // >0: consecutive widen votes, <0: narrow votes
};

}  // namespace fleet::runtime
