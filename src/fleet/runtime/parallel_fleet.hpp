#pragma once

#include <cstdint>
#include <vector>

#include "fleet/core/worker.hpp"
#include "fleet/runtime/concurrent_server.hpp"

namespace fleet::runtime {

/// Parallel fleet driver: runs N OS threads of simulated workers against a
/// ConcurrentFleetServer, replacing the discrete-event simulation's
/// wall-clock-per-core with real hardware parallelism (DESIGN.md §6).
///
/// The drive is round-structured so runs stay reproducible:
///   A. (driver thread) every idle worker requests a task, in worker-index
///      order — each session's controller and profiler are order-sensitive,
///      so their admission history must evolve deterministically;
///   B. (N threads) accepted workers compute gradients in parallel — the
///      dominant cost, embarrassingly parallel because each worker owns its
///      replica, device sim and RNG. Each result draws an arrival delay and
///      a dropout coin from the worker's private stream;
///   C. (driver thread) gradients whose arrival round has come are pushed
///      into the server's ingest queue in worker-index order, then the
///      driver waits for the aggregation thread to drain them before the
///      next round's requests read the clocks.
///
/// Mixed workloads (DESIGN.md §7): Config::worker_models assigns each
/// worker to a registered ModelId, so one drive trains several tenants of
/// the same host concurrently. Requests and submissions route to the
/// worker's session; a worker whose model is not (or no longer) registered
/// is simply rejected and retries. Because every random draw still comes
/// from the worker's private index-keyed stream and the round structure is
/// unchanged, each session's final model is bitwise thread-count-invariant
/// AND identical to a drive where the other tenants' workers were rejected
/// — sessions share only the queue and the fold pool, never state.
///
/// Staleness emerges endogenously, as in the serial simulation: a gradient
/// computed against round r's clock arrives delay rounds later, after
/// lower-indexed submissions to the same session advanced that model.
/// Determinism: every random draw comes either from a per-worker stream
/// split off the base seed (stats::Rng::stream — independent of which
/// thread runs the worker) or from sequential driver-side code, so the
/// same seed produces the same final models for ANY thread count, provided
/// the server's queue capacity is >= the worker count (otherwise
/// backpressure, which is timing dependent, can reorder retries).
class ParallelFleet {
 public:
  struct Config {
    /// OS threads for the compute phase (>= 1).
    std::size_t n_threads = 2;
    /// Rounds to drive (each worker attempts ~1 task per round).
    std::size_t rounds = 20;
    /// Probability a computed gradient never arrives (churn), drawn from
    /// the worker's private stream. 0 disables and draws nothing.
    double dropout_prob = 0.0;
    /// Extra rounds a gradient may wait before arriving, uniform in
    /// [0, max_arrival_delay]. Induces staleness spread; 0 disables (and
    /// draws nothing), leaving only intra-round staleness.
    std::size_t max_arrival_delay = 0;
    std::uint64_t seed = 1;
    /// Per-worker model assignment for mixed workloads: worker w trains
    /// worker_models[w]. Empty = every worker trains
    /// core::kDefaultModelId (the single-model shim). When non-empty the
    /// size must match the worker vector. Each worker's replica must
    /// architecturally match its assigned model.
    std::vector<core::ModelId> worker_models;
  };

  /// Per-session server-side stats of one drive (ascending id order).
  struct ModelStats {
    core::ModelId id = core::kDefaultModelId;
    RuntimeStats runtime;
  };

  struct Stats {
    std::size_t requests = 0;
    std::size_t rejected = 0;            ///< controller/unknown-id rejections
    std::size_t gradients_submitted = 0;
    std::size_t dropped = 0;             ///< lost to dropout
    std::size_t backpressure_retries = 0;
    /// Non-retryable server rejections (validation failure / retired model
    /// / shutdown); the job is discarded — retrying an identical submit
    /// cannot succeed.
    std::size_t rejected_submissions = 0;
    /// Final-flush breakdown (DESIGN.md §14): of the totals above, how
    /// much came from the post-round delivery of still-in-flight delayed
    /// gradients. Split out because the final flush retries by draining
    /// the whole backlog per attempt — conflating its retries with the
    /// cheap mid-round ones hid how often the flush actually blocked, and
    /// conflating its drops with mid-round rejects hid gradients lost at
    /// the very end of a drive. Both are ALSO counted into
    /// backpressure_retries / rejected_submissions (these are a
    /// breakdown, not extra events).
    std::size_t final_flush_retries = 0;
    std::size_t final_flush_drops = 0;
    /// Aggregate server-side view after drain: per-model counters summed,
    /// traces concatenated in ascending model-id order (for a single-model
    /// drive this is exactly that session's stats).
    RuntimeStats runtime;
    /// The same view per driven model, ascending id.
    std::vector<ModelStats> per_model;
  };

  ParallelFleet(ConcurrentFleetServer& server,
                std::vector<core::FleetWorker>& workers, const Config& config);

  /// Drive the fleet for the configured number of rounds; returns once the
  /// server has processed every surviving gradient.
  Stats run();

 private:
  ConcurrentFleetServer& server_;
  std::vector<core::FleetWorker>& workers_;
  Config config_;
};

}  // namespace fleet::runtime
