#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "fleet/learning/aggregator.hpp"

namespace fleet::runtime {

/// One step of a batched fold plan (DESIGN.md §6). The aggregation thread
/// builds the plan centrally — one kFold per accepted gradient carrying the
/// weight it computed (staleness lambda(tau) + boost, at processing time),
/// one kFlushApply wherever a submission completed an aggregation round —
/// and the shard workers replay it span by span.
struct FoldOp {
  enum class Kind { kFold, kFlushApply };
  Kind kind = Kind::kFold;
  /// kFold: the worker's full-length gradient (each shard folds its slice).
  /// Must outlive execute() — the runtime keeps the drained batch alive.
  std::span<const float> gradient;
  /// kFold: the dampened weight, computed centrally by plan_submit().
  double weight = 0.0;
  /// kFlushApply: the server's learning rate for `params -= lr * agg`.
  float learning_rate = 0.0f;
};

/// Sharded hierarchical aggregation: the parameter arena is partitioned
/// into contiguous spans, one persistent worker per span, and a whole
/// drain batch's weighted fold fans out across them with a barrier before
/// the (single-writer) snapshot publication.
///
/// Determinism: the plan fixes the fold order and every weight before any
/// arithmetic runs, each parameter index is owned by exactly one span, and
/// each span replays the plan in order — so every element experiences the
/// identical operation sequence the sequential fold would apply, and the
/// result is bitwise identical for any shard count and any batch size.
///
/// Threading: execute() is single-coordinator (the aggregation thread). The
/// coordinator folds span 0 itself; spans 1..S-1 run on the persistent
/// worker threads; execute() returns only after every span finished (the
/// barrier). Workers touch only AsyncAggregator::fold_into / flush_span and
/// their parameter slice — all mutually disjoint — so no lock is held
/// during the fold itself.
class ShardedAggregator {
 public:
  /// `parameters`: the model's mutable flat arena (TrainableModel::
  /// parameters_mut()); must match the aggregator's parameter_count().
  /// `shards` >= 1; one worker thread is spawned per shard beyond the
  /// first (shards == 1 folds inline on the caller, no threads at all).
  ShardedAggregator(learning::AsyncAggregator& aggregator,
                    std::span<float> parameters, std::size_t shards);
  ~ShardedAggregator();

  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  /// Run the plan across every shard and barrier until all are done. The
  /// spans the plan's gradients point at must stay alive throughout.
  void execute(std::span<const FoldOp> plan);

  std::size_t shard_count() const { return spans_.size(); }

  /// The contiguous [begin, end) slice shard `s` owns (for tests).
  std::pair<std::size_t, std::size_t> span_of(std::size_t s) const {
    return {spans_[s].begin, spans_[s].end};
  }

 private:
  struct ShardSpan {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void run_shard(const ShardSpan& s, std::span<const FoldOp> plan);
  void worker_loop(std::size_t shard_index);

  learning::AsyncAggregator& aggregator_;
  std::span<float> parameters_;
  std::vector<ShardSpan> spans_;

  // Plan hand-off: the coordinator bumps epoch_ under mu_ and workers
  // replay plan_ exactly once per epoch; outstanding_ is the barrier.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::span<const FoldOp> plan_;
  std::uint64_t epoch_ = 0;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fleet::runtime
