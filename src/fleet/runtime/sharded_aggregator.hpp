#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "fleet/core/server.hpp"
#include "fleet/learning/aggregator.hpp"
#include "fleet/runtime/fault.hpp"
#include "fleet/telemetry/telemetry.hpp"

namespace fleet::runtime {

/// One step of a batched fold plan (DESIGN.md §6). The aggregation thread
/// builds the plan centrally — one kFold per accepted gradient carrying the
/// weight it computed (staleness lambda(tau) + boost, at processing time),
/// one kFlushApply wherever a submission completed an aggregation round —
/// and the shard workers replay it span by span.
struct FoldOp {
  enum class Kind { kFold, kFlushApply };
  Kind kind = Kind::kFold;
  /// kFold: the worker's full-length gradient (each shard folds its slice).
  /// Must outlive the plan's execution — the runtime keeps the drained
  /// batch alive until every latch of the drain resolved.
  std::span<const float> gradient;
  /// kFold: the dampened weight, computed centrally by plan_submit().
  double weight = 0.0;
  /// kFlushApply: the server's learning rate for `params -= lr * agg`.
  float learning_rate = 0.0f;
};

/// One contiguous [begin, end) slice of a parameter arena — the unit a
/// fold task owns exclusively.
struct FoldSpan {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// The per-model state one fold plan executes against: the session's
/// aggregator (accumulator + flushed buffer) and its model's mutable
/// parameter arena. On a multi-tenant host (DESIGN.md §7/§9) every
/// registered model has its own context while the scheduler below is
/// shared. `spans` optionally carries the arena's cached span partition
/// (ModelSession computes it once per arena, DESIGN.md §9); when empty the
/// scheduler derives the partition from (arena size, shard count) per
/// submission — same slices either way.
struct FoldContext {
  learning::AsyncAggregator* aggregator = nullptr;
  std::span<float> parameters;
  std::span<const FoldSpan> spans;
  /// Which tenant this plan belongs to — carried only so fold-task trace
  /// spans can be keyed by model; the fold itself never reads it.
  core::ModelId model = core::kDefaultModelId;
};

/// Completion latch for one submitted fold plan: submit() arms it with the
/// plan's span-task count, every finished task counts it down, and wait()
/// blocks until it hits zero. Owned by the caller (one per in-flight plan)
/// and reusable once resolved — the server keeps one per session slot.
class FoldLatch {
 public:
  FoldLatch() = default;
  FoldLatch(const FoldLatch&) = delete;
  FoldLatch& operator=(const FoldLatch&) = delete;

  /// True when no armed task is outstanding (trivially true before any
  /// submit). Safe to poll from the submitting thread; for the full
  /// happens-before edge on the folded data, go through wait().
  bool done() const { return pending_.load(std::memory_order_acquire) == 0; }

  /// Tasks of the last plan(s) that finished by throwing instead of
  /// folding (DESIGN.md §14): the scheduler catches the exception, counts
  /// it here and still resolves the latch, so the coordinator can never
  /// deadlock on a failed fold. Reading is destructive — the coordinator
  /// takes the count once per wait and quarantines the owning session.
  std::size_t take_failures() {
    return failed_.exchange(0, std::memory_order_acq_rel);
  }

 private:
  friend class ShardedAggregator;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> failed_{0};
};

/// Sharded fold scheduler (DESIGN.md §9): a parameter arena is partitioned
/// into contiguous spans and a drain batch's weighted fold fans out across
/// a persistent worker pool, one task per (plan, span).
///
/// Unlike the earlier one-plan-at-a-time barrier, the pool runs a task
/// *queue*: the coordinator may submit many sessions' (context, plan)
/// pairs back to back — each armed with its own FoldLatch — and different
/// sessions' spans execute concurrently. That is legal because sessions'
/// parameter arenas and aggregator accumulators are disjoint, and it is
/// deterministic because concurrency never crosses a span boundary: each
/// task replays its whole plan over its own slice in plan order, so every
/// element still experiences the identical operation sequence the
/// sequential fold would apply. Per-session results are bitwise equal to a
/// solo sequential server for any shard/batch/tenant configuration.
///
/// Threading: `shards - 1` persistent workers (shards == 1 spawns none).
/// submit() only enqueues; tasks are executed by the workers *and* by any
/// thread blocked in wait() — a waiter drains queued tasks (any plan's)
/// instead of idling, which both keeps shards == 1 fully inline on the
/// caller and makes the coordinator the S-th lane of the pool. Every
/// submitted plan must be waited on before the pool is destroyed.
///
/// Workers touch only AsyncAggregator::fold_into / flush_span and their
/// parameter slice — mutually disjoint across tasks — so no lock is held
/// during the fold itself. wait() returning establishes the
/// happens-before edge from every fold of that latch to the caller
/// (publication reads the arena only after its session's latch resolved).
class ShardedAggregator {
 public:
  /// `shards` >= 1; one worker thread is spawned per shard beyond the
  /// first. `worker_cpus` is the placement plan for those workers: entry w
  /// best-effort pins worker w to that CPU (Linux only; -1 or a missing
  /// entry leaves the worker unpinned — see `plan_placement()` and
  /// RuntimeConfig::pin_fold_workers). `telemetry` (optional, caller-owned,
  /// outliving the pool) records per-task fold latency ("pool.task_ns"),
  /// pool occupancy ("pool.pending" gauge) and per-task trace spans.
  /// `fault` (optional, caller-owned, outliving the pool) is the host's
  /// deterministic fault injector: when its kFoldTask site is armed,
  /// selected span tasks throw instead of folding — the pool catches any
  /// task exception (injected or real), counts it on the task's latch
  /// (FoldLatch::take_failures) and keeps the latch resolving, so a
  /// failed fold degrades exactly one session instead of terminating the
  /// process (DESIGN.md §14).
  explicit ShardedAggregator(std::size_t shards,
                             std::vector<int> worker_cpus = {},
                             telemetry::Telemetry* telemetry = nullptr,
                             FaultInjector* fault = nullptr);
  ~ShardedAggregator();

  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  /// Enqueue one plan: one task per (non-empty) span of `ctx`'s arena,
  /// armed on `latch`. Returns immediately; the plan's gradients, the
  /// context's aggregator/arena/spans and the latch must stay alive until
  /// wait(latch) returned. `latch` must be resolved (done()) on entry —
  /// one latch tracks one plan at a time. Throws std::invalid_argument
  /// when the context's arena size does not match its aggregator's
  /// parameter count. An empty plan is a no-op (the latch stays done).
  void submit(const FoldContext& ctx, std::span<const FoldOp> plan,
              FoldLatch& latch);

  /// Block until every task armed on `latch` finished, executing queued
  /// tasks (any plan's) while work remains instead of sleeping.
  void wait(FoldLatch& latch);

  /// submit() + wait() in one call — the solo, synchronous path (kept for
  /// single-plan callers and the pre-scheduler tests).
  void execute(const FoldContext& ctx, std::span<const FoldOp> plan);

  std::size_t shard_count() const { return shards_; }

  /// How many worker threads the pool runs (shards - 1).
  std::size_t worker_count() const { return workers_.size(); }

  /// How many workers the constructor's placement plan actually pinned.
  /// Equal to the number of non-negative `worker_cpus` entries only when
  /// every requested pin succeeded — the server folds this into
  /// RuntimeStats::pinning_applied (DESIGN.md §13).
  std::size_t pinned_workers() const { return pinned_workers_; }

  /// The contiguous [begin, end) slice shard `s` owns of an arena with
  /// `param_count` elements split `shards` ways — the partition submit()
  /// uses (trailing spans may be empty when shards > param_count).
  static std::pair<std::size_t, std::size_t> span_of(std::size_t param_count,
                                                     std::size_t shards,
                                                     std::size_t s);

  /// The full partition as FoldContext::spans expects it: every non-empty
  /// span of an arena with `param_count` elements split `shards` ways, in
  /// ascending order. ModelSession caches this per arena (DESIGN.md §9).
  static std::vector<FoldSpan> partition(std::size_t param_count,
                                         std::size_t shards);

  /// Scheduler occupancy counters (monotone; read anytime).
  struct PoolStats {
    /// Span tasks completed since construction.
    std::size_t tasks_executed = 0;
    /// High-water mark of tasks in flight at once (queued + running) —
    /// > shard_count() means cross-session overlap actually happened.
    std::size_t peak_pending = 0;
  };
  PoolStats pool_stats() const;

 private:
  struct FoldTask {
    FoldContext ctx;
    std::span<const FoldOp> plan;
    FoldSpan span;
    /// Position of `span` in its plan's partition — the span-affinity key:
    /// worker lane `l` prefers tasks with span_index % shards == l + 1, so
    /// a given arena slice is folded by the same (pinned) worker across
    /// plans and stays hot in that core's cache / NUMA node.
    std::size_t span_index = 0;
    FoldLatch* latch = nullptr;
  };

  /// Lane id passed by waiters (coordinator lanes): take the queue front.
  static constexpr std::size_t kAnyLane = static_cast<std::size_t>(-1);

  /// Pop and run one queued task, preferring the lane's affine spans;
  /// false when the queue was empty.
  bool run_one(std::size_t lane);
  static void run_task(const FoldTask& task);
  void worker_loop(std::size_t lane);

  std::size_t shards_;
  telemetry::Telemetry* telemetry_ = nullptr;  // optional, caller-owned
  FaultInjector* fault_ = nullptr;             // optional, caller-owned
  telemetry::Histogram* task_ns_ = nullptr;
  telemetry::Gauge* pending_ = nullptr;

  // Task queue: submit() pushes under mu_ and wakes workers (work_cv_) and
  // helping waiters (done_cv_); run_one() decrements the task's latch
  // under mu_ before notifying done_cv_, so a waiter's predicate check
  // can never miss the final count-down.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<FoldTask> tasks_;
  std::size_t active_ = 0;  ///< popped but not yet finished
  std::size_t tasks_executed_ = 0;
  std::size_t peak_pending_ = 0;
  bool stopping_ = false;
  std::size_t pinned_workers_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace fleet::runtime
