#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "fleet/learning/aggregator.hpp"

namespace fleet::runtime {

/// One step of a batched fold plan (DESIGN.md §6). The aggregation thread
/// builds the plan centrally — one kFold per accepted gradient carrying the
/// weight it computed (staleness lambda(tau) + boost, at processing time),
/// one kFlushApply wherever a submission completed an aggregation round —
/// and the shard workers replay it span by span.
struct FoldOp {
  enum class Kind { kFold, kFlushApply };
  Kind kind = Kind::kFold;
  /// kFold: the worker's full-length gradient (each shard folds its slice).
  /// Must outlive execute() — the runtime keeps the drained batch alive.
  std::span<const float> gradient;
  /// kFold: the dampened weight, computed centrally by plan_submit().
  double weight = 0.0;
  /// kFlushApply: the server's learning rate for `params -= lr * agg`.
  float learning_rate = 0.0f;
};

/// The per-model state one fold plan executes against: the session's
/// aggregator (accumulator + flushed buffer) and its model's mutable
/// parameter arena. On a multi-tenant host (DESIGN.md §7) every registered
/// model has its own context while the span workers below are shared.
struct FoldContext {
  learning::AsyncAggregator* aggregator = nullptr;
  std::span<float> parameters;
};

/// Sharded hierarchical aggregation: a parameter arena is partitioned into
/// contiguous spans, one persistent worker per span, and a whole drain
/// batch's weighted fold fans out across them with a barrier before the
/// (single-writer) snapshot publication.
///
/// The pool itself is model-agnostic: execute() takes the FoldContext the
/// plan belongs to, and the span partition is derived from that context's
/// arena size — so one pool serves every session on a multi-tenant host,
/// one plan at a time. The partition depends only on (parameter count,
/// shard count), which is what keeps a session hosted among others bitwise
/// identical to the same model on a solo server with the same shard count.
///
/// Determinism: the plan fixes the fold order and every weight before any
/// arithmetic runs, each parameter index is owned by exactly one span, and
/// each span replays the plan in order — so every element experiences the
/// identical operation sequence the sequential fold would apply, and the
/// result is bitwise identical for any shard count and any batch size.
///
/// Threading: execute() is single-coordinator (the aggregation thread). The
/// coordinator folds span 0 itself; spans 1..S-1 run on the persistent
/// worker threads; execute() returns only after every span finished (the
/// barrier). Workers touch only AsyncAggregator::fold_into / flush_span and
/// their parameter slice — all mutually disjoint — so no lock is held
/// during the fold itself.
class ShardedAggregator {
 public:
  /// `shards` >= 1; one worker thread is spawned per shard beyond the
  /// first (shards == 1 folds inline on the caller, no threads at all).
  explicit ShardedAggregator(std::size_t shards);
  ~ShardedAggregator();

  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  /// Run the plan across every shard of `ctx`'s arena and barrier until
  /// all are done. The spans the plan's gradients point at, and the
  /// context's aggregator and arena, must stay alive throughout. Throws
  /// std::invalid_argument when the context's arena size does not match
  /// its aggregator's parameter count.
  void execute(const FoldContext& ctx, std::span<const FoldOp> plan);

  std::size_t shard_count() const { return shards_; }

  /// The contiguous [begin, end) slice shard `s` owns of an arena with
  /// `param_count` elements split `shards` ways — the partition execute()
  /// uses (trailing spans may be empty when shards > param_count).
  static std::pair<std::size_t, std::size_t> span_of(std::size_t param_count,
                                                     std::size_t shards,
                                                     std::size_t s);

 private:
  void run_shard(std::size_t shard_index, const FoldContext& ctx,
                 std::span<const FoldOp> plan);
  void worker_loop(std::size_t shard_index);

  std::size_t shards_;

  // Plan hand-off: the coordinator bumps epoch_ under mu_ and workers
  // replay (ctx_, plan_) exactly once per epoch; outstanding_ is the
  // barrier.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  FoldContext ctx_;
  std::span<const FoldOp> plan_;
  std::uint64_t epoch_ = 0;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fleet::runtime
