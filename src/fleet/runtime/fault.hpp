#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace fleet::runtime {

/// Named places in the serving stack where a FaultInjector may fire
/// (DESIGN.md §14). Each site is polled by exactly one layer; a site the
/// stack never reaches simply never triggers.
enum class FaultSite : std::size_t {
  /// LoopbackIngest, before decode: flip one byte of the frame copy so the
  /// wire decoder (or the fold downstream) sees corrupted input.
  kWireCorrupt = 0,
  /// LoopbackIngest injector thread, at loop top while holding no frame:
  /// the thread exits as if it crashed; the supervisor respawns it.
  kInjectorDeath,
  /// ConcurrentFleetServer::try_submit, before the queue push: synthesize a
  /// transient queue-full (retryable backpressure) receipt.
  kQueueFull,
  /// ShardedAggregator fold task: throw inside the worker, exercising the
  /// quarantine path (latch failure -> session degraded).
  kFoldTask,
  /// Planner loop, after popping a batch: spin-yield `payload` times,
  /// simulating a stalled control-plane thread.
  kPlannerStall,
  kSiteCount,
};

const char* fault_site_name(FaultSite site);

/// One site's firing schedule. Decisions are pure functions of
/// (injector seed, site, trigger index) — a trigger is one poll of the
/// site — so a fault plan replays identically run to run, independent of
/// thread interleaving *per site* (each site's trigger counter is its own
/// atomic sequence). No wall clock is ever consulted (§11/§13
/// counters-not-clocks invariant).
struct FaultPlan {
  FaultSite site = FaultSite::kWireCorrupt;
  /// Bernoulli fire probability per trigger, decided by a seeded hash of
  /// the trigger index (0 = only the modular schedule below fires).
  double probability = 0.0;
  /// Deterministic schedule: fire when (trigger - after) % every == 0
  /// (0 disables the modular schedule).
  std::uint64_t every = 0;
  /// Triggers before this index never fire.
  std::uint64_t after = 0;
  /// Total fire budget for the site.
  std::uint64_t max_fires = ~0ull;
  /// Site-specific magnitude: spin-yield iterations for kPlannerStall
  /// (0 = default 1000); unused elsewhere.
  std::uint64_t payload = 0;
};

/// Seeded, counter-driven fault injector threaded through the serving
/// stack (DESIGN.md §14). A layer holding a FaultInjector* polls
/// `should_fire(site)` at its site; a null pointer (the default
/// everywhere) compiles to the current behavior — no counters move, no
/// branches beyond one null check — which keeps the determinism matrix
/// bitwise identical to a faults-free build.
///
/// Thread safety: should_fire/triggers/fires are safe from any thread.
/// arm() must complete before the injector is shared with running threads
/// (arm in the test/bench setup, then construct the server/ingest).
class FaultInjector {
 public:
  /// Thrown by injected kFoldTask faults (and available to tests that want
  /// to distinguish injected failures from real ones).
  class InjectedFault : public std::runtime_error {
   public:
    explicit InjectedFault(const char* what) : std::runtime_error(what) {}
  };

  explicit FaultInjector(std::uint64_t seed = 0) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install (or replace) the site's plan. Call before sharing the
  /// injector with running threads.
  void arm(const FaultPlan& plan);

  /// Poll the site: bumps its trigger counter and returns whether this
  /// trigger fires under the armed plan (always false for unarmed sites —
  /// the counter still advances, so arming later in a test replays the
  /// same trigger indices).
  bool should_fire(FaultSite site);

  /// The armed plan's payload for `site` (0 when unarmed).
  std::uint64_t payload(FaultSite site) const;

  /// Deterministic per-fire randomness for sites that need a magnitude and
  /// a position (e.g. which byte kWireCorrupt flips): a pure hash of
  /// (seed, site, salt).
  std::uint64_t draw(FaultSite site, std::uint64_t salt) const;

  std::uint64_t triggers(FaultSite site) const;
  std::uint64_t fires(FaultSite site) const;
  std::uint64_t seed() const { return seed_; }

 private:
  struct SiteState {
    FaultPlan plan{};
    std::atomic<bool> armed{false};
    std::atomic<std::uint64_t> triggers{0};
    std::atomic<std::uint64_t> fires{0};
  };

  static std::size_t index_of(FaultSite site) {
    return static_cast<std::size_t>(site);
  }

  std::uint64_t seed_;
  std::array<SiteState, static_cast<std::size_t>(FaultSite::kSiteCount)>
      sites_{};
};

}  // namespace fleet::runtime
