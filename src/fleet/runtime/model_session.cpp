#include "fleet/runtime/model_session.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace fleet::runtime {

ModelSession::ModelSession(core::ModelId id, nn::TrainableModel& model,
                           std::unique_ptr<profiler::Profiler> profiler,
                           const core::ServerConfig& config,
                           std::size_t trace_capacity,
                           std::size_t fold_shards,
                           telemetry::Telemetry* telemetry)
    : id_(id),
      model_(model),
      profiler_(std::move(profiler)),
      config_(config),
      trace_capacity_(trace_capacity),
      fold_spans_(ShardedAggregator::partition(model.parameter_count(),
                                               std::max<std::size_t>(
                                                   fold_shards, 1))),
      controller_(config.controller),
      aggregator_(model.parameter_count(), model.n_classes(),
                  config.aggregator),
      store_(config.snapshot_window),
      staleness_hist_(telemetry::staleness_bounds()),
      weight_hist_(telemetry::weight_bounds()) {
  if (profiler_ == nullptr) {
    throw std::invalid_argument("ModelSession: null profiler");
  }
  if (telemetry != nullptr) {
    const std::string base = "session." + std::to_string(id_);
    staleness_metric_ = telemetry->metrics().histogram(
        base + ".staleness", telemetry::staleness_bounds());
    weight_metric_ = telemetry->metrics().histogram(
        base + ".weight", telemetry::weight_bounds());
  }
  // Materialize and publish version 0 before any thread can observe the
  // session, so handle_request never sees an empty store.
  publish_version(0);
}

void ModelSession::publish_version(std::size_t version) {
  // Aggregation thread only (plus the constructor, before the session is
  // registered): one bulk copy out of the parameter arena, then an atomic
  // handle swap that request threads pick up lock-free.
  const auto view = model_.parameters_view();
  auto snapshot = store_.publish(
      version, core::ModelStore::Buffer(view.begin(), view.end()));
  current_.store(std::make_shared<const VersionedSnapshot>(
      VersionedSnapshot{version, std::move(snapshot)}));
}

bool ModelSession::publish_if_dirty() {
  const std::size_t version = version_.load(std::memory_order_relaxed);
  if (version == published_version_) return false;
  publish_version(version);
  published_version_ = version;
  return true;
}

ModelSession::VersionedSnapshot ModelSession::current() const {
  const auto record = current_.load();
  return *record;  // copies {version, shared handle}; the buffer is shared
}

core::TaskAssignment ModelSession::handle_request(
    const profiler::DeviceFeatures& features, const std::string& device_model,
    const stats::LabelDistribution& label_info) {
  core::TaskAssignment assignment;
  assignment.model_id = id_;
  std::size_t bound = 0;
  {
    std::lock_guard<std::mutex> lock(profiler_mu_);
    bound = profiler_->predict_batch(features, device_model);
  }
  const double similarity = aggregator_.similarity_of(label_info);
  core::Controller::Decision decision;
  {
    std::lock_guard<std::mutex> lock(controller_mu_);
    decision = controller_.admit(bound, similarity);
  }
  if (!decision.admitted) {
    assignment.accepted = false;
    assignment.reject_reason = decision.reason;
    return assignment;
  }
  const VersionedSnapshot record = current();
  assignment.accepted = true;
  assignment.model_version = record.version;
  assignment.mini_batch = bound;
  assignment.snapshot = record.snapshot;
  return assignment;
}

double ModelSession::shed_cost(const GradientJob& job,
                               OverloadPolicy policy) const {
  // Estimate against the clock now; the true staleness is fixed only when
  // a planner processes the job. A job carrying a future version (a
  // producer bug the aggregation-side screen drops anyway) scores zero.
  const std::size_t now = version_.load(std::memory_order_acquire);
  const double staleness =
      job.task_version <= now
          ? static_cast<double>(now - job.task_version)
          : 0.0;
  if (policy == OverloadPolicy::kShedLowestWeight) {
    // The session's own aggregator computes the exact dampened weight it
    // would apply at this staleness — weight_for is a pure, internally
    // locked query and never reads the gradient payload.
    learning::WorkerUpdate update;
    update.staleness = staleness;
    update.label_dist = job.label_dist;
    update.mini_batch = job.mini_batch;
    return aggregator_.weight_for(update);
  }
  // kShedStalest: staleness in rounds is the unit commensurate across
  // tenants; the stalest job (most negative score) sheds first.
  return -staleness;
}

const char* ModelSession::validate(const GradientJob& job) const {
  if (job.gradient.size() != model_.parameter_count()) {
    return "gradient size mismatch";
  }
  if (job.label_dist.n_classes() != model_.n_classes()) {
    return "label distribution class count mismatch";
  }
  if (job.feedback.has_value() && job.feedback->mini_batch == 0) {
    return "profiler feedback without mini-batch";
  }
  return nullptr;
}

std::optional<ModelSession::Admitted> ModelSession::screen(
    const GradientJob& job) {
  Admitted admitted;
  admitted.now = version_.load(std::memory_order_relaxed);
  if (job.task_version > admitted.now) {
    // A job can only legitimately carry a version it observed from
    // current(), so a future version is a producer bug; drop it rather
    // than poisoning the logical clock.
    std::lock_guard<std::mutex> lock(trace_mu_);
    ++invalid_jobs_;
    return std::nullopt;
  }
  // tau_i = t - t_i against this session's clock at *processing* time
  // (Eq. 3) — the shared queue delays the gradient, and the staleness
  // reflects that delay exactly, same as the serial server's logical
  // clock. On the sharded path "processing" is planning: the clock
  // advances as flush points are planned, so later jobs in the same batch
  // observe every update earlier ones produced — exactly the sequential
  // schedule. Other sessions' jobs never touch this clock, which is why a
  // hosted session's staleness matches its solo-server run.
  admitted.staleness = static_cast<double>(admitted.now - job.task_version);
  return admitted;
}

namespace {
learning::WorkerUpdate update_from(const GradientJob& job, double staleness) {
  learning::WorkerUpdate update;
  update.gradient = std::span<const float>(job.gradient);
  update.staleness = staleness;
  update.label_dist = job.label_dist;
  update.mini_batch = job.mini_batch;
  return update;
}
}  // namespace

void ModelSession::record_processed(const GradientJob& job, double staleness,
                                    double weight, bool updated) {
  if (job.feedback.has_value()) {
    std::lock_guard<std::mutex> lock(profiler_mu_);
    profiler_->observe(*job.feedback);
  }
  // Registry mirrors are lock-free striped cells — record them outside
  // trace_mu_ so the exporter-facing path adds nothing to the lock hold.
  if (staleness_metric_ != nullptr) {
    staleness_metric_->record(staleness);
    weight_metric_->record(weight);
  }
  // One consistent cut: counters, histograms and traces move together
  // under trace_mu_, so stats() can never observe a counter ahead of its
  // histogram or trace.
  std::lock_guard<std::mutex> lock(trace_mu_);
  ++processed_;
  if (updated) ++model_updates_;
  staleness_hist_.record(staleness);
  weight_hist_.record(weight);
  if (staleness_trace_.size() < trace_capacity_) {
    staleness_trace_.push_back(staleness);
    weight_trace_.push_back(weight);
  } else {
    // Counters and histograms stay exact past the cap.
    traces_truncated_ = true;
  }
}

bool ModelSession::process(GradientJob&& job) {
  const auto admitted = screen(job);
  if (!admitted) return false;
  const learning::SubmitResult result =
      aggregator_.submit(update_from(job, admitted->staleness));

  bool updated = false;
  if (result.aggregate) {
    model_.apply_gradient(*result.aggregate, config_.learning_rate);
    // The logical clock advances immediately (staleness must see every
    // update), but snapshot materialization is batched: the host publishes
    // once per drain batch via publish_if_dirty(), since versions consumed
    // mid-batch were never observable to request threads anyway.
    version_.store(admitted->now + 1, std::memory_order_release);
    updated = true;
  }
  record_processed(job, admitted->staleness, result.weight, updated);
  return true;
}

bool ModelSession::plan_process(GradientJob& job, std::vector<FoldOp>& plan) {
  const auto admitted = screen(job);
  if (!admitted) return false;  // dropped jobs never enter the plan
  const learning::PlannedSubmit planned =
      aggregator_.plan_submit(update_from(job, admitted->staleness));

  FoldOp fold;
  fold.kind = FoldOp::Kind::kFold;
  fold.gradient = std::span<const float>(job.gradient);
  fold.weight = planned.weight;
  plan.push_back(fold);

  bool updated = false;
  if (planned.flush) {
    FoldOp apply;
    apply.kind = FoldOp::Kind::kFlushApply;
    apply.learning_rate = config_.learning_rate;
    plan.push_back(apply);
    // The logical clock advances at the planned flush, before the shards
    // run the arithmetic — legal because the version only becomes
    // observable-with-parameters at publication, which waits for the
    // barrier, while staleness must see every planned update immediately.
    version_.store(admitted->now + 1, std::memory_order_release);
    updated = true;
  }
  record_processed(job, admitted->staleness, planned.weight, updated);
  return true;
}

FoldContext ModelSession::fold_context() {
  FoldContext ctx;
  ctx.aggregator = &aggregator_;
  ctx.parameters = model_.parameters_mut();
  ctx.spans = fold_spans_;
  ctx.model = id_;
  return ctx;
}

RuntimeStats ModelSession::stats() const {
  RuntimeStats snapshot;
  // Producer-side counter first (lock-free by design; may run ahead while
  // jobs queue), then everything aggregation-side under trace_mu_ as one
  // consistent cut: processed always matches the histograms and traces.
  snapshot.submitted = submitted_.load(std::memory_order_acquire);
  snapshot.degraded = degraded_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(trace_mu_);
  snapshot.processed = processed_;
  snapshot.model_updates = model_updates_;
  snapshot.invalid_jobs = invalid_jobs_;
  snapshot.traces_truncated = traces_truncated_;
  snapshot.staleness_hist = staleness_hist_.snapshot();
  snapshot.weight_hist = weight_hist_.snapshot();
  snapshot.staleness_values = staleness_trace_;
  snapshot.weights = weight_trace_;
  return snapshot;
}

}  // namespace fleet::runtime
