#include "fleet/runtime/model_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace fleet::runtime {

namespace {
/// First position in the id-sorted table not below `id`.
ModelRegistry::Table::const_iterator lower_bound_id(
    const std::vector<std::shared_ptr<ModelSession>>& table,
    core::ModelId id) {
  return std::lower_bound(
      table.begin(), table.end(), id,
      [](const std::shared_ptr<ModelSession>& session, core::ModelId key) {
        return session->id() < key;
      });
}
}  // namespace

void ModelRegistry::add(std::shared_ptr<ModelSession> session) {
  if (session == nullptr) {
    throw std::invalid_argument("ModelRegistry: null session");
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  const auto current = table_.load();
  auto next = std::make_shared<Table>(current ? *current : Table{});
  const auto pos = lower_bound_id(*next, session->id());
  if (pos != next->end() && (*pos)->id() == session->id()) {
    throw std::invalid_argument("ModelRegistry: duplicate model id");
  }
  next->insert(pos, std::move(session));
  table_.store(std::move(next));
}

std::shared_ptr<ModelSession> ModelRegistry::retire(core::ModelId id) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const auto current = table_.load();
  if (current == nullptr) return nullptr;
  auto next = std::make_shared<Table>(*current);
  const auto pos = lower_bound_id(*next, id);
  if (pos == next->end() || (*pos)->id() != id) return nullptr;
  std::shared_ptr<ModelSession> retired = *pos;
  next->erase(pos);
  table_.store(std::move(next));
  return retired;
}

std::shared_ptr<ModelSession> ModelRegistry::lookup(core::ModelId id) const {
  const auto table = table_.load();
  if (table == nullptr) return nullptr;
  const auto pos = lower_bound_id(*table, id);
  if (pos == table->end() || (*pos)->id() != id) return nullptr;
  return *pos;
}

std::vector<core::ModelId> ModelRegistry::ids() const {
  const auto table = table_.load();
  std::vector<core::ModelId> ids;
  if (table == nullptr) return ids;
  ids.reserve(table->size());
  for (const auto& session : *table) ids.push_back(session->id());
  return ids;
}

std::size_t ModelRegistry::size() const {
  const auto table = table_.load();
  return table == nullptr ? 0 : table->size();
}

}  // namespace fleet::runtime
