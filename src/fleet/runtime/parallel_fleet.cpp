#include "fleet/runtime/parallel_fleet.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "fleet/stats/rng.hpp"

namespace fleet::runtime {

namespace {

/// A gradient computed but not yet delivered: the worker is "in flight".
/// The snapshot handle stays pinned until arrival (or the dropout loss),
/// so ring eviction during a delayed flight never frees theta^(t_i).
struct Pending {
  std::size_t arrival_round = 0;
  bool dropped = false;
  GradientJob job;
  core::ModelStore::Snapshot snapshot;
};

/// Per-worker driver state. The RNG is a stream split off the base seed by
/// worker index, so delay/dropout draws do not depend on thread placement.
struct WorkerSlot {
  std::optional<core::TaskAssignment> assignment;  // accepted, not computed
  std::optional<Pending> pending;                  // computed, not delivered
  std::optional<stats::Rng> rng;
};

}  // namespace

ParallelFleet::ParallelFleet(ConcurrentFleetServer& server,
                             std::vector<core::FleetWorker>& workers,
                             const Config& config)
    : server_(server), workers_(workers), config_(config) {
  if (workers_.empty()) {
    throw std::invalid_argument("ParallelFleet: no workers");
  }
  if (config.n_threads == 0) {
    throw std::invalid_argument("ParallelFleet: n_threads must be >= 1");
  }
  if (config.rounds == 0) {
    throw std::invalid_argument("ParallelFleet: rounds must be >= 1");
  }
  if (config.dropout_prob < 0.0 || config.dropout_prob > 1.0) {
    throw std::invalid_argument("ParallelFleet: dropout_prob outside [0,1]");
  }
  if (!config.worker_models.empty() &&
      config.worker_models.size() != workers_.size()) {
    throw std::invalid_argument(
        "ParallelFleet: worker_models size does not match workers");
  }
}

ParallelFleet::Stats ParallelFleet::run() {
  Stats stats;
  const std::size_t n_workers = workers_.size();
  const std::size_t n_threads = std::min(config_.n_threads, n_workers);

  std::vector<WorkerSlot> slots(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    slots[w].rng = stats::Rng::stream(config_.seed, w);
  }
  const auto model_of = [this](std::size_t w) {
    return config_.worker_models.empty() ? core::kDefaultModelId
                                         : config_.worker_models[w];
  };

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    // --- Phase A: requests, sequentially in worker order. ---------------
    for (std::size_t w = 0; w < n_workers; ++w) {
      WorkerSlot& slot = slots[w];
      if (slot.assignment.has_value() || slot.pending.has_value()) continue;
      ++stats.requests;
      core::TaskAssignment assignment = server_.handle_request(
          model_of(w), workers_[w].device_info(),
          workers_[w].device().model_name(), workers_[w].label_info());
      if (!assignment.accepted) {
        ++stats.rejected;  // retries next round
        continue;
      }
      slot.assignment = std::move(assignment);
    }

    // --- Phase B: gradient computation, in parallel. --------------------
    // Static partition by index: each worker (replica, device sim, RNG) is
    // touched by exactly one thread; the dataset is shared read-only.
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto compute = [&](std::size_t thread_id) {
      for (std::size_t w = thread_id; w < n_workers; w += n_threads) {
        WorkerSlot& slot = slots[w];
        if (!slot.assignment.has_value()) continue;
        try {
          core::FleetWorker::ExecutionResult result =
              workers_[w].execute(*slot.assignment);
          Pending pending;
          pending.arrival_round = round;
          if (config_.max_arrival_delay > 0) {
            pending.arrival_round += static_cast<std::size_t>(
                slot.rng->uniform_int(
                    0, static_cast<std::int64_t>(config_.max_arrival_delay)));
          }
          pending.dropped = config_.dropout_prob > 0.0 &&
                            slot.rng->bernoulli(config_.dropout_prob);
          pending.job.model_id = slot.assignment->model_id;
          pending.job.task_version = slot.assignment->model_version;
          pending.job.gradient = std::move(result.gradient);
          pending.job.label_dist = result.minibatch_labels;
          pending.job.mini_batch = result.mini_batch;
          pending.job.feedback = result.observation;
          pending.snapshot = std::move(slot.assignment->snapshot);
          slot.pending = std::move(pending);
          slot.assignment.reset();
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    if (n_threads == 1) {
      compute(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(n_threads);
      for (std::size_t t = 0; t < n_threads; ++t) {
        pool.emplace_back(compute, t);
      }
      for (std::thread& thread : pool) thread.join();
    }
    if (first_error) std::rethrow_exception(first_error);

    // --- Phase C: due arrivals, sequentially in worker order. -----------
    for (std::size_t w = 0; w < n_workers; ++w) {
      WorkerSlot& slot = slots[w];
      if (!slot.pending.has_value() || slot.pending->arrival_round > round) {
        continue;
      }
      if (slot.pending->dropped) {
        ++stats.dropped;
        slot.pending.reset();
        continue;
      }
      const core::GradientReceipt receipt =
          server_.try_submit(slot.pending->job);
      if (!receipt.accepted) {
        if (receipt.retryable) {
          ++stats.backpressure_retries;  // job intact; retry next round
        } else {
          ++stats.rejected_submissions;  // permanent: discard, don't loop
          slot.pending.reset();
        }
        continue;
      }
      ++stats.gradients_submitted;
      slot.pending.reset();
    }

    // Barrier: the next round's requests must read a settled clock.
    server_.drain();
  }

  // Deliver what is still in flight (delayed arrivals past the last round).
  for (std::size_t w = 0; w < n_workers; ++w) {
    WorkerSlot& slot = slots[w];
    if (!slot.pending.has_value()) continue;
    if (slot.pending->dropped) {
      ++stats.dropped;
      continue;
    }
    // Unlike the mid-run path there is no next round to retry in, so on
    // backpressure wait for the backlog to clear and resubmit — a
    // computed, surviving gradient must never be silently lost. Permanent
    // rejections (validation, shutdown) can never succeed, so they are
    // counted and discarded instead of retried.
    while (true) {
      const core::GradientReceipt receipt =
          server_.try_submit(slot.pending->job);
      if (receipt.accepted) {
        ++stats.gradients_submitted;
        break;
      }
      if (!receipt.retryable) {
        // A permanently rejected final-flush gradient is gone for good —
        // count it in both the drive-wide total and the flush breakdown.
        ++stats.rejected_submissions;
        ++stats.final_flush_drops;
        break;
      }
      ++stats.backpressure_retries;
      ++stats.final_flush_retries;
      server_.drain();
    }
  }
  server_.drain();

  // Server-side view per driven session, plus the summed aggregate. The
  // host-wide fields come from host_stats() so they survive even when no
  // driven session resolves anymore: a session retired mid-drive has its
  // queued jobs accounted in retired_drops, which the caller needs
  // precisely in that case.
  stats.runtime = server_.host_stats();
  std::vector<core::ModelId> ids;
  if (config_.worker_models.empty()) {
    ids.push_back(core::kDefaultModelId);
  } else {
    ids = config_.worker_models;
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  for (const core::ModelId id : ids) {
    ModelStats per;
    per.id = id;
    try {
      per.runtime = server_.stats(id);
    } catch (const std::out_of_range&) {
      continue;  // never registered, or retired (possibly mid-collection)
    }
    stats.runtime.submitted += per.runtime.submitted;
    stats.runtime.processed += per.runtime.processed;
    stats.runtime.model_updates += per.runtime.model_updates;
    stats.runtime.invalid_jobs += per.runtime.invalid_jobs;
    stats.runtime.traces_truncated |= per.runtime.traces_truncated;
    // All sessions share the standard bucket layouts, so the aggregate
    // histogram is an exact merge, not an approximation.
    stats.runtime.staleness_hist.merge(per.runtime.staleness_hist);
    stats.runtime.weight_hist.merge(per.runtime.weight_hist);
    stats.runtime.staleness_values.insert(stats.runtime.staleness_values.end(),
                                          per.runtime.staleness_values.begin(),
                                          per.runtime.staleness_values.end());
    stats.runtime.weights.insert(stats.runtime.weights.end(),
                                 per.runtime.weights.begin(),
                                 per.runtime.weights.end());
    // Host-wide fields are already set from host_stats() above (they are
    // identical in every per-model view).
    stats.per_model.push_back(std::move(per));
  }
  return stats;
}

}  // namespace fleet::runtime
