#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fleet/core/server.hpp"
#include "fleet/net/wire.hpp"
#include "fleet/runtime/adaptive_batcher.hpp"
#include "fleet/runtime/fault.hpp"
#include "fleet/runtime/gradient_queue.hpp"
#include "fleet/runtime/model_registry.hpp"
#include "fleet/runtime/model_session.hpp"
#include "fleet/runtime/sharded_aggregator.hpp"
#include "fleet/tensor/kernels/kernels.hpp"

namespace fleet::runtime {

/// Knobs for the concurrent serving runtime. All of these are host-wide:
/// the ingest queue, its capacity, the fold pool and the drain cadence are
/// shared by every registered model, while each ModelSession brings its
/// own `core::ServerConfig`.
struct RuntimeConfig {
  /// Global bound on queued-but-unprocessed gradients, across all models.
  /// Once full, submits are rejected (backpressure) instead of growing an
  /// unbounded backlog.
  std::size_t queue_capacity = 4096;
  /// Independently locked ingest shards (see GradientQueue). Raised to
  /// `planner_threads` when smaller so every planner group owns at least
  /// one shard.
  std::size_t queue_shards = 8;
  /// Planner threads (DESIGN.md §13): sessions are sharded across this
  /// many planners by `id % planner_threads`, each draining its own
  /// ticket-ordered queue group and running the plan/fold/publish cycle
  /// for its disjoint session set. Admission tickets stay host-global, so
  /// every session still observes the exact admission-order prefix of its
  /// own jobs — any planner count yields bitwise identical per-session
  /// results (the determinism matrix asserts {1,2,4}).
  std::size_t planner_threads = 1;
  /// Pressure-adaptive drain batching (DESIGN.md §13). Disabled by
  /// default: planners then drain with the pinned `max_drain_batch`
  /// schedule (the serialize_folds-style benchmarking baseline). When
  /// enabled, each planner owns an AdaptiveBatcher that widens/narrows
  /// its drain limit from counters it owns — windowed group-depth peaks
  /// and batch occupancy, never the §11 telemetry clocks.
  AdaptiveBatchConfig adaptive_batch;
  /// Explicit control-plane CPU placement, overriding sysfs topology
  /// discovery when `pin_fold_workers` is set: entry i is the CPU for
  /// planner i, followed by one entry per fold worker; -1 (or a missing
  /// entry) leaves that thread unpinned. For tests (deterministic
  /// unsupported-CPU fallback) and operators that know better than sysfs.
  std::vector<int> placement_override;
  /// Cap on the per-gradient trace vectors in each session's RuntimeStats
  /// (staleness, weights) — a long-lived server must not grow memory per
  /// gradient forever. Counters keep counting past the cap;
  /// RuntimeStats::traces_truncated records that the traces stopped.
  std::size_t trace_capacity = 1u << 16;
  /// Start with the planner threads parked (resume() arms them). Lets
  /// tests and benches stage a backlog deterministically.
  bool start_paused = false;
  /// Fold threads for the sharded hierarchical aggregation (DESIGN.md
  /// §6/§9): each session's parameter arena is split into this many
  /// contiguous spans and a drain batch's weighted folds fan out across
  /// the shared fold scheduler — different sessions' spans concurrently,
  /// one latch per session. 1 keeps the fold inline on the aggregation
  /// thread (the PR-2 sequential path). Any value yields a bitwise
  /// identical model per session — weights are computed centrally and
  /// every parameter index sees the same operation sequence.
  std::size_t aggregation_shards = 1;
  /// Best-effort pin the control plane — planner threads AND fold
  /// workers — per the NUMA placement plan (topology.hpp: sysfs
  /// discovery, single-node fallback, co-placement of planners, fold
  /// lanes and their arena spans; override with `placement_override`).
  /// Linux only. Whether every requested pin actually applied is
  /// surfaced as RuntimeStats::pinning_applied; a refused or unsupported
  /// pin logs one warning and bumps the "server.pinning_fallback"
  /// telemetry counter. No effect on results, only on locality.
  bool pin_fold_workers = false;
  /// Debug/baseline knob: wait for each session's fold to finish before
  /// submitting the next session's plan — the pre-scheduler serialized
  /// behavior. Results are bitwise identical either way (sessions are
  /// disjoint); the bench uses this as the comparison baseline.
  bool serialize_folds = false;
  /// Cap on how many jobs one queue drain hands a planner (0 = take
  /// everything). Batches are exact admission-order prefixes
  /// (ticket-ordered) per planner group, so batching changes snapshot-
  /// publication cadence and fold fan-out granularity, never any session's
  /// fold sequence or staleness. When `adaptive_batch.enabled`, this is
  /// only each planner's starting limit (clamped into the adaptive
  /// range); the controller moves it from there.
  std::size_t max_drain_batch = 0;
  /// Arithmetic kernel backend for the process (tensor/kernels/,
  /// DESIGN.md §10). kAuto keeps the startup selection (FLEET_KERNEL env
  /// var, else the best the CPU supports); pinning a specific backend at
  /// server construction makes the run's floating-point summation order —
  /// and therefore its results — bitwise reproducible per kernel choice.
  /// Note this is process-wide state, not per-host: the last constructed
  /// server wins, so co-hosted servers should agree on it.
  tensor::kernels::Backend kernel_backend = tensor::kernels::Backend::kAuto;
  /// Decode guards for the wire ingest path (net/wire.hpp, DESIGN.md §12):
  /// ceilings a frame's claimed value/class counts must stay under before
  /// the decoder sizes any buffer. Frames past them are counted wire
  /// rejects, never allocations.
  net::WireLimits wire_limits;
  /// Observability (DESIGN.md §11). Off by default: the host then runs
  /// with no clock reads, no trace rings and no histogram updates — only
  /// the pre-existing relaxed counters. When enabled, the host owns one
  /// telemetry::Telemetry (metrics registry + trace collector), every
  /// layer records into it, and stats()/the exporters surface it. Timing
  /// is observed, never consulted: on or off, every session's model is
  /// bitwise identical (the determinism matrix asserts it).
  telemetry::TelemetryConfig telemetry;
  /// What the host does when the ingest queue crosses `shed_watermark`
  /// (DESIGN.md §14). The default kRejectNewest keeps the pre-policy
  /// behavior bitwise: incoming jobs bounce at capacity, queued jobs are
  /// never touched. The shed policies instead weigh the incoming job
  /// against the cheapest queued job in its target shard — by staleness
  /// (kShedStalest: AdaSGD's dampening would down-weight the stalest job
  /// hardest anyway) or by the exact dampened weight the session's
  /// aggregator would apply (kShedLowestWeight) — and drop the loser,
  /// counted as RuntimeStats::shed_drops and traced as kShedDrop, never
  /// silently.
  OverloadPolicy overload_policy = OverloadPolicy::kRejectNewest;
  /// Queue depth above which a shed policy starts weighing jobs (0 = only
  /// at capacity). Ignored under kRejectNewest; clamped to queue_capacity.
  std::size_t shed_watermark = 0;
  /// Deterministic fault injector (fault.hpp, DESIGN.md §14), optional and
  /// caller-owned (must outlive the host). Sites consulted on this host:
  /// kQueueFull (try_submit reports transient backpressure without
  /// touching the queue), kFoldTask (a fold span task throws and is
  /// quarantined — its session is marked degraded) and kPlannerStall (a
  /// planner spins `payload` yields before processing a batch). Null — or
  /// an injector with no armed site — leaves every path bitwise identical
  /// to a host built without one.
  FaultInjector* fault_injector = nullptr;
};

/// Point-in-time liveness/degradation view of one host (DESIGN.md §14):
/// what a supervisor needs to tell "slow" from "stuck" and "exact" from
/// "degraded" without parsing full RuntimeStats.
struct HealthSnapshot {
  /// Drain batches completed per planner, in planner order. Monotone; a
  /// stalled planner's entry stops advancing while the others keep
  /// counting.
  std::vector<std::size_t> planner_progress;
  /// Ids of registered sessions with at least one quarantined fold task
  /// (sticky; ascending id order).
  std::vector<core::ModelId> degraded_sessions;
  /// Gradients lost to the overload shed policy so far.
  std::size_t shed_drops = 0;
  /// Fold span tasks that threw and were quarantined instead of
  /// terminating the process.
  std::size_t fold_quarantines = 0;
};

/// Multi-tenant serving host (DESIGN.md §7): many learning tasks — each a
/// `ModelSession` owning its model, profiler, controller, AdaSGD state,
/// snapshot cell and logical clock — served behind ONE bounded ingest
/// queue (partitioned into planner groups), N planner threads and ONE
/// shared sharded fold pool. Sessions are registered and retired by
/// `core::ModelId`; the id→session lookup on the request path is a
/// lock-free copy-on-write directory (ModelRegistry).
///
/// Threading model:
///  - `handle_request(id, ...)` may be called from any number of request
///    threads: one registry lookup, then the session's own fine-grained
///    locks (profiler/controller) and its atomic snapshot record.
///  - `try_submit` is the multi-producer side: the job is validated
///    against its session and moved into the shared GradientQueue under a
///    global admission ticket, or rejected with backpressure when the
///    queue is full. Tickets are global across models, so each planner
///    group's drain batch is an exact admission-order prefix of
///    everything submitted to that group.
///  - `planner_threads` planner threads (DESIGN.md §13) each own the
///    disjoint session set `id % planner_threads == p` and drain that
///    group of the queue, demultiplexing each batch by ModelId in global
///    ticket order: each job's order-sensitive bookkeeping (staleness
///    against its session's clock, dampening, K-boundary, profiler
///    feedback) runs against its own session — which exactly one planner
///    ever touches. Then every session's fold plan is submitted to the
///    shared fold scheduler at once — different sessions' spans execute
///    concurrently on the pool (their arenas are disjoint), across
///    planners too — each planner waits for its own latches, and each
///    dirty session publishes one snapshot only after its own latch
///    resolved (DESIGN.md §9). A session's jobs keep their relative
///    admission order, its clock only moves with its own updates, and its
///    weights/fold order/staleness are therefore bitwise identical to a
///    solo single-model server fed the same sequence — for any planner
///    count, shard count, drain-batch size and tenant mix. Jobs whose
///    session was retired while they sat in the queue are dropped and
///    counted (RuntimeStats::retired_drops), never folded.
///
/// The single-model API of PR 2/3 (construct with a model, call
/// handle_request/try_submit/stats() without an id) is preserved as a thin
/// shim over a one-session registry under `core::kDefaultModelId`.
class ConcurrentFleetServer {
 public:
  /// Multi-tenant host: starts with no sessions; register_model() adds
  /// them (the planner threads idle until jobs arrive).
  explicit ConcurrentFleetServer(const RuntimeConfig& runtime = {});

  /// Single-model shim: a host with `model` registered as
  /// core::kDefaultModelId, serving the PR-2/3 API unchanged.
  ConcurrentFleetServer(nn::TrainableModel& model,
                        std::unique_ptr<profiler::Profiler> profiler,
                        const core::ServerConfig& config,
                        const RuntimeConfig& runtime = {});
  ~ConcurrentFleetServer();

  ConcurrentFleetServer(const ConcurrentFleetServer&) = delete;
  ConcurrentFleetServer& operator=(const ConcurrentFleetServer&) = delete;

  /// Register a learning task; returns its id (consecutive from
  /// core::kDefaultModelId). Callable while serving. The caller keeps
  /// `model` alive until the session is retired and the host drained, or
  /// until stop().
  core::ModelId register_model(nn::TrainableModel& model,
                               std::unique_ptr<profiler::Profiler> profiler,
                               const core::ServerConfig& config);

  /// Retire a task: subsequent requests and submits for the id are
  /// rejected (non-retryable), and queued gradients whose id no longer
  /// resolves when the aggregation loop reaches them are dropped and
  /// counted (RuntimeStats::retired_drops), never folded. The cut is
  /// batch-granular: the loop resolves each id once per drain batch, so
  /// jobs of a batch already being processed when retire() lands may
  /// still fold. For a clean cut, retire while the host is paused (or
  /// producers are quiesced past a drain()) — and as with model(), do not
  /// touch the retired model's parameters until a subsequent drain() or
  /// stop(). Returns false when the id was never registered (or already
  /// retired). The session object itself stays alive while any request
  /// thread still holds its shared_ptr.
  bool retire_model(core::ModelId id);

  /// The session registered under `id`, or nullptr. Sessions expose the
  /// per-task accessors (store/aggregator/controller/model/stats).
  std::shared_ptr<ModelSession> session(core::ModelId id) const {
    return registry_.lookup(id);
  }

  /// Currently registered ids, ascending.
  std::vector<core::ModelId> model_ids() const { return registry_.ids(); }

  /// Steps 1-4 of the protocol for one task, callable from any thread.
  /// Unknown/retired ids yield a rejected assignment.
  core::TaskAssignment handle_request(
      core::ModelId id, const profiler::DeviceFeatures& features,
      const std::string& device_model,
      const stats::LabelDistribution& label_info);
  /// Single-model shim: the default session's handle_request.
  core::TaskAssignment handle_request(
      const profiler::DeviceFeatures& features,
      const std::string& device_model,
      const stats::LabelDistribution& label_info);

  using VersionedSnapshot = ModelSession::VersionedSnapshot;
  /// The task's current (version, snapshot) record — the fast path under
  /// the request handler. Throws std::out_of_range for unknown ids.
  VersionedSnapshot current(core::ModelId id) const;
  VersionedSnapshot current() const { return current(core::kDefaultModelId); }

  /// Step 5, asynchronous: route `job` to its session (job.model_id) and
  /// move it into the shared ingest queue. On success `job` is consumed
  /// and the receipt only acknowledges admission (`accepted=true`,
  /// `version` = the session's clock at enqueue); the gradient's actual
  /// weight/staleness land in stats(id) once its planner thread
  /// processes it. On backpressure `job` is left intact (callers may
  /// retry); unknown/retired ids and malformed payloads reject permanently.
  core::GradientReceipt try_submit(GradientJob& job);

  /// Step 5 over the wire (DESIGN.md §12): validate and decode one binary
  /// frame (net/wire.hpp) into `scratch`, then submit it exactly like
  /// try_submit — decode happens strictly before admission, so a wire job
  /// is indistinguishable from an in-process one by the time it takes a
  /// ticket, and the fold path (and the determinism matrix) is untouched.
  /// Malformed frames are counted (RuntimeStats::wire_rejects, telemetry
  /// counter "wire.rejects", kWireReject trace instant with the WireError
  /// in payload b) and rejected non-retryably with reason "wire: ...";
  /// they never reach a session or a fold. `scratch` is the caller's
  /// reusable decode buffer (its gradient vector keeps its capacity across
  /// rejected frames; on success it is consumed like try_submit's job);
  /// `decode_error` (optional) receives the frame's validation result so
  /// front ends can tell malformed frames from server-side rejects.
  core::GradientReceipt try_submit_wire(std::span<const std::uint8_t> frame,
                                        GradientJob& scratch,
                                        net::WireError* decode_error = nullptr);
  /// Convenience overload with a per-call scratch job.
  core::GradientReceipt try_submit_wire(std::span<const std::uint8_t> frame) {
    GradientJob scratch;
    return try_submit_wire(frame, scratch);
  }

  /// Block until every job accepted so far — across all models — has been
  /// processed or dropped. With producers quiesced this is a full barrier:
  /// afterwards stats(), every session's model and version() are stable.
  void drain();

  /// Park / un-park every planner thread (batch-granular, host-wide).
  /// pause() does not block submits, and takes effect before the next
  /// batch is *processed*: a batch a planner had already popped when
  /// pause() landed is held unprocessed until resume(), but its jobs no
  /// longer occupy queue capacity. For deterministic backpressure staging
  /// use RuntimeConfig::start_paused, which parks the planners before
  /// they pop anything.
  void pause();
  void resume();

  /// Close the queue and join the planner threads after they drain what
  /// remains. Further submits are rejected. Idempotent; the destructor
  /// calls it.
  void stop();

  /// Logical clock t of one task. Throws std::out_of_range for unknown ids.
  std::size_t version(core::ModelId id) const;
  std::size_t version() const { return version(core::kDefaultModelId); }

  /// False once stop() closed the ingest queue (submits can only fail).
  bool accepting() const { return !queue_.closed(); }

  /// One task's stats, with the host-wide fields (backpressure rejects,
  /// retired drops, queue occupancy gauges, queue-wait histogram) filled
  /// in. The session's processing counters, histograms and traces are one
  /// consistent cut under a short trace mutex (see RuntimeStats), so a
  /// monitoring poll can never stall the fold for more than one
  /// bookkeeping block (DESIGN.md §7, §11). Throws std::out_of_range for
  /// unknown ids.
  RuntimeStats stats(core::ModelId id) const;
  RuntimeStats stats() const { return stats(core::kDefaultModelId); }

  /// The host-wide fields alone (backpressure rejects, retired drops,
  /// queue occupancy gauges), session counters and traces zero. Always
  /// available — the view to fall back on when no session id resolves
  /// (e.g. everything driven has been retired).
  RuntimeStats host_stats() const;

  /// Liveness/degradation snapshot (DESIGN.md §14): per-planner progress
  /// ticks, degraded session ids, shed and quarantine totals. Callable
  /// from any thread, any time.
  HealthSnapshot health() const;

  /// The host's telemetry substrate, or nullptr when
  /// RuntimeConfig::telemetry.enabled was false. Snapshot its metrics()
  /// and collect its tracer() for the exporters (telemetry/export.hpp);
  /// collect trace events after drain()/stop() for a complete lifecycle
  /// picture (collection is safe anytime, but rings only hold what was
  /// emitted so far).
  telemetry::Telemetry* telemetry() { return telemetry_.get(); }
  const telemetry::Telemetry* telemetry() const { return telemetry_.get(); }

  /// Single-model-shim accessors for the default session. They throw
  /// std::out_of_range when no session is registered under
  /// core::kDefaultModelId (host-mode servers should go through
  /// session(id) instead).
  const core::ModelStore& store() const { return require_default()->store(); }
  const learning::AsyncAggregator& aggregator() const {
    return require_default()->aggregator();
  }
  const core::Controller& controller() const {
    return require_default()->controller();
  }
  /// The default session's model. Owned by its planner thread while
  /// running — only touch it after drain() with producers quiesced, or
  /// after stop().
  nn::TrainableModel& model() { return require_default()->model(); }

 private:
  /// Per-batch demux slot: one per session appearing in the drain batch.
  /// Each planner keeps a persistent pool of these, reused across batches
  /// — the session handle is released at batch end (holding it across the
  /// idle wait would pin a retired session's state) but the fold-plan
  /// buffer keeps its capacity, so a steady-state drain allocates nothing
  /// (RuntimeStats::fold_buffer_growths counts the warm-up growths).
  struct SessionSlot {
    std::shared_ptr<ModelSession> session;
    std::vector<FoldOp> plan;  // sharded path only
    FoldLatch latch;           // armed per batch by the fold scheduler
  };

  void planner_loop(std::size_t planner);
  std::shared_ptr<ModelSession> require(core::ModelId id) const;
  std::shared_ptr<ModelSession> require_default() const {
    return require(core::kDefaultModelId);
  }

  std::size_t trace_capacity_;
  std::size_t max_drain_batch_;
  bool serialize_folds_;
  /// Validated planner count (>= 1); also the queue's group count.
  std::size_t planner_count_;
  /// Adaptive drain-batching knobs (enabled flag consulted per drain).
  AdaptiveBatchConfig adaptive_;
  /// Overload policy the shared queue runs (also consulted on the submit
  /// path: shed policies stamp every admitted job's shed_cost). Declared
  /// before queue_, which is constructed from it.
  OverloadPolicy policy_;
  /// Deterministic fault injector; null for a fault-free host. Caller
  /// owned (RuntimeConfig::fault_injector), shared with the fold pool.
  FaultInjector* fault_ = nullptr;
  /// Stateless wire-frame validator/decoder shared by every request thread
  /// calling try_submit_wire (DESIGN.md §12).
  net::WireDecoder wire_decoder_;
  ModelRegistry registry_;
  std::atomic<core::ModelId> next_model_id_{core::kDefaultModelId};
  /// Host observability substrate; null when disabled. Declared before the
  /// queue and the fold pool: both hold raw pointers into it, so it must
  /// outlive them (members destroy in reverse declaration order).
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  /// Registry handles for the aggregation loop (null when disabled).
  telemetry::Counter* wire_rejects_ctr_ = nullptr;  ///< "wire.rejects"
  telemetry::Counter* pinning_fallback_ctr_ = nullptr;  ///< "server.pinning_fallback"
  telemetry::Histogram* drain_batch_ = nullptr;    ///< "server.drain_batch"
  telemetry::Histogram* session_fold_ns_ = nullptr;  ///< "server.session_fold_ns"
  telemetry::Histogram* publish_ns_ = nullptr;     ///< "server.publish_ns"
  telemetry::Histogram* batch_limit_ = nullptr;    ///< "planner.batch_limit"
  telemetry::Histogram* planner_occupancy_ = nullptr;  ///< "planner.occupancy_pct"
  telemetry::Gauge* queue_depth_gauge_ = nullptr;  ///< "queue.depth"
  telemetry::Counter* shed_ctr_ = nullptr;         ///< "queue.shed"
  telemetry::Counter* quarantine_ctr_ = nullptr;   ///< "server.fold_quarantines"
  GradientQueue queue_;
  /// Present when aggregation_shards > 1; the shared fold scheduler — all
  /// sessions' plans of a drain batch run on it concurrently, across
  /// planners too (submit/wait are multi-coordinator safe).
  std::unique_ptr<ShardedAggregator> sharded_;
  /// One adaptive controller per planner, owned by that planner's drain
  /// loop; stats readers only touch its relaxed-atomic published fields.
  /// Deque: AdaptiveBatcher holds atomics and must not move.
  std::deque<AdaptiveBatcher> batchers_;
  /// Hot-path allocation events (slot-pool or plan-buffer growth); see
  /// RuntimeStats::fold_buffer_growths.
  std::atomic<std::size_t> fold_buffer_growths_{0};
  /// Whether the requested control-plane pinning fully applied (see
  /// RuntimeConfig::pin_fold_workers). Set once in the constructor.
  std::atomic<bool> pinning_applied_{false};

  /// Queued jobs dropped because their session was retired before the
  /// aggregation loop reached them.
  std::atomic<std::size_t> retired_drops_{0};
  /// Malformed wire frames refused at decode (never admitted, never
  /// folded); see try_submit_wire and RuntimeStats::wire_rejects.
  std::atomic<std::size_t> wire_rejects_{0};
  /// Gradients lost to the overload shed policy: refused incoming jobs
  /// plus queued victims evicted in their favor (DESIGN.md §14).
  std::atomic<std::size_t> shed_drops_{0};
  /// Fold span tasks that threw and were quarantined (their sessions are
  /// marked degraded instead of the process terminating).
  std::atomic<std::size_t> fold_quarantines_{0};
  /// Per-planner drain-batch completion ticks (HealthSnapshot). Deque:
  /// atomics must not move; sized in the constructor before the planner
  /// threads spawn.
  std::deque<std::atomic<std::size_t>> planner_progress_;

  // Drain accounting: accepted_ is bumped by producers, processed_ by the
  // aggregation thread; drain() waits until they meet.
  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> processed_or_dropped_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::atomic<bool> paused_{false};
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;

  std::atomic<bool> stopped_{false};
  std::vector<std::thread> planner_threads_;
};

}  // namespace fleet::runtime
