#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "fleet/core/atomic_shared.hpp"
#include "fleet/core/server.hpp"
#include "fleet/runtime/gradient_queue.hpp"
#include "fleet/runtime/sharded_aggregator.hpp"

namespace fleet::runtime {

/// Knobs for the concurrent serving runtime.
struct RuntimeConfig {
  /// Global bound on queued-but-unprocessed gradients. Once full, submits
  /// are rejected (backpressure) instead of growing an unbounded backlog.
  std::size_t queue_capacity = 4096;
  /// Independently locked ingest shards (see GradientQueue).
  std::size_t queue_shards = 8;
  /// Cap on the per-gradient trace vectors in RuntimeStats (staleness,
  /// weights) — a long-lived server must not grow memory per gradient
  /// forever, and stats() copies the traces under the same lock the
  /// aggregation thread takes per job, so the cap also bounds how long a
  /// monitoring poll can stall ingest. Counters keep counting past the
  /// cap; RuntimeStats::traces_truncated records that the traces stopped.
  std::size_t trace_capacity = 1u << 16;
  /// Start with the aggregation thread parked (resume() arms it). Lets
  /// tests and benches stage a backlog deterministically.
  bool start_paused = false;
  /// Fold threads for the sharded hierarchical aggregation (DESIGN.md §6):
  /// the parameter arena is split into this many contiguous spans and a
  /// drain batch's weighted fold fans out across them, one worker per
  /// span, behind a barrier. 1 keeps the fold inline on the aggregation
  /// thread (the PR-2 sequential path). Any value yields a bitwise
  /// identical model — weights are computed centrally and every parameter
  /// index sees the same operation sequence.
  std::size_t aggregation_shards = 1;
  /// Cap on how many jobs one queue drain hands the aggregation loop
  /// (0 = take everything). Batches are exact admission-order prefixes
  /// (ticket-ordered), so batching changes snapshot-publication cadence
  /// and fold fan-out granularity, never the fold sequence or staleness.
  std::size_t max_drain_batch = 0;
};

/// Counters and traces maintained by the aggregation thread (plus the
/// admission-side backpressure counter). A stats() snapshot is internally
/// consistent because the trace vectors are only appended under the same
/// lock the snapshot takes.
struct RuntimeStats {
  std::size_t submitted = 0;    ///< jobs accepted into the queue
  std::size_t processed = 0;    ///< jobs folded into the aggregator
  std::size_t model_updates = 0;
  std::size_t backpressure_rejects = 0;  ///< submits refused: queue full
  std::size_t invalid_jobs = 0;  ///< task_version from the future (dropped)
  std::vector<double> staleness_values;  ///< tau per processed gradient
  std::vector<double> weights;           ///< applied dampening weights
  /// True once the traces above hit RuntimeConfig::trace_capacity and
  /// stopped recording (the counters are still exact).
  bool traces_truncated = false;
};

/// Thread-safe facade over the FLeet server components (DESIGN.md §6): the
/// same profiler + controller + AdaSGD aggregator + ModelStore as
/// `core::FleetServer`, re-arranged for real hardware parallelism.
///
/// Threading model:
///  - `handle_request` may be called from any number of request threads.
///    The model snapshot is served by one atomic handle acquisition: the
///    current (version, snapshot) record lives in a core::AtomicSharedPtr
///    cell — a constant-time copy under a one-byte spinlock (not formally
///    lock-free; see that header for the trade-off), published by the
///    aggregation thread. Profiler and controller state sit behind their
///    own fine-grained locks (they are order-sensitive but cheap);
///    similarity is read under the aggregator's lock.
///  - `try_submit` is the MPSC producer side: it moves the worker's owned
///    gradient buffer into the bounded GradientQueue, or rejects with a
///    backpressure `GradientReceipt` when the queue is full.
///  - One aggregation thread drains the queue and performs every
///    order-sensitive mutation: staleness (computed against the logical
///    clock at processing time, so tau stays exact under queueing), AdaSGD
///    dampening and accumulation, the model update, snapshot publication
///    and profiler feedback. AdaSGD's sequential update semantics are
///    preserved by construction — there is exactly one updater.
///    With RuntimeConfig::aggregation_shards > 1 the *arithmetic* of the
///    fold additionally fans out across span-sharded worker threads
///    (ShardedAggregator): the aggregation thread still decides every
///    weight, flush point and clock tick centrally, in admission order,
///    then the shards execute the batch's fold plan behind a barrier
///    before the single batched snapshot publication — bitwise identical
///    to the sequential fold for any shard count and batch size.
class ConcurrentFleetServer {
 public:
  ConcurrentFleetServer(nn::TrainableModel& model,
                        std::unique_ptr<profiler::Profiler> profiler,
                        const core::ServerConfig& config,
                        const RuntimeConfig& runtime = {});
  ~ConcurrentFleetServer();

  ConcurrentFleetServer(const ConcurrentFleetServer&) = delete;
  ConcurrentFleetServer& operator=(const ConcurrentFleetServer&) = delete;

  /// Steps 1-4 of the protocol, callable from any thread. The snapshot
  /// handle is acquired with a single constant-time atomic record copy.
  core::TaskAssignment handle_request(
      const profiler::DeviceFeatures& features,
      const std::string& device_model,
      const stats::LabelDistribution& label_info);

  /// The current (version, snapshot) pair as one consistent record —
  /// the fast path under the request handler, public for benches/drivers
  /// that manage admission themselves.
  struct VersionedSnapshot {
    std::size_t version = 0;
    core::ModelStore::Snapshot snapshot;
  };
  VersionedSnapshot current() const;

  /// Step 5, asynchronous: move the job into the ingest queue. On success
  /// `job` is consumed and the returned receipt only acknowledges admission
  /// (`accepted=true`, `version` = clock at enqueue); the gradient's actual
  /// weight/staleness land in stats() once the aggregation thread processes
  /// it. On backpressure `job` is left intact (callers may retry) and the
  /// receipt carries `accepted=false` and a reject_reason.
  core::GradientReceipt try_submit(GradientJob& job);

  /// Block until every job accepted so far has been processed. With
  /// producers quiesced this is a full barrier: afterwards stats(), the
  /// model and version() are stable.
  void drain();

  /// Park / un-park the aggregation thread (batch-granular). pause() does
  /// not block submits, and takes effect before the next batch is
  /// *processed*: a batch the thread had already popped when pause()
  /// landed is held unprocessed until resume(), but its jobs no longer
  /// occupy queue capacity. For deterministic backpressure staging use
  /// RuntimeConfig::start_paused, which parks the thread before it pops
  /// anything.
  void pause();
  void resume();

  /// Close the queue and join the aggregation thread after it drains what
  /// remains. Further submits are rejected. Idempotent; the destructor
  /// calls it.
  void stop();

  /// Logical clock t: number of model updates so far.
  std::size_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// False once stop() closed the ingest queue (submits can only fail).
  bool accepting() const { return !queue_.closed(); }

  RuntimeStats stats() const;

  const core::ModelStore& store() const { return store_; }
  const learning::AsyncAggregator& aggregator() const { return aggregator_; }
  const core::Controller& controller() const { return controller_; }
  /// The global model. Owned by the aggregation thread while running —
  /// only touch it after drain() with producers quiesced, or after stop().
  nn::TrainableModel& model() { return model_; }

 private:
  void aggregation_loop();
  void process(GradientJob&& job);
  /// Sharded-path counterpart of process(): the same central bookkeeping
  /// (clock, staleness, weight, profiler feedback, stats) with the numeric
  /// fold deferred into `plan` for ShardedAggregator::execute().
  void plan_process(GradientJob& job, std::vector<FoldOp>& plan);
  /// Shared head of process()/plan_process(): the future-version screen
  /// and exact staleness against the clock at processing time. nullopt
  /// means the job was dropped (and counted as invalid).
  struct Admitted {
    std::size_t now = 0;
    double staleness = 0.0;
  };
  std::optional<Admitted> screen(const GradientJob& job);
  /// Shared tail of process()/plan_process(): profiler feedback and the
  /// per-job stats/trace bookkeeping.
  void record_processed(const GradientJob& job, double staleness,
                        double weight, bool updated);
  void publish_version(std::size_t version);

  nn::TrainableModel& model_;
  std::unique_ptr<profiler::Profiler> profiler_;
  core::ServerConfig config_;
  std::size_t trace_capacity_;
  std::size_t max_drain_batch_;
  core::Controller controller_;
  learning::AsyncAggregator aggregator_;
  core::ModelStore store_;
  GradientQueue queue_;
  /// Present when aggregation_shards > 1; the aggregation loop then folds
  /// via batched plans instead of per-job submit().
  std::unique_ptr<ShardedAggregator> sharded_;

  std::atomic<std::size_t> version_{0};
  core::AtomicSharedPtr<const VersionedSnapshot> current_;

  // Fine-grained locks for the order-insensitive-but-racy components.
  std::mutex profiler_mu_;
  std::mutex controller_mu_;

  // Drain accounting: accepted_ is bumped by producers, processed_ by the
  // aggregation thread; drain() waits until they meet.
  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> processed_or_dropped_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::atomic<bool> paused_{false};
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;

  mutable std::mutex stats_mu_;
  RuntimeStats stats_;

  std::atomic<bool> stopped_{false};
  std::thread aggregation_thread_;
};

}  // namespace fleet::runtime
