#include "fleet/runtime/fault.hpp"

#include "fleet/stats/rng.hpp"

namespace fleet::runtime {

namespace {

/// Site-keyed stream constant (same golden-ratio splitting as
/// stats::Rng::stream) so two sites polling the same trigger index under
/// the same seed decide independently.
std::uint64_t site_key(std::uint64_t seed, std::size_t site) {
  return stats::mix64(seed + 0x9e3779b97f4a7c15ULL *
                                 (static_cast<std::uint64_t>(site) + 1));
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kWireCorrupt:
      return "wire_corrupt";
    case FaultSite::kInjectorDeath:
      return "injector_death";
    case FaultSite::kQueueFull:
      return "queue_full";
    case FaultSite::kFoldTask:
      return "fold_task";
    case FaultSite::kPlannerStall:
      return "planner_stall";
    case FaultSite::kSiteCount:
      break;
  }
  return "unknown";
}

void FaultInjector::arm(const FaultPlan& plan) {
  SiteState& state = sites_[index_of(plan.site)];
  state.plan = plan;
  state.armed.store(true, std::memory_order_release);
}

bool FaultInjector::should_fire(FaultSite site) {
  SiteState& state = sites_[index_of(site)];
  const std::uint64_t trigger =
      state.triggers.fetch_add(1, std::memory_order_relaxed);
  if (!state.armed.load(std::memory_order_acquire)) return false;
  const FaultPlan& plan = state.plan;
  if (trigger < plan.after) return false;
  bool fire = false;
  if (plan.every > 0 && (trigger - plan.after) % plan.every == 0) {
    fire = true;
  }
  if (!fire && plan.probability > 0.0) {
    // Decision = pure hash of (seed, site, trigger index); the top 53 bits
    // give a uniform double in [0, 1).
    const std::uint64_t h =
        stats::mix64(site_key(seed_, index_of(site)) ^ trigger);
    fire = static_cast<double>(h >> 11) * 0x1.0p-53 < plan.probability;
  }
  if (!fire) return false;
  // Respect the fire budget without ever over-counting under concurrency.
  std::uint64_t fired = state.fires.load(std::memory_order_relaxed);
  while (fired < plan.max_fires) {
    if (state.fires.compare_exchange_weak(fired, fired + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::payload(FaultSite site) const {
  const SiteState& state = sites_[index_of(site)];
  if (!state.armed.load(std::memory_order_acquire)) return 0;
  return state.plan.payload;
}

std::uint64_t FaultInjector::draw(FaultSite site, std::uint64_t salt) const {
  return stats::mix64(site_key(seed_, index_of(site)) ^
                      stats::mix64(salt + 1));
}

std::uint64_t FaultInjector::triggers(FaultSite site) const {
  return sites_[index_of(site)].triggers.load(std::memory_order_acquire);
}

std::uint64_t FaultInjector::fires(FaultSite site) const {
  return sites_[index_of(site)].fires.load(std::memory_order_acquire);
}

}  // namespace fleet::runtime
