#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "fleet/core/atomic_shared.hpp"
#include "fleet/core/server.hpp"
#include "fleet/runtime/gradient_queue.hpp"
#include "fleet/runtime/sharded_aggregator.hpp"

namespace fleet::runtime {

/// Counters, histograms and traces for one learning task. The aggregation
/// side updates the processing counters, the per-gradient histograms and
/// the raw traces under one (short) trace mutex, and stats() reads them
/// under the same mutex — a snapshot is one consistent cut: `processed`
/// always equals the histograms' counts plus nothing in flight, never one
/// ahead of its trace. (`submitted` is the exception by design: it is
/// producer-side and lock-free, so it may legitimately run ahead of
/// `processed` while jobs sit in the queue.)
///
/// Reporting lives in the bounded histograms; the raw staleness/weight
/// vectors are kept for exact-sequence tests and debugging but stop
/// recording at the trace capacity (`traces_truncated`) — the histograms
/// and counters stay exact past the cap.
struct RuntimeStats {
  std::size_t submitted = 0;    ///< jobs accepted into the queue
  std::size_t processed = 0;    ///< jobs folded into the aggregator
  std::size_t model_updates = 0;
  std::size_t backpressure_rejects = 0;  ///< host-wide: submits refused, queue full
  std::size_t invalid_jobs = 0;  ///< task_version from the future (dropped)
  std::size_t retired_drops = 0;  ///< host-wide: queued jobs whose model was retired
  /// Host-wide: malformed wire frames refused at decode (DESIGN.md §12).
  /// Counted before admission — a rejected frame never takes a ticket,
  /// never reaches a session and never folds.
  std::size_t wire_rejects = 0;
  /// Host-wide ingest-queue occupancy gauges at snapshot time (the queue
  /// is shared by every session on the host; see GradientQueue::depth()).
  std::size_t queue_depth = 0;
  /// Host-wide high-water mark of the ingest queue (monotone; see
  /// GradientQueue::max_depth_seen()).
  std::size_t queue_max_depth_seen = 0;
  std::vector<std::size_t> queue_shard_depths;
  /// Host-wide fold-scheduler occupancy (zero when the host runs the
  /// sequential shards=1 path; see ShardedAggregator::pool_stats()).
  std::size_t fold_tasks_executed = 0;
  std::size_t fold_peak_pending = 0;
  /// Host-wide count of aggregation-hot-path buffer growths (a demux slot
  /// or fold-plan buffer had to allocate during a drain batch). A
  /// steady-state server stops growing after warm-up — the regression
  /// gauge for "no per-batch heap allocation on the hot path".
  std::size_t fold_buffer_growths = 0;
  /// Host-wide (process-wide) high-water mark of live kernel-scratch bytes
  /// across all threads' arenas (tensor/kernels/scratch.hpp). Monotone;
  /// with the slab arenas warmed up it stops moving — the companion gauge
  /// to fold_buffer_growths for "no per-call heap allocation in the
  /// arithmetic hot loops".
  std::size_t scratch_bytes_peak = 0;
  /// Staleness (tau) per processed gradient, bucketed — exact for every
  /// gradient ever processed, unlike the capped raw vector below.
  telemetry::HistogramSnapshot staleness_hist;
  /// Applied dampening weight per processed gradient, bucketed.
  telemetry::HistogramSnapshot weight_hist;
  /// Host-wide queue wait (enqueue -> drain, ns) when the host runs with
  /// telemetry enabled; empty otherwise. Filled by
  /// ConcurrentFleetServer::stats(), zero-count here.
  telemetry::HistogramSnapshot queue_wait;
  std::vector<double> staleness_values;  ///< tau per processed gradient
  std::vector<double> weights;           ///< applied dampening weights
  /// True once the raw trace vectors above hit the trace capacity and
  /// stopped recording (counters and histograms are still exact).
  bool traces_truncated = false;
  /// Host-wide control plane (DESIGN.md §13): how many planner threads
  /// drive this host (sessions shard across them by id).
  std::size_t planner_threads = 1;
  /// Whether the control-plane pinning requested via
  /// RuntimeConfig::pin_fold_workers fully applied. False when pinning was
  /// never requested, the platform doesn't support affinity, or any
  /// individual pin was refused (the host then logged one warning and
  /// bumped the "server.pinning_fallback" counter).
  bool pinning_applied = false;
  /// Adaptive drain batching (empty/zero while the controller is off):
  /// each planner's current batch limit, and total controller decisions.
  std::vector<std::size_t> planner_batch_limits;
  std::size_t adaptive_widenings = 0;
  std::size_t adaptive_narrowings = 0;
  /// Host-wide: gradients lost to the overload shed policy (DESIGN.md
  /// §14) — refused incoming jobs plus queued victims evicted in their
  /// favor. Zero under the default kRejectNewest policy. Part of the
  /// extended ingest accounting identity: frames_sent == frames_submitted
  /// + wire_rejects + server_rejects + shed_drops.
  std::size_t shed_drops = 0;
  /// Host-wide: fold span tasks that finished by throwing (injected fault
  /// or real defect) and were quarantined instead of terminating the
  /// process. Each one marked its session degraded.
  std::size_t fold_quarantines = 0;
  /// This session had at least one fold task quarantined: its arena may
  /// hold a partially-applied fold, so its results are no longer bitwise
  /// reproducible (availability is preserved — it keeps serving). Sticky
  /// for the session's lifetime.
  bool degraded = false;
  /// Host-wide: how many registered sessions are currently degraded.
  std::size_t degraded_sessions = 0;
  /// Host-wide liveness ticks, one entry per planner: drain batches that
  /// planner completed. A stalled planner's tick stops advancing while the
  /// others keep counting (HealthSnapshot mirrors this).
  std::vector<std::size_t> planner_progress;
};

/// Everything one learning task owns on a multi-tenant serving host
/// (DESIGN.md §7): the model reference, its profiler, controller, AdaSGD
/// aggregator, snapshot store, the atomically-published (version, snapshot)
/// record, the per-task logical clock and the per-task stats traces. A
/// `ConcurrentFleetServer` hosts many sessions behind one ingest queue and
/// one aggregation thread; each session's learning semantics are exactly a
/// solo single-model server's, because every order-sensitive mutation is
/// keyed to this session's own state and its jobs keep their relative
/// admission order through the shared queue.
///
/// Threading model, mirroring the solo server's split:
///  - Request path (any thread): handle_request(), current(), version(),
///    validate(), stats(). Profiler and controller sit behind fine-grained
///    locks; the snapshot is one atomic record copy; similarity reads go
///    through the aggregator's internal lock.
///  - Aggregation path (exactly one thread, the host's): process(),
///    plan_process(), publish_if_dirty(), fold_context(). The host
///    guarantees a single caller, which is what preserves AdaSGD's
///    sequential update semantics per session.
///
/// Lifetime: the session references, but does not own, the model — the
/// registrant must keep the model alive until the session is retired AND
/// the host has drained (or stopped); the session itself may outlive
/// retirement in request threads holding a shared_ptr, which only ever
/// touch owned state after that point.
class ModelSession {
 public:
  /// `fold_shards` is the host's fold-pool shard count: the session caches
  /// its arena's span partition once, here, instead of re-deriving it for
  /// every drain batch (DESIGN.md §9). 1 (the sequential path) caches the
  /// single full-arena span. `telemetry` (optional, caller-owned,
  /// outliving the session) mirrors the session's staleness/weight
  /// histograms into the host registry as "session.<id>.staleness" /
  /// "session.<id>.weight" so the exporters see them; the RuntimeStats
  /// histograms are maintained either way.
  ModelSession(core::ModelId id, nn::TrainableModel& model,
               std::unique_ptr<profiler::Profiler> profiler,
               const core::ServerConfig& config, std::size_t trace_capacity,
               std::size_t fold_shards = 1,
               telemetry::Telemetry* telemetry = nullptr);

  ModelSession(const ModelSession&) = delete;
  ModelSession& operator=(const ModelSession&) = delete;

  core::ModelId id() const { return id_; }

  /// The current (version, snapshot) pair as one consistent record.
  struct VersionedSnapshot {
    std::size_t version = 0;
    core::ModelStore::Snapshot snapshot;
  };
  VersionedSnapshot current() const;

  /// Steps 1-4 of the protocol for this task, callable from any thread.
  core::TaskAssignment handle_request(
      const profiler::DeviceFeatures& features,
      const std::string& device_model,
      const stats::LabelDistribution& label_info);

  /// Admission-side screen: nullptr when `job` is well-formed for this
  /// session, else a static reject reason. Everything the aggregation-side
  /// components would throw on must be caught here, where the rejection
  /// can surface to the caller instead of killing the process.
  const char* validate(const GradientJob& job) const;

  /// Logical clock t of this task: number of model updates so far.
  std::size_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Count a job accepted into the shared queue for this session.
  void note_submitted() {
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Admission-time estimate of how much signal the host would lose by
  /// shedding `job` under `policy` (higher = more valuable = keep;
  /// GradientJob::shed_cost). kShedStalest scores by negated staleness
  /// against this session's clock *now* — staleness in rounds is the one
  /// unit commensurate across tenants, and AdaSGD's dampening
  /// Lambda(tau) makes the stalest job the one the fold would down-weight
  /// hardest anyway. kShedLowestWeight asks the session's own aggregator
  /// for the exact dampened weight it would apply at current staleness
  /// (label-similarity boost included). Both are estimates: the job's
  /// true staleness is fixed only when a planner reaches it. Never called
  /// under kRejectNewest. Request-path safe (reads the clock and the
  /// aggregator's internal lock; never the gradient payload).
  double shed_cost(const GradientJob& job, OverloadPolicy policy) const;

  /// Record a quarantined fold task against this session (DESIGN.md §14):
  /// sticky — the session keeps serving, but its arena may hold a
  /// partially-applied fold, so stats().degraded reads true from now on.
  /// Returns true the first time (so the host can count distinct degraded
  /// sessions without walking the registry).
  bool mark_degraded() {
    return !degraded_.exchange(true, std::memory_order_acq_rel);
  }
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  // --- aggregation-thread side (single caller: the host's loop) ---------

  /// Sequential fold: screen, dampen, accumulate, maybe update the model
  /// and advance the clock. Snapshot publication is deferred to
  /// publish_if_dirty() so the host can batch it per drain. Returns false
  /// when the job was dropped as invalid (so the host's per-gradient fold
  /// trace events cover exactly the processed gradients).
  bool process(GradientJob&& job);

  /// Sharded-path counterpart of process(): the same central bookkeeping
  /// (clock, staleness, weight, profiler feedback, stats) with the numeric
  /// fold deferred into `plan` for the shared fold scheduler
  /// (ShardedAggregator::submit) against fold_context(). Returns false
  /// when the job was dropped as invalid (nothing entered the plan).
  bool plan_process(GradientJob& job, std::vector<FoldOp>& plan);

  /// The context the shared fold scheduler executes this session's plans
  /// against: its aggregator, its model's mutable arena, and the cached
  /// span partition (computed once at construction — the partition depends
  /// only on (parameter count, fold shards), both fixed for the session's
  /// lifetime, so deriving it per batch was pure hot-path waste).
  FoldContext fold_context();

  /// Materialize and publish a snapshot if the clock advanced since the
  /// last publication (one O(|theta|) copy per dirty batch, not per
  /// update). The constructor publishes version 0, so requests never see
  /// an empty store. Returns true when a snapshot was actually published
  /// (so the host can scope its publish-latency span to real work).
  bool publish_if_dirty();

  /// Session-local stats view. The host-wide fields (backpressure, queue
  /// gauges, retired drops) are zero here; ConcurrentFleetServer::stats()
  /// fills them in.
  RuntimeStats stats() const;

  const core::ModelStore& store() const { return store_; }
  const learning::AsyncAggregator& aggregator() const { return aggregator_; }
  const core::Controller& controller() const { return controller_; }
  /// The session's model. Owned by the aggregation thread while the host
  /// runs — only touch it after drain() with producers quiesced, or after
  /// stop()/retirement.
  nn::TrainableModel& model() { return model_; }

 private:
  /// Shared head of process()/plan_process(): the future-version screen
  /// and exact staleness against this session's clock at processing time.
  /// nullopt means the job was dropped (and counted as invalid).
  struct Admitted {
    std::size_t now = 0;
    double staleness = 0.0;
  };
  std::optional<Admitted> screen(const GradientJob& job);
  /// Shared tail of process()/plan_process(): profiler feedback and the
  /// per-job stats/trace bookkeeping.
  void record_processed(const GradientJob& job, double staleness,
                        double weight, bool updated);
  void publish_version(std::size_t version);

  const core::ModelId id_;
  nn::TrainableModel& model_;
  std::unique_ptr<profiler::Profiler> profiler_;
  core::ServerConfig config_;
  std::size_t trace_capacity_;
  /// Cached fold-span partition of the model's arena for the host's pool
  /// shard count; referenced by every fold_context() (DESIGN.md §9).
  std::vector<FoldSpan> fold_spans_;
  core::Controller controller_;
  learning::AsyncAggregator aggregator_;
  core::ModelStore store_;

  std::atomic<std::size_t> version_{0};
  /// Sticky fold-quarantine flag (see mark_degraded()).
  std::atomic<bool> degraded_{false};
  core::AtomicSharedPtr<const VersionedSnapshot> current_;
  /// Aggregation thread only: the version publish_if_dirty() last wrote.
  std::size_t published_version_ = 0;

  // Fine-grained locks for the order-insensitive-but-racy components.
  std::mutex profiler_mu_;
  std::mutex controller_mu_;

  // The submit counter is producer-side and lock-free. Everything the
  // aggregation side reports — processing counters, per-gradient
  // histograms, raw traces — lives under one short mutex, taken once per
  // gradient, so a stats() snapshot is a single consistent cut and a
  // monitoring poll copying long traces stalls the fold path for at most
  // one bookkeeping block (DESIGN.md §7, §11).
  std::atomic<std::size_t> submitted_{0};
  mutable std::mutex trace_mu_;
  std::size_t processed_ = 0;
  std::size_t model_updates_ = 0;
  std::size_t invalid_jobs_ = 0;
  bool traces_truncated_ = false;
  telemetry::LocalHistogram staleness_hist_;
  telemetry::LocalHistogram weight_hist_;
  std::vector<double> staleness_trace_;
  std::vector<double> weight_trace_;
  /// Registry mirrors of the two histograms above (nullptr when the host
  /// runs without telemetry).
  telemetry::Histogram* staleness_metric_ = nullptr;
  telemetry::Histogram* weight_metric_ = nullptr;
};

}  // namespace fleet::runtime
