#include "fleet/runtime/concurrent_server.hpp"

#include <stdexcept>
#include <utility>

namespace fleet::runtime {

ConcurrentFleetServer::ConcurrentFleetServer(
    nn::TrainableModel& model, std::unique_ptr<profiler::Profiler> profiler,
    const core::ServerConfig& config, const RuntimeConfig& runtime)
    : model_(model),
      profiler_(std::move(profiler)),
      config_(config),
      trace_capacity_(runtime.trace_capacity),
      max_drain_batch_(runtime.max_drain_batch),
      controller_(config.controller),
      aggregator_(model.parameter_count(), model.n_classes(),
                  config.aggregator),
      store_(config.snapshot_window),
      queue_(runtime.queue_capacity, runtime.queue_shards),
      paused_(runtime.start_paused) {
  if (profiler_ == nullptr) {
    throw std::invalid_argument("ConcurrentFleetServer: null profiler");
  }
  if (runtime.aggregation_shards == 0) {
    throw std::invalid_argument(
        "ConcurrentFleetServer: aggregation_shards must be >= 1");
  }
  if (runtime.aggregation_shards > 1) {
    sharded_ = std::make_unique<ShardedAggregator>(
        aggregator_, model_.parameters_mut(), runtime.aggregation_shards);
  }
  // Materialize and publish version 0 before any thread can observe the
  // server, so handle_request never sees an empty store.
  publish_version(0);
  aggregation_thread_ = std::thread([this] { aggregation_loop(); });
}

ConcurrentFleetServer::~ConcurrentFleetServer() { stop(); }

void ConcurrentFleetServer::publish_version(std::size_t version) {
  // Aggregation thread only (plus the constructor, before the thread
  // exists): one bulk copy out of the parameter arena, then an atomic
  // handle swap that request threads pick up lock-free.
  const auto view = model_.parameters_view();
  auto snapshot = store_.publish(
      version, core::ModelStore::Buffer(view.begin(), view.end()));
  current_.store(std::make_shared<const VersionedSnapshot>(
      VersionedSnapshot{version, std::move(snapshot)}));
}

ConcurrentFleetServer::VersionedSnapshot ConcurrentFleetServer::current()
    const {
  const auto record = current_.load();
  return *record;  // copies {version, shared handle}; the buffer is shared
}

core::TaskAssignment ConcurrentFleetServer::handle_request(
    const profiler::DeviceFeatures& features, const std::string& device_model,
    const stats::LabelDistribution& label_info) {
  core::TaskAssignment assignment;
  std::size_t bound = 0;
  {
    std::lock_guard<std::mutex> lock(profiler_mu_);
    bound = profiler_->predict_batch(features, device_model);
  }
  const double similarity = aggregator_.similarity_of(label_info);
  core::Controller::Decision decision;
  {
    std::lock_guard<std::mutex> lock(controller_mu_);
    decision = controller_.admit(bound, similarity);
  }
  if (!decision.admitted) {
    assignment.accepted = false;
    assignment.reject_reason = decision.reason;
    return assignment;
  }
  const VersionedSnapshot record = current();
  assignment.accepted = true;
  assignment.model_version = record.version;
  assignment.mini_batch = bound;
  assignment.snapshot = record.snapshot;
  return assignment;
}

core::GradientReceipt ConcurrentFleetServer::try_submit(GradientJob& job) {
  core::GradientReceipt receipt;
  // Malformed payloads are refused at admission: past this point the job
  // is processed on the aggregation thread, where a throw would take the
  // whole process down instead of surfacing to the caller. Every input
  // the downstream components throw on must be screened here.
  if (job.gradient.size() != model_.parameter_count()) {
    receipt.accepted = false;
    receipt.reject_reason = "gradient size mismatch";
    return receipt;
  }
  if (job.label_dist.n_classes() != model_.n_classes()) {
    receipt.accepted = false;
    receipt.reject_reason = "label distribution class count mismatch";
    return receipt;
  }
  if (job.feedback.has_value() && job.feedback->mini_batch == 0) {
    receipt.accepted = false;
    receipt.reject_reason = "profiler feedback without mini-batch";
    return receipt;
  }
  if (!queue_.try_push(job)) {
    receipt.accepted = false;
    if (queue_.closed()) {
      receipt.reject_reason = "ingest queue closed";
    } else {
      receipt.reject_reason = "ingest queue full (backpressure)";
      receipt.retryable = true;
    }
    return receipt;
  }
  accepted_.fetch_add(1, std::memory_order_acq_rel);
  receipt.accepted = true;
  receipt.version = version_.load(std::memory_order_acquire);
  return receipt;
}

std::optional<ConcurrentFleetServer::Admitted> ConcurrentFleetServer::screen(
    const GradientJob& job) {
  Admitted admitted;
  admitted.now = version_.load(std::memory_order_relaxed);
  if (job.task_version > admitted.now) {
    // A job can only legitimately carry a version it observed from
    // current(), so a future version is a producer bug; drop it rather
    // than poisoning the logical clock.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.invalid_jobs;
    return std::nullopt;
  }
  // tau_i = t - t_i against the clock at *processing* time (Eq. 3) — the
  // queue delays the gradient, and the staleness reflects that delay
  // exactly, same as the serial server's logical clock. On the sharded
  // path "processing" is planning: the clock advances as flush points are
  // planned, so later jobs in the same batch observe every update earlier
  // ones produced — exactly the sequential schedule.
  admitted.staleness = static_cast<double>(admitted.now - job.task_version);
  return admitted;
}

namespace {
learning::WorkerUpdate update_from(const GradientJob& job, double staleness) {
  learning::WorkerUpdate update;
  update.gradient = std::span<const float>(job.gradient);
  update.staleness = staleness;
  update.label_dist = job.label_dist;
  update.mini_batch = job.mini_batch;
  return update;
}
}  // namespace

void ConcurrentFleetServer::record_processed(const GradientJob& job,
                                             double staleness, double weight,
                                             bool updated) {
  if (job.feedback.has_value()) {
    std::lock_guard<std::mutex> lock(profiler_mu_);
    profiler_->observe(*job.feedback);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.processed;
  if (updated) ++stats_.model_updates;
  if (stats_.staleness_values.size() < trace_capacity_) {
    stats_.staleness_values.push_back(staleness);
    stats_.weights.push_back(weight);
  } else {
    stats_.traces_truncated = true;  // counters stay exact past the cap
  }
}

void ConcurrentFleetServer::process(GradientJob&& job) {
  const auto admitted = screen(job);
  if (!admitted) return;
  const learning::SubmitResult result =
      aggregator_.submit(update_from(job, admitted->staleness));

  bool updated = false;
  if (result.aggregate) {
    model_.apply_gradient(*result.aggregate, config_.learning_rate);
    // The logical clock advances immediately (staleness must see every
    // update), but snapshot materialization is batched: the aggregation
    // loop publishes once per drain batch, since versions consumed mid-
    // batch were never observable to request threads anyway.
    version_.store(admitted->now + 1, std::memory_order_release);
    updated = true;
  }
  record_processed(job, admitted->staleness, result.weight, updated);
}

void ConcurrentFleetServer::plan_process(GradientJob& job,
                                         std::vector<FoldOp>& plan) {
  const auto admitted = screen(job);
  if (!admitted) return;  // dropped jobs never enter the plan
  const learning::PlannedSubmit planned =
      aggregator_.plan_submit(update_from(job, admitted->staleness));

  FoldOp fold;
  fold.kind = FoldOp::Kind::kFold;
  fold.gradient = std::span<const float>(job.gradient);
  fold.weight = planned.weight;
  plan.push_back(fold);

  bool updated = false;
  if (planned.flush) {
    FoldOp apply;
    apply.kind = FoldOp::Kind::kFlushApply;
    apply.learning_rate = config_.learning_rate;
    plan.push_back(apply);
    // The logical clock advances at the planned flush, before the shards
    // run the arithmetic — legal because the version only becomes
    // observable-with-parameters at publication, which waits for the
    // barrier, while staleness must see every planned update immediately.
    version_.store(admitted->now + 1, std::memory_order_release);
    updated = true;
  }
  record_processed(job, admitted->staleness, planned.weight, updated);
}

void ConcurrentFleetServer::aggregation_loop() {
  std::vector<GradientJob> batch;
  std::vector<FoldOp> plan;
  std::size_t published_version = 0;  // constructor published version 0
  while (true) {
    // Batch-granular pause gate: parked here, submits still queue up.
    {
      std::unique_lock<std::mutex> lock(pause_mu_);
      pause_cv_.wait(lock, [this] {
        return !paused_.load(std::memory_order_acquire) || queue_.closed();
      });
    }
    batch.clear();
    const std::size_t taken = queue_.wait_drain(batch, max_drain_batch_);
    if (taken == 0) break;  // closed and fully drained
    // Second gate: a pause() issued while this thread was blocked inside
    // wait_drain (past the top gate) must still hold the popped batch
    // unprocessed until resume().
    {
      std::unique_lock<std::mutex> lock(pause_mu_);
      pause_cv_.wait(lock, [this] {
        return !paused_.load(std::memory_order_acquire) || queue_.closed();
      });
    }
    if (sharded_ != nullptr) {
      // Sharded hierarchical fold: walk the batch in admission order doing
      // every order-sensitive decision centrally (staleness against the
      // live clock, dampened weight, flush points, profiler feedback),
      // then fan the recorded arithmetic across the shard workers and
      // barrier before publication. The plan's gradient spans point into
      // `batch`, which stays alive until the next drain.
      plan.clear();
      for (GradientJob& job : batch) {
        plan_process(job, plan);
      }
      sharded_->execute(plan);
    } else {
      for (GradientJob& job : batch) {
        process(std::move(job));
      }
    }
    // One snapshot materialization per drain batch, however many updates
    // it applied — under load this amortizes the O(|theta|) copy across
    // the whole backlog.
    const std::size_t version_now = version_.load(std::memory_order_relaxed);
    if (version_now != published_version) {
      publish_version(version_now);
      published_version = version_now;
    }
    processed_or_dropped_.fetch_add(taken, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
    }
    drain_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
  }
  drain_cv_.notify_all();
}

void ConcurrentFleetServer::drain() {
  // Every accepted job is eventually counted into processed_or_dropped_,
  // even after close(): the queue's close fence guarantees an accepted
  // push is visible to the aggregation thread's final sweep. No
  // closed-queue escape clause — it would let drain() return mid-batch,
  // before the counters (and the model) settle.
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return processed_or_dropped_.load(std::memory_order_acquire) >=
           accepted_.load(std::memory_order_acquire);
  });
}

void ConcurrentFleetServer::pause() {
  paused_.store(true, std::memory_order_release);
}

void ConcurrentFleetServer::resume() {
  paused_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
  }
  pause_cv_.notify_all();
}

void ConcurrentFleetServer::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  resume();  // wake a parked aggregation thread so it can drain and exit
  if (aggregation_thread_.joinable()) aggregation_thread_.join();
}

RuntimeStats ConcurrentFleetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  RuntimeStats snapshot = stats_;
  snapshot.submitted = accepted_.load(std::memory_order_acquire);
  // The queue is the single source of truth for capacity rejections — the
  // reject path stays free of the stats lock.
  snapshot.backpressure_rejects = queue_.rejected();
  return snapshot;
}

}  // namespace fleet::runtime
