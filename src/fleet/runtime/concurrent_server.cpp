#include "fleet/runtime/concurrent_server.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "fleet/runtime/topology.hpp"
#include "fleet/tensor/kernels/scratch.hpp"

namespace fleet::runtime {

namespace {

std::size_t validate_planner_count(std::size_t planners) {
  if (planners == 0) {
    throw std::invalid_argument(
        "ConcurrentFleetServer: planner_threads must be >= 1");
  }
  return planners;
}

}  // namespace

ConcurrentFleetServer::ConcurrentFleetServer(const RuntimeConfig& runtime)
    : trace_capacity_(runtime.trace_capacity),
      max_drain_batch_(runtime.max_drain_batch),
      serialize_folds_(runtime.serialize_folds),
      planner_count_(validate_planner_count(runtime.planner_threads)),
      adaptive_(runtime.adaptive_batch),
      policy_(runtime.overload_policy),
      fault_(runtime.fault_injector),
      wire_decoder_(runtime.wire_limits),
      telemetry_(runtime.telemetry.enabled
                     ? std::make_unique<telemetry::Telemetry>(runtime.telemetry)
                     : nullptr),
      queue_(runtime.queue_capacity, runtime.queue_shards, telemetry_.get(),
             planner_count_, policy_, runtime.shed_watermark),
      paused_(runtime.start_paused) {
  if (runtime.aggregation_shards == 0) {
    throw std::invalid_argument(
        "ConcurrentFleetServer: aggregation_shards must be >= 1");
  }
  // Pin the arithmetic kernel backend before any planner (or fold) runs a
  // single op. kAuto keeps the startup selection; an unavailable explicit
  // choice throws here, at construction, not mid-fold.
  if (runtime.kernel_backend != tensor::kernels::Backend::kAuto) {
    tensor::kernels::pin_backend(runtime.kernel_backend);
  }
  if (telemetry_ != nullptr) {
    wire_rejects_ctr_ = telemetry_->metrics().counter("wire.rejects");
    pinning_fallback_ctr_ =
        telemetry_->metrics().counter("server.pinning_fallback");
    drain_batch_ = telemetry_->metrics().histogram("server.drain_batch",
                                                   telemetry::batch_bounds());
    session_fold_ns_ = telemetry_->metrics().histogram(
        "server.session_fold_ns", telemetry::latency_bounds_ns());
    publish_ns_ = telemetry_->metrics().histogram(
        "server.publish_ns", telemetry::latency_bounds_ns());
    batch_limit_ = telemetry_->metrics().histogram("planner.batch_limit",
                                                   telemetry::batch_bounds());
    planner_occupancy_ = telemetry_->metrics().histogram(
        "planner.occupancy_pct", telemetry::occupancy_bounds());
    queue_depth_gauge_ = telemetry_->metrics().gauge("queue.depth");
    // Registered unconditionally (not only when a shed policy or injector
    // is configured): a zero-valued counter still exports, so dashboards
    // and the CI exporter check can assert the metric exists on every
    // telemetry-enabled host.
    shed_ctr_ = telemetry_->metrics().counter("queue.shed");
    quarantine_ctr_ = telemetry_->metrics().counter("server.fold_quarantines");
  }
  // Control-plane placement (DESIGN.md §13): one CPU per planner and per
  // fold worker, co-placed per NUMA node, from sysfs discovery or the
  // explicit override. Computed only when pinning was requested — an
  // unpinned host never reads sysfs.
  const std::size_t fold_workers =
      runtime.aggregation_shards > 1 ? runtime.aggregation_shards - 1 : 0;
  PlacementPlan plan;
  plan.planner_cpus.assign(planner_count_, -1);
  plan.fold_worker_cpus.assign(fold_workers, -1);
  if (runtime.pin_fold_workers) {
    if (!runtime.placement_override.empty()) {
      for (std::size_t i = 0; i < runtime.placement_override.size(); ++i) {
        if (i < planner_count_) {
          plan.planner_cpus[i] = runtime.placement_override[i];
        } else if (i - planner_count_ < fold_workers) {
          plan.fold_worker_cpus[i - planner_count_] =
              runtime.placement_override[i];
        }
      }
    } else {
      plan = plan_placement(discover_topology(), planner_count_, fold_workers);
    }
  }
  if (runtime.aggregation_shards > 1) {
    sharded_ = std::make_unique<ShardedAggregator>(runtime.aggregation_shards,
                                                   plan.fold_worker_cpus,
                                                   telemetry_.get(), fault_);
  }
  // One adaptive controller per planner. The starting limit is the pinned
  // max_drain_batch (clamped into the adaptive range); 0 (= "take
  // everything") starts at the adaptive ceiling.
  const std::size_t initial_limit =
      max_drain_batch_ > 0 ? max_drain_batch_ : adaptive_.max_batch;
  for (std::size_t p = 0; p < planner_count_; ++p) {
    batchers_.emplace_back(adaptive_, initial_limit);
  }
  // Progress ticks sized before any planner thread exists — the threads
  // write their own entry from their first batch on.
  for (std::size_t p = 0; p < planner_count_; ++p) {
    planner_progress_.emplace_back(0);
  }
  planner_threads_.reserve(planner_count_);
  std::size_t requested_pins = 0;
  std::size_t applied_pins = 0;
  for (std::size_t p = 0; p < planner_count_; ++p) {
    planner_threads_.emplace_back([this, p] { planner_loop(p); });
    if (runtime.pin_fold_workers && plan.planner_cpus[p] >= 0) {
      ++requested_pins;
      if (pin_thread_to_cpu(planner_threads_.back().native_handle(),
                            plan.planner_cpus[p])) {
        ++applied_pins;
      }
    }
  }
  if (runtime.pin_fold_workers) {
    for (std::size_t w = 0; w < fold_workers; ++w) {
      if (plan.fold_worker_cpus[w] >= 0) ++requested_pins;
    }
    applied_pins += sharded_ != nullptr ? sharded_->pinned_workers() : 0;
    const bool applied = requested_pins > 0 && applied_pins == requested_pins;
    pinning_applied_.store(applied, std::memory_order_release);
    if (!applied) {
      // Satellite of DESIGN.md §13: pinning was asked for but could not
      // (fully) apply — unsupported platform, restrictive cpuset, or an
      // override naming CPUs this machine doesn't have. One warning, one
      // counter bump; the host runs unpinned, results unaffected.
      if (pinning_fallback_ctr_ != nullptr) pinning_fallback_ctr_->add(1);
      std::fprintf(stderr,
                   "fleet: pin_fold_workers requested but only %zu of %zu "
                   "control-plane pins applied (%s); continuing unpinned\n",
                   applied_pins, requested_pins,
                   affinity_supported() ? "cpuset or cpu refused"
                                        : "platform unsupported");
    }
  }
}

ConcurrentFleetServer::ConcurrentFleetServer(
    nn::TrainableModel& model, std::unique_ptr<profiler::Profiler> profiler,
    const core::ServerConfig& config, const RuntimeConfig& runtime)
    : ConcurrentFleetServer(runtime) {
  register_model(model, std::move(profiler), config);
}

ConcurrentFleetServer::~ConcurrentFleetServer() { stop(); }

core::ModelId ConcurrentFleetServer::register_model(
    nn::TrainableModel& model, std::unique_ptr<profiler::Profiler> profiler,
    const core::ServerConfig& config) {
  const core::ModelId id =
      next_model_id_.fetch_add(1, std::memory_order_relaxed);
  // The session publishes its version-0 snapshot in its constructor,
  // before it becomes visible in the registry — a request thread that can
  // find the session never sees an empty store. It also caches its fold
  // span partition here, for the host pool's shard count.
  registry_.add(std::make_shared<ModelSession>(
      id, model, std::move(profiler), config, trace_capacity_,
      sharded_ != nullptr ? sharded_->shard_count() : 1, telemetry_.get()));
  return id;
}

bool ConcurrentFleetServer::retire_model(core::ModelId id) {
  return registry_.retire(id) != nullptr;
}

std::shared_ptr<ModelSession> ConcurrentFleetServer::require(
    core::ModelId id) const {
  auto session = registry_.lookup(id);
  if (session == nullptr) {
    throw std::out_of_range(
        "ConcurrentFleetServer: unknown or retired model id");
  }
  return session;
}

ConcurrentFleetServer::VersionedSnapshot ConcurrentFleetServer::current(
    core::ModelId id) const {
  return require(id)->current();
}

std::size_t ConcurrentFleetServer::version(core::ModelId id) const {
  return require(id)->version();
}

core::TaskAssignment ConcurrentFleetServer::handle_request(
    core::ModelId id, const profiler::DeviceFeatures& features,
    const std::string& device_model,
    const stats::LabelDistribution& label_info) {
  auto session = registry_.lookup(id);
  if (session == nullptr) {
    core::TaskAssignment assignment;
    assignment.accepted = false;
    assignment.model_id = id;
    assignment.reject_reason = "unknown or retired model";
    return assignment;
  }
  return session->handle_request(features, device_model, label_info);
}

core::TaskAssignment ConcurrentFleetServer::handle_request(
    const profiler::DeviceFeatures& features, const std::string& device_model,
    const stats::LabelDistribution& label_info) {
  return handle_request(core::kDefaultModelId, features, device_model,
                        label_info);
}

core::GradientReceipt ConcurrentFleetServer::try_submit(GradientJob& job) {
  core::GradientReceipt receipt;
  receipt.model_id = job.model_id;
  auto session = registry_.lookup(job.model_id);
  if (session == nullptr) {
    receipt.accepted = false;
    receipt.reject_reason = "unknown or retired model";
    return receipt;
  }
  // Malformed payloads are refused at admission: past this point the job
  // is processed on the aggregation thread, where a throw would take the
  // whole process down instead of surfacing to the caller. Every input
  // the downstream components throw on must be screened here.
  if (const char* reason = session->validate(job)) {
    receipt.accepted = false;
    receipt.reject_reason = reason;
    return receipt;
  }
  // Deterministic transient-backpressure injection (DESIGN.md §14): report
  // "queue full" without consulting the queue — indistinguishable from the
  // real condition to the caller, so retry loops exercise their real path.
  if (fault_ != nullptr && fault_->should_fire(FaultSite::kQueueFull)) {
    receipt.accepted = false;
    receipt.reject_reason = "ingest queue full (injected fault)";
    receipt.retryable = true;
    return receipt;
  }
  if (policy_ != OverloadPolicy::kRejectNewest) {
    // Shed policies weigh jobs at admission: stamp the estimate on every
    // admitted job (it may become a later push's victim), then push with
    // an eviction slot.
    job.shed_cost = session->shed_cost(job, policy_);
    GradientJob evicted;
    switch (queue_.push(job, &evicted)) {
      case GradientQueue::PushOutcome::kAccepted:
        break;
      case GradientQueue::PushOutcome::kAcceptedEvicted: {
        // The victim was counted into accepted_ when it was admitted; it
        // will never be drained, so account it processed-or-dropped here —
        // otherwise drain() waits for it forever.
        shed_drops_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry_ != nullptr) {
          shed_ctr_->add(1);
          telemetry::TraceEvent ev;
          ev.ts_ns = telemetry_->now_ns();
          ev.ticket = evicted.ticket;
          ev.model = evicted.model_id;
          ev.phase = telemetry::TracePhase::kShedDrop;
          telemetry_->tracer().emit(ev);
        }
        processed_or_dropped_.fetch_add(1, std::memory_order_acq_rel);
        {
          std::lock_guard<std::mutex> lock(drain_mu_);
        }
        drain_cv_.notify_all();
        break;
      }
      case GradientQueue::PushOutcome::kShedIncoming:
        // Refused before any ticket was drawn: the job never entered the
        // accounting, so only the shed counter moves.
        shed_drops_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry_ != nullptr) {
          shed_ctr_->add(1);
          telemetry::TraceEvent ev;
          ev.ts_ns = telemetry_->now_ns();
          ev.model = job.model_id;
          ev.phase = telemetry::TracePhase::kShedDrop;
          telemetry_->tracer().emit(ev);
        }
        receipt.accepted = false;
        receipt.shed = true;
        receipt.reject_reason = "shed by overload policy";
        return receipt;
      case GradientQueue::PushOutcome::kRejectedFull:
        receipt.accepted = false;
        receipt.reject_reason = "ingest queue full (backpressure)";
        receipt.retryable = true;
        return receipt;
      case GradientQueue::PushOutcome::kRejectedClosed:
        receipt.accepted = false;
        receipt.reject_reason = "ingest queue closed";
        return receipt;
    }
  } else if (!queue_.try_push(job)) {
    receipt.accepted = false;
    if (queue_.closed()) {
      receipt.reject_reason = "ingest queue closed";
    } else {
      receipt.reject_reason = "ingest queue full (backpressure)";
      receipt.retryable = true;
    }
    return receipt;
  }
  session->note_submitted();
  accepted_.fetch_add(1, std::memory_order_acq_rel);
  receipt.accepted = true;
  receipt.version = session->version();
  return receipt;
}

core::GradientReceipt ConcurrentFleetServer::try_submit_wire(
    std::span<const std::uint8_t> frame, GradientJob& scratch,
    net::WireError* decode_error) {
  // Decode strictly before admission: a frame that survives this point is
  // a plain GradientJob, so ticket order, session demux and the fold path
  // see nothing wire-specific (DESIGN.md §12).
  const net::WireError error = wire_decoder_.decode(frame, scratch);
  if (decode_error != nullptr) *decode_error = error;
  if (error != net::WireError::kOk) {
    wire_rejects_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) {
      wire_rejects_ctr_->add();
      telemetry::TraceEvent ev;
      ev.ts_ns = telemetry_->now_ns();
      ev.b = static_cast<std::uint64_t>(error);
      ev.model = scratch.model_id;  // kDefaultModelId unless the header parsed
      ev.phase = telemetry::TracePhase::kWireReject;
      telemetry_->tracer().emit(ev);
    }
    core::GradientReceipt receipt;
    receipt.accepted = false;
    receipt.model_id = scratch.model_id;
    receipt.reject_reason =
        std::string("wire: ") + net::wire_error_name(error);
    return receipt;
  }
  return try_submit(scratch);
}

void ConcurrentFleetServer::planner_loop(std::size_t planner) {
  std::vector<GradientJob> batch;
  // Planner-local demux state: this planner's sessions are disjoint from
  // every other planner's (id % planner_count_ routing, enforced by the
  // queue's group demux), so the slot pool needs no sharing or locking.
  std::deque<SessionSlot> slot_pool;
  AdaptiveBatcher& batcher = batchers_[planner];
  // Telemetry scratch: per-slot fold-submit timestamps (sharded path).
  // Sized lazily to the slot pool; lives outside the loop so a steady-state
  // batch allocates nothing.
  std::vector<std::uint64_t> fold_submit_ns;
  const auto emit_instant = [&](telemetry::TracePhase phase,
                                std::uint64_t ticket, core::ModelId model) {
    telemetry::TraceEvent ev;
    ev.ts_ns = telemetry_->now_ns();
    ev.ticket = ticket;
    ev.model = model;
    ev.phase = phase;
    telemetry_->tracer().emit(ev);
  };
  // Span of one session's fold, submit -> latch resolution. Called exactly
  // once per non-empty plan, at the wait that actually resolved it.
  const auto note_session_fold = [&](std::size_t i) {
    if (telemetry_ == nullptr) return;
    SessionSlot& slot = slot_pool[i];
    if (slot.plan.empty()) return;
    const std::uint64_t now = telemetry_->now_ns();
    const std::uint64_t dur = now - fold_submit_ns[i];
    session_fold_ns_->record(static_cast<double>(dur));
    telemetry::TraceEvent ev;
    ev.ts_ns = fold_submit_ns[i];
    ev.a = dur;
    ev.b = slot.plan.size();
    ev.model = slot.session->id();
    ev.phase = telemetry::TracePhase::kSessionFold;
    telemetry_->tracer().emit(ev);
  };
  // Per-batch demultiplexed state: one slot per session that appears in
  // the batch, in first-appearance order, acquired from the persistent
  // slot pool (`used` of `slot_pool_` are live this batch). The session
  // set per batch is tiny (tenant count, not job count), so a linear id
  // scan beats a map.
  std::size_t used = 0;
  auto acquire_slot = [&]() -> SessionSlot& {
    if (used == slot_pool.size()) {
      slot_pool.emplace_back();
      fold_buffer_growths_.fetch_add(1, std::memory_order_relaxed);
    }
    return slot_pool[used++];
  };
  // Resolve a job's session via the batch's slots first — one registry
  // lookup per (session, batch), not per job, keeps the fold path off the
  // directory's read lock that request threads contend on. nullptr means
  // the id is unknown/retired (a registry miss is re-probed per job, but
  // that only happens on the rare retired-backlog path).
  auto slot_for = [&](core::ModelId id) -> SessionSlot* {
    for (std::size_t i = 0; i < used; ++i) {
      if (slot_pool[i].session->id() == id) return &slot_pool[i];
    }
    auto session = registry_.lookup(id);
    if (session == nullptr) return nullptr;
    SessionSlot& slot = acquire_slot();
    slot.session = std::move(session);
    return &slot;
  };
  // Slots are reset at the END of each iteration, before the idle wait:
  // holding a SessionSlot's shared_ptr across wait_drain would pin a
  // just-retired session's O(|theta| * window) state until some other
  // model's gradient arrived. The plan buffers keep their capacity.

  while (true) {
    // Batch-granular pause gate: parked here, submits still queue up.
    {
      std::unique_lock<std::mutex> lock(pause_mu_);
      pause_cv_.wait(lock, [this] {
        return !paused_.load(std::memory_order_acquire) || queue_.closed();
      });
    }
    // Adaptive mode consults the controller's current limit; otherwise the
    // pinned max_drain_batch schedule (the benchmarking baseline).
    const std::size_t limit =
        adaptive_.enabled ? batcher.limit() : max_drain_batch_;
    const std::size_t taken = queue_.wait_drain(batch, limit, planner);
    if (taken == 0) break;  // closed and fully drained
    // Second gate: a pause() issued while this thread was blocked inside
    // wait_drain (past the top gate) must still hold the popped batch
    // unprocessed until resume().
    {
      std::unique_lock<std::mutex> lock(pause_mu_);
      pause_cv_.wait(lock, [this] {
        return !paused_.load(std::memory_order_acquire) || queue_.closed();
      });
    }
    // Deterministic planner-stall injection (DESIGN.md §14): a bounded
    // count of yields, never a clock — the batch is merely delayed, and
    // the other planners' progress ticks keep advancing past this one's.
    if (fault_ != nullptr && fault_->should_fire(FaultSite::kPlannerStall)) {
      const std::uint64_t configured =
          fault_->payload(FaultSite::kPlannerStall);
      const std::uint64_t spins = configured > 0 ? configured : 1000;
      for (std::uint64_t i = 0; i < spins; ++i) std::this_thread::yield();
    }
    // Feed the controller the counters it owns — batch occupancy and the
    // group's windowed depth peak — and nothing else: no telemetry clock
    // is ever read on this path, so the drain schedule is identical with
    // telemetry on or off (§11 invariant, checked bitwise by the matrix).
    if (adaptive_.enabled) {
      batcher.observe(taken, queue_.take_group_depth_peak(planner));
    }
    const std::uint64_t batch_t0 =
        telemetry_ != nullptr ? telemetry_->now_ns() : 0;
    if (telemetry_ != nullptr) {
      drain_batch_->record(static_cast<double>(taken));
      if (limit > 0) {
        batch_limit_->record(static_cast<double>(limit));
        planner_occupancy_->record(100.0 * static_cast<double>(taken) /
                                   static_cast<double>(limit));
      }
      // Depth right after the pop: what is still waiting behind this batch.
      queue_depth_gauge_->set(queue_.depth());
    }
    // Demultiplex the batch in global admission-ticket order. Each job's
    // order-sensitive bookkeeping runs against its own session as it is
    // reached, so per session the processing order is exactly the
    // session's own admission order — what a solo server would see.
    // Retired ids miss the registry lookup and are dropped, counted, and
    // never folded (their drain accounting rides on `taken`).
    if (sharded_ != nullptr) {
      // Concurrent fold scheduling (DESIGN.md §9): plan every job
      // centrally (staleness against its session's live clock, dampened
      // weight, flush points, profiler feedback), then submit ALL
      // sessions' plans to the shared fold scheduler at once — different
      // sessions' spans execute concurrently, since their arenas are
      // disjoint — and wait once for the whole batch. Plans' gradient
      // spans point into `batch`, which stays alive until the next drain.
      for (GradientJob& job : batch) {
        SessionSlot* slot = slot_for(job.model_id);
        if (slot == nullptr) {
          retired_drops_.fetch_add(1, std::memory_order_relaxed);
          if (telemetry_ != nullptr) {
            emit_instant(telemetry::TracePhase::kDrop, job.ticket,
                         job.model_id);
          }
          continue;
        }
        const std::size_t plan_capacity = slot->plan.capacity();
        const bool folded = slot->session->plan_process(job, slot->plan);
        if (slot->plan.capacity() != plan_capacity) {
          fold_buffer_growths_.fetch_add(1, std::memory_order_relaxed);
        }
        if (telemetry_ != nullptr && folded) {
          emit_instant(telemetry::TracePhase::kFold, job.ticket, job.model_id);
        }
      }
      if (telemetry_ != nullptr && fold_submit_ns.size() < slot_pool.size()) {
        fold_submit_ns.resize(slot_pool.size());
      }
      for (std::size_t i = 0; i < used; ++i) {
        SessionSlot& slot = slot_pool[i];
        if (slot.plan.empty()) continue;
        if (telemetry_ != nullptr) fold_submit_ns[i] = telemetry_->now_ns();
        sharded_->submit(slot.session->fold_context(), slot.plan, slot.latch);
        if (serialize_folds_) {
          sharded_->wait(slot.latch);
          note_session_fold(i);
        }
      }
      // One wait per batch; waiting in slot order is work-conserving (the
      // waiter executes queued tasks — any session's, any planner's —
      // while it waits).
      for (std::size_t i = 0; i < used; ++i) {
        sharded_->wait(slot_pool[i].latch);
        if (!serialize_folds_) note_session_fold(i);
        // Fold quarantine (DESIGN.md §14): a span task of this session's
        // plan threw — the pool caught it and resolved the latch anyway,
        // so only this session degrades (its arena may hold a partial
        // fold); every other session's batch, and the host, are unharmed.
        const std::size_t failures = slot_pool[i].latch.take_failures();
        if (failures > 0) {
          fold_quarantines_.fetch_add(failures, std::memory_order_relaxed);
          if (quarantine_ctr_ != nullptr) quarantine_ctr_->add(failures);
          slot_pool[i].session->mark_degraded();
        }
      }
    } else {
      for (GradientJob& job : batch) {
        SessionSlot* slot = slot_for(job.model_id);
        if (slot == nullptr) {
          retired_drops_.fetch_add(1, std::memory_order_relaxed);
          if (telemetry_ != nullptr) {
            emit_instant(telemetry::TracePhase::kDrop, job.ticket,
                         job.model_id);
          }
          continue;
        }
        const std::uint64_t ticket = job.ticket;
        const core::ModelId model_id = job.model_id;
        bool folded = false;
        try {
          folded = slot->session->process(std::move(job));
        } catch (...) {
          // Same quarantine contract as the sharded path: one throwing
          // fold degrades its own session, never the planner thread.
          fold_quarantines_.fetch_add(1, std::memory_order_relaxed);
          if (quarantine_ctr_ != nullptr) quarantine_ctr_->add(1);
          slot->session->mark_degraded();
        }
        if (telemetry_ != nullptr && folded) {
          emit_instant(telemetry::TracePhase::kFold, ticket, model_id);
        }
      }
    }
    // One snapshot materialization per dirty session per drain batch,
    // however many updates it applied — under load this amortizes the
    // O(|theta|) copy across the whole backlog. Ordered per session: a
    // session publishes only after its own latch resolved above, so the
    // snapshot always reads a fully-folded arena.
    for (std::size_t i = 0; i < used; ++i) {
      SessionSlot& slot = slot_pool[i];
      const std::uint64_t p0 =
          telemetry_ != nullptr ? telemetry_->now_ns() : 0;
      const bool published = slot.session->publish_if_dirty();
      if (telemetry_ != nullptr && published) {
        const std::uint64_t now = telemetry_->now_ns();
        publish_ns_->record(static_cast<double>(now - p0));
        telemetry::TraceEvent ev;
        ev.ts_ns = p0;
        ev.a = now - p0;
        ev.b = slot.session->version();
        ev.model = slot.session->id();
        ev.phase = telemetry::TracePhase::kPublish;
        telemetry_->tracer().emit(ev);
      }
      slot.session.reset();
      slot.plan.clear();  // keeps capacity for the next batch
    }
    used = 0;
    batch.clear();
    if (telemetry_ != nullptr) {
      const std::uint64_t now = telemetry_->now_ns();
      telemetry::TraceEvent ev;
      ev.ts_ns = batch_t0;
      ev.a = now - batch_t0;
      ev.b = taken;
      ev.phase = telemetry::TracePhase::kDrainBatch;
      telemetry_->tracer().emit(ev);
    }
    processed_or_dropped_.fetch_add(taken, std::memory_order_acq_rel);
    // Liveness tick last: a batch only counts once fully processed, so a
    // planner stuck anywhere above reads as "not progressing".
    planner_progress_[planner].fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
    }
    drain_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
  }
  drain_cv_.notify_all();
}

void ConcurrentFleetServer::drain() {
  // Every accepted job is eventually counted into processed_or_dropped_,
  // even after close(): the queue's close fence guarantees an accepted
  // push is visible to the aggregation thread's final sweep. No
  // closed-queue escape clause — it would let drain() return mid-batch,
  // before the counters (and the models) settle.
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return processed_or_dropped_.load(std::memory_order_acquire) >=
           accepted_.load(std::memory_order_acquire);
  });
}

void ConcurrentFleetServer::pause() {
  paused_.store(true, std::memory_order_release);
}

void ConcurrentFleetServer::resume() {
  paused_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
  }
  pause_cv_.notify_all();
}

void ConcurrentFleetServer::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  resume();  // wake parked planner threads so they can drain and exit
  for (std::thread& planner : planner_threads_) {
    if (planner.joinable()) planner.join();
  }
}

RuntimeStats ConcurrentFleetServer::host_stats() const {
  // The queue is the single source of truth for capacity rejections — the
  // reject path stays free of any stats lock — and the occupancy gauges
  // are read shard by shard (each exact, the vector not one atomic cut;
  // see GradientQueue::shard_depths()).
  RuntimeStats snapshot;
  snapshot.backpressure_rejects = queue_.rejected();
  snapshot.retired_drops = retired_drops_.load(std::memory_order_acquire);
  snapshot.wire_rejects = wire_rejects_.load(std::memory_order_acquire);
  snapshot.queue_depth = queue_.depth();
  snapshot.queue_max_depth_seen = queue_.max_depth_seen();
  snapshot.queue_shard_depths = queue_.shard_depths();
  snapshot.fold_buffer_growths =
      fold_buffer_growths_.load(std::memory_order_acquire);
  snapshot.scratch_bytes_peak =
      tensor::kernels::ScratchAllocator::global_bytes_peak();
  snapshot.planner_threads = planner_count_;
  snapshot.pinning_applied = pinning_applied_.load(std::memory_order_acquire);
  if (adaptive_.enabled) {
    snapshot.planner_batch_limits.reserve(batchers_.size());
    for (const AdaptiveBatcher& batcher : batchers_) {
      const AdaptiveBatcher::Stats adaptive = batcher.stats();
      snapshot.planner_batch_limits.push_back(adaptive.limit);
      snapshot.adaptive_widenings += adaptive.widenings;
      snapshot.adaptive_narrowings += adaptive.narrowings;
    }
  }
  if (sharded_ != nullptr) {
    const auto pool = sharded_->pool_stats();
    snapshot.fold_tasks_executed = pool.tasks_executed;
    snapshot.fold_peak_pending = pool.peak_pending;
  }
  if (const telemetry::Histogram* wait = queue_.wait_histogram()) {
    snapshot.queue_wait = wait->snapshot();
  }
  snapshot.shed_drops = shed_drops_.load(std::memory_order_acquire);
  snapshot.fold_quarantines =
      fold_quarantines_.load(std::memory_order_acquire);
  snapshot.planner_progress.reserve(planner_progress_.size());
  for (const auto& ticks : planner_progress_) {
    snapshot.planner_progress.push_back(
        ticks.load(std::memory_order_relaxed));
  }
  for (const core::ModelId id : registry_.ids()) {
    const auto session = registry_.lookup(id);
    if (session != nullptr && session->degraded()) {
      ++snapshot.degraded_sessions;
    }
  }
  return snapshot;
}

HealthSnapshot ConcurrentFleetServer::health() const {
  HealthSnapshot snapshot;
  snapshot.planner_progress.reserve(planner_progress_.size());
  for (const auto& ticks : planner_progress_) {
    snapshot.planner_progress.push_back(
        ticks.load(std::memory_order_relaxed));
  }
  for (const core::ModelId id : registry_.ids()) {
    const auto session = registry_.lookup(id);
    if (session != nullptr && session->degraded()) {
      snapshot.degraded_sessions.push_back(id);
    }
  }
  snapshot.shed_drops = shed_drops_.load(std::memory_order_acquire);
  snapshot.fold_quarantines =
      fold_quarantines_.load(std::memory_order_acquire);
  return snapshot;
}

RuntimeStats ConcurrentFleetServer::stats(core::ModelId id) const {
  RuntimeStats snapshot = require(id)->stats();
  const RuntimeStats host = host_stats();
  snapshot.backpressure_rejects = host.backpressure_rejects;
  snapshot.retired_drops = host.retired_drops;
  snapshot.wire_rejects = host.wire_rejects;
  snapshot.queue_depth = host.queue_depth;
  snapshot.queue_max_depth_seen = host.queue_max_depth_seen;
  snapshot.queue_shard_depths = host.queue_shard_depths;
  snapshot.fold_tasks_executed = host.fold_tasks_executed;
  snapshot.fold_peak_pending = host.fold_peak_pending;
  snapshot.fold_buffer_growths = host.fold_buffer_growths;
  snapshot.scratch_bytes_peak = host.scratch_bytes_peak;
  snapshot.queue_wait = host.queue_wait;
  snapshot.planner_threads = host.planner_threads;
  snapshot.pinning_applied = host.pinning_applied;
  snapshot.planner_batch_limits = host.planner_batch_limits;
  snapshot.adaptive_widenings = host.adaptive_widenings;
  snapshot.adaptive_narrowings = host.adaptive_narrowings;
  snapshot.shed_drops = host.shed_drops;
  snapshot.fold_quarantines = host.fold_quarantines;
  snapshot.degraded_sessions = host.degraded_sessions;
  snapshot.planner_progress = host.planner_progress;
  return snapshot;
}

}  // namespace fleet::runtime
