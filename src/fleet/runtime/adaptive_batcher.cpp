#include "fleet/runtime/adaptive_batcher.hpp"

#include <algorithm>

namespace fleet::runtime {

namespace {

std::size_t clamp_limit(std::size_t v, const AdaptiveBatchConfig& c) {
  const std::size_t lo = std::max<std::size_t>(1, c.min_batch);
  const std::size_t hi = std::max(lo, c.max_batch);
  return std::clamp(v, lo, hi);
}

}  // namespace

AdaptiveBatcher::AdaptiveBatcher(const AdaptiveBatchConfig& config,
                                 std::size_t initial)
    : config_(config), limit_(clamp_limit(initial, config)) {}

void AdaptiveBatcher::observe(std::size_t taken, std::size_t depth_peak) {
  taken_in_window_ += taken;
  depth_peak_in_window_ = std::max(depth_peak_in_window_, depth_peak);
  if (++drains_in_window_ >= std::max<std::size_t>(1, config_.window)) {
    decide();
    drains_in_window_ = 0;
    taken_in_window_ = 0;
    depth_peak_in_window_ = 0;
  }
}

void AdaptiveBatcher::decide() {
  windows_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t limit = limit_.load(std::memory_order_relaxed);
  const double peak = static_cast<double>(depth_peak_in_window_);
  const double mean_fill =
      static_cast<double>(taken_in_window_) /
      static_cast<double>(std::max<std::size_t>(1, drains_in_window_));

  int vote = 0;
  if (peak > config_.widen_depth_ratio * static_cast<double>(limit)) {
    vote = 1;
  } else if (peak < config_.narrow_depth_ratio * static_cast<double>(limit) &&
             mean_fill < config_.narrow_occupancy *
                             static_cast<double>(limit)) {
    vote = -1;
  }

  if (vote == 0) {
    streak_ = 0;
    return;
  }
  streak_ = (vote > 0) == (streak_ > 0) ? streak_ + vote : vote;

  const int needed = static_cast<int>(std::max<std::size_t>(1,
                                                            config_.hysteresis));
  if (streak_ >= needed) {
    const std::size_t widened = clamp_limit(limit * 2, config_);
    if (widened != limit) {
      limit_.store(widened, std::memory_order_relaxed);
      widenings_.fetch_add(1, std::memory_order_relaxed);
    }
    streak_ = 0;
  } else if (-streak_ >= needed) {
    const std::size_t narrowed = clamp_limit(limit / 2, config_);
    if (narrowed != limit) {
      limit_.store(narrowed, std::memory_order_relaxed);
      narrowings_.fetch_add(1, std::memory_order_relaxed);
    }
    streak_ = 0;
  }
}

AdaptiveBatcher::Stats AdaptiveBatcher::stats() const {
  Stats s;
  s.limit = limit_.load(std::memory_order_relaxed);
  s.widenings = widenings_.load(std::memory_order_relaxed);
  s.narrowings = narrowings_.load(std::memory_order_relaxed);
  s.windows = windows_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fleet::runtime
