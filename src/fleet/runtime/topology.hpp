#pragma once

// CPU topology discovery and control-plane placement (DESIGN.md §13).
//
// The aggregation control plane has three kinds of threads that benefit
// from staying put: planner threads (drain + plan_submit), fold workers
// (span-parallel folds), and — implicitly — the arena spans each fold
// worker keeps hot in its cache. `discover_topology()` reads the NUMA
// layout from sysfs (with a graceful single-node fallback on non-Linux
// hosts or restricted containers) and `plan_placement()` turns it into a
// concrete CPU list that co-places planner p with the fold lanes that
// serve its sessions on the same node.
//
// Everything here is best-effort: a failed pin degrades to the unpinned
// behavior the runtime always had, never to an error.

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

namespace fleet::runtime {

/// One NUMA node's online CPUs, as read from
/// /sys/devices/system/node/node<id>/cpulist.
struct TopologyNode {
  int id = 0;
  std::vector<int> cpus;
};

struct CpuTopology {
  std::vector<TopologyNode> nodes;

  std::size_t cpu_count() const {
    std::size_t n = 0;
    for (const auto& node : nodes) n += node.cpus.size();
    return n;
  }
  bool multi_node() const { return nodes.size() > 1; }
};

/// Parse a sysfs cpulist string ("0-3,8,10-11") into CPU indices.
/// Malformed or empty chunks are skipped; an unparsable string yields an
/// empty vector so callers fall back. Exposed for unit tests.
std::vector<int> parse_cpulist(const std::string& text);

/// One node spanning CPUs 0..hardware_concurrency-1 (at least one CPU).
CpuTopology single_node_topology();

/// Discover the host topology from `node_dir` (normally
/// /sys/devices/system/node). Any failure — non-Linux, missing sysfs,
/// unparsable cpulist files — degrades to `single_node_topology()`.
CpuTopology discover_topology(const std::string& node_dir);
CpuTopology discover_topology();

/// Concrete CPU assignment for the control plane. Entry i of
/// `planner_cpus` is planner i's CPU; entry w of `fold_worker_cpus` is
/// fold worker w's. -1 means "leave unpinned".
struct PlacementPlan {
  std::vector<int> planner_cpus;
  std::vector<int> fold_worker_cpus;
};

/// Co-place planners and fold workers: thread k of either kind goes to
/// node k % nodes, taking the node's next unused CPU (wrapping when the
/// node is oversubscribed). On a single node this reduces to planners on
/// CPUs 0..P-1 and fold workers on the CPUs after them — the PR 5
/// affinity layout, generalized.
PlacementPlan plan_placement(const CpuTopology& topo, std::size_t planners,
                             std::size_t fold_workers);

/// True when this build can express CPU affinity at all (Linux).
bool affinity_supported();

/// Best-effort pin. Returns false when unsupported, when `cpu` is
/// negative, or when the kernel refuses (e.g. CPU outside the cpuset).
bool pin_thread_to_cpu(std::thread::native_handle_type handle, int cpu);

}  // namespace fleet::runtime
