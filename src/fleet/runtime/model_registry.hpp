#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "fleet/core/atomic_shared.hpp"
#include "fleet/runtime/model_session.hpp"

namespace fleet::runtime {

/// Id -> session directory of a multi-tenant host (DESIGN.md §7).
///
/// Reads are the hot path: every request and every demultiplexed gradient
/// resolves its ModelId here, concurrently with registrations and
/// retirements. The directory is therefore copy-on-write — an immutable,
/// id-sorted table behind one `core::AtomicSharedPtr` cell — so lookup()
/// is a constant-time atomic record acquisition plus a binary search, with
/// no lock shared with writers (the same read mechanism the snapshot path
/// uses; see AtomicSharedPtr for the spinlock trade-off). Writers
/// (register/retire, rare control-plane events) serialize on a mutex,
/// rebuild the table and swap it in whole.
///
/// Retirement removes the id from the table; request threads still holding
/// the session shared_ptr keep it alive, and jobs already queued under the
/// id are dropped (and counted) by the host's aggregation loop when their
/// lookup misses.
class ModelRegistry {
 public:
  using Table = std::vector<std::shared_ptr<ModelSession>>;  // id-sorted

  /// Insert a session under its id. Throws std::invalid_argument when the
  /// id is already registered.
  void add(std::shared_ptr<ModelSession> session);

  /// Remove and return the session registered under `id`; nullptr when no
  /// such id. Subsequent lookups miss immediately.
  std::shared_ptr<ModelSession> retire(core::ModelId id);

  /// Resolve an id, from any thread; nullptr when unknown or retired.
  std::shared_ptr<ModelSession> lookup(core::ModelId id) const;

  /// Ids currently registered, ascending.
  std::vector<core::ModelId> ids() const;

  std::size_t size() const;

 private:
  std::mutex write_mu_;
  core::AtomicSharedPtr<const Table> table_;
};

}  // namespace fleet::runtime
