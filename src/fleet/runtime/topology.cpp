#include "fleet/runtime/topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fleet::runtime {

namespace {

// Parse a non-negative integer out of [pos, end); returns -1 on no digits
// or overflow-ish lengths (cpulist entries are small).
int parse_int(const std::string& s, std::size_t& pos) {
  std::size_t start = pos;
  long value = 0;
  while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
    value = value * 10 + (s[pos] - '0');
    if (value > 1'000'000) return -1;  // no machine has a million CPUs
    ++pos;
  }
  if (pos == start) return -1;
  return static_cast<int>(value);
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Skip separators and whitespace between chunks.
    while (pos < text.size() &&
           (text[pos] == ',' ||
            std::isspace(static_cast<unsigned char>(text[pos])))) {
      ++pos;
    }
    if (pos >= text.size()) break;
    const int lo = parse_int(text, pos);
    if (lo < 0) {
      // Malformed chunk: skip to the next comma and keep going.
      while (pos < text.size() && text[pos] != ',') ++pos;
      continue;
    }
    int hi = lo;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      hi = parse_int(text, pos);
      if (hi < lo) {
        while (pos < text.size() && text[pos] != ',') ++pos;
        continue;
      }
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology single_node_topology() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  CpuTopology topo;
  topo.nodes.push_back(TopologyNode{});
  topo.nodes.back().cpus.reserve(hw);
  for (unsigned c = 0; c < hw; ++c) {
    topo.nodes.back().cpus.push_back(static_cast<int>(c));
  }
  return topo;
}

CpuTopology discover_topology(const std::string& node_dir) {
  CpuTopology topo;
  // Probe node0, node1, ... until the first gap. Sysfs numbers online
  // nodes densely enough for placement purposes; a sparse layout just
  // means we see a prefix, which still beats the single-node fallback.
  for (int id = 0; id < 4096; ++id) {
    std::ostringstream path;
    path << node_dir << "/node" << id << "/cpulist";
    std::ifstream in(path.str());
    if (!in.is_open()) break;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::vector<int> cpus = parse_cpulist(text);
    if (cpus.empty()) continue;  // memory-only node: no CPUs to place on
    TopologyNode node;
    node.id = id;
    node.cpus = std::move(cpus);
    topo.nodes.push_back(std::move(node));
  }
  if (topo.nodes.empty() || topo.cpu_count() == 0) {
    return single_node_topology();
  }
  return topo;
}

CpuTopology discover_topology() {
#if defined(__linux__)
  return discover_topology("/sys/devices/system/node");
#else
  return single_node_topology();
#endif
}

PlacementPlan plan_placement(const CpuTopology& topo, std::size_t planners,
                             std::size_t fold_workers) {
  PlacementPlan plan;
  plan.planner_cpus.assign(planners, -1);
  plan.fold_worker_cpus.assign(fold_workers, -1);
  if (topo.nodes.empty() || topo.cpu_count() == 0) return plan;

  // Round-robin thread k of each kind onto node k % nodes; each node
  // hands out its CPUs in order, wrapping when oversubscribed. Planners
  // are placed first so fold workers land after them on each node — on a
  // single node that is planner 0 → CPU 0, workers → CPU 1.. as before.
  std::vector<std::size_t> cursor(topo.nodes.size(), 0);
  auto take = [&](std::size_t node_idx) {
    const auto& cpus = topo.nodes[node_idx].cpus;
    const int cpu = cpus[cursor[node_idx] % cpus.size()];
    ++cursor[node_idx];
    return cpu;
  };
  for (std::size_t p = 0; p < planners; ++p) {
    plan.planner_cpus[p] = take(p % topo.nodes.size());
  }
  for (std::size_t w = 0; w < fold_workers; ++w) {
    plan.fold_worker_cpus[w] = take(w % topo.nodes.size());
  }
  return plan;
}

bool affinity_supported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

bool pin_thread_to_cpu(std::thread::native_handle_type handle, int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(handle, sizeof(set), &set) == 0;
#else
  (void)handle;
  (void)cpu;
  return false;
#endif
}

}  // namespace fleet::runtime
