#include "fleet/runtime/sharded_aggregator.hpp"

#include <algorithm>
#include <stdexcept>

#include "fleet/tensor/ops.hpp"

namespace fleet::runtime {

ShardedAggregator::ShardedAggregator(learning::AsyncAggregator& aggregator,
                                     std::span<float> parameters,
                                     std::size_t shards)
    : aggregator_(aggregator), parameters_(parameters) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedAggregator: shards must be >= 1");
  }
  if (parameters_.size() != aggregator_.parameter_count()) {
    throw std::invalid_argument(
        "ShardedAggregator: parameter arena size does not match aggregator");
  }
  const std::size_t n = parameters_.size();
  const std::size_t chunk = (n + shards - 1) / shards;
  spans_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    ShardSpan span;
    span.begin = std::min(s * chunk, n);
    span.end = std::min(span.begin + chunk, n);
    spans_.push_back(span);  // trailing spans may be empty when shards > n
  }
  // Workers for spans 1..S-1; the coordinator folds span 0 in execute().
  workers_.reserve(shards - 1);
  for (std::size_t s = 1; s < shards; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardedAggregator::~ShardedAggregator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ShardedAggregator::run_shard(const ShardSpan& s,
                                  std::span<const FoldOp> plan) {
  if (s.begin >= s.end) return;
  for (const FoldOp& op : plan) {
    if (op.kind == FoldOp::Kind::kFold) {
      aggregator_.fold_into(s.begin, s.end, op.weight, op.gradient);
    } else {
      const auto flushed = aggregator_.flush_span(s.begin, s.end);
      tensor::axpy(-op.learning_rate, flushed,
                   parameters_.subspan(s.begin, s.end - s.begin));
    }
  }
}

void ShardedAggregator::worker_loop(std::size_t shard_index) {
  std::uint64_t seen = 0;
  while (true) {
    std::span<const FoldOp> plan;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
      if (stopping_) return;
      seen = epoch_;
      plan = plan_;
    }
    run_shard(spans_[shard_index], plan);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = --outstanding_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

void ShardedAggregator::execute(std::span<const FoldOp> plan) {
  if (plan.empty()) return;
  if (workers_.empty()) {
    run_shard(spans_[0], plan);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = plan;
    outstanding_ = workers_.size();
    ++epoch_;
  }
  start_cv_.notify_all();
  run_shard(spans_[0], plan);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

}  // namespace fleet::runtime
