#include "fleet/runtime/sharded_aggregator.hpp"

#include <algorithm>
#include <stdexcept>

#include "fleet/runtime/topology.hpp"
#include "fleet/tensor/ops.hpp"

namespace fleet::runtime {

ShardedAggregator::ShardedAggregator(std::size_t shards,
                                     std::vector<int> worker_cpus,
                                     telemetry::Telemetry* telemetry,
                                     FaultInjector* fault)
    : shards_(shards), telemetry_(telemetry), fault_(fault) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedAggregator: shards must be >= 1");
  }
  if (telemetry_ != nullptr) {
    task_ns_ = telemetry_->metrics().histogram("pool.task_ns",
                                               telemetry::latency_bounds_ns());
    pending_ = telemetry_->metrics().gauge("pool.pending");
  }
  // Workers for spans 1..S-1; the coordinator is the pool's S-th lane
  // while it waits (shards == 1 spawns no threads at all). Worker w is
  // lane w + 1 for span affinity. Pinning is best-effort per the
  // placement plan; a refused pin (unsupported platform, CPU outside the
  // cpuset) leaves the worker where the scheduler puts it.
  workers_.reserve(shards - 1);
  for (std::size_t s = 1; s < shards; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
    const std::size_t w = s - 1;
    if (w < worker_cpus.size() && worker_cpus[w] >= 0 &&
        pin_thread_to_cpu(workers_.back().native_handle(), worker_cpus[w])) {
      ++pinned_workers_;
    }
  }
}

ShardedAggregator::~ShardedAggregator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::pair<std::size_t, std::size_t> ShardedAggregator::span_of(
    std::size_t param_count, std::size_t shards, std::size_t s) {
  const std::size_t chunk = (param_count + shards - 1) / shards;
  const std::size_t begin = std::min(s * chunk, param_count);
  return {begin, std::min(begin + chunk, param_count)};
}

std::vector<FoldSpan> ShardedAggregator::partition(std::size_t param_count,
                                                   std::size_t shards) {
  std::vector<FoldSpan> spans;
  spans.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const auto [begin, end] = span_of(param_count, shards, s);
    if (begin < end) spans.push_back(FoldSpan{begin, end});
  }
  return spans;
}

void ShardedAggregator::run_task(const FoldTask& task) {
  const auto [begin, end] = task.span;
  for (const FoldOp& op : task.plan) {
    if (op.kind == FoldOp::Kind::kFold) {
      task.ctx.aggregator->fold_into(begin, end, op.weight, op.gradient);
    } else {
      const auto flushed = task.ctx.aggregator->flush_span(begin, end);
      tensor::axpy(-op.learning_rate, flushed,
                   task.ctx.parameters.subspan(begin, end - begin));
    }
  }
}

bool ShardedAggregator::run_one(std::size_t lane) {
  FoldTask task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    std::size_t pick = 0;
    if (lane != kAnyLane) {
      // Span affinity: prefer a task whose span index maps to this lane,
      // so each arena slice keeps returning to the same worker (and its
      // cache / NUMA node under placement pinning). The scan is bounded —
      // affinity is a hint, not a guarantee — and a lane with no affine
      // task falls back to the front, which keeps the pool
      // work-conserving: no task waits for "its" lane while others idle.
      const std::size_t scan = std::min<std::size_t>(tasks_.size(), 32);
      for (std::size_t i = 0; i < scan; ++i) {
        if (tasks_[i].span_index % shards_ == lane) {
          pick = i;
          break;
        }
      }
    }
    task = tasks_[pick];
    tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(pick));
    ++active_;
  }
  // A task that throws — an armed kFoldTask injection or a real defect in
  // the fold arithmetic — must never escape onto a pool lane: on a worker
  // thread it would std::terminate the process, and an unresolved latch
  // would deadlock the coordinator. Catch it, count it on the latch
  // (FoldLatch::take_failures) and resolve normally; the coordinator
  // quarantines the owning session (DESIGN.md §14).
  bool failed = false;
  const auto guarded_run = [&] {
    try {
      if (fault_ != nullptr && fault_->should_fire(FaultSite::kFoldTask)) {
        throw FaultInjector::InjectedFault("injected fold-task failure");
      }
      run_task(task);
    } catch (...) {
      failed = true;
    }
  };
  if (telemetry_ != nullptr) {
    const std::uint64_t t0 = telemetry_->now_ns();
    guarded_run();
    const std::uint64_t dur = telemetry_->now_ns() - t0;
    task_ns_->record(static_cast<double>(dur));
    telemetry::TraceEvent ev;
    ev.ts_ns = t0;
    ev.a = dur;
    ev.b = task.span.begin;
    ev.model = task.ctx.model;
    ev.phase = telemetry::TracePhase::kFoldTask;
    telemetry_->tracer().emit(ev);
  } else {
    guarded_run();
  }
  if (failed) {
    task.latch->failed_.fetch_add(1, std::memory_order_acq_rel);
  }
  bool resolved = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    ++tasks_executed_;
    // The latch counts down under mu_: a waiter checks the latch under the
    // same mutex before sleeping on done_cv_, so the final decrement's
    // notification can never slip between its check and its wait.
    resolved =
        task.latch->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }
  if (resolved) done_cv_.notify_all();
  return true;
}

void ShardedAggregator::worker_loop(std::size_t lane) {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_) return;
    }
    // The lock was dropped between the wake-up and the pop — run_one()
    // re-checks and simply finds the queue empty when another lane won.
    run_one(lane);
  }
}

void ShardedAggregator::submit(const FoldContext& ctx,
                               std::span<const FoldOp> plan,
                               FoldLatch& latch) {
  if (ctx.aggregator == nullptr ||
      ctx.parameters.size() != ctx.aggregator->parameter_count()) {
    throw std::invalid_argument(
        "ShardedAggregator: fold context arena does not match its aggregator");
  }
  if (!ctx.spans.empty()) {
    // The spans must tile the arena exactly — a gap would silently skip
    // parameters, an overlap double-fold them. The vector is tenant-count
    // sized tiny, so the walk is free next to the fold itself.
    std::size_t cursor = 0;
    for (const FoldSpan& span : ctx.spans) {
      if (span.begin != cursor || span.end <= span.begin) {
        throw std::invalid_argument(
            "ShardedAggregator: cached span partition does not tile the "
            "arena");
      }
      cursor = span.end;
    }
    if (cursor != ctx.parameters.size()) {
      throw std::invalid_argument(
          "ShardedAggregator: cached span partition does not cover the arena");
    }
  }
  if (!latch.done()) {
    throw std::invalid_argument(
        "ShardedAggregator: latch already tracks an in-flight plan");
  }
  if (plan.empty()) return;

  std::size_t armed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ctx.spans.empty()) {
      for (std::size_t i = 0; i < ctx.spans.size(); ++i) {
        tasks_.push_back(FoldTask{ctx, plan, ctx.spans[i], i, &latch});
        ++armed;
      }
    } else {
      for (std::size_t s = 0; s < shards_; ++s) {
        const auto [begin, end] = span_of(ctx.parameters.size(), shards_, s);
        if (begin >= end) continue;
        tasks_.push_back(FoldTask{ctx, plan, FoldSpan{begin, end}, s, &latch});
        ++armed;
      }
    }
    // Armed under mu_, before any lane can pop a task: a task finishing
    // can therefore never observe a latch it would drive below zero.
    latch.pending_.fetch_add(armed, std::memory_order_acq_rel);
    peak_pending_ = std::max(peak_pending_, tasks_.size() + active_);
    // Occupancy gauge tracks the high-water mark: a point-in-time value
    // would almost always read 0 by the time anyone snapshots.
    if (pending_ != nullptr) {
      pending_->record_max(static_cast<double>(tasks_.size() + active_));
    }
  }
  if (armed > 1) {
    work_cv_.notify_all();
  } else {
    work_cv_.notify_one();
  }
  // A thread already helping inside wait() sleeps on done_cv_ when the
  // queue momentarily ran dry — hand it the new work too.
  done_cv_.notify_all();
}

void ShardedAggregator::wait(FoldLatch& latch) {
  // Work-conserving wait: drain queued tasks (any plan's — executing
  // another session's span can only help resolve the pool sooner) and only
  // sleep once the queue is empty and our latch is still pending.
  while (!latch.done()) {
    if (run_one(kAnyLane)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return latch.done() || !tasks_.empty(); });
  }
}

void ShardedAggregator::execute(const FoldContext& ctx,
                                std::span<const FoldOp> plan) {
  FoldLatch latch;
  submit(ctx, plan, latch);
  wait(latch);
}

ShardedAggregator::PoolStats ShardedAggregator::pool_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats stats;
  stats.tasks_executed = tasks_executed_;
  stats.peak_pending = peak_pending_;
  return stats;
}

}  // namespace fleet::runtime
