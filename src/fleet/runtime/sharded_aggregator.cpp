#include "fleet/runtime/sharded_aggregator.hpp"

#include <algorithm>
#include <stdexcept>

#include "fleet/tensor/ops.hpp"

namespace fleet::runtime {

ShardedAggregator::ShardedAggregator(std::size_t shards) : shards_(shards) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedAggregator: shards must be >= 1");
  }
  // Workers for spans 1..S-1; the coordinator folds span 0 in execute().
  workers_.reserve(shards - 1);
  for (std::size_t s = 1; s < shards; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardedAggregator::~ShardedAggregator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::pair<std::size_t, std::size_t> ShardedAggregator::span_of(
    std::size_t param_count, std::size_t shards, std::size_t s) {
  const std::size_t chunk = (param_count + shards - 1) / shards;
  const std::size_t begin = std::min(s * chunk, param_count);
  return {begin, std::min(begin + chunk, param_count)};
}

void ShardedAggregator::run_shard(std::size_t shard_index,
                                  const FoldContext& ctx,
                                  std::span<const FoldOp> plan) {
  const auto [begin, end] = span_of(ctx.parameters.size(), shards_, shard_index);
  if (begin >= end) return;
  for (const FoldOp& op : plan) {
    if (op.kind == FoldOp::Kind::kFold) {
      ctx.aggregator->fold_into(begin, end, op.weight, op.gradient);
    } else {
      const auto flushed = ctx.aggregator->flush_span(begin, end);
      tensor::axpy(-op.learning_rate, flushed,
                   ctx.parameters.subspan(begin, end - begin));
    }
  }
}

void ShardedAggregator::worker_loop(std::size_t shard_index) {
  std::uint64_t seen = 0;
  while (true) {
    FoldContext ctx;
    std::span<const FoldOp> plan;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
      if (stopping_) return;
      seen = epoch_;
      ctx = ctx_;
      plan = plan_;
    }
    run_shard(shard_index, ctx, plan);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = --outstanding_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

void ShardedAggregator::execute(const FoldContext& ctx,
                                std::span<const FoldOp> plan) {
  if (ctx.aggregator == nullptr ||
      ctx.parameters.size() != ctx.aggregator->parameter_count()) {
    throw std::invalid_argument(
        "ShardedAggregator: fold context arena does not match its aggregator");
  }
  if (plan.empty()) return;
  if (workers_.empty()) {
    run_shard(0, ctx, plan);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ctx_ = ctx;
    plan_ = plan;
    outstanding_ = workers_.size();
    ++epoch_;
  }
  start_cv_.notify_all();
  run_shard(0, ctx, plan);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

}  // namespace fleet::runtime
