#include "fleet/privacy/label_privacy.hpp"

#include <cmath>
#include <stdexcept>

namespace fleet::privacy {

double laplace_noise(double scale, stats::Rng& rng) {
  if (scale <= 0.0) {
    throw std::invalid_argument("laplace_noise: scale must be > 0");
  }
  // Inverse-CDF sampling: u in (-1/2, 1/2).
  const double u = rng.uniform(-0.5, 0.5);
  const double magnitude = std::log(1.0 - 2.0 * std::abs(u));
  return (u >= 0.0 ? -1.0 : 1.0) * scale * magnitude;
}

stats::LabelDistribution privatize_label_distribution(
    const stats::LabelDistribution& ld, const LabelPrivacyConfig& config,
    stats::Rng& rng) {
  if (config.epsilon <= 0.0) return ld;
  const double scale = 1.0 / config.epsilon;
  stats::LabelDistribution noisy(ld.n_classes());
  for (std::size_t c = 0; c < ld.n_classes(); ++c) {
    const double perturbed =
        static_cast<double>(ld.count(c)) + laplace_noise(scale, rng);
    const auto rounded = static_cast<long long>(std::llround(perturbed));
    if (rounded > 0) {
      noisy.add(static_cast<int>(c), static_cast<std::size_t>(rounded));
    }
  }
  if (noisy.total() == 0) {
    // Degenerate all-noise case: release a uniform singleton so the
    // similarity computation stays defined.
    noisy.add(static_cast<int>(rng.uniform_int(
                  0, static_cast<std::int64_t>(ld.n_classes()) - 1)),
              1);
  }
  return noisy;
}

double label_distribution_l1(const stats::LabelDistribution& a,
                             const stats::LabelDistribution& b) {
  if (a.n_classes() != b.n_classes()) {
    throw std::invalid_argument("label_distribution_l1: class mismatch");
  }
  double l1 = 0.0;
  for (std::size_t c = 0; c < a.n_classes(); ++c) {
    l1 += std::abs(a.probability(c) - b.probability(c));
  }
  return l1;
}

}  // namespace fleet::privacy
