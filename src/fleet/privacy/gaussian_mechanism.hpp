#pragma once

#include <span>

#include "fleet/stats/rng.hpp"

namespace fleet::privacy {

/// DP-SGD style gradient perturbation (Abadi et al., CCS'16), applied to
/// the mini-batch-averaged gradient a FLeet worker ships (§3.2 "we perturb
/// the gradients as in [2]"):
///   g <- clip_L2(g, C);  g <- g + N(0, (sigma * C / B)^2) per coordinate,
/// where B is the mini-batch size (noise calibrated to the sum then scaled
/// to the average).
struct DpConfig {
  double clip_norm = 0.0;         // C; 0 disables the mechanism entirely
  double noise_multiplier = 0.0;  // sigma; 0 disables noise (clip only)
};

/// Scale `gradient` down to L2 norm at most `clip_norm`.
/// Returns the pre-clipping norm.
double clip_l2(std::span<float> gradient, double clip_norm);

/// Clip then add Gaussian noise; the full mechanism.
void privatize_gradient(std::span<float> gradient, const DpConfig& config,
                        std::size_t mini_batch, stats::Rng& rng);

}  // namespace fleet::privacy
