#include "fleet/privacy/rdp_accountant.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fleet::privacy {

namespace {

double log_binomial(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

/// log(sum exp(xs)) without overflow.
double log_sum_exp(const std::vector<double>& xs) {
  const double mx = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(mx)) return mx;
  double s = 0.0;
  for (double x : xs) s += std::exp(x - mx);
  return mx + std::log(s);
}

}  // namespace

std::vector<int> RdpAccountant::default_orders() {
  std::vector<int> orders;
  for (int a = 2; a <= 64; ++a) orders.push_back(a);
  for (int a = 72; a <= 256; a += 8) orders.push_back(a);
  return orders;
}

RdpAccountant::RdpAccountant(double q, double sigma, std::vector<int> orders)
    : q_(q), sigma_(sigma),
      orders_(orders.empty() ? default_orders() : std::move(orders)) {
  if (q <= 0.0 || q > 1.0) {
    throw std::invalid_argument("RdpAccountant: q outside (0,1]");
  }
  if (sigma <= 0.0) {
    throw std::invalid_argument("RdpAccountant: sigma must be > 0");
  }
  for (int a : orders_) {
    if (a < 2) throw std::invalid_argument("RdpAccountant: order < 2");
  }
}

double RdpAccountant::rdp_at_order(int alpha) const {
  if (alpha < 2) throw std::invalid_argument("rdp_at_order: alpha < 2");
  // Full-batch case: plain Gaussian mechanism, rdp = alpha / (2 sigma^2).
  if (q_ >= 1.0) {
    return static_cast<double>(alpha) / (2.0 * sigma_ * sigma_);
  }
  std::vector<double> terms;
  terms.reserve(static_cast<std::size_t>(alpha) + 1);
  const double log_q = std::log(q_);
  const double log_1mq = std::log1p(-q_);
  for (int k = 0; k <= alpha; ++k) {
    const double log_coef = log_binomial(alpha, k) +
                            static_cast<double>(k) * log_q +
                            static_cast<double>(alpha - k) * log_1mq;
    const double moment = static_cast<double>(k) *
                          static_cast<double>(k - 1) /
                          (2.0 * sigma_ * sigma_);
    terms.push_back(log_coef + moment);
  }
  const double log_moment = log_sum_exp(terms);
  return std::max(0.0, log_moment / (static_cast<double>(alpha) - 1.0));
}

double RdpAccountant::epsilon(double delta) const {
  if (delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("RdpAccountant::epsilon: delta outside (0,1)");
  }
  if (steps_ == 0) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (int alpha : orders_) {
    const double rdp = rdp_at_order(alpha) * static_cast<double>(steps_);
    const double eps =
        rdp + std::log(1.0 / delta) / (static_cast<double>(alpha) - 1.0);
    best = std::min(best, eps);
  }
  return best;
}

double compute_epsilon(double q, double sigma, std::size_t steps,
                       double delta) {
  RdpAccountant acc(q, sigma);
  acc.step(steps);
  return acc.epsilon(delta);
}

double noise_for_epsilon(double q, std::size_t steps, double delta,
                         double target_epsilon, double tolerance) {
  if (target_epsilon <= 0.0) {
    throw std::invalid_argument("noise_for_epsilon: epsilon must be > 0");
  }
  double lo = 0.05, hi = 200.0;
  if (compute_epsilon(q, hi, steps, delta) > target_epsilon) {
    throw std::runtime_error("noise_for_epsilon: target unreachable");
  }
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (compute_epsilon(q, mid, steps, delta) > target_epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace fleet::privacy
