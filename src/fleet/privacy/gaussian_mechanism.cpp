#include "fleet/privacy/gaussian_mechanism.hpp"

#include <cmath>
#include <stdexcept>

#include "fleet/tensor/ops.hpp"

namespace fleet::privacy {

double clip_l2(std::span<float> gradient, double clip_norm) {
  if (clip_norm <= 0.0) {
    throw std::invalid_argument("clip_l2: clip_norm must be > 0");
  }
  // squared_norm is an order-pinned kernel reduction (sequential
  // ascending-index double accumulation in every backend), so the clip
  // decision below is bitwise identical to the original inline loop on
  // any backend; the rescale runs on the vectorized scale kernel.
  const double norm = std::sqrt(tensor::squared_norm(gradient));
  if (norm > clip_norm) {
    tensor::scale(gradient, static_cast<float>(clip_norm / norm));
  }
  return norm;
}

void privatize_gradient(std::span<float> gradient, const DpConfig& config,
                        std::size_t mini_batch, stats::Rng& rng) {
  if (mini_batch == 0) {
    throw std::invalid_argument("privatize_gradient: mini_batch=0");
  }
  clip_l2(gradient, config.clip_norm);
  if (config.noise_multiplier <= 0.0) return;
  const double stddev = config.noise_multiplier * config.clip_norm /
                        static_cast<double>(mini_batch);
  for (float& g : gradient) {
    g += static_cast<float>(rng.gaussian(0.0, stddev));
  }
}

}  // namespace fleet::privacy
