#include "fleet/privacy/gaussian_mechanism.hpp"

#include <cmath>
#include <stdexcept>

namespace fleet::privacy {

double clip_l2(std::span<float> gradient, double clip_norm) {
  if (clip_norm <= 0.0) {
    throw std::invalid_argument("clip_l2: clip_norm must be > 0");
  }
  double norm_sq = 0.0;
  for (float g : gradient) {
    norm_sq += static_cast<double>(g) * static_cast<double>(g);
  }
  const double norm = std::sqrt(norm_sq);
  if (norm > clip_norm) {
    const auto scale = static_cast<float>(clip_norm / norm);
    for (float& g : gradient) g *= scale;
  }
  return norm;
}

void privatize_gradient(std::span<float> gradient, const DpConfig& config,
                        std::size_t mini_batch, stats::Rng& rng) {
  if (mini_batch == 0) {
    throw std::invalid_argument("privatize_gradient: mini_batch=0");
  }
  clip_l2(gradient, config.clip_norm);
  if (config.noise_multiplier <= 0.0) return;
  const double stddev = config.noise_multiplier * config.clip_norm /
                        static_cast<double>(mini_batch);
  for (float& g : gradient) {
    g += static_cast<float>(rng.gaussian(0.0, stddev));
  }
}

}  // namespace fleet::privacy
