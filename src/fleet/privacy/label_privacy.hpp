#pragma once

#include "fleet/stats/label_distribution.hpp"
#include "fleet/stats/rng.hpp"

namespace fleet::privacy {

/// Differentially-private release of a worker's label distribution.
///
/// The paper notes (§5) that transferring the label distribution leaks
/// information about the user's data and plans "noise addition techniques
/// for bounding this leakage" as future work. This implements that
/// extension: each per-label count is released through the Laplace
/// mechanism with sensitivity 1 (one sample added/removed changes one
/// count by 1), giving epsilon-DP per released histogram.
struct LabelPrivacyConfig {
  /// Privacy budget per released histogram; <= 0 disables the mechanism.
  double epsilon = 0.0;
};

/// Laplace(0, b) sample.
double laplace_noise(double scale, stats::Rng& rng);

/// Perturb the counts of `ld` with Laplace(1/epsilon) noise, rounding to
/// non-negative integers. The result always carries at least one sample
/// so downstream similarity math stays well-defined.
stats::LabelDistribution privatize_label_distribution(
    const stats::LabelDistribution& ld, const LabelPrivacyConfig& config,
    stats::Rng& rng);

/// L1 distance between the normalized distributions (distortion metric
/// for the privacy/utility trade-off studied in the ablation bench).
double label_distribution_l1(const stats::LabelDistribution& a,
                             const stats::LabelDistribution& b);

}  // namespace fleet::privacy
