#pragma once

#include <cstddef>
#include <vector>

namespace fleet::privacy {

/// Moments accountant for the subsampled Gaussian mechanism (§3.2 / Fig 11
/// measures epsilon "with the moments accountant approach [2]").
///
/// Implemented as a Renyi-DP accountant at integer orders: the alpha-th
/// moment of the privacy loss of the Poisson-subsampled Gaussian with
/// sampling ratio q and noise multiplier sigma is bounded by
///
///   rdp(alpha) = 1/(alpha-1) * log( sum_{k=0..alpha} C(alpha,k)
///                (1-q)^(alpha-k) q^k exp(k(k-1)/(2 sigma^2)) )
///
/// (Abadi et al.'s integer-moment bound / Mironov et al. 2019). Moments
/// compose additively over steps, and
///   epsilon(delta) = min_alpha [ steps * rdp(alpha) + log(1/delta)/(alpha-1) ].
class RdpAccountant {
 public:
  /// q: sampling ratio (mini-batch / N), sigma: noise multiplier.
  RdpAccountant(double q, double sigma, std::vector<int> orders = {});

  /// Record `n` mechanism invocations (SGD steps).
  void step(std::size_t n = 1) { steps_ += n; }
  std::size_t steps() const { return steps_; }

  /// Privacy loss epsilon for the given delta over all recorded steps.
  double epsilon(double delta) const;

  /// Per-step RDP at one integer order (exposed for tests).
  double rdp_at_order(int alpha) const;

  static std::vector<int> default_orders();

 private:
  double q_;
  double sigma_;
  std::vector<int> orders_;
  std::size_t steps_ = 0;
};

/// Convenience: epsilon after `steps` iterations.
double compute_epsilon(double q, double sigma, std::size_t steps,
                       double delta);

/// Inverse: smallest noise multiplier sigma (within tolerance) whose
/// epsilon(delta) after `steps` is at most `target_epsilon`.
double noise_for_epsilon(double q, std::size_t steps, double delta,
                         double target_epsilon, double tolerance = 1e-3);

}  // namespace fleet::privacy
