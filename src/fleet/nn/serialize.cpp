#include "fleet/nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fleet::nn {

namespace {
constexpr char kMagic[4] = {'F', 'L', 'T', '1'};
}

void save_parameters(std::span<const float> parameters,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_parameters: cannot open " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = parameters.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(parameters.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
  if (!out) {
    throw std::runtime_error("save_parameters: write failed for " + path);
  }
}

std::vector<float> load_parameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_parameters: cannot open " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) {
    throw std::runtime_error("load_parameters: truncated header in " + path);
  }
  std::vector<float> parameters(count);
  in.read(reinterpret_cast<char*>(parameters.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) {
    throw std::runtime_error("load_parameters: truncated payload in " + path);
  }
  return parameters;
}

void save_model(TrainableModel& model, const std::string& path) {
  save_parameters(model.parameters_view(), path);
}

void load_model(TrainableModel& model, const std::string& path) {
  const std::vector<float> parameters = load_parameters(path);
  if (parameters.size() != model.parameter_count()) {
    throw std::runtime_error(
        "load_model: checkpoint has " + std::to_string(parameters.size()) +
        " parameters, model expects " +
        std::to_string(model.parameter_count()));
  }
  model.load_parameters(parameters);
}

}  // namespace fleet::nn
