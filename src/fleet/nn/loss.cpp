#include "fleet/nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleet::nn {

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax: rank-2 logits required");
  }
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  Tensor probs = logits;
  float* p = probs.data();
  for (std::size_t i = 0; i < batch; ++i) {
    float* row = p + i * classes;
    const float mx = *std::max_element(row, row + classes);
    float sum = 0.0f;
    for (std::size_t j = 0; j < classes; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    for (std::size_t j = 0; j < classes; ++j) row[j] /= sum;
  }
  return probs;
}

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    std::span<const int> labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument("SoftmaxCrossEntropy: shape mismatch");
  }
  const std::size_t classes = logits.dim(1);
  probs_ = softmax(logits);
  labels_.assign(labels.begin(), labels.end());
  double loss = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int y = labels[i];
    if (y < 0 || static_cast<std::size_t>(y) >= classes) {
      throw std::out_of_range("SoftmaxCrossEntropy: label out of range");
    }
    const float p = std::max(probs_[i * classes + static_cast<std::size_t>(y)],
                             1e-12f);
    loss -= std::log(static_cast<double>(p));
  }
  return loss / static_cast<double>(labels.size());
}

Tensor SoftmaxCrossEntropy::backward() const {
  if (labels_.empty()) {
    throw std::logic_error("SoftmaxCrossEntropy::backward before forward");
  }
  const std::size_t batch = labels_.size();
  const std::size_t classes = probs_.dim(1);
  Tensor grad = probs_;
  float* p = grad.data();
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    p[i * classes + static_cast<std::size_t>(labels_[i])] -= 1.0f;
    for (std::size_t j = 0; j < classes; ++j) p[i * classes + j] *= inv_batch;
  }
  return grad;
}

}  // namespace fleet::nn
