#include "fleet/nn/model.hpp"

#include <sstream>
#include <stdexcept>

namespace fleet::nn {

Sequential::Sequential(std::vector<std::size_t> input_shape,
                       std::size_t n_classes)
    : input_shape_(std::move(input_shape)), n_classes_(n_classes) {
  if (n_classes == 0) throw std::invalid_argument("Sequential: 0 classes");
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  if (layer == nullptr) throw std::invalid_argument("Sequential::add: null");
  layers_.push_back(std::move(layer));
  return *this;
}

void Sequential::init(std::uint64_t seed) {
  stats::Rng rng(seed);
  // Validate shape propagation once, at init time, so a mis-stacked network
  // fails fast rather than on the first batch.
  std::vector<std::size_t> shape = input_shape_;
  for (const auto& layer : layers_) {
    shape = layer->output_shape(shape);
    layer->init(rng);
  }
  std::size_t out = 1;
  for (std::size_t d : shape) out *= d;
  if (out != n_classes_) {
    throw std::invalid_argument(
        "Sequential::init: network emits " + std::to_string(out) +
        " values per sample, expected " + std::to_string(n_classes_));
  }
}

std::size_t Sequential::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer->parameter_count();
  return n;
}

std::vector<float> Sequential::parameters() const {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (const auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) {
      flat.insert(flat.end(), p->data(), p->data() + p->size());
    }
  }
  return flat;
}

void Sequential::set_parameters(std::span<const float> flat) {
  if (flat.size() != parameter_count()) {
    throw std::invalid_argument("Sequential::set_parameters: size mismatch");
  }
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) {
      std::copy(flat.begin() + static_cast<long>(offset),
                flat.begin() + static_cast<long>(offset + p->size()),
                p->data());
      offset += p->size();
    }
  }
}

void Sequential::zero_grad() {
  for (const auto& layer : layers_) layer->zero_grad();
}

Tensor Sequential::forward_all(const Tensor& inputs) {
  Tensor x = inputs;
  for (const auto& layer : layers_) x = layer->forward(x);
  if (x.rank() != 2) {
    // Final conv/pool stacks emit NCHW; collapse to [batch, features].
    const std::size_t batch = x.dim(0);
    x.reshape({batch, x.size() / batch});
  }
  return x;
}

double Sequential::gradient(const Batch& batch, std::vector<float>& grad_out) {
  if (batch.size() == 0) {
    throw std::invalid_argument("Sequential::gradient: empty batch");
  }
  zero_grad();
  Tensor logits = forward_all(batch.inputs);
  const double loss = loss_.forward(logits, batch.labels);
  Tensor grad = loss_.backward();
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  grad_out.clear();
  grad_out.reserve(parameter_count());
  for (const auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) {
      grad_out.insert(grad_out.end(), g->data(), g->data() + g->size());
    }
  }
  return loss;
}

void Sequential::apply_gradient(std::span<const float> grad, float lr) {
  if (grad.size() != parameter_count()) {
    throw std::invalid_argument("Sequential::apply_gradient: size mismatch");
  }
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) {
      float* pp = p->data();
      for (std::size_t i = 0; i < p->size(); ++i) {
        pp[i] -= lr * grad[offset + i];
      }
      offset += p->size();
    }
  }
}

std::vector<float> Sequential::predict(const Tensor& inputs) {
  Tensor logits = forward_all(inputs);
  return std::vector<float>(logits.data(), logits.data() + logits.size());
}

double Sequential::train_step(const Batch& batch, float lr) {
  std::vector<float> grad;
  const double loss = gradient(batch, grad);
  apply_gradient(grad, lr);
  return loss;
}

double Sequential::evaluate_loss(const Batch& batch) {
  Tensor logits = forward_all(batch.inputs);
  SoftmaxCrossEntropy loss;
  return loss.forward(logits, batch.labels);
}

std::string Sequential::summary() const {
  std::ostringstream os;
  std::vector<std::size_t> shape = input_shape_;
  os << "Input " << Tensor::shape_string(shape) << "\n";
  for (const auto& layer : layers_) {
    shape = layer->output_shape(shape);
    os << "  " << layer->name() << " -> " << Tensor::shape_string(shape)
       << "  params=" << layer->parameter_count() << "\n";
  }
  os << "Total parameters: " << parameter_count() << "\n";
  return os.str();
}

}  // namespace fleet::nn
