#include "fleet/nn/model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "fleet/tensor/ops.hpp"

namespace fleet::nn {

Sequential::Sequential(std::vector<std::size_t> input_shape,
                       std::size_t n_classes)
    : input_shape_(std::move(input_shape)), n_classes_(n_classes) {
  if (n_classes == 0) throw std::invalid_argument("Sequential: 0 classes");
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  if (layer == nullptr) throw std::invalid_argument("Sequential::add: null");
  if (consolidated_) {
    throw std::logic_error(
        "Sequential::add: parameter arenas already consolidated");
  }
  layers_.push_back(std::move(layer));
  return *this;
}

void Sequential::init(std::uint64_t seed) {
  stats::Rng rng(seed);
  // Validate shape propagation once, at init time, so a mis-stacked network
  // fails fast rather than on the first batch.
  std::vector<std::size_t> shape = input_shape_;
  for (const auto& layer : layers_) {
    shape = layer->output_shape(shape);
    layer->init(rng);
  }
  std::size_t out = 1;
  for (std::size_t d : shape) out *= d;
  if (out != n_classes_) {
    throw std::invalid_argument(
        "Sequential::init: network emits " + std::to_string(out) +
        " values per sample, expected " + std::to_string(n_classes_));
  }
}

std::size_t Sequential::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer->parameter_count();
  return n;
}

void Sequential::consolidate() {
  if (consolidated_) return;
  const std::size_t total = parameter_count();
  param_arena_.resize(total);
  grad_arena_.assign(total, 0.0f);
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    const auto params = layer->parameters();
    const auto grads = layer->gradients();
    for (std::size_t j = 0; j < params.size(); ++j) {
      Tensor* p = params[j];
      Tensor* g = grads[j];
      // Parameter and gradient share an offset, so the flat gradient layout
      // matches the flat parameter layout by construction.
      p->rebind(param_arena_.data() + offset);
      g->rebind(grad_arena_.data() + offset);
      offset += p->size();
    }
  }
  consolidated_ = true;
}

std::span<const float> Sequential::parameters_view() {
  consolidate();
  return param_arena_;
}

std::span<float> Sequential::parameters_mut() {
  consolidate();
  return param_arena_;
}

void Sequential::load_parameters(std::span<const float> flat) {
  if (flat.size() != parameter_count()) {
    throw std::invalid_argument("Sequential::load_parameters: size mismatch");
  }
  consolidate();
  std::copy(flat.begin(), flat.end(), param_arena_.begin());
}

void Sequential::zero_grad() {
  for (const auto& layer : layers_) layer->zero_grad();
}

Tensor Sequential::forward_all(const Tensor& inputs) {
  Tensor x = inputs;
  for (const auto& layer : layers_) x = layer->forward(x);
  if (x.rank() != 2) {
    // Final conv/pool stacks emit NCHW; collapse to [batch, features].
    const std::size_t batch = x.dim(0);
    x.reshape({batch, x.size() / batch});
  }
  return x;
}

double Sequential::gradient(const Batch& batch, std::vector<float>& grad_out) {
  if (batch.size() == 0) {
    throw std::invalid_argument("Sequential::gradient: empty batch");
  }
  consolidate();
  zero_grad();
  Tensor logits = forward_all(batch.inputs);
  const double loss = loss_.forward(logits, batch.labels);
  Tensor grad = loss_.backward();
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  // Backward accumulated straight into the flat gradient arena; handing the
  // caller its owned copy is one bulk assign, not a per-layer gather.
  grad_out.assign(grad_arena_.begin(), grad_arena_.end());
  return loss;
}

void Sequential::apply_gradient(std::span<const float> grad, float lr) {
  if (grad.size() != parameter_count()) {
    throw std::invalid_argument("Sequential::apply_gradient: size mismatch");
  }
  consolidate();
  tensor::axpy(-lr, grad, std::span<float>(param_arena_));
}

std::vector<float> Sequential::predict(const Tensor& inputs) {
  Tensor logits = forward_all(inputs);
  return std::vector<float>(logits.data(), logits.data() + logits.size());
}

double Sequential::train_step(const Batch& batch, float lr) {
  std::vector<float> grad;
  const double loss = gradient(batch, grad);
  apply_gradient(grad, lr);
  return loss;
}

double Sequential::evaluate_loss(const Batch& batch) {
  Tensor logits = forward_all(batch.inputs);
  SoftmaxCrossEntropy loss;
  return loss.forward(logits, batch.labels);
}

std::string Sequential::summary() const {
  std::ostringstream os;
  std::vector<std::size_t> shape = input_shape_;
  os << "Input " << Tensor::shape_string(shape) << "\n";
  for (const auto& layer : layers_) {
    shape = layer->output_shape(shape);
    os << "  " << layer->name() << " -> " << Tensor::shape_string(shape)
       << "  params=" << layer->parameter_count() << "\n";
  }
  os << "Total parameters: " << parameter_count() << "\n";
  return os.str();
}

}  // namespace fleet::nn
