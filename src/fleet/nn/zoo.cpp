#include "fleet/nn/zoo.hpp"

#include "fleet/nn/activations.hpp"
#include "fleet/nn/conv2d.hpp"
#include "fleet/nn/dense.hpp"
#include "fleet/nn/pooling.hpp"

namespace fleet::nn::zoo {

std::unique_ptr<Sequential> mnist_cnn() {
  auto model = std::make_unique<Sequential>(
      std::vector<std::size_t>{1, 28, 28}, 10);
  model->add(std::make_unique<Conv2D>(1, 8, 5, 5, 1, 1));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<MaxPool2D>(3, 3, 3, 3));
  model->add(std::make_unique<Conv2D>(8, 48, 5, 5, 1, 1));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<MaxPool2D>(2, 2, 2, 2));
  model->add(std::make_unique<Flatten>());
  model->add(std::make_unique<Dense>(2 * 2 * 48, 10));
  return model;
}

std::unique_ptr<Sequential> emnist_cnn() {
  auto model = std::make_unique<Sequential>(
      std::vector<std::size_t>{1, 28, 28}, 62);
  model->add(std::make_unique<Conv2D>(1, 10, 5, 5, 1, 1));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<MaxPool2D>(2, 2, 2, 2));
  model->add(std::make_unique<Conv2D>(10, 10, 5, 5, 1, 1));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<MaxPool2D>(2, 2, 2, 2));
  model->add(std::make_unique<Flatten>());
  model->add(std::make_unique<Dense>(4 * 4 * 10, 15));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<Dense>(15, 62));
  return model;
}

std::unique_ptr<Sequential> cifar_cnn(std::size_t n_classes) {
  auto model = std::make_unique<Sequential>(
      std::vector<std::size_t>{3, 32, 32}, n_classes);
  model->add(std::make_unique<Conv2D>(3, 16, 3, 3, 1, 1));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<MaxPool2D>(3, 3, 2, 2));
  model->add(std::make_unique<Conv2D>(16, 64, 3, 3, 1, 1));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<MaxPool2D>(4, 4, 4, 4));
  model->add(std::make_unique<Flatten>());
  model->add(std::make_unique<Dense>(3 * 3 * 64, 384));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<Dense>(384, 192));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<Dense>(192, n_classes));
  return model;
}

std::unique_ptr<Sequential> small_cnn(std::size_t channels, std::size_t height,
                                      std::size_t width, std::size_t n_classes,
                                      std::size_t conv_filters) {
  auto model = std::make_unique<Sequential>(
      std::vector<std::size_t>{channels, height, width}, n_classes);
  model->add(std::make_unique<Conv2D>(channels, conv_filters, 3, 3, 1, 1));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<MaxPool2D>(2, 2, 2, 2));
  const std::size_t oh = (height - 3 + 1 - 2) / 2 + 1;
  const std::size_t ow = (width - 3 + 1 - 2) / 2 + 1;
  model->add(std::make_unique<Flatten>());
  model->add(std::make_unique<Dense>(conv_filters * oh * ow, n_classes));
  return model;
}

std::unique_ptr<Sequential> mlp(std::size_t input_dim, std::size_t hidden,
                                std::size_t n_classes) {
  auto model = std::make_unique<Sequential>(
      std::vector<std::size_t>{input_dim}, n_classes);
  model->add(std::make_unique<Dense>(input_dim, hidden));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<Dense>(hidden, n_classes));
  return model;
}

std::unique_ptr<Sequential> linear(std::size_t input_dim,
                                   std::size_t n_classes) {
  auto model = std::make_unique<Sequential>(
      std::vector<std::size_t>{input_dim}, n_classes);
  model->add(std::make_unique<Dense>(input_dim, n_classes));
  return model;
}

}  // namespace fleet::nn::zoo
