#include "fleet/nn/dense.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "fleet/tensor/kernels/kernels.hpp"
#include "fleet/tensor/ops.hpp"

namespace fleet::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weights_({in_features, out_features}),
      bias_({out_features}),
      grad_weights_({in_features, out_features}),
      grad_bias_({out_features}) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Dense: zero-sized layer");
  }
}

void Dense::init(stats::Rng& rng) {
  // Glorot-uniform keeps activations stable across the small CNNs of
  // Table 1 without needing batch normalization.
  const float limit =
      std::sqrt(6.0f / static_cast<float>(in_ + out_));
  tensor::fill_uniform(weights_, rng, limit);
  bias_.fill(0.0f);
}

Tensor Dense::forward(const Tensor& input) {
  const std::size_t batch = input.dim(0);
  const std::size_t features = input.size() / batch;
  if (features != in_) {
    throw std::invalid_argument("Dense::forward: expected " +
                                std::to_string(in_) + " features, got " +
                                std::to_string(features));
  }
  cached_input_ = input;
  cached_input_.reshape({batch, in_});
  Tensor out = tensor::matmul(cached_input_, weights_);
  // Row-wise vectorized bias add (out[i,:] += bias).
  float* po = out.data();
  const auto& kern = tensor::kernels::active();
  for (std::size_t i = 0; i < batch; ++i) {
    kern.axpy(1.0f, bias_.data(), po + i * out_, out_);
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  if (grad_output.dim(0) != batch || grad_output.dim(1) != out_) {
    throw std::invalid_argument("Dense::backward: shape mismatch");
  }
  // dW += x^T dY ; db += column sums of dY ; dX = dY W^T.
  // The at_b kernel accumulates, so dW lands in grad_weights_ directly —
  // no materialized dw temporary on the backward hot path.
  const auto& kern = tensor::kernels::active();
  kern.matmul_at_b(cached_input_.data(), grad_output.data(),
                   grad_weights_.data(), in_, batch, out_);
  const float* pg = grad_output.data();
  for (std::size_t i = 0; i < batch; ++i) {
    kern.axpy(1.0f, pg + i * out_, grad_bias_.data(), out_);
  }
  return tensor::matmul_a_bt(grad_output, weights_);
}

std::vector<std::size_t> Dense::output_shape(
    const std::vector<std::size_t>& input_shape) const {
  std::size_t features = 1;
  for (std::size_t d : input_shape) features *= d;
  if (features != in_) {
    throw std::invalid_argument("Dense::output_shape: feature mismatch");
  }
  return {out_};
}

std::string Dense::name() const {
  std::ostringstream os;
  os << "Dense(" << in_ << "->" << out_ << ")";
  return os.str();
}

}  // namespace fleet::nn
