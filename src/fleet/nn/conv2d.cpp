#include "fleet/nn/conv2d.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "fleet/tensor/ops.hpp"

namespace fleet::nn {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_h, std::size_t kernel_w,
               std::size_t stride_h, std::size_t stride_w)
    : in_c_(in_channels),
      out_c_(out_channels),
      kh_(kernel_h),
      kw_(kernel_w),
      sh_(stride_h),
      sw_(stride_w),
      weights_({out_channels, in_channels, kernel_h, kernel_w}),
      bias_({out_channels}),
      grad_weights_({out_channels, in_channels, kernel_h, kernel_w}),
      grad_bias_({out_channels}) {
  if (in_channels == 0 || out_channels == 0 || kernel_h == 0 || kernel_w == 0 ||
      stride_h == 0 || stride_w == 0) {
    throw std::invalid_argument("Conv2D: zero-sized configuration");
  }
}

void Conv2D::init(stats::Rng& rng) {
  const auto fan_in = static_cast<float>(in_c_ * kh_ * kw_);
  const auto fan_out = static_cast<float>(out_c_ * kh_ * kw_);
  const float limit = std::sqrt(6.0f / (fan_in + fan_out));
  tensor::fill_uniform(weights_, rng, limit);
  bias_.fill(0.0f);
}

std::vector<std::size_t> Conv2D::output_shape(
    const std::vector<std::size_t>& input_shape) const {
  if (input_shape.size() != 3 || input_shape[0] != in_c_) {
    throw std::invalid_argument("Conv2D::output_shape: expected [" +
                                std::to_string(in_c_) + ",h,w]");
  }
  const std::size_t h = input_shape[1], w = input_shape[2];
  if (h < kh_ || w < kw_) {
    throw std::invalid_argument("Conv2D::output_shape: input below kernel");
  }
  return {out_c_, (h - kh_) / sh_ + 1, (w - kw_) / sw_ + 1};
}

Tensor Conv2D::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_c_) {
    throw std::invalid_argument("Conv2D::forward: expected NCHW with C=" +
                                std::to_string(in_c_));
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = (h - kh_) / sh_ + 1;
  const std::size_t ow = (w - kw_) / sw_ + 1;
  Tensor out({batch, out_c_, oh, ow});

  const float* pin = input.data();
  const float* pw = weights_.data();
  const float* pb = bias_.data();
  float* pout = out.data();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = pb[oc];
          const std::size_t iy0 = oy * sh_;
          const std::size_t ix0 = ox * sw_;
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            const float* in_ch = pin + ((b * in_c_ + ic) * h) * w;
            const float* w_ch = pw + ((oc * in_c_ + ic) * kh_) * kw_;
            for (std::size_t ky = 0; ky < kh_; ++ky) {
              const float* in_row = in_ch + (iy0 + ky) * w + ix0;
              const float* w_row = w_ch + ky * kw_;
              for (std::size_t kx = 0; kx < kw_; ++kx) {
                acc += in_row[kx] * w_row[kx];
              }
            }
          }
          pout[((b * out_c_ + oc) * oh + oy) * ow + ox] = acc;
        }
      }
    }
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2), w = cached_input_.dim(3);
  const std::size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  if (grad_output.dim(0) != batch || grad_output.dim(1) != out_c_) {
    throw std::invalid_argument("Conv2D::backward: shape mismatch");
  }
  Tensor grad_input({batch, in_c_, h, w});

  const float* pin = cached_input_.data();
  const float* pw = weights_.data();
  const float* pgo = grad_output.data();
  float* pgw = grad_weights_.data();
  float* pgb = grad_bias_.data();
  float* pgi = grad_input.data();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = pgo[((b * out_c_ + oc) * oh + oy) * ow + ox];
          if (g == 0.0f) continue;
          pgb[oc] += g;
          const std::size_t iy0 = oy * sh_;
          const std::size_t ix0 = ox * sw_;
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            const float* in_ch = pin + ((b * in_c_ + ic) * h) * w;
            float* gi_ch = pgi + ((b * in_c_ + ic) * h) * w;
            const float* w_ch = pw + ((oc * in_c_ + ic) * kh_) * kw_;
            float* gw_ch = pgw + ((oc * in_c_ + ic) * kh_) * kw_;
            for (std::size_t ky = 0; ky < kh_; ++ky) {
              const float* in_row = in_ch + (iy0 + ky) * w + ix0;
              float* gi_row = gi_ch + (iy0 + ky) * w + ix0;
              const float* w_row = w_ch + ky * kw_;
              float* gw_row = gw_ch + ky * kw_;
              for (std::size_t kx = 0; kx < kw_; ++kx) {
                gw_row[kx] += g * in_row[kx];
                gi_row[kx] += g * w_row[kx];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::string Conv2D::name() const {
  std::ostringstream os;
  os << "Conv2D(" << in_c_ << "->" << out_c_ << ", " << kh_ << "x" << kw_
     << ", stride " << sh_ << "x" << sw_ << ")";
  return os.str();
}

}  // namespace fleet::nn
