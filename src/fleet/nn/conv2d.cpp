#include "fleet/nn/conv2d.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "fleet/tensor/kernels/kernels.hpp"
#include "fleet/tensor/kernels/scratch.hpp"
#include "fleet/tensor/ops.hpp"

namespace fleet::nn {

namespace {

/// im2col: unfold one NCHW image (in_c x h x w) into a (in_c*kh*kw) x
/// (oh*ow) matrix, row-major, so conv becomes a GEMM against the
/// (out_c x in_c*kh*kw) weight matrix. Row r = (ic*kh + ky)*kw + kx holds
/// the input pixel under kernel tap (ic, ky, kx) for every output
/// position — the same (ic, ky, kx) ascending order the naive loop
/// accumulated in, which is what keeps the GEMM forward bitwise equal to
/// the direct convolution.
void im2col(const float* image, std::size_t in_c, std::size_t h,
            std::size_t w, std::size_t kh, std::size_t kw, std::size_t sh,
            std::size_t sw, std::size_t oh, std::size_t ow, float* col) {
  for (std::size_t ic = 0; ic < in_c; ++ic) {
    const float* channel = image + ic * h * w;
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx) {
        float* crow = col + ((ic * kh + ky) * kw + kx) * (oh * ow);
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const float* in_row = channel + (oy * sh + ky) * w + kx;
          if (sw == 1) {
            std::memcpy(crow + oy * ow, in_row, ow * sizeof(float));
          } else {
            for (std::size_t ox = 0; ox < ow; ++ox) {
              crow[oy * ow + ox] = in_row[ox * sw];
            }
          }
        }
      }
    }
  }
}

/// col2im: scatter-add the (in_c*kh*kw) x (oh*ow) gradient matrix back
/// into an (in_c x h x w) image — the adjoint of im2col. Overlapping
/// windows (stride < kernel) accumulate in ascending (ic, ky, kx, oy, ox)
/// order: deterministic, single-threaded per image.
void col2im_acc(const float* col, std::size_t in_c, std::size_t h,
                std::size_t w, std::size_t kh, std::size_t kw, std::size_t sh,
                std::size_t sw, std::size_t oh, std::size_t ow, float* image) {
  for (std::size_t ic = 0; ic < in_c; ++ic) {
    float* channel = image + ic * h * w;
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx) {
        const float* crow = col + ((ic * kh + ky) * kw + kx) * (oh * ow);
        for (std::size_t oy = 0; oy < oh; ++oy) {
          float* out_row = channel + (oy * sh + ky) * w + kx;
          if (sw == 1) {
            tensor::kernels::active().axpy(1.0f, crow + oy * ow, out_row, ow);
          } else {
            for (std::size_t ox = 0; ox < ow; ++ox) {
              out_row[ox * sw] += crow[oy * ow + ox];
            }
          }
        }
      }
    }
  }
}

}  // namespace

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_h, std::size_t kernel_w,
               std::size_t stride_h, std::size_t stride_w)
    : in_c_(in_channels),
      out_c_(out_channels),
      kh_(kernel_h),
      kw_(kernel_w),
      sh_(stride_h),
      sw_(stride_w),
      weights_({out_channels, in_channels, kernel_h, kernel_w}),
      bias_({out_channels}),
      grad_weights_({out_channels, in_channels, kernel_h, kernel_w}),
      grad_bias_({out_channels}) {
  if (in_channels == 0 || out_channels == 0 || kernel_h == 0 || kernel_w == 0 ||
      stride_h == 0 || stride_w == 0) {
    throw std::invalid_argument("Conv2D: zero-sized configuration");
  }
}

void Conv2D::init(stats::Rng& rng) {
  const auto fan_in = static_cast<float>(in_c_ * kh_ * kw_);
  const auto fan_out = static_cast<float>(out_c_ * kh_ * kw_);
  const float limit = std::sqrt(6.0f / (fan_in + fan_out));
  tensor::fill_uniform(weights_, rng, limit);
  bias_.fill(0.0f);
}

std::vector<std::size_t> Conv2D::output_shape(
    const std::vector<std::size_t>& input_shape) const {
  if (input_shape.size() != 3 || input_shape[0] != in_c_) {
    throw std::invalid_argument("Conv2D::output_shape: expected [" +
                                std::to_string(in_c_) + ",h,w]");
  }
  const std::size_t h = input_shape[1], w = input_shape[2];
  if (h < kh_ || w < kw_) {
    throw std::invalid_argument("Conv2D::output_shape: input below kernel");
  }
  return {out_c_, (h - kh_) / sh_ + 1, (w - kw_) / sw_ + 1};
}

Tensor Conv2D::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_c_) {
    throw std::invalid_argument("Conv2D::forward: expected NCHW with C=" +
                                std::to_string(in_c_));
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = (h - kh_) / sh_ + 1;
  const std::size_t ow = (w - kw_) / sw_ + 1;
  Tensor out({batch, out_c_, oh, ow});

  // im2col + GEMM (DESIGN.md §10): per image, unfold the input into a
  // (K = in_c*kh*kw) x (L = oh*ow) column matrix in per-thread scratch,
  // pre-fill the output rows with the bias and accumulate W (out_c x K)
  // times col into them. Each output element sees bias first, then its K
  // contributions in ascending (ic, ky, kx) order — the exact operation
  // sequence of the direct convolution, so this path is bitwise identical
  // to it while running on the vectorized GEMM kernel.
  const std::size_t cols = in_c_ * kh_ * kw_;
  const std::size_t out_hw = oh * ow;
  const float* pin = input.data();
  const float* pw = weights_.data();
  const float* pb = bias_.data();
  float* pout = out.data();
  const auto& kern = tensor::kernels::active();

  auto& scratch = tensor::kernels::ScratchAllocator::tls();
  tensor::kernels::ScratchAllocator::Scope scope(scratch);
  float* col = scratch.floats(cols * out_hw).data();

  for (std::size_t b = 0; b < batch; ++b) {
    im2col(pin + b * in_c_ * h * w, in_c_, h, w, kh_, kw_, sh_, sw_, oh, ow,
           col);
    float* out_mat = pout + b * out_c_ * out_hw;
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      for (std::size_t i = 0; i < out_hw; ++i) out_mat[oc * out_hw + i] = pb[oc];
    }
    kern.matmul(pw, col, out_mat, out_c_, cols, out_hw);
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2), w = cached_input_.dim(3);
  const std::size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  if (grad_output.dim(0) != batch || grad_output.dim(1) != out_c_) {
    throw std::invalid_argument("Conv2D::backward: shape mismatch");
  }
  Tensor grad_input({batch, in_c_, h, w});

  // im2col-based backward: per image, dW += dY_mat * col^T (the a_bt
  // kernel accumulates straight into grad_weights_), dcol = W^T * dY_mat
  // (at_b kernel), then col2im scatters dcol into grad_input. The col and
  // dcol temporaries live in per-thread scratch — zero steady-state heap
  // traffic on the training hot loop.
  const std::size_t cols = in_c_ * kh_ * kw_;
  const std::size_t out_hw = oh * ow;
  const float* pin = cached_input_.data();
  const float* pw = weights_.data();
  const float* pgo = grad_output.data();
  float* pgw = grad_weights_.data();
  float* pgb = grad_bias_.data();
  float* pgi = grad_input.data();
  const auto& kern = tensor::kernels::active();

  auto& scratch = tensor::kernels::ScratchAllocator::tls();
  tensor::kernels::ScratchAllocator::Scope scope(scratch);
  float* col = scratch.floats(cols * out_hw).data();
  float* dcol = scratch.floats(cols * out_hw).data();

  for (std::size_t b = 0; b < batch; ++b) {
    const float* dy_mat = pgo + b * out_c_ * out_hw;  // (out_c x out_hw)
    im2col(pin + b * in_c_ * h * w, in_c_, h, w, kh_, kw_, sh_, sw_, oh, ow,
           col);
    // db += row sums of dY.
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* row = dy_mat + oc * out_hw;
      float s = 0.0f;
      for (std::size_t i = 0; i < out_hw; ++i) s += row[i];
      pgb[oc] += s;
    }
    // dW (out_c x cols) += dY (out_c x out_hw) * col^T (out_hw x cols).
    kern.matmul_a_bt(dy_mat, col, pgw, out_c_, out_hw, cols);
    // dcol (cols x out_hw) = W^T (cols x out_c) * dY (out_c x out_hw).
    std::memset(dcol, 0, cols * out_hw * sizeof(float));
    kern.matmul_at_b(pw, dy_mat, dcol, cols, out_c_, out_hw);
    col2im_acc(dcol, in_c_, h, w, kh_, kw_, sh_, sw_, oh, ow,
               pgi + b * in_c_ * h * w);
  }
  return grad_input;
}

std::string Conv2D::name() const {
  std::ostringstream os;
  os << "Conv2D(" << in_c_ << "->" << out_c_ << ", " << kh_ << "x" << kw_
     << ", stride " << sh_ << "x" << sw_ << ")";
  return os.str();
}

}  // namespace fleet::nn
