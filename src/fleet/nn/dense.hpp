#pragma once

#include "fleet/nn/layer.hpp"

namespace fleet::nn {

/// Fully connected layer: y = x W + b, with x [batch, in], W [in, out].
/// Accepts higher-rank inputs by flattening per-sample features.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Tensor*> parameters() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> gradients() override {
    return {&grad_weights_, &grad_bias_};
  }
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;
  std::string name() const override;
  void init(stats::Rng& rng) override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weights_;       // [in, out]
  Tensor bias_;          // [out]
  Tensor grad_weights_;
  Tensor grad_bias_;
  Tensor cached_input_;  // [batch, in]
};

}  // namespace fleet::nn
