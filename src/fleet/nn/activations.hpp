#pragma once

#include "fleet/nn/layer.hpp"

namespace fleet::nn {

/// Rectified linear unit, elementwise.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override {
    return input_shape;
  }
  std::string name() const override { return "ReLU"; }

 private:
  std::vector<bool> mask_;
};

/// Hyperbolic tangent, elementwise (used by the Elman RNN).
class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override {
    return input_shape;
  }
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

/// Flattens per-sample features to a vector; pure shape bookkeeping.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> input_shape_;
};

}  // namespace fleet::nn
