#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fleet/nn/layer.hpp"
#include "fleet/nn/loss.hpp"

namespace fleet::nn {

/// A labeled mini-batch of image-like samples (NCHW inputs).
struct Batch {
  Tensor inputs;
  std::vector<int> labels;

  std::size_t size() const { return labels.size(); }
};

/// Interface every FLeet-trainable model implements. The federated core
/// exchanges *flat* parameter/gradient vectors (what the wire protocol of
/// Fig 2 ships), so models expose their state that way — as zero-copy views
/// into contiguous storage the model owns (DESIGN.md §4). parameters_view()
/// is non-const because implementations may consolidate scattered per-layer
/// tensors into the flat arena on first access.
class TrainableModel {
 public:
  virtual ~TrainableModel() = default;

  virtual std::size_t parameter_count() const = 0;

  /// View of the flat parameter vector. Valid until the model is destroyed;
  /// contents change under training, so snapshot (copy) before mutating.
  virtual std::span<const float> parameters_view() = 0;

  /// Mutable view of the same flat arena, for in-place span-wise updates
  /// (the runtime's sharded fold applies `params[b,e) -= lr * agg[b,e)`
  /// with one writer per disjoint span). Same lifetime and consolidation
  /// semantics as parameters_view().
  virtual std::span<float> parameters_mut() = 0;

  /// Overwrite all parameters from a flat vector (e.g. a ModelStore
  /// snapshot); one bulk copy, no per-layer gathers.
  virtual void load_parameters(std::span<const float> flat) = 0;

  /// Mean loss over the batch; gradient (mini-batch average) is written to
  /// `grad_out`, resized to parameter_count().
  virtual double gradient(const Batch& batch, std::vector<float>& grad_out) = 0;

  /// Apply params -= lr * grad.
  virtual void apply_gradient(std::span<const float> grad, float lr) = 0;

  /// Logits for a batch of inputs, row-major [n, classes].
  virtual std::vector<float> predict(const Tensor& inputs) = 0;

  virtual std::size_t n_classes() const = 0;

  /// Materializing convenience for callers that need an owned copy (tests,
  /// serialization, FedAvg round snapshots).
  std::vector<float> parameters() {
    const auto view = parameters_view();
    return {view.begin(), view.end()};
  }

  /// Compatibility alias for load_parameters().
  void set_parameters(std::span<const float> flat) { load_parameters(flat); }
};

/// Feed-forward stack of layers with a softmax-cross-entropy head.
///
/// Parameters and gradients live in two contiguous arenas (one float per
/// parameter each); layer tensors are rebound as views into them on the
/// first flat-state access. That makes parameters_view() free,
/// load_parameters() one bulk copy and apply_gradient() one fused axpy over
/// the arena — the zero-copy contract the FleetServer snapshot path relies
/// on (DESIGN.md §4).
class Sequential final : public TrainableModel {
 public:
  Sequential(std::vector<std::size_t> input_shape, std::size_t n_classes);

  /// Append a layer; returns *this for fluent building. Throws once the
  /// parameter arenas are consolidated (all layers must be added first).
  Sequential& add(std::unique_ptr<Layer> layer);
  /// Initialize all parameters with the given seed.
  void init(std::uint64_t seed);

  std::size_t parameter_count() const override;
  std::span<const float> parameters_view() override;
  std::span<float> parameters_mut() override;
  void load_parameters(std::span<const float> flat) override;
  double gradient(const Batch& batch, std::vector<float>& grad_out) override;
  void apply_gradient(std::span<const float> grad, float lr) override;
  std::vector<float> predict(const Tensor& inputs) override;
  std::size_t n_classes() const override { return n_classes_; }

  /// Convenience: one local SGD step on a batch; returns the loss.
  double train_step(const Batch& batch, float lr);

  /// Mean loss without touching gradients.
  double evaluate_loss(const Batch& batch);

  /// Human-readable per-layer summary (used by bench/table1_models).
  std::string summary() const;

  const std::vector<std::size_t>& input_shape() const { return input_shape_; }
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  void zero_grad();
  Tensor forward_all(const Tensor& inputs);
  /// Gather every layer's parameter/gradient tensors into the flat arenas
  /// and rebind them as views (idempotent).
  void consolidate();

  std::vector<std::size_t> input_shape_;  // per-sample, e.g. {1,28,28}
  std::size_t n_classes_;
  std::vector<std::unique_ptr<Layer>> layers_;
  SoftmaxCrossEntropy loss_;
  std::vector<float> param_arena_;  // flat theta, layer tensors view into it
  std::vector<float> grad_arena_;   // flat gradient, same layout
  bool consolidated_ = false;
};

}  // namespace fleet::nn
