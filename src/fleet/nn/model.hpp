#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fleet/nn/layer.hpp"
#include "fleet/nn/loss.hpp"

namespace fleet::nn {

/// A labeled mini-batch of image-like samples (NCHW inputs).
struct Batch {
  Tensor inputs;
  std::vector<int> labels;

  std::size_t size() const { return labels.size(); }
};

/// Interface every FLeet-trainable model implements. The federated core
/// exchanges *flat* parameter/gradient vectors (what the wire protocol of
/// Fig 2 ships), so models expose their state that way.
class TrainableModel {
 public:
  virtual ~TrainableModel() = default;

  virtual std::size_t parameter_count() const = 0;
  virtual std::vector<float> parameters() const = 0;
  virtual void set_parameters(std::span<const float> flat) = 0;

  /// Mean loss over the batch; gradient (mini-batch average) is written to
  /// `grad_out`, resized to parameter_count().
  virtual double gradient(const Batch& batch, std::vector<float>& grad_out) = 0;

  /// Apply params -= lr * grad.
  virtual void apply_gradient(std::span<const float> grad, float lr) = 0;

  /// Logits for a batch of inputs, row-major [n, classes].
  virtual std::vector<float> predict(const Tensor& inputs) = 0;

  virtual std::size_t n_classes() const = 0;
};

/// Feed-forward stack of layers with a softmax-cross-entropy head.
class Sequential final : public TrainableModel {
 public:
  Sequential(std::vector<std::size_t> input_shape, std::size_t n_classes);

  /// Append a layer; returns *this for fluent building.
  Sequential& add(std::unique_ptr<Layer> layer);
  /// Initialize all parameters with the given seed.
  void init(std::uint64_t seed);

  std::size_t parameter_count() const override;
  std::vector<float> parameters() const override;
  void set_parameters(std::span<const float> flat) override;
  double gradient(const Batch& batch, std::vector<float>& grad_out) override;
  void apply_gradient(std::span<const float> grad, float lr) override;
  std::vector<float> predict(const Tensor& inputs) override;
  std::size_t n_classes() const override { return n_classes_; }

  /// Convenience: one local SGD step on a batch; returns the loss.
  double train_step(const Batch& batch, float lr);

  /// Mean loss without touching gradients.
  double evaluate_loss(const Batch& batch);

  /// Human-readable per-layer summary (used by bench/table1_models).
  std::string summary() const;

  const std::vector<std::size_t>& input_shape() const { return input_shape_; }
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  void zero_grad();
  Tensor forward_all(const Tensor& inputs);

  std::vector<std::size_t> input_shape_;  // per-sample, e.g. {1,28,28}
  std::size_t n_classes_;
  std::vector<std::unique_ptr<Layer>> layers_;
  SoftmaxCrossEntropy loss_;
};

}  // namespace fleet::nn
