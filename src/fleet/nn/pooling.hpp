#pragma once

#include "fleet/nn/layer.hpp"

namespace fleet::nn {

/// Max pooling, NCHW, valid padding. Kernel and stride as in Table 1
/// (e.g., 3x3 pool with 3x3 stride for the MNIST net).
class MaxPool2D final : public Layer {
 public:
  MaxPool2D(std::size_t kernel_h, std::size_t kernel_w, std::size_t stride_h,
            std::size_t stride_w);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;
  std::string name() const override;

 private:
  std::size_t kh_, kw_, sh_, sw_;
  std::vector<std::size_t> argmax_;         // flat input index per output cell
  std::vector<std::size_t> input_shape_;    // [batch, c, h, w]
};

}  // namespace fleet::nn
