#pragma once

#include <span>
#include <string>
#include <vector>

#include "fleet/nn/model.hpp"

namespace fleet::nn {

/// Minimal binary checkpoint format for flat parameter vectors:
/// magic "FLT1" + u64 count + float32[count], little-endian. The FLeet
/// server persists the global model between sessions with this (the
/// original implementation serializes parameters over Kryo streams; this
/// is the at-rest equivalent).
void save_parameters(std::span<const float> parameters,
                     const std::string& path);

std::vector<float> load_parameters(const std::string& path);

/// Convenience wrappers over the flat-state interface. save_model streams
/// the parameters_view() directly (no materialized copy); non-const because
/// the view may consolidate lazily.
void save_model(TrainableModel& model, const std::string& path);
void load_model(TrainableModel& model, const std::string& path);

}  // namespace fleet::nn
