#include "fleet/nn/rnn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fleet/nn/loss.hpp"
#include "fleet/stats/rng.hpp"
#include "fleet/tensor/kernels/kernels.hpp"
#include "fleet/tensor/ops.hpp"

namespace fleet::nn {

struct RnnClassifier::Workspace {
  std::vector<int> tokens;             // truncated to max_bptt
  std::vector<std::vector<float>> hs;  // hs[t] = hidden state after step t
  std::vector<float> logits;
};

RnnClassifier::RnnClassifier(std::size_t vocab_size, std::size_t embed_dim,
                             std::size_t hidden_dim, std::size_t n_classes,
                             std::size_t max_bptt_steps)
    : vocab_(vocab_size),
      embed_(embed_dim),
      hidden_(hidden_dim),
      n_classes_(n_classes),
      max_bptt_(max_bptt_steps),
      embedding_({vocab_size, embed_dim}),
      wx_({embed_dim, hidden_dim}),
      wh_({hidden_dim, hidden_dim}),
      bh_({hidden_dim}),
      wo_({hidden_dim, n_classes}),
      bo_({n_classes}) {
  if (vocab_size == 0 || embed_dim == 0 || hidden_dim == 0 || n_classes == 0 ||
      max_bptt_steps == 0) {
    throw std::invalid_argument("RnnClassifier: zero-sized configuration");
  }
}

void RnnClassifier::init(std::uint64_t seed) {
  stats::Rng rng(seed);
  const auto lim = [](std::size_t fan_in, std::size_t fan_out) {
    return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  };
  tensor::fill_uniform(embedding_, rng, 0.1f);
  tensor::fill_uniform(wx_, rng, lim(embed_, hidden_));
  tensor::fill_uniform(wh_, rng, lim(hidden_, hidden_));
  bh_.fill(0.0f);
  tensor::fill_uniform(wo_, rng, lim(hidden_, n_classes_));
  bo_.fill(0.0f);
}

std::size_t RnnClassifier::parameter_count() const {
  return embedding_.size() + wx_.size() + wh_.size() + bh_.size() +
         wo_.size() + bo_.size();
}

void RnnClassifier::consolidate() {
  if (consolidated_) return;
  param_arena_.resize(parameter_count());
  std::size_t offset = 0;
  for (Tensor* t : {&embedding_, &wx_, &wh_, &bh_, &wo_, &bo_}) {
    t->rebind(param_arena_.data() + offset);
    offset += t->size();
  }
  consolidated_ = true;
}

std::span<const float> RnnClassifier::parameters_view() {
  consolidate();
  return param_arena_;
}

std::span<float> RnnClassifier::parameters_mut() {
  consolidate();
  return param_arena_;
}

void RnnClassifier::load_parameters(std::span<const float> flat) {
  if (flat.size() != parameter_count()) {
    throw std::invalid_argument(
        "RnnClassifier::load_parameters: size mismatch");
  }
  consolidate();
  std::copy(flat.begin(), flat.end(), param_arena_.begin());
}

void RnnClassifier::check_token(int token) const {
  if (token < 0 || static_cast<std::size_t>(token) >= vocab_) {
    throw std::out_of_range("RnnClassifier: token id out of vocabulary");
  }
}

void RnnClassifier::forward_sequence(std::span<const int> tokens,
                                     Workspace& ws) {
  if (tokens.empty()) {
    throw std::invalid_argument("RnnClassifier: empty token sequence");
  }
  // Keep only the most recent max_bptt tokens (truncated BPTT).
  const std::size_t start =
      tokens.size() > max_bptt_ ? tokens.size() - max_bptt_ : 0;
  ws.tokens.assign(tokens.begin() + static_cast<long>(start), tokens.end());
  const std::size_t steps = ws.tokens.size();

  // Each step is two m=1 accumulate-GEMMs on the active kernel backend:
  // cur = b_h, cur += e_t Wx, cur += h_{t-1} Wh, tanh. Every hidden unit
  // sees bias first, then its embed contributions in ascending i, then its
  // recurrent contributions in ascending i — the exact operation sequence
  // of the scalar per-unit loop, so this path is bitwise identical to it.
  const auto& kern = tensor::kernels::active();
  ws.hs.assign(steps + 1, std::vector<float>(hidden_, 0.0f));
  for (std::size_t t = 0; t < steps; ++t) {
    check_token(ws.tokens[t]);
    const float* e =
        embedding_.data() + static_cast<std::size_t>(ws.tokens[t]) * embed_;
    const std::vector<float>& prev = ws.hs[t];
    std::vector<float>& cur = ws.hs[t + 1];
    std::copy(bh_.data(), bh_.data() + hidden_, cur.begin());
    kern.matmul(e, wx_.data(), cur.data(), 1, embed_, hidden_);
    kern.matmul(prev.data(), wh_.data(), cur.data(), 1, hidden_, hidden_);
    for (std::size_t j = 0; j < hidden_; ++j) cur[j] = std::tanh(cur[j]);
  }
  ws.logits.assign(n_classes_, 0.0f);
  const std::vector<float>& hT = ws.hs[steps];
  std::copy(bo_.data(), bo_.data() + n_classes_, ws.logits.begin());
  kern.matmul(hT.data(), wo_.data(), ws.logits.data(), 1, hidden_, n_classes_);
}

std::vector<float> RnnClassifier::scores(std::span<const int> tokens) {
  Workspace ws;
  forward_sequence(tokens, ws);
  return ws.logits;
}

double RnnClassifier::gradient(std::span<const SequenceSample> batch,
                               std::vector<float>& grad_out) {
  if (batch.empty()) {
    throw std::invalid_argument("RnnClassifier::gradient: empty batch");
  }
  grad_out.assign(parameter_count(), 0.0f);
  // Gradient buffer offsets in flat layout.
  const std::size_t off_emb = 0;
  const std::size_t off_wx = off_emb + embedding_.size();
  const std::size_t off_wh = off_wx + wx_.size();
  const std::size_t off_bh = off_wh + wh_.size();
  const std::size_t off_wo = off_bh + bh_.size();
  const std::size_t off_bo = off_wo + wo_.size();

  double total_loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch.size());
  const auto& kern = tensor::kernels::active();
  Workspace ws;
  std::vector<float> probs(n_classes_);
  std::vector<float> dlogits(n_classes_), dlogits_scaled(n_classes_);
  std::vector<float> dh(hidden_), dpre(hidden_), dpre_scaled(hidden_),
      dh_next(hidden_), demb(embed_);

  for (const SequenceSample& sample : batch) {
    if (sample.target < 0 ||
        static_cast<std::size_t>(sample.target) >= n_classes_) {
      throw std::out_of_range("RnnClassifier::gradient: target out of range");
    }
    forward_sequence(sample.tokens, ws);
    const std::size_t steps = ws.tokens.size();

    // Softmax cross-entropy on the final logits.
    const float mx = *std::max_element(ws.logits.begin(), ws.logits.end());
    float denom = 0.0f;
    for (std::size_t c = 0; c < n_classes_; ++c) {
      probs[c] = std::exp(ws.logits[c] - mx);
      denom += probs[c];
    }
    for (std::size_t c = 0; c < n_classes_; ++c) probs[c] /= denom;
    const auto target = static_cast<std::size_t>(sample.target);
    total_loss -= std::log(std::max(probs[target], 1e-12f));

    // d logits
    std::copy(probs.begin(), probs.end(), dlogits.begin());
    dlogits[target] -= 1.0f;

    // Output layer: db_o += dlogits / B as one axpy; each dW_o row i gets
    // hT[i] * (dlogits / B) — scaling dlogits once first reproduces the
    // scalar g = dlogits[c] * inv_batch rounding exactly. dL/dh_T is a
    // row-dot against W_o: the a_bt kernel with n = 1.
    const std::vector<float>& hT = ws.hs[steps];
    for (std::size_t c = 0; c < n_classes_; ++c) {
      dlogits_scaled[c] = dlogits[c] * inv_batch;
    }
    kern.axpy(1.0f, dlogits_scaled.data(), grad_out.data() + off_bo,
              n_classes_);
    for (std::size_t i = 0; i < hidden_; ++i) {
      kern.axpy(hT[i], dlogits_scaled.data(),
                grad_out.data() + off_wo + i * n_classes_, n_classes_);
    }
    std::fill(dh.begin(), dh.end(), 0.0f);
    kern.matmul_a_bt(wo_.data(), dlogits.data(), dh.data(), hidden_,
                     n_classes_, 1);

    // BPTT.
    for (std::size_t t = steps; t-- > 0;) {
      const std::vector<float>& h = ws.hs[t + 1];
      const std::vector<float>& hprev = ws.hs[t];
      for (std::size_t j = 0; j < hidden_; ++j) {
        dpre[j] = dh[j] * (1.0f - h[j] * h[j]);
        dpre_scaled[j] = dpre[j] * inv_batch;
      }
      const float* e =
          embedding_.data() + static_cast<std::size_t>(ws.tokens[t]) * embed_;
      float* gemb = grad_out.data() + off_emb +
                    static_cast<std::size_t>(ws.tokens[t]) * embed_;
      // db_h and the rank-1 dWx / dWh updates are row axpys over hidden_.
      kern.axpy(1.0f, dpre_scaled.data(), grad_out.data() + off_bh, hidden_);
      for (std::size_t i = 0; i < embed_; ++i) {
        kern.axpy(e[i], dpre_scaled.data(),
                  grad_out.data() + off_wx + i * hidden_, hidden_);
      }
      for (std::size_t i = 0; i < hidden_; ++i) {
        kern.axpy(hprev[i], dpre_scaled.data(),
                  grad_out.data() + off_wh + i * hidden_, hidden_);
      }
      // dL/d e_t and dL/d h_{t-1}: row-dots against Wx / Wh (a_bt, n = 1).
      std::fill(demb.begin(), demb.end(), 0.0f);
      kern.matmul_a_bt(wx_.data(), dpre.data(), demb.data(), embed_, hidden_,
                       1);
      kern.axpy(inv_batch, demb.data(), gemb, embed_);
      std::fill(dh_next.begin(), dh_next.end(), 0.0f);
      kern.matmul_a_bt(wh_.data(), dpre.data(), dh_next.data(), hidden_,
                       hidden_, 1);
      dh.swap(dh_next);
    }
  }
  return total_loss / static_cast<double>(batch.size());
}

void RnnClassifier::apply_gradient(std::span<const float> grad, float lr) {
  if (grad.size() != parameter_count()) {
    throw std::invalid_argument("RnnClassifier::apply_gradient: size mismatch");
  }
  consolidate();
  tensor::axpy(-lr, grad, std::span<float>(param_arena_));
}

}  // namespace fleet::nn
