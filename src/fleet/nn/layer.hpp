#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fleet/stats/rng.hpp"
#include "fleet/tensor/tensor.hpp"

namespace fleet::nn {

using tensor::Tensor;

/// Base class for differentiable layers.
///
/// Data layout: activations are [batch, features...] row-major; images are
/// NCHW. forward() caches whatever backward() needs; backward() receives
/// dL/d(output), accumulates dL/d(params) into the layer's gradient buffers
/// and returns dL/d(input). Layers are used strictly in
/// forward-then-backward order by Sequential.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameter tensors (empty for stateless layers).
  virtual std::vector<Tensor*> parameters() { return {}; }
  /// Gradient buffers, parallel to parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }

  /// Per-sample output shape given a per-sample input shape.
  virtual std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const = 0;

  virtual std::string name() const = 0;

  /// Initialize parameters (default: nothing to initialize).
  virtual void init(stats::Rng&) {}

  std::size_t parameter_count();
  void zero_grad();
};

}  // namespace fleet::nn
