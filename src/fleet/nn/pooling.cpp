#include "fleet/nn/pooling.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace fleet::nn {

MaxPool2D::MaxPool2D(std::size_t kernel_h, std::size_t kernel_w,
                     std::size_t stride_h, std::size_t stride_w)
    : kh_(kernel_h), kw_(kernel_w), sh_(stride_h), sw_(stride_w) {
  if (kernel_h == 0 || kernel_w == 0 || stride_h == 0 || stride_w == 0) {
    throw std::invalid_argument("MaxPool2D: zero-sized configuration");
  }
}

std::vector<std::size_t> MaxPool2D::output_shape(
    const std::vector<std::size_t>& input_shape) const {
  if (input_shape.size() != 3) {
    throw std::invalid_argument("MaxPool2D::output_shape: expected [c,h,w]");
  }
  const std::size_t h = input_shape[1], w = input_shape[2];
  if (h < kh_ || w < kw_) {
    throw std::invalid_argument("MaxPool2D::output_shape: input below kernel");
  }
  return {input_shape[0], (h - kh_) / sh_ + 1, (w - kw_) / sw_ + 1};
}

Tensor MaxPool2D::forward(const Tensor& input) {
  if (input.rank() != 4) {
    throw std::invalid_argument("MaxPool2D::forward: NCHW input required");
  }
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0), c = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = (h - kh_) / sh_ + 1;
  const std::size_t ow = (w - kw_) / sw_ + 1;
  Tensor out({batch, c, oh, ow});
  argmax_.assign(out.size(), 0);

  const float* pin = input.data();
  float* pout = out.data();
  std::size_t oi = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* in_ch = pin + ((b * c + ch) * h) * w;
      const std::size_t base = ((b * c + ch) * h) * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kh_; ++ky) {
            const std::size_t iy = oy * sh_ + ky;
            for (std::size_t kx = 0; kx < kw_; ++kx) {
              const std::size_t ix = ox * sw_ + kx;
              const float v = in_ch[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = base + iy * w + ix;
              }
            }
          }
          pout[oi] = best;
          argmax_[oi] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (grad_output.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2D::backward: shape mismatch");
  }
  Tensor grad_input(input_shape_);
  float* pgi = grad_input.data();
  const float* pgo = grad_output.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    pgi[argmax_[i]] += pgo[i];
  }
  return grad_input;
}

std::string MaxPool2D::name() const {
  std::ostringstream os;
  os << "MaxPool2D(" << kh_ << "x" << kw_ << ", stride " << sh_ << "x" << sw_
     << ")";
  return os.str();
}

}  // namespace fleet::nn
