#pragma once

#include <span>

#include "fleet/tensor/tensor.hpp"

namespace fleet::nn {

using tensor::Tensor;

/// Softmax + cross-entropy, fused for numerical stability.
///
/// forward() returns mean loss over the batch; backward() returns
/// dL/d(logits) already divided by the batch size, so the resulting
/// parameter gradient is the mini-batch average — the quantity FLeet
/// workers ship to the server.
class SoftmaxCrossEntropy {
 public:
  double forward(const Tensor& logits, std::span<const int> labels);
  Tensor backward() const;

  /// Row-wise softmax probabilities from the last forward() call.
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

/// Row-wise softmax (utility for inference paths).
Tensor softmax(const Tensor& logits);

}  // namespace fleet::nn
