#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fleet/tensor/tensor.hpp"

namespace fleet::nn {

using tensor::Tensor;

/// A tokenized tweet: word ids plus the target hashtag id. Tweets carrying
/// several hashtags are expanded into one sample per hashtag upstream.
struct SequenceSample {
  std::vector<int> tokens;
  int target = 0;
};

/// Embedding + Elman RNN + dense softmax head — the hashtag recommender of
/// §3.1 (the paper uses a small TensorFlow RNN with 123,330 parameters; this
/// is the same architecture family with configurable sizes).
///
///   h_t = tanh(E[x_t] Wx + h_{t-1} Wh + bh),  logits = h_T Wo + bo.
///
/// Exposes the same flat parameter/gradient interface as Sequential so the
/// federated core can treat both uniformly.
class RnnClassifier {
 public:
  RnnClassifier(std::size_t vocab_size, std::size_t embed_dim,
                std::size_t hidden_dim, std::size_t n_classes,
                std::size_t max_bptt_steps = 32);

  void init(std::uint64_t seed);

  std::size_t parameter_count() const;
  std::vector<float> parameters() const;
  void set_parameters(std::span<const float> flat);

  /// Mean loss over the mini-batch; averaged gradient into grad_out.
  double gradient(std::span<const SequenceSample> batch,
                  std::vector<float>& grad_out);

  void apply_gradient(std::span<const float> grad, float lr);

  /// Class scores (logits) for one token sequence.
  std::vector<float> scores(std::span<const int> tokens);

  std::size_t n_classes() const { return n_classes_; }
  std::size_t vocab_size() const { return vocab_; }

 private:
  struct Workspace;  // per-sequence forward cache
  void forward_sequence(std::span<const int> tokens, Workspace& ws);
  void check_token(int token) const;

  std::size_t vocab_, embed_, hidden_, n_classes_, max_bptt_;
  Tensor embedding_;  // [vocab, embed]
  Tensor wx_;         // [embed, hidden]
  Tensor wh_;         // [hidden, hidden]
  Tensor bh_;         // [hidden]
  Tensor wo_;         // [hidden, classes]
  Tensor bo_;         // [classes]
};

}  // namespace fleet::nn
