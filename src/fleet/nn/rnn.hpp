#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fleet/tensor/tensor.hpp"

namespace fleet::nn {

using tensor::Tensor;

/// A tokenized tweet: word ids plus the target hashtag id. Tweets carrying
/// several hashtags are expanded into one sample per hashtag upstream.
struct SequenceSample {
  std::vector<int> tokens;
  int target = 0;
};

/// Embedding + Elman RNN + dense softmax head — the hashtag recommender of
/// §3.1 (the paper uses a small TensorFlow RNN with 123,330 parameters; this
/// is the same architecture family with configurable sizes).
///
///   h_t = tanh(E[x_t] Wx + h_{t-1} Wh + bh),  logits = h_T Wo + bo.
///
/// Exposes the same flat parameter/gradient interface as Sequential
/// (parameters_view/load_parameters over a contiguous parameter arena,
/// DESIGN.md §4) so the federated core can treat both uniformly.
class RnnClassifier {
 public:
  RnnClassifier(std::size_t vocab_size, std::size_t embed_dim,
                std::size_t hidden_dim, std::size_t n_classes,
                std::size_t max_bptt_steps = 32);

  // Copying would decouple the weight tensors from the parameter arena on
  // a consolidated instance (the tensor copies materialize while the arena
  // copy keeps consolidated_ set); moves keep both heap buffers, so the
  // views stay valid.
  RnnClassifier(const RnnClassifier&) = delete;
  RnnClassifier& operator=(const RnnClassifier&) = delete;
  RnnClassifier(RnnClassifier&&) = default;
  RnnClassifier& operator=(RnnClassifier&&) = default;

  void init(std::uint64_t seed);

  std::size_t parameter_count() const;

  /// Zero-copy view of the flat parameter vector (consolidates lazily).
  std::span<const float> parameters_view();
  /// Mutable view of the flat arena (span-wise in-place updates).
  std::span<float> parameters_mut();
  /// Overwrite all parameters from a flat vector in one bulk copy.
  void load_parameters(std::span<const float> flat);

  /// Materializing convenience / compatibility aliases.
  std::vector<float> parameters() {
    const auto view = parameters_view();
    return {view.begin(), view.end()};
  }
  void set_parameters(std::span<const float> flat) { load_parameters(flat); }

  /// Mean loss over the mini-batch; averaged gradient into grad_out.
  double gradient(std::span<const SequenceSample> batch,
                  std::vector<float>& grad_out);

  void apply_gradient(std::span<const float> grad, float lr);

  /// Class scores (logits) for one token sequence.
  std::vector<float> scores(std::span<const int> tokens);

  std::size_t n_classes() const { return n_classes_; }
  std::size_t vocab_size() const { return vocab_; }

 private:
  struct Workspace;  // per-sequence forward cache
  void forward_sequence(std::span<const int> tokens, Workspace& ws);
  void check_token(int token) const;
  /// Rebind the six weight tensors as views into param_arena_ (idempotent).
  void consolidate();

  std::size_t vocab_, embed_, hidden_, n_classes_, max_bptt_;
  Tensor embedding_;  // [vocab, embed]
  Tensor wx_;         // [embed, hidden]
  Tensor wh_;         // [hidden, hidden]
  Tensor bh_;         // [hidden]
  Tensor wo_;         // [hidden, classes]
  Tensor bo_;         // [classes]
  std::vector<float> param_arena_;  // flat theta, tensors view into it
  bool consolidated_ = false;
};

}  // namespace fleet::nn
