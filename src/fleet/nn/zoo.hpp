#pragma once

#include <memory>

#include "fleet/nn/model.hpp"

namespace fleet::nn::zoo {

/// The exact CNNs of Table 1 in the paper.
///
/// MNIST:    28x28x1 -> Conv 5x5x8 /1 -> Pool 3x3 /3 -> Conv 5x5x48 /1
///           -> Pool 2x2 /2 -> FC 10
/// E-MNIST:  28x28x1 -> Conv 5x5x10 /1 -> Pool 2x2 /2 -> Conv 5x5x10 /1
///           -> Pool 2x2 /2 -> FC 15 -> FC 62
/// CIFAR:    32x32x3 -> Conv 3x3x16 /1 -> Pool 3x3 /2 -> Conv 3x3x64 /1
///           -> Pool 4x4 /4 -> FC 384 -> FC 192 -> FC n_classes
std::unique_ptr<Sequential> mnist_cnn();
std::unique_ptr<Sequential> emnist_cnn();
std::unique_ptr<Sequential> cifar_cnn(std::size_t n_classes = 100);

/// Reduced-scale CNN used by the experiment benches: same conv-pool-dense
/// shape as the paper's networks but sized for seconds-scale simulated runs
/// (our substrate executes gradients for thousands of simulated devices on
/// one laptop core; see DESIGN.md §5 "shape, not absolute numbers").
std::unique_ptr<Sequential> small_cnn(std::size_t channels, std::size_t height,
                                      std::size_t width,
                                      std::size_t n_classes,
                                      std::size_t conv_filters = 6);

/// One-hidden-layer MLP (for fast unit tests).
std::unique_ptr<Sequential> mlp(std::size_t input_dim, std::size_t hidden,
                                std::size_t n_classes);

/// Logistic regression (linear softmax model).
std::unique_ptr<Sequential> linear(std::size_t input_dim,
                                   std::size_t n_classes);

}  // namespace fleet::nn::zoo
