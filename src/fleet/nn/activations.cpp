#include "fleet/nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace fleet::nn {

Tensor ReLU::forward(const Tensor& input) {
  Tensor out = input;
  mask_.assign(out.size(), false);
  float* p = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (p[i] > 0.0f) {
      mask_[i] = true;
    } else {
      p[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (grad_output.size() != mask_.size()) {
    throw std::invalid_argument("ReLU::backward: shape mismatch");
  }
  Tensor grad = grad_output;
  float* p = grad.data();
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (!mask_[i]) p[i] = 0.0f;
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  float* p = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) p[i] = std::tanh(p[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (grad_output.size() != cached_output_.size()) {
    throw std::invalid_argument("Tanh::backward: shape mismatch");
  }
  Tensor grad = grad_output;
  float* p = grad.data();
  const float* o = cached_output_.data();
  for (std::size_t i = 0; i < grad.size(); ++i) {
    p[i] *= 1.0f - o[i] * o[i];
  }
  return grad;
}

Tensor Flatten::forward(const Tensor& input) {
  input_shape_ = input.shape();
  Tensor out = input;
  const std::size_t batch = input.dim(0);
  out.reshape({batch, input.size() / batch});
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  grad.reshape(input_shape_);
  return grad;
}

std::vector<std::size_t> Flatten::output_shape(
    const std::vector<std::size_t>& input_shape) const {
  std::size_t n = 1;
  for (std::size_t d : input_shape) n *= d;
  return {n};
}

}  // namespace fleet::nn
