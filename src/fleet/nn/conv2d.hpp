#pragma once

#include "fleet/nn/layer.hpp"

namespace fleet::nn {

/// 2-D convolution, valid padding, NCHW layout.
///
/// Matches the kernels of Table 1 in the paper (e.g., 5x5x8 stride 1x1 for
/// the MNIST network). Weights are [out_c, in_c, kh, kw].
class Conv2D final : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_h, std::size_t kernel_w, std::size_t stride_h = 1,
         std::size_t stride_w = 1);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Tensor*> parameters() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> gradients() override {
    return {&grad_weights_, &grad_bias_};
  }
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;
  std::string name() const override;
  void init(stats::Rng& rng) override;

 private:
  std::size_t in_c_, out_c_, kh_, kw_, sh_, sw_;
  Tensor weights_;
  Tensor bias_;
  Tensor grad_weights_;
  Tensor grad_bias_;
  Tensor cached_input_;  // [batch, in_c, h, w]
};

}  // namespace fleet::nn
