#include "fleet/nn/layer.hpp"

namespace fleet::nn {

std::size_t Layer::parameter_count() {
  std::size_t n = 0;
  for (Tensor* p : parameters()) n += p->size();
  return n;
}

void Layer::zero_grad() {
  for (Tensor* g : gradients()) g->fill(0.0f);
}

}  // namespace fleet::nn
