#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fleet/net/compression.hpp"
#include "fleet/runtime/gradient_queue.hpp"
#include "fleet/stats/label_distribution.hpp"

namespace fleet::net {

/// Versioned binary wire format for gradient uploads (DESIGN.md §12).
///
/// The paper's workers upload gradients over a mobile network (§3.1); this
/// is the serialized form the serving path ingests instead of in-process
/// float structs. One frame is one gradient upload:
///
///   offset size  field
///   0      4     magic 0x47574C46 ("FLWG" little-endian)
///   4      2     wire version (kWireVersion)
///   6      1     payload kind (PayloadKind)
///   7      1     flags, reserved — must be 0
///   8      8     model id
///   16     8     task version t_i (the clock the gradient was computed at)
///   24     4     mini-batch size
///   28     4     label-distribution class count C
///   32     4     gradient value count N (must be > 0)
///   36     4     quantization scale (float; int8 kind only, 0 for raw)
///   40     4*C   label counts, one u32 per class
///   40+4*C N or 4*N  payload: int8 values * scale, or raw float32
///
/// All integers and floats are little-endian. The decoder validates every
/// header field (and both length claims) BEFORE sizing any buffer, so a
/// malformed or hostile frame can be rejected with a counted drop and can
/// never reach a fold or force an oversized allocation (the ISSUE's
/// decode-before-submit invariant: by the time ConcurrentFleetServer::
/// try_submit sees the job, it is indistinguishable from an in-process
/// submission, so admission-ticket order and the determinism matrix are
/// untouched).
inline constexpr std::uint32_t kWireMagic = 0x47574C46u;  // "FLWG"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 40;

/// Payload encodings. Int8 is the QuantizedGradient transport (4x smaller
/// on the wire); raw float32 is the lossless fallback for senders that
/// cannot tolerate quantization noise.
enum class PayloadKind : std::uint8_t {
  kInt8 = 1,
  kFloat32 = 2,
};

/// Total frame size for a payload shape (header + label block + payload).
std::size_t wire_frame_size(PayloadKind kind, std::size_t n_classes,
                            std::size_t value_count);

/// Frame metadata shared by both payload kinds.
struct WireMeta {
  core::ModelId model_id = core::kDefaultModelId;
  std::size_t task_version = 0;
  std::size_t mini_batch = 0;
};

/// Serialize an int8-quantized upload. `out` is overwritten (capacity
/// reused). Throws std::invalid_argument when a field does not fit its
/// wire width (label count / mini-batch / value count past u32).
void encode_frame(const WireMeta& meta, const stats::LabelDistribution& labels,
                  const QuantizedGradient& payload,
                  std::vector<std::uint8_t>& out);

/// Serialize a raw-float32 upload (the lossless fallback kind).
void encode_frame(const WireMeta& meta, const stats::LabelDistribution& labels,
                  std::span<const float> gradient,
                  std::vector<std::uint8_t>& out);

/// Serialize an in-process job as it would cross the wire: quantized
/// (kInt8, lossy like a real worker upload) or verbatim (kFloat32).
void encode_job(const runtime::GradientJob& job, PayloadKind kind,
                std::vector<std::uint8_t>& out);

/// Every way a frame can fail validation, in check order. kOk is 0 so the
/// enum converts to bool-ish "did it fail" at call sites that only care.
enum class WireError : std::uint8_t {
  kOk = 0,
  kTruncatedHeader,   ///< shorter than the fixed header
  kBadMagic,
  kBadVersion,
  kBadFlags,          ///< reserved flags not zero
  kBadKind,           ///< unknown payload kind
  kEmptyGradient,     ///< value count 0
  kTooLarge,          ///< value/class count past the decoder's limits
  kLengthMismatch,    ///< frame size != header's claimed layout
  kBadScale,          ///< int8 kind with a non-finite or non-positive scale
  kNonFinitePayload,  ///< raw-float payload carrying NaN/Inf
};

const char* wire_error_name(WireError error);

/// Ceilings a frame's *claimed* sizes must stay under before the decoder
/// sizes any buffer — the guard that keeps a hostile 4-GB length field
/// from becoming a 4-GB allocation. Defaults fit every model in the repo
/// with orders of magnitude to spare.
struct WireLimits {
  std::size_t max_values = 1u << 24;   // 16M parameters
  std::size_t max_classes = 1u << 16;  // 64k label classes
};

/// Stateless frame validator/decoder; one instance may be shared by any
/// number of threads (decode writes only into caller-owned buffers).
///
/// decode() fills the job's routing fields (model id, task version,
/// mini-batch, label distribution) and reconstructs the gradient into
/// `job.gradient`, reusing that vector's capacity — after warm-up a
/// fixed-size stream decodes with no steady-state allocation on the
/// gradient path (the int8 kind dequantizes straight from the wire bytes
/// via dequantize_into, never materializing a QuantizedGradient).
class WireDecoder {
 public:
  explicit WireDecoder(const WireLimits& limits = {}) : limits_(limits) {}

  /// Validate and decode one frame into `job`. On success the job looks
  /// exactly like an in-process submission (ticket/enqueue_ns/feedback
  /// reset). On failure the job's contents are unspecified-but-valid and
  /// the result names the first failed check; nothing is thrown — a
  /// malformed frame is data, not a programming error.
  WireError decode(std::span<const std::uint8_t> frame,
                   runtime::GradientJob& job) const;

  const WireLimits& limits() const { return limits_; }

 private:
  WireLimits limits_;
};

}  // namespace fleet::net
