#pragma once

#include <memory>
#include <string>

#include "fleet/stats/rng.hpp"

namespace fleet::net {

/// Mobile network technologies with the one-way latencies the paper uses in
/// §3.1 for a 123,330-parameter model: 1.1 s on 4G LTE, 3.8 s on 3G HSPA+.
enum class Technology { kLte4G, kHspa3G };

/// Transfer-latency model for model download + gradient upload.
///
/// The paper assumes the round trip (compute + network) follows a shifted
/// exponential; the network part here is per-technology with multiplicative
/// jitter, and a worker population mixes technologies.
class NetworkModel {
 public:
  struct Config {
    double lte_latency_s = 1.1;    // download+upload, 4G
    double hspa_latency_s = 3.8;   // download+upload, 3G
    double lte_fraction = 0.5;     // share of requests on 4G
    double jitter = 0.15;          // relative stddev of latency noise (>= 0)
  };

  explicit NetworkModel(const Config& config);

  /// Latency of one model-download + gradient-upload exchange.
  double sample_transfer_s(stats::Rng& rng) const;

  /// Latency for a fixed technology.
  double sample_transfer_s(Technology tech, stats::Rng& rng) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

/// The end-to-end round-trip model of §3.1: shifted exponential with
/// minimum = compute_min + fastest network, mean = compute_mean + average
/// network (7.1 s and 8.45 s with the paper's numbers).
class RoundTripModel {
 public:
  RoundTripModel(double minimum_s, double mean_s);
  double sample_s(stats::Rng& rng) const;
  double minimum_s() const { return minimum_s_; }
  double mean_s() const { return mean_s_; }

  /// The paper's instantiation (6 s compute + {1.1, 3.8} s network).
  static RoundTripModel paper_default();

 private:
  double minimum_s_;
  double mean_s_;
};

}  // namespace fleet::net
