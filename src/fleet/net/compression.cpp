#include "fleet/net/compression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleet::net {

QuantizedGradient quantize_gradient(std::span<const float> gradient) {
  if (gradient.empty()) {
    throw std::invalid_argument("quantize_gradient: empty gradient");
  }
  float max_abs = 0.0f;
  for (float g : gradient) max_abs = std::max(max_abs, std::abs(g));
  QuantizedGradient q;
  q.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  q.values.reserve(gradient.size());
  for (float g : gradient) {
    const float scaled = g / q.scale;
    const auto v = static_cast<std::int8_t>(
        std::clamp(std::lround(scaled), -127L, 127L));
    q.values.push_back(v);
  }
  return q;
}

std::vector<float> dequantize_gradient(const QuantizedGradient& quantized) {
  std::vector<float> out;
  out.reserve(quantized.values.size());
  for (std::int8_t v : quantized.values) {
    out.push_back(static_cast<float>(v) * quantized.scale);
  }
  return out;
}

double quantization_error(std::span<const float> gradient,
                          const QuantizedGradient& quantized) {
  if (gradient.size() != quantized.values.size()) {
    throw std::invalid_argument("quantization_error: size mismatch");
  }
  const auto restored = dequantize_gradient(quantized);
  double worst = 0.0;
  for (std::size_t i = 0; i < gradient.size(); ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(gradient[i]) - restored[i]));
  }
  return worst;
}

}  // namespace fleet::net
