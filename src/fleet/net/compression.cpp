#include "fleet/net/compression.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fleet::net {

QuantizedGradient quantize_gradient(std::span<const float> gradient) {
  if (gradient.empty()) {
    throw std::invalid_argument("quantize_gradient: empty gradient");
  }
  float max_abs = 0.0f;
  for (float g : gradient) {
    if (!std::isfinite(g)) {
      // A NaN would propagate through max_abs into the scale and poison
      // every value; ±Inf would divide to ±Inf; std::lround on either is
      // undefined behavior. Reject at the boundary instead.
      throw std::invalid_argument(
          "quantize_gradient: non-finite gradient element");
    }
    max_abs = std::max(max_abs, std::abs(g));
  }
  QuantizedGradient q;
  // Clamp up to the smallest normal float: a denormal max|g| could round
  // max_abs/127 down to zero, and g/0 = Inf hits the lround UB above. With
  // the clamp the quotient magnitude stays <= 127 (tiny values just round
  // to 0, still within the scale/2 error bound).
  q.scale = max_abs > 0.0f
                ? std::max(max_abs / 127.0f, std::numeric_limits<float>::min())
                : 1.0f;
  q.values.reserve(gradient.size());
  for (float g : gradient) {
    const float scaled = g / q.scale;
    const auto v = static_cast<std::int8_t>(
        std::clamp(std::lround(scaled), -127L, 127L));
    q.values.push_back(v);
  }
  return q;
}

void dequantize_into(std::span<const std::int8_t> values, float scale,
                     std::span<float> out) {
  if (values.size() != out.size()) {
    throw std::invalid_argument("dequantize_into: size mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = static_cast<float>(values[i]) * scale;
  }
}

void dequantize_into(const QuantizedGradient& quantized,
                     std::span<float> out) {
  dequantize_into(std::span<const std::int8_t>(quantized.values),
                  quantized.scale, out);
}

std::vector<float> dequantize_gradient(const QuantizedGradient& quantized) {
  std::vector<float> out(quantized.values.size());
  dequantize_into(quantized, out);
  return out;
}

double quantization_error(std::span<const float> gradient,
                          const QuantizedGradient& quantized) {
  if (gradient.size() != quantized.values.size()) {
    throw std::invalid_argument("quantization_error: size mismatch");
  }
  const auto restored = dequantize_gradient(quantized);
  double worst = 0.0;
  for (std::size_t i = 0; i < gradient.size(); ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(gradient[i]) - restored[i]));
  }
  return worst;
}

}  // namespace fleet::net
