#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "fleet/runtime/concurrent_server.hpp"

namespace fleet::net {

/// Counters of the loopback ingest front end, one snapshot. Accounting
/// identity once drained with senders quiesced:
///   frames_sent == frames_submitted + wire_rejects + server_rejects
/// and every frame that was ever accepted onto the ring is in one of the
/// three right-hand buckets — nothing is silently lost.
struct IngestStats {
  std::size_t frames_sent = 0;       ///< frames accepted onto the ring
  std::size_t ring_rejects = 0;      ///< sends refused: ring at capacity
  std::size_t bytes_sent = 0;        ///< wire bytes accepted onto the ring
  std::size_t frames_submitted = 0;  ///< decoded and admitted by the server
  std::size_t wire_rejects = 0;      ///< malformed frames refused at decode
  std::size_t server_rejects = 0;    ///< well-formed but refused (validation,
                                     ///< unknown/retired id, closed queue, or
                                     ///< undrainable backpressure)
  std::size_t backpressure_retries = 0;  ///< submit retries after queue-full
  std::size_t ring_max_bytes_seen = 0;   ///< byte-occupancy high-water mark
};

/// Loopback wire front end (DESIGN.md §12, ROADMAP item 3): the serving
/// stack's stand-in for a socket listener. Senders copy serialized frames
/// onto a bounded in-memory byte ring — the copy IS the wire: after
/// try_send returns, the sender's buffer and the server share nothing —
/// and N injector threads drain the ring, validate + decode each frame
/// (ConcurrentFleetServer::try_submit_wire) and submit the resulting jobs
/// into the real ingest queue. Malformed frames become counted,
/// telemetry-visible wire rejects; they never reach a fold.
///
/// Backpressure exists at two layers, both bounded: the ring refuses
/// try_send when its byte or frame budget is full (sender sees false), and
/// the server's gradient queue can refuse a decoded job, which injectors
/// retry (retryable rejects only) until it lands or the host stops
/// accepting.
///
/// Ordering: the ring is FIFO. With one injector thread, submission order
/// equals send order, so a single-sender stream reproduces an in-process
/// submission sequence exactly — the end-to-end bitwise tests run in that
/// configuration. More injectors trade that total order for parallel
/// decode (per the §6 contract, any interleaving is still a valid
/// admission order).
class LoopbackIngest {
 public:
  struct Config {
    /// Byte budget of the loopback ring — the shared-memory stand-in for a
    /// socket buffer. Sends that would overflow it are refused.
    std::size_t capacity_bytes = 1u << 22;
    /// Frame-slot bound (guards against floods of tiny frames).
    std::size_t max_frames = 4096;
    /// Injector threads draining the ring into the server.
    std::size_t injector_threads = 1;
    /// Retry submits the server refused as retryable (queue backpressure)
    /// instead of dropping the frame. Off, a backpressured frame counts as
    /// a server reject.
    bool retry_backpressure = true;
  };

  /// The server must outlive the front end. Injector threads start
  /// immediately.
  LoopbackIngest(runtime::ConcurrentFleetServer& server, const Config& config);
  explicit LoopbackIngest(runtime::ConcurrentFleetServer& server)
      : LoopbackIngest(server, Config{}) {}
  ~LoopbackIngest();

  LoopbackIngest(const LoopbackIngest&) = delete;
  LoopbackIngest& operator=(const LoopbackIngest&) = delete;

  /// Sender side, any thread: copy one serialized frame onto the ring.
  /// False when the ring is full (counted) or the front end was closed;
  /// the frame is not taken and the sender may retry.
  bool try_send(std::span<const std::uint8_t> frame);

  /// Block until every frame accepted so far has left the ring and its
  /// submit settled (admitted into the server queue or rejected). With
  /// senders quiesced this is the front half of a full barrier — follow
  /// with server.drain() for fold-complete.
  void drain();

  /// Stop accepting sends, drain what remains through the injectors and
  /// join them. Idempotent; the destructor calls it.
  void close();

  IngestStats stats() const;

 private:
  struct Frame {
    std::vector<std::uint8_t> bytes;
  };

  void injector_loop();
  /// Decode + submit one frame, with bounded backpressure retries.
  void submit_frame(const std::vector<std::uint8_t>& bytes,
                    runtime::GradientJob& scratch);

  runtime::ConcurrentFleetServer& server_;
  const Config config_;

  mutable std::mutex mu_;           ///< guards ring_ + bytes_queued_
  std::condition_variable ready_;   ///< signals injectors: frame or close
  std::condition_variable settled_; ///< signals drain(): pending_ hit 0
  std::deque<Frame> ring_;
  std::size_t bytes_queued_ = 0;
  /// Frames accepted but not yet settled (on the ring or being submitted).
  std::size_t pending_ = 0;
  bool closed_ = false;
  std::mutex close_mu_;  ///< serializes the join in close()

  std::atomic<std::size_t> frames_sent_{0};
  std::atomic<std::size_t> ring_rejects_{0};
  std::atomic<std::size_t> bytes_sent_{0};
  std::atomic<std::size_t> frames_submitted_{0};
  std::atomic<std::size_t> wire_rejects_{0};
  std::atomic<std::size_t> server_rejects_{0};
  std::atomic<std::size_t> backpressure_retries_{0};
  std::atomic<std::size_t> ring_max_bytes_{0};

  std::vector<std::thread> injectors_;
};

}  // namespace fleet::net
