#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "fleet/runtime/concurrent_server.hpp"
#include "fleet/runtime/fault.hpp"

namespace fleet::net {

/// Counters of the loopback ingest front end, one snapshot. Accounting
/// identity once drained with senders quiesced:
///   frames_sent == frames_submitted + wire_rejects + server_rejects
///                  + shed_drops
/// and every frame that was ever accepted onto the ring is in one of the
/// four right-hand buckets — nothing is silently lost, under faults
/// included (DESIGN.md §14): a corrupted frame rejects at decode or
/// submits with a corrupted payload, a killed injector dies holding no
/// frame (and is respawned, counted), an exhausted retry budget counts a
/// server reject.
struct IngestStats {
  std::size_t frames_sent = 0;       ///< frames accepted onto the ring
  std::size_t ring_rejects = 0;      ///< sends refused: ring at capacity
  std::size_t bytes_sent = 0;        ///< wire bytes accepted onto the ring
  std::size_t frames_submitted = 0;  ///< decoded and admitted by the server
  std::size_t wire_rejects = 0;      ///< malformed frames refused at decode
  std::size_t server_rejects = 0;    ///< well-formed but refused (validation,
                                     ///< unknown/retired id, closed queue, or
                                     ///< exhausted backpressure retry budget)
  std::size_t backpressure_retries = 0;  ///< submit retries after queue-full
  std::size_t ring_max_bytes_seen = 0;   ///< byte-occupancy high-water mark
  /// Frames the server's overload policy shed at admission (receipt.shed;
  /// DESIGN.md §14). Counted apart from server_rejects so the identity
  /// above stays exact under a shed policy. Only refused *incoming* frames
  /// land here — a queued victim evicted in some later frame's favor was
  /// already counted into frames_submitted and is accounted host-side
  /// (RuntimeStats::shed_drops covers both).
  std::size_t shed_drops = 0;
  /// Injector threads that died (injected kInjectorDeath) and were
  /// respawned by the supervisor. Every counted death is followed by a
  /// counted restart; a dead injector holds no frame, so deaths never
  /// lose frames.
  std::size_t injector_restarts = 0;
  /// Frames deterministically corrupted at decode by the kWireCorrupt
  /// fault site before reaching the server's decoder.
  std::size_t frames_corrupted = 0;
};

/// Loopback wire front end (DESIGN.md §12, ROADMAP item 3): the serving
/// stack's stand-in for a socket listener. Senders copy serialized frames
/// onto a bounded in-memory byte ring — the copy IS the wire: after
/// try_send returns, the sender's buffer and the server share nothing —
/// and N injector threads drain the ring, validate + decode each frame
/// (ConcurrentFleetServer::try_submit_wire) and submit the resulting jobs
/// into the real ingest queue. Malformed frames become counted,
/// telemetry-visible wire rejects; they never reach a fold.
///
/// Backpressure exists at two layers, both bounded: the ring refuses
/// try_send when its byte or frame budget is full (sender sees false), and
/// the server's gradient queue can refuse a decoded job, which injectors
/// retry (retryable rejects only) with a deterministic escalating backoff
/// up to `max_submit_attempts`, then count the frame a server reject —
/// the retry loop can no longer spin forever against a paused host.
///
/// Self-healing (DESIGN.md §14): when a fault injector is configured, an
/// injector thread can be killed mid-loop (kInjectorDeath) — it dies
/// holding no frame, and a supervisor thread joins and respawns it
/// (IngestStats::injector_restarts, telemetry counter
/// "ingest.injector_restarts"), so the ring keeps draining. Frames can be
/// deterministically corrupted before decode (kWireCorrupt) — the wire
/// decoder's validation then refuses the frame or the corrupted payload
/// submits, exactly as a real bit-flipped datagram would.
///
/// Ordering: the ring is FIFO. With one injector thread, submission order
/// equals send order, so a single-sender stream reproduces an in-process
/// submission sequence exactly — the end-to-end bitwise tests run in that
/// configuration. More injectors trade that total order for parallel
/// decode (per the §6 contract, any interleaving is still a valid
/// admission order).
class LoopbackIngest {
 public:
  struct Config {
    /// Byte budget of the loopback ring — the shared-memory stand-in for a
    /// socket buffer. Sends that would overflow it are refused.
    std::size_t capacity_bytes = 1u << 22;
    /// Frame-slot bound (guards against floods of tiny frames).
    std::size_t max_frames = 4096;
    /// Injector threads draining the ring into the server.
    std::size_t injector_threads = 1;
    /// Retry submits the server refused as retryable (queue backpressure)
    /// instead of dropping the frame. Off, a backpressured frame counts as
    /// a server reject.
    bool retry_backpressure = true;
    /// Total submit attempts per frame (first try included) before a
    /// still-backpressured frame is given up as a server reject. Between
    /// attempts the injector backs off with counted, escalating yields —
    /// never a clock (§11). 0 = unbounded, the pre-budget behavior (the
    /// loop then spins until the submit lands or the host stops
    /// accepting — it can hang forever against a paused host; only tests
    /// that resume the host deliberately should use it).
    std::size_t max_submit_attempts = 512;
    /// Deterministic fault injector (fault.hpp), optional, caller-owned,
    /// outliving the front end. Sites consulted here: kWireCorrupt (flip
    /// one seeded byte of a frame before decode) and kInjectorDeath (kill
    /// the injector thread; the supervisor respawns it). Typically the
    /// same injector the server was built with. Null = no supervisor
    /// thread, bitwise the pre-fault front end.
    runtime::FaultInjector* fault = nullptr;
  };

  /// The server must outlive the front end. Injector threads start
  /// immediately.
  LoopbackIngest(runtime::ConcurrentFleetServer& server, const Config& config);
  explicit LoopbackIngest(runtime::ConcurrentFleetServer& server)
      : LoopbackIngest(server, Config{}) {}
  ~LoopbackIngest();

  LoopbackIngest(const LoopbackIngest&) = delete;
  LoopbackIngest& operator=(const LoopbackIngest&) = delete;

  /// Sender side, any thread: copy one serialized frame onto the ring.
  /// False when the ring is full (counted) or the front end was closed;
  /// the frame is not taken and the sender may retry.
  bool try_send(std::span<const std::uint8_t> frame);

  /// Block until every frame accepted so far has left the ring and its
  /// submit settled (admitted into the server queue or rejected). With
  /// senders quiesced this is the front half of a full barrier — follow
  /// with server.drain() for fold-complete.
  void drain();

  /// Stop accepting sends, drain what remains through the injectors and
  /// join them (the supervisor first, so a death racing close() is still
  /// respawned and its replacement drains the ring). Idempotent; the
  /// destructor calls it.
  void close();

  IngestStats stats() const;

 private:
  struct Frame {
    std::vector<std::uint8_t> bytes;
  };

  /// Why an injector thread's loop returned.
  enum class InjectorExit { kClosed, kKilled };

  InjectorExit injector_loop();
  void supervisor_loop();
  /// Spawn (or respawn) the injector occupying `slot`; the trampoline
  /// reports a killed exit to the supervisor.
  std::thread spawn_injector(std::size_t slot);
  /// Decode + submit one frame, with bounded backpressure retries.
  /// `corrupt` is the injector's reusable corruption buffer.
  void submit_frame(const std::vector<std::uint8_t>& bytes,
                    runtime::GradientJob& scratch,
                    std::vector<std::uint8_t>& corrupt);

  runtime::ConcurrentFleetServer& server_;
  const Config config_;

  mutable std::mutex mu_;           ///< guards ring_ + bytes_queued_ + dead_
  std::condition_variable ready_;   ///< signals injectors: frame or close
  std::condition_variable settled_; ///< signals drain(): pending_ hit 0
  std::condition_variable reap_;    ///< signals supervisor: death or close
  std::deque<Frame> ring_;
  std::size_t bytes_queued_ = 0;
  /// Frames accepted but not yet settled (on the ring or being submitted).
  std::size_t pending_ = 0;
  /// Slots of injector threads that died and await respawn (guarded by
  /// mu_; drained by the supervisor).
  std::deque<std::size_t> dead_;
  bool closed_ = false;
  std::mutex close_mu_;  ///< serializes the join in close()

  std::atomic<std::size_t> frames_sent_{0};
  std::atomic<std::size_t> ring_rejects_{0};
  std::atomic<std::size_t> bytes_sent_{0};
  std::atomic<std::size_t> frames_submitted_{0};
  std::atomic<std::size_t> wire_rejects_{0};
  std::atomic<std::size_t> server_rejects_{0};
  std::atomic<std::size_t> backpressure_retries_{0};
  std::atomic<std::size_t> ring_max_bytes_{0};
  std::atomic<std::size_t> shed_drops_{0};
  std::atomic<std::size_t> injector_restarts_{0};
  std::atomic<std::size_t> frames_corrupted_{0};
  /// "ingest.injector_restarts" when the server runs with telemetry.
  telemetry::Counter* restart_ctr_ = nullptr;

  std::vector<std::thread> injectors_;
  /// Joins dead injectors and respawns them; only spawned when a fault
  /// injector is configured (a fault-free front end runs no extra thread).
  std::thread supervisor_;
};

}  // namespace fleet::net
