#include "fleet/net/network_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace fleet::net {

NetworkModel::NetworkModel(const Config& config) : config_(config) {
  if (config.lte_fraction < 0.0 || config.lte_fraction > 1.0) {
    throw std::invalid_argument("NetworkModel: lte_fraction outside [0,1]");
  }
  if (config.lte_latency_s <= 0.0 || config.hspa_latency_s <= 0.0) {
    throw std::invalid_argument("NetworkModel: non-positive latency");
  }
  if (!(config.jitter >= 0.0)) {
    // A negative stddev silently flips the Gaussian draw (and NaN poisons
    // every transfer-time sample); both skew the latency model unnoticed.
    throw std::invalid_argument("NetworkModel: negative jitter");
  }
}

double NetworkModel::sample_transfer_s(stats::Rng& rng) const {
  const Technology tech = rng.bernoulli(config_.lte_fraction)
                              ? Technology::kLte4G
                              : Technology::kHspa3G;
  return sample_transfer_s(tech, rng);
}

double NetworkModel::sample_transfer_s(Technology tech,
                                       stats::Rng& rng) const {
  const double base = tech == Technology::kLte4G ? config_.lte_latency_s
                                                 : config_.hspa_latency_s;
  return std::max(0.05, base * rng.gaussian(1.0, config_.jitter));
}

RoundTripModel::RoundTripModel(double minimum_s, double mean_s)
    : minimum_s_(minimum_s), mean_s_(mean_s) {
  if (mean_s <= minimum_s || minimum_s < 0.0) {
    throw std::invalid_argument("RoundTripModel: invalid parameters");
  }
}

double RoundTripModel::sample_s(stats::Rng& rng) const {
  return minimum_s_ + rng.exponential(mean_s_ - minimum_s_);
}

RoundTripModel RoundTripModel::paper_default() {
  // §3.1: min = 6 + 1.1 = 7.1 s, mean = ((6+1.1) + (6+3.8)) / 2 = 8.45 s.
  return RoundTripModel(7.1, 8.45);
}

}  // namespace fleet::net
