#include "fleet/net/wire.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace fleet::net {
namespace {

// Little-endian field accessors. Byte-by-byte shifts keep the format
// host-endianness-independent; the bulk payload paths below switch to
// memcpy only when the host is little-endian (every target this repo
// builds for), with a per-element fallback otherwise.
void put_u16(std::vector<std::uint8_t>& out, std::size_t at, std::uint16_t v) {
  out[at] = static_cast<std::uint8_t>(v);
  out[at + 1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::vector<std::uint8_t>& out, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_f32(std::vector<std::uint8_t>& out, std::size_t at, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, at, bits);
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] |
                                    (static_cast<std::uint16_t>(in[at + 1])
                                     << 8));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
  }
  return v;
}

float get_f32(std::span<const std::uint8_t> in, std::size_t at) {
  const std::uint32_t bits = get_u32(in, at);
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint32_t checked_u32(std::size_t v, const char* what) {
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(std::string("encode_frame: ") + what +
                                " does not fit the wire's u32");
  }
  return static_cast<std::uint32_t>(v);
}

/// Header + label block shared by both encoders; returns the payload
/// offset. `out` is sized to the full frame.
std::size_t encode_prefix(const WireMeta& meta,
                          const stats::LabelDistribution& labels,
                          PayloadKind kind, float scale,
                          std::size_t value_count,
                          std::vector<std::uint8_t>& out) {
  const std::size_t n_classes = labels.n_classes();
  out.clear();
  out.resize(wire_frame_size(kind, n_classes, value_count));
  put_u32(out, 0, kWireMagic);
  put_u16(out, 4, kWireVersion);
  out[6] = static_cast<std::uint8_t>(kind);
  out[7] = 0;  // reserved flags
  put_u64(out, 8, static_cast<std::uint64_t>(meta.model_id));
  put_u64(out, 16, static_cast<std::uint64_t>(meta.task_version));
  put_u32(out, 24, checked_u32(meta.mini_batch, "mini_batch"));
  put_u32(out, 28, checked_u32(n_classes, "class count"));
  put_u32(out, 32, checked_u32(value_count, "value count"));
  put_f32(out, 36, scale);
  for (std::size_t c = 0; c < n_classes; ++c) {
    put_u32(out, kWireHeaderBytes + 4 * c,
            checked_u32(labels.count(c), "label count"));
  }
  return kWireHeaderBytes + 4 * n_classes;
}

}  // namespace

std::size_t wire_frame_size(PayloadKind kind, std::size_t n_classes,
                            std::size_t value_count) {
  const std::size_t per_value = kind == PayloadKind::kInt8 ? 1 : 4;
  return kWireHeaderBytes + 4 * n_classes + per_value * value_count;
}

void encode_frame(const WireMeta& meta, const stats::LabelDistribution& labels,
                  const QuantizedGradient& payload,
                  std::vector<std::uint8_t>& out) {
  const std::size_t at = encode_prefix(meta, labels, PayloadKind::kInt8,
                                       payload.scale, payload.values.size(),
                                       out);
  std::memcpy(out.data() + at, payload.values.data(), payload.values.size());
}

void encode_frame(const WireMeta& meta, const stats::LabelDistribution& labels,
                  std::span<const float> gradient,
                  std::vector<std::uint8_t>& out) {
  const std::size_t at = encode_prefix(meta, labels, PayloadKind::kFloat32,
                                       0.0f, gradient.size(), out);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data() + at, gradient.data(),
                gradient.size() * sizeof(float));
  } else {
    for (std::size_t i = 0; i < gradient.size(); ++i) {
      put_f32(out, at + 4 * i, gradient[i]);
    }
  }
}

void encode_job(const runtime::GradientJob& job, PayloadKind kind,
                std::vector<std::uint8_t>& out) {
  WireMeta meta;
  meta.model_id = job.model_id;
  meta.task_version = job.task_version;
  meta.mini_batch = job.mini_batch;
  if (kind == PayloadKind::kInt8) {
    encode_frame(meta, job.label_dist, quantize_gradient(job.gradient), out);
  } else {
    encode_frame(meta, job.label_dist, std::span<const float>(job.gradient),
                 out);
  }
}

const char* wire_error_name(WireError error) {
  switch (error) {
    case WireError::kOk:
      return "ok";
    case WireError::kTruncatedHeader:
      return "truncated header";
    case WireError::kBadMagic:
      return "bad magic";
    case WireError::kBadVersion:
      return "unsupported wire version";
    case WireError::kBadFlags:
      return "reserved flags set";
    case WireError::kBadKind:
      return "unknown payload kind";
    case WireError::kEmptyGradient:
      return "zero-length gradient";
    case WireError::kTooLarge:
      return "claimed size exceeds limits";
    case WireError::kLengthMismatch:
      return "payload length mismatch";
    case WireError::kBadScale:
      return "invalid quantization scale";
    case WireError::kNonFinitePayload:
      return "non-finite payload";
  }
  return "unknown";
}

WireError WireDecoder::decode(std::span<const std::uint8_t> frame,
                              runtime::GradientJob& job) const {
  // Reset routing state first so a failed decode never leaves a previous
  // frame's model id attached to whatever the caller does with the error.
  job.model_id = core::kDefaultModelId;
  job.ticket = 0;
  job.enqueue_ns = 0;
  job.feedback.reset();

  if (frame.size() < kWireHeaderBytes) return WireError::kTruncatedHeader;
  if (get_u32(frame, 0) != kWireMagic) return WireError::kBadMagic;
  if (get_u16(frame, 4) != kWireVersion) return WireError::kBadVersion;
  if (frame[7] != 0) return WireError::kBadFlags;
  const auto kind = static_cast<PayloadKind>(frame[6]);
  if (kind != PayloadKind::kInt8 && kind != PayloadKind::kFloat32) {
    return WireError::kBadKind;
  }
  const std::size_t n_classes = get_u32(frame, 28);
  const std::size_t value_count = get_u32(frame, 32);
  if (value_count == 0) return WireError::kEmptyGradient;
  // Size ceilings BEFORE any buffer is sized from wire-claimed lengths.
  if (value_count > limits_.max_values || n_classes > limits_.max_classes) {
    return WireError::kTooLarge;
  }
  if (frame.size() != wire_frame_size(kind, n_classes, value_count)) {
    return WireError::kLengthMismatch;
  }
  const float scale = get_f32(frame, 36);
  if (kind == PayloadKind::kInt8 && !(std::isfinite(scale) && scale > 0.0f)) {
    return WireError::kBadScale;
  }

  job.model_id = static_cast<core::ModelId>(get_u64(frame, 8));
  job.task_version = static_cast<std::size_t>(get_u64(frame, 16));
  job.mini_batch = get_u32(frame, 24);

  stats::LabelDistribution labels(n_classes == 0 ? 1 : n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    const std::uint32_t count = get_u32(frame, kWireHeaderBytes + 4 * c);
    if (count != 0) labels.add(static_cast<int>(c), count);
  }
  job.label_dist = std::move(labels);

  const std::size_t at = kWireHeaderBytes + 4 * n_classes;
  job.gradient.resize(value_count);  // reuses capacity across frames
  if (kind == PayloadKind::kInt8) {
    const auto* values =
        reinterpret_cast<const std::int8_t*>(frame.data() + at);
    dequantize_into(std::span<const std::int8_t>(values, value_count), scale,
                    job.gradient);
  } else {
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(job.gradient.data(), frame.data() + at,
                  value_count * sizeof(float));
    } else {
      for (std::size_t i = 0; i < value_count; ++i) {
        job.gradient[i] = get_f32(frame, at + 4 * i);
      }
    }
    for (float g : job.gradient) {
      // The int8 kind is finite by construction (finite scale * [-127,127]);
      // the raw kind must be screened here or a NaN walks into the fold.
      if (!std::isfinite(g)) return WireError::kNonFinitePayload;
    }
  }
  return WireError::kOk;
}

}  // namespace fleet::net
