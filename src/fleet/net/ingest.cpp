#include "fleet/net/ingest.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fleet/net/wire.hpp"

namespace fleet::net {

LoopbackIngest::LoopbackIngest(runtime::ConcurrentFleetServer& server,
                               const Config& config)
    : server_(server), config_(config) {
  if (config.injector_threads == 0) {
    throw std::invalid_argument("LoopbackIngest: need >= 1 injector thread");
  }
  if (config.capacity_bytes == 0 || config.max_frames == 0) {
    throw std::invalid_argument("LoopbackIngest: zero ring capacity");
  }
  if (server_.telemetry() != nullptr) {
    // Registered unconditionally under telemetry (zero-valued counters
    // still export), so the exporter check can assert it exists.
    restart_ctr_ =
        server_.telemetry()->metrics().counter("ingest.injector_restarts");
  }
  injectors_.reserve(config.injector_threads);
  for (std::size_t i = 0; i < config.injector_threads; ++i) {
    injectors_.push_back(spawn_injector(i));
  }
  if (config_.fault != nullptr) {
    supervisor_ = std::thread([this] { supervisor_loop(); });
  }
}

LoopbackIngest::~LoopbackIngest() { close(); }

std::thread LoopbackIngest::spawn_injector(std::size_t slot) {
  return std::thread([this, slot] {
    if (injector_loop() == InjectorExit::kKilled) {
      // Report the death under the ring lock so the supervisor can never
      // miss it, then fall off the thread — the supervisor joins this
      // thread object before reusing its slot.
      {
        std::lock_guard<std::mutex> lock(mu_);
        dead_.push_back(slot);
      }
      reap_.notify_all();
    }
  });
}

bool LoopbackIngest::try_send(std::span<const std::uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    if (ring_.size() >= config_.max_frames ||
        bytes_queued_ + frame.size() > config_.capacity_bytes) {
      ring_rejects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Frame slot;
    slot.bytes.assign(frame.begin(), frame.end());  // the copy IS the wire
    ring_.push_back(std::move(slot));
    bytes_queued_ += frame.size();
    ++pending_;
    // High-water mark under the ring lock: monotone, exact.
    const std::size_t depth = bytes_queued_;
    std::size_t seen = ring_max_bytes_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !ring_max_bytes_.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed)) {
    }
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  ready_.notify_one();
  return true;
}

void LoopbackIngest::submit_frame(const std::vector<std::uint8_t>& bytes,
                                  runtime::GradientJob& scratch,
                                  std::vector<std::uint8_t>& corrupt) {
  // Deterministic frame corruption (kWireCorrupt, DESIGN.md §14): flip one
  // seeded byte before the decoder sees the frame — the decode-side
  // validation (magic/version/kind/scale/finite-payload guards) then
  // refuses the frame, or the corrupted payload decodes and submits,
  // exactly as a bit-flipped datagram would on a real wire. The XOR mask
  // has bit 0 forced, so the byte always actually changes.
  const std::vector<std::uint8_t>* payload = &bytes;
  if (config_.fault != nullptr && !bytes.empty() &&
      config_.fault->should_fire(runtime::FaultSite::kWireCorrupt)) {
    const std::uint64_t index =
        frames_corrupted_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t h =
        config_.fault->draw(runtime::FaultSite::kWireCorrupt, index);
    corrupt.assign(bytes.begin(), bytes.end());
    corrupt[h % corrupt.size()] ^=
        static_cast<std::uint8_t>((h >> 8) | 1);
    payload = &corrupt;
  }
  WireError decode_error = WireError::kOk;
  core::GradientReceipt receipt =
      server_.try_submit_wire(*payload, scratch, &decode_error);
  if (decode_error != WireError::kOk) {
    // The server already counted it (RuntimeStats::wire_rejects) and
    // emitted the reject trace; this is the front end's own ledger.
    wire_rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::size_t attempts = 1;  // the decode submit above
  while (!receipt.accepted && receipt.retryable &&
         config_.retry_backpressure && server_.accepting()) {
    if (config_.max_submit_attempts > 0 &&
        attempts >= config_.max_submit_attempts) {
      // Budget exhausted: the frame is given up, counted below as a
      // server reject — bounded backpressure instead of an unbounded spin
      // against a host that may never drain (DESIGN.md §14).
      break;
    }
    // Queue-full backpressure: the decoded job is still intact in
    // `scratch` (try_submit leaves it so), so resubmit after an
    // escalating, counted backoff — yields, never a clock (§11), so the
    // retry schedule is a pure function of the attempt number.
    backpressure_retries_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t yields =
        std::size_t{1} << std::min<std::size_t>(attempts, 6);
    for (std::size_t y = 0; y < yields; ++y) std::this_thread::yield();
    ++attempts;
    receipt = server_.try_submit(scratch);
  }
  if (receipt.accepted) {
    frames_submitted_.fetch_add(1, std::memory_order_relaxed);
  } else if (receipt.shed) {
    // The overload policy refused the frame at admission — a separate
    // ledger bucket so the accounting identity stays exact (IngestStats).
    shed_drops_.fetch_add(1, std::memory_order_relaxed);
  } else {
    server_rejects_.fetch_add(1, std::memory_order_relaxed);
  }
}

LoopbackIngest::InjectorExit LoopbackIngest::injector_loop() {
  // Per-injector scratch: the decode target's gradient buffer keeps its
  // capacity across rejected frames; accepted jobs hand their buffer into
  // the queue, as any in-process producer would. `corrupt` is the
  // kWireCorrupt staging buffer (the ring frame stays pristine — senders
  // may hold views of what they sent).
  runtime::GradientJob scratch;
  std::vector<std::uint8_t> corrupt;
  Frame frame;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_.wait(lock, [this] { return closed_ || !ring_.empty(); });
      if (ring_.empty()) return InjectorExit::kClosed;
      // Injected thread death (kInjectorDeath, DESIGN.md §14): die before
      // popping, so a death never loses a frame — the work stays on the
      // ring for the respawned injector (or a sibling). Suppressed once
      // closed: the post-close sweep must terminate, and a respawn racing
      // teardown would have nothing left to heal.
      if (!closed_ && config_.fault != nullptr &&
          config_.fault->should_fire(runtime::FaultSite::kInjectorDeath)) {
        return InjectorExit::kKilled;
      }
      frame = std::move(ring_.front());
      ring_.pop_front();
      bytes_queued_ -= frame.bytes.size();
    }
    submit_frame(frame.bytes, scratch, corrupt);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    settled_.notify_all();
  }
}

void LoopbackIngest::supervisor_loop() {
  while (true) {
    std::size_t slot = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      reap_.wait(lock, [this] { return closed_ || !dead_.empty(); });
      if (dead_.empty()) return;  // closed, every death healed
      slot = dead_.front();
      dead_.pop_front();
    }
    // Join outside mu_: the dying thread's last act (reporting its slot)
    // is already done or imminent, and it never re-takes mu_ after that.
    if (injectors_[slot].joinable()) injectors_[slot].join();
    // Respawn unconditionally, even when closed_ landed meanwhile: the
    // replacement runs the normal post-close sweep, so frames the dead
    // injector would have drained are still drained. close() joins the
    // supervisor before the injectors, so the new thread object is always
    // visible to the final join loop.
    injectors_[slot] = spawn_injector(slot);
    injector_restarts_.fetch_add(1, std::memory_order_relaxed);
    if (restart_ctr_ != nullptr) restart_ctr_->add(1);
  }
}

void LoopbackIngest::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  settled_.wait(lock, [this] { return pending_ == 0; });
}

void LoopbackIngest::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
  reap_.notify_all();
  // Serialize joiners so close() is idempotent even under concurrent calls
  // (a second caller blocks here until the threads are gone, then sees
  // every thread already joined). The supervisor goes first: it heals any
  // death that raced close(), so the loop below joins the final set of
  // injector threads.
  std::lock_guard<std::mutex> join_lock(close_mu_);
  if (supervisor_.joinable()) supervisor_.join();
  for (std::thread& t : injectors_) {
    if (t.joinable()) t.join();
  }
}

IngestStats LoopbackIngest::stats() const {
  IngestStats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.ring_rejects = ring_rejects_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.frames_submitted = frames_submitted_.load(std::memory_order_relaxed);
  s.wire_rejects = wire_rejects_.load(std::memory_order_relaxed);
  s.server_rejects = server_rejects_.load(std::memory_order_relaxed);
  s.backpressure_retries =
      backpressure_retries_.load(std::memory_order_relaxed);
  s.ring_max_bytes_seen = ring_max_bytes_.load(std::memory_order_relaxed);
  s.shed_drops = shed_drops_.load(std::memory_order_relaxed);
  s.injector_restarts = injector_restarts_.load(std::memory_order_relaxed);
  s.frames_corrupted = frames_corrupted_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fleet::net
