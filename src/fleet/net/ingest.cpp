#include "fleet/net/ingest.hpp"

#include <stdexcept>
#include <utility>

#include "fleet/net/wire.hpp"

namespace fleet::net {

LoopbackIngest::LoopbackIngest(runtime::ConcurrentFleetServer& server,
                               const Config& config)
    : server_(server), config_(config) {
  if (config.injector_threads == 0) {
    throw std::invalid_argument("LoopbackIngest: need >= 1 injector thread");
  }
  if (config.capacity_bytes == 0 || config.max_frames == 0) {
    throw std::invalid_argument("LoopbackIngest: zero ring capacity");
  }
  injectors_.reserve(config.injector_threads);
  for (std::size_t i = 0; i < config.injector_threads; ++i) {
    injectors_.emplace_back([this] { injector_loop(); });
  }
}

LoopbackIngest::~LoopbackIngest() { close(); }

bool LoopbackIngest::try_send(std::span<const std::uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    if (ring_.size() >= config_.max_frames ||
        bytes_queued_ + frame.size() > config_.capacity_bytes) {
      ring_rejects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Frame slot;
    slot.bytes.assign(frame.begin(), frame.end());  // the copy IS the wire
    ring_.push_back(std::move(slot));
    bytes_queued_ += frame.size();
    ++pending_;
    // High-water mark under the ring lock: monotone, exact.
    const std::size_t depth = bytes_queued_;
    std::size_t seen = ring_max_bytes_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !ring_max_bytes_.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed)) {
    }
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  ready_.notify_one();
  return true;
}

void LoopbackIngest::submit_frame(const std::vector<std::uint8_t>& bytes,
                                  runtime::GradientJob& scratch) {
  WireError decode_error = WireError::kOk;
  core::GradientReceipt receipt =
      server_.try_submit_wire(bytes, scratch, &decode_error);
  if (decode_error != WireError::kOk) {
    // The server already counted it (RuntimeStats::wire_rejects) and
    // emitted the reject trace; this is the front end's own ledger.
    wire_rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  while (!receipt.accepted && receipt.retryable && config_.retry_backpressure &&
         server_.accepting()) {
    // Queue-full backpressure: the decoded job is still intact in
    // `scratch` (try_submit leaves it so), so resubmit after yielding the
    // slice to the consumer we are waiting on.
    backpressure_retries_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
    receipt = server_.try_submit(scratch);
  }
  if (receipt.accepted) {
    frames_submitted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    server_rejects_.fetch_add(1, std::memory_order_relaxed);
  }
}

void LoopbackIngest::injector_loop() {
  // Per-injector scratch: the decode target's gradient buffer keeps its
  // capacity across rejected frames; accepted jobs hand their buffer into
  // the queue, as any in-process producer would.
  runtime::GradientJob scratch;
  Frame frame;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_.wait(lock, [this] { return closed_ || !ring_.empty(); });
      if (ring_.empty()) return;  // closed and fully drained
      frame = std::move(ring_.front());
      ring_.pop_front();
      bytes_queued_ -= frame.bytes.size();
    }
    submit_frame(frame.bytes, scratch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    settled_.notify_all();
  }
}

void LoopbackIngest::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  settled_.wait(lock, [this] { return pending_ == 0; });
}

void LoopbackIngest::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
  // Serialize joiners so close() is idempotent even under concurrent calls
  // (a second caller blocks here until the injectors are gone, then sees
  // every thread already joined).
  std::lock_guard<std::mutex> join_lock(close_mu_);
  for (std::thread& t : injectors_) {
    if (t.joinable()) t.join();
  }
}

IngestStats LoopbackIngest::stats() const {
  IngestStats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.ring_rejects = ring_rejects_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.frames_submitted = frames_submitted_.load(std::memory_order_relaxed);
  s.wire_rejects = wire_rejects_.load(std::memory_order_relaxed);
  s.server_rejects = server_rejects_.load(std::memory_order_relaxed);
  s.backpressure_retries =
      backpressure_retries_.load(std::memory_order_relaxed);
  s.ring_max_bytes_seen = ring_max_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fleet::net
