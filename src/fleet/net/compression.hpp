#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fleet::net {

/// Uniform symmetric int8 quantization of gradient vectors.
///
/// §4 notes that communication-reduction techniques are orthogonal to the
/// online property and "can be adapted for AdaSGD and plugged into FLeet";
/// this is the standard plug: workers upload 8-bit gradients (4x smaller),
/// the server dequantizes before aggregation. Quantization error behaves
/// like bounded gradient noise, which the SGD variants already tolerate.
struct QuantizedGradient {
  float scale = 0.0f;           // max |g| / 127
  std::vector<std::int8_t> values;

  std::size_t byte_size() const {
    return sizeof(scale) + values.size();
  }
};

/// Quantize to int8 with a per-tensor scale.
QuantizedGradient quantize_gradient(std::span<const float> gradient);

/// Reconstruct the float gradient.
std::vector<float> dequantize_gradient(const QuantizedGradient& quantized);

/// Max absolute reconstruction error (= scale/2 bound, for tests/benches).
double quantization_error(std::span<const float> gradient,
                          const QuantizedGradient& quantized);

}  // namespace fleet::net
