#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fleet::net {

/// Uniform symmetric int8 quantization of gradient vectors.
///
/// §4 notes that communication-reduction techniques are orthogonal to the
/// online property and "can be adapted for AdaSGD and plugged into FLeet";
/// this is the standard plug: workers upload 8-bit gradients (4x smaller),
/// the server dequantizes before aggregation. Quantization error behaves
/// like bounded gradient noise, which the SGD variants already tolerate.
struct QuantizedGradient {
  float scale = 0.0f;           // max |g| / 127
  std::vector<std::int8_t> values;

  std::size_t byte_size() const {
    return sizeof(scale) + values.size();
  }
};

/// Quantize to int8 with a per-tensor scale. Throws std::invalid_argument
/// on an empty gradient or any non-finite element (NaN would poison the
/// scale and feeding NaN/Inf to std::lround is undefined behavior — the
/// serving path must reject such inputs, never fold them). The scale is
/// clamped up to the smallest normal float so a denormal max|g| can never
/// produce a zero scale and an Inf during the divide.
QuantizedGradient quantize_gradient(std::span<const float> gradient);

/// Reconstruct into a caller-provided buffer (`out.size()` must equal
/// `quantized.values.size()`; throws std::invalid_argument otherwise).
/// This is the serving-path entry point: it never allocates, so a decoder
/// draining into reusable fold-plan buffers stays within the PR 5
/// zero-allocation drain contract.
void dequantize_into(const QuantizedGradient& quantized, std::span<float> out);

/// Raw-span form for wire decoding: reconstruct `values` scaled by `scale`
/// directly into `out` (sizes must match) without materializing a
/// QuantizedGradient.
void dequantize_into(std::span<const std::int8_t> values, float scale,
                     std::span<float> out);

/// Reconstruct the float gradient (allocating convenience overload;
/// delegates to dequantize_into).
std::vector<float> dequantize_gradient(const QuantizedGradient& quantized);

/// Max absolute reconstruction error (= scale/2 bound, for tests/benches).
double quantization_error(std::span<const float> gradient,
                          const QuantizedGradient& quantized);

}  // namespace fleet::net
