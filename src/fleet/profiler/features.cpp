#include "fleet/profiler/features.hpp"

#include <stdexcept>

namespace fleet::profiler {

double Observation::alpha_time() const {
  if (mini_batch == 0) {
    throw std::logic_error("Observation::alpha_time: mini_batch=0");
  }
  return time_s / static_cast<double>(mini_batch);
}

double Observation::alpha_energy() const {
  if (mini_batch == 0) {
    throw std::logic_error("Observation::alpha_energy: mini_batch=0");
  }
  return energy_pct / static_cast<double>(mini_batch);
}

}  // namespace fleet::profiler
