#pragma once

#include "fleet/profiler/features.hpp"

namespace fleet::profiler {

/// The MAUI profiler baseline, adapted as in §3.3: a single global linear
/// model through the origin per target — time = theta_t * n and
/// energy = theta_e * n — with the workload size (mini-batch) replacing CPU
/// cycles. Fit by least squares over all observations from all devices;
/// no device features, no personalization. This is exactly what makes it
/// inaccurate on a heterogeneous fleet (Figs 12-13).
class MauiProfiler final : public Profiler {
 public:
  struct Config {
    Slo slo;
    std::size_t max_batch = 16384;
  };

  explicit MauiProfiler(const Config& config);

  void pretrain(const std::vector<Observation>& observations) override;
  std::size_t predict_batch(const DeviceFeatures& features,
                            const std::string& device_model) override;
  void observe(const Observation& observation) override;
  std::string name() const override { return "MAUI"; }

  double theta_time() const;
  double theta_energy() const;

 private:
  Config config_;
  // Least squares through the origin: theta = sum(y*n) / sum(n^2),
  // maintained incrementally.
  double sum_tn_ = 0.0;
  double sum_en_ = 0.0;
  double sum_nn_ = 0.0;
};

}  // namespace fleet::profiler
