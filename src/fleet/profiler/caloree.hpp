#pragma once

#include <vector>

#include "fleet/device/device_model.hpp"

namespace fleet::profiler {

/// One profiled configuration point: a core allocation with its measured
/// throughput (samples/s) and power (W).
struct PerfPoint {
  device::CoreAllocation alloc;
  double rate = 0.0;
  double power = 0.0;
};

/// CALOREE's performance hash table: the energy-optimal (lower convex hull)
/// subset of configurations, sorted by increasing rate (§3.4).
struct PerformanceHashTable {
  std::vector<PerfPoint> hull;

  /// Fastest configuration the PHT believes in.
  const PerfPoint& fastest() const;
};

/// Measure every allowed core allocation on a (cold) device and keep the
/// lower convex hull in the (rate, power) plane.
PerformanceHashTable profile_device(device::DeviceSim& device,
                                    std::size_t probe_batch = 256);

/// CALOREE resource manager (Mishra et al., ASPLOS'18), simulated: given a
/// workload of n samples and a deadline, it schedules a mixture of PHT
/// configurations per control period so the workload finishes exactly at
/// the deadline with minimal energy. A multiplicative speed estimate is
/// updated from observed progress each period (its lightweight learner),
/// but the *relative* speeds and the hull shape come from the PHT — which
/// is what breaks when the PHT was collected on a different device model
/// (Table 2).
class CaloreeController {
 public:
  struct Config {
    std::size_t control_periods = 10;  // re-planning slots per deadline
    double min_chunk = 8;              // samples per dispatch at least
  };

  explicit CaloreeController(PerformanceHashTable pht);
  CaloreeController(PerformanceHashTable pht, Config config);

  struct Result {
    double time_s = 0.0;
    double energy_pct = 0.0;
    double deadline_error_pct = 0.0;  // |time - deadline| / deadline * 100
    std::size_t config_switches = 0;
  };

  /// Execute the workload on `device` against `deadline_s`.
  Result run(device::DeviceSim& device, std::size_t n_samples,
             double deadline_s);

  const PerformanceHashTable& pht() const { return pht_; }

 private:
  /// Cheapest hull config whose believed rate (scaled by the learned
  /// `speed_scale`) meets `required_rate`; fastest config if none does.
  std::size_t pick_config(double required_rate, double speed_scale) const;

  PerformanceHashTable pht_;
  Config config_;
};

}  // namespace fleet::profiler
