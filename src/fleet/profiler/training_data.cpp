#include "fleet/profiler/training_data.hpp"

#include "fleet/device/allocation.hpp"
#include "fleet/device/catalog.hpp"

namespace fleet::profiler {

std::vector<Observation> collect_profile_dataset(
    const std::vector<std::string>& device_models, const Slo& slo,
    std::uint64_t seed) {
  std::vector<Observation> dataset;
  std::uint64_t device_seed = seed;
  for (const std::string& name : device_models) {
    device::DeviceSim device(device::spec(name), ++device_seed);
    const device::CoreAllocation alloc =
        device::fleet_allocation(device.spec());
    std::size_t batch = 16;
    for (int probe = 0; probe < 40; ++probe) {
      Observation ob;
      ob.device_model = name;
      ob.features = device.features();
      const device::TaskExecution exec = device.run_task(batch, alloc);
      ob.mini_batch = batch;
      ob.time_s = exec.time_s;
      ob.energy_pct = exec.energy_pct;
      // Tiny warm-up probes are dominated by the fixed task overhead and
      // would teach the linear slope model the wrong relation; keep only
      // probes long enough that t ~ alpha * n holds.
      if (exec.time_s >= 0.4 * slo.latency_s) {
        dataset.push_back(ob);
      }
      device.idle(60.0);
      if (exec.time_s >= 2.0 * slo.latency_s) break;
      batch = batch + batch / 2;  // geometric sweep, ~1.5x per probe
    }
  }
  return dataset;
}

}  // namespace fleet::profiler
