#include "fleet/profiler/maui.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleet::profiler {

MauiProfiler::MauiProfiler(const Config& config) : config_(config) {
  if (config.slo.latency_s <= 0.0 || config.slo.energy_pct <= 0.0) {
    throw std::invalid_argument("MauiProfiler: non-positive SLO");
  }
}

void MauiProfiler::pretrain(const std::vector<Observation>& observations) {
  if (observations.empty()) {
    throw std::invalid_argument("MauiProfiler::pretrain: no observations");
  }
  for (const Observation& ob : observations) observe(ob);
}

void MauiProfiler::observe(const Observation& observation) {
  if (observation.mini_batch == 0) {
    throw std::invalid_argument("MauiProfiler::observe: mini_batch=0");
  }
  const auto n = static_cast<double>(observation.mini_batch);
  sum_tn_ += observation.time_s * n;
  sum_en_ += observation.energy_pct * n;
  sum_nn_ += n * n;
}

double MauiProfiler::theta_time() const {
  if (sum_nn_ <= 0.0) {
    throw std::logic_error("MauiProfiler: predict before any observation");
  }
  return sum_tn_ / sum_nn_;
}

double MauiProfiler::theta_energy() const {
  if (sum_nn_ <= 0.0) {
    throw std::logic_error("MauiProfiler: predict before any observation");
  }
  return sum_en_ / sum_nn_;
}

std::size_t MauiProfiler::predict_batch(const DeviceFeatures&,
                                        const std::string&) {
  const double alpha_t = std::max(theta_time(), 1e-6);
  const double alpha_e = std::max(theta_energy(), 1e-9);
  const double n = std::floor(std::min(config_.slo.latency_s / alpha_t,
                                       config_.slo.energy_pct / alpha_e));
  return static_cast<std::size_t>(
      std::clamp(n, 1.0, static_cast<double>(config_.max_batch)));
}

}  // namespace fleet::profiler
