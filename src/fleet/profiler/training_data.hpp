#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/profiler/features.hpp"

namespace fleet::profiler {

/// Build the offline cold-start dataset of §2.2/§3.3: execute learning
/// tasks on each training device with mini-batch sizes growing from small
/// until the computation time reaches twice the latency SLO, recording
/// (device features, measured time/energy) for each task. Devices cool
/// down between probes.
std::vector<Observation> collect_profile_dataset(
    const std::vector<std::string>& device_models, const Slo& slo,
    std::uint64_t seed);

}  // namespace fleet::profiler
