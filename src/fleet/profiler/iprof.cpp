#include "fleet/profiler/iprof.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleet::profiler {

namespace {

// Absolute floors for slope predictions (seconds / battery-% per sample);
// the effective floor is raised to a fraction of the smallest slope ever
// observed, so a bad extrapolation cannot produce an unbounded mini-batch.
constexpr double kMinAlphaTime = 1e-6;
constexpr double kMinAlphaEnergy = 1e-9;
constexpr double kFloorFraction = 0.25;

}  // namespace

IProf::IProf(const Config& config)
    : config_(config),
      cold_time_(DeviceFeatures::latency_feature_count()),
      cold_energy_(DeviceFeatures::energy_feature_count()) {
  if (config.slo.latency_s <= 0.0 || config.slo.energy_pct <= 0.0) {
    throw std::invalid_argument("IProf: non-positive SLO");
  }
  if (config.max_batch == 0) throw std::invalid_argument("IProf: max_batch=0");
}

void IProf::pretrain(const std::vector<Observation>& observations) {
  if (observations.empty()) {
    throw std::invalid_argument("IProf::pretrain: no observations");
  }
  for (const Observation& ob : observations) {
    add_cold_observation(ob);
  }
  cold_time_.fit();
  cold_energy_.fit();
  cold_fitted_ = true;
}

double IProf::cold_alpha_time(const DeviceFeatures& features) const {
  if (!cold_fitted_) {
    throw std::logic_error("IProf: predict before pretrain");
  }
  return cold_time_.predict(features.latency_features());
}

double IProf::cold_alpha_energy(const DeviceFeatures& features) const {
  if (!cold_fitted_) {
    throw std::logic_error("IProf: predict before pretrain");
  }
  return cold_energy_.predict(features.energy_features());
}

void IProf::add_cold_observation(const Observation& ob) {
  // Weight for *relative* error: slopes span two orders of magnitude
  // across the fleet, and a mis-sized first request on a fast device is
  // as bad as one on a slow device.
  const double wt = 1.0 / std::max(ob.alpha_time() * ob.alpha_time(), 1e-12);
  const double we =
      1.0 / std::max(ob.alpha_energy() * ob.alpha_energy(), 1e-18);
  cold_time_.add_observation(ob.features.latency_features(), ob.alpha_time(),
                             wt);
  cold_energy_.add_observation(ob.features.energy_features(),
                               ob.alpha_energy(), we);
  min_alpha_time_ = std::min(min_alpha_time_, ob.alpha_time());
  min_alpha_energy_ = std::min(min_alpha_energy_, ob.alpha_energy());
}

IProf::Personalized& IProf::personalized_for(const std::string& device_model) {
  auto it = personalized_.find(device_model);
  if (it == personalized_.end()) {
    // Bootstrap the per-device-model PA regressors from the cold model's
    // coefficients (§2.2: the cold-start model serves the first request).
    it = personalized_
             .emplace(device_model,
                      Personalized{
                          stats::PassiveAggressiveRegression(
                              cold_time_.coefficients(), config_.epsilon_time),
                          stats::PassiveAggressiveRegression(
                              cold_energy_.coefficients(),
                              config_.epsilon_energy)})
             .first;
  }
  return it->second;
}

double IProf::predict_alpha_time(const DeviceFeatures& features,
                                 const std::string& device_model) const {
  const auto it = personalized_.find(device_model);
  if (it != personalized_.end() && it->second.time.update_count() > 0) {
    const double alpha = it->second.time.predict(features.latency_features());
    // Stay within a margin of what this device model has demonstrated.
    return std::clamp(alpha, kFloorFraction * it->second.min_alpha_time,
                      4.0 * it->second.max_alpha_time);
  }
  const double alpha = cold_alpha_time(features);
  return std::max(alpha,
                  std::max(kMinAlphaTime, kFloorFraction * min_alpha_time_));
}

double IProf::predict_alpha_energy(const DeviceFeatures& features,
                                   const std::string& device_model) const {
  const auto it = personalized_.find(device_model);
  if (it != personalized_.end() && it->second.energy.update_count() > 0) {
    const double alpha =
        it->second.energy.predict(features.energy_features());
    return std::clamp(alpha, kFloorFraction * it->second.min_alpha_energy,
                      4.0 * it->second.max_alpha_energy);
  }
  const double alpha = cold_alpha_energy(features);
  return std::max(
      alpha, std::max(kMinAlphaEnergy, kFloorFraction * min_alpha_energy_));
}

std::size_t IProf::predict_batch(const DeviceFeatures& features,
                                 const std::string& device_model) {
  const double alpha_t = predict_alpha_time(features, device_model);
  const double alpha_e = predict_alpha_energy(features, device_model);
  // Largest n respecting *both* SLOs (Eq. 1 applied per predictor).
  const double n_time = config_.slo.latency_s / alpha_t;
  const double n_energy = config_.slo.energy_pct / alpha_e;
  const double n = std::floor(std::min(n_time, n_energy));
  return static_cast<std::size_t>(std::clamp(
      n, 1.0, static_cast<double>(config_.max_batch)));
}

bool IProf::has_personalized_model(const std::string& device_model) const {
  return personalized_.count(device_model) > 0;
}

void IProf::observe(const Observation& observation) {
  if (observation.mini_batch == 0) {
    throw std::invalid_argument("IProf::observe: mini_batch=0");
  }
  Personalized& model = personalized_for(observation.device_model);
  model.time.update(observation.features.latency_features(),
                    observation.alpha_time());
  model.energy.update(observation.features.energy_features(),
                      observation.alpha_energy());
  model.min_alpha_time = std::min(model.min_alpha_time, observation.alpha_time());
  model.max_alpha_time = std::max(model.max_alpha_time, observation.alpha_time());
  model.min_alpha_energy =
      std::min(model.min_alpha_energy, observation.alpha_energy());
  model.max_alpha_energy =
      std::max(model.max_alpha_energy, observation.alpha_energy());

  // Append to the cold dataset and periodically re-fit, mirroring I-Prof's
  // periodic cold-start re-training on newly collected device data.
  add_cold_observation(observation);
  if (++observations_since_refit_ >= config_.retrain_interval) {
    cold_time_.fit();
    cold_energy_.fit();
    observations_since_refit_ = 0;
  }
}

}  // namespace fleet::profiler
