#pragma once

#include <string>

#include "fleet/device/device_model.hpp"

namespace fleet::profiler {

using device::DeviceFeatures;

/// Service level objectives a learning task must respect (§2.2). The paper
/// evaluates a 3 s computation-time SLO (Fig 12) and a 0.075 %-battery
/// energy SLO (Fig 13).
struct Slo {
  double latency_s = 3.0;
  double energy_pct = 0.075;
};

/// One profiling observation: the features a device reported at request
/// time, and the measured cost of the learning task it then executed.
struct Observation {
  std::string device_model;
  DeviceFeatures features;
  std::size_t mini_batch = 0;
  double time_s = 0.0;
  double energy_pct = 0.0;

  /// Observed per-sample slopes (alpha in §2.2).
  double alpha_time() const;
  double alpha_energy() const;
};

/// Abstract mini-batch-size profiler so I-Prof and the MAUI baseline are
/// interchangeable in the request path and in the benches.
class Profiler {
 public:
  virtual ~Profiler() = default;

  /// Offline bootstrap on the training-device dataset (§2.2).
  virtual void pretrain(const std::vector<Observation>& observations) = 0;

  /// Largest mini-batch predicted to satisfy the SLO for this request.
  virtual std::size_t predict_batch(const DeviceFeatures& features,
                                    const std::string& device_model) = 0;

  /// Post-execution feedback.
  virtual void observe(const Observation& observation) = 0;

  virtual std::string name() const = 0;
};

}  // namespace fleet::profiler
