#pragma once

#include <map>
#include <optional>

#include "fleet/profiler/features.hpp"
#include "fleet/stats/regression.hpp"

namespace fleet::profiler {

/// I-Prof: FLeet's lightweight ML-based profiler (§2.2).
///
/// Two predictors (computation time, energy), each estimating the
/// per-sample slope alpha from device features. Prediction of the
/// mini-batch bound: n = max(1, SLO / alpha), jointly for both SLOs.
///
/// - Cold start: an OLS linear model over device features, pre-trained on
///   an offline dataset from training devices and periodically re-fit as
///   new data arrives.
/// - Personalization: per device-model passive-aggressive regressors with
///   epsilon-insensitive loss, bootstrapped from the cold model on the
///   first observation of that model.
class IProf final : public Profiler {
 public:
  struct Config {
    Slo slo;
    /// PA insensitivity bands, in slope units (seconds per sample and
    /// battery-% per sample). The paper uses 0.1 and 6e-5 in its units
    /// (§3.2/§3.3); our simulated slopes are ~3e-3 s/sample for a Galaxy
    /// S7, so the bands scale accordingly — energy slopes are ~100x
    /// smaller than time slopes, preserving the paper's ratio rationale.
    double epsilon_time = 1e-4;
    double epsilon_energy = 5e-7;
    std::size_t max_batch = 16384;
    std::size_t retrain_interval = 64;  // cold-model re-fit cadence
  };

  explicit IProf(const Config& config);

  void pretrain(const std::vector<Observation>& observations) override;
  std::size_t predict_batch(const DeviceFeatures& features,
                            const std::string& device_model) override;
  void observe(const Observation& observation) override;
  std::string name() const override { return "I-Prof"; }

  /// Predicted per-sample slopes (exposed for tests and Fig 12/13 analysis).
  double predict_alpha_time(const DeviceFeatures& features,
                            const std::string& device_model) const;
  double predict_alpha_energy(const DeviceFeatures& features,
                              const std::string& device_model) const;

  bool has_personalized_model(const std::string& device_model) const;
  const Config& config() const { return config_; }

 private:
  struct Personalized {
    stats::PassiveAggressiveRegression time;
    stats::PassiveAggressiveRegression energy;
    // Observed slope envelope for this device model; personalized
    // predictions are clamped into a margin around it so one noisy
    // feature cannot blow up the workload bound.
    double min_alpha_time = 1e9;
    double max_alpha_time = 0.0;
    double min_alpha_energy = 1e9;
    double max_alpha_energy = 0.0;
  };

  double cold_alpha_time(const DeviceFeatures& features) const;
  double cold_alpha_energy(const DeviceFeatures& features) const;
  void add_cold_observation(const Observation& ob);
  Personalized& personalized_for(const std::string& device_model);

  Config config_;
  stats::OlsRegression cold_time_;
  stats::OlsRegression cold_energy_;
  bool cold_fitted_ = false;
  std::size_t observations_since_refit_ = 0;
  std::map<std::string, Personalized> personalized_;
  // Smallest slopes ever observed; used to floor predictions so a bad
  // extrapolation cannot emit an unbounded mini-batch.
  double min_alpha_time_ = 1e9;
  double min_alpha_energy_ = 1e9;
};

}  // namespace fleet::profiler
