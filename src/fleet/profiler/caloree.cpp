#include "fleet/profiler/caloree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleet::profiler {

const PerfPoint& PerformanceHashTable::fastest() const {
  if (hull.empty()) throw std::logic_error("PerformanceHashTable: empty");
  return hull.back();
}

PerformanceHashTable profile_device(device::DeviceSim& device,
                                    std::size_t probe_batch) {
  std::vector<PerfPoint> points;
  for (const device::CoreAllocation& alloc : device.allowed_allocations()) {
    PerfPoint p;
    p.alloc = alloc;
    // Profile by measuring a probe task (as CALOREE does offline); let the
    // device cool between probes so the table reflects nominal speeds.
    const device::TaskExecution exec = device.run_task(probe_batch, alloc);
    p.rate = static_cast<double>(probe_batch) / exec.time_s;
    p.power = exec.avg_power_w;
    points.push_back(p);
    device.idle(120.0);
  }
  std::sort(points.begin(), points.end(),
            [](const PerfPoint& a, const PerfPoint& b) {
              if (a.rate != b.rate) return a.rate < b.rate;
              return a.power < b.power;
            });

  // Lower convex hull in the (rate, power) plane: keep points where power
  // grows slower than linearly between neighbours (energy-optimal mixtures
  // lie on this hull).
  PerformanceHashTable pht;
  for (const PerfPoint& p : points) {
    // Dominated: something at least as fast with no more power.
    if (!pht.hull.empty() && p.power >= pht.hull.back().power &&
        p.rate <= pht.hull.back().rate) {
      continue;
    }
    while (pht.hull.size() >= 2) {
      const PerfPoint& a = pht.hull[pht.hull.size() - 2];
      const PerfPoint& b = pht.hull[pht.hull.size() - 1];
      const double slope_ab = (b.power - a.power) / (b.rate - a.rate + 1e-12);
      const double slope_ap = (p.power - a.power) / (p.rate - a.rate + 1e-12);
      if (slope_ap <= slope_ab) {
        pht.hull.pop_back();
      } else {
        break;
      }
    }
    if (!pht.hull.empty() && p.rate <= pht.hull.back().rate) continue;
    pht.hull.push_back(p);
  }
  if (pht.hull.empty()) {
    throw std::runtime_error("profile_device: no usable configurations");
  }
  return pht;
}

CaloreeController::CaloreeController(PerformanceHashTable pht)
    : CaloreeController(std::move(pht), Config()) {}

CaloreeController::CaloreeController(PerformanceHashTable pht, Config config)
    : pht_(std::move(pht)), config_(config) {
  if (pht_.hull.empty()) {
    throw std::invalid_argument("CaloreeController: empty PHT");
  }
  if (config.control_periods == 0) {
    throw std::invalid_argument("CaloreeController: zero control periods");
  }
}

std::size_t CaloreeController::pick_config(double required_rate,
                                           double speed_scale) const {
  // Energy-minimal single config meeting the required rate: hull points are
  // sorted by rate, so the first fast-enough one is cheapest. Falls back to
  // the fastest when the deadline is (believed) unreachable.
  for (std::size_t i = 0; i < pht_.hull.size(); ++i) {
    if (pht_.hull[i].rate * speed_scale >= required_rate) return i;
  }
  return pht_.hull.size() - 1;
}

CaloreeController::Result CaloreeController::run(device::DeviceSim& device,
                                                 std::size_t n_samples,
                                                 double deadline_s) {
  if (n_samples == 0) {
    throw std::invalid_argument("CaloreeController::run: empty workload");
  }
  if (deadline_s <= 0.0) {
    throw std::invalid_argument("CaloreeController::run: non-positive deadline");
  }
  Result result;
  double remaining = static_cast<double>(n_samples);
  double speed_scale = 1.0;  // learned actual/believed rate ratio
  const double dt = deadline_s / static_cast<double>(config_.control_periods);
  std::size_t previous_config = pht_.hull.size();  // sentinel: none yet

  const auto dispatch = [&](std::size_t hull_idx, double samples) {
    const auto chunk = static_cast<std::size_t>(std::ceil(
        std::min(remaining, std::max(samples, config_.min_chunk))));
    if (chunk == 0) return;
    const device::TaskExecution exec =
        device.run_task(chunk, pht_.hull[hull_idx].alloc);
    result.time_s += exec.time_s;
    result.energy_pct += exec.energy_pct;
    remaining -= static_cast<double>(chunk);
    // CALOREE's lightweight learner: exponentially-weighted multiplicative
    // correction of believed speeds from observed progress.
    const double observed_rate = static_cast<double>(chunk) / exec.time_s;
    const double ratio = observed_rate / (pht_.hull[hull_idx].rate + 1e-12);
    speed_scale = 0.5 * speed_scale + 0.5 * ratio;
    if (previous_config != hull_idx) {
      if (previous_config != pht_.hull.size()) ++result.config_switches;
      previous_config = hull_idx;
    }
  };

  for (std::size_t period = 0; period + 1 < config_.control_periods;
       ++period) {
    if (remaining <= 0.0) break;
    const double time_left = deadline_s - result.time_s;
    if (time_left <= 0.0) break;  // already late: fall through to catch-up
    // Work that must complete this period to stay on schedule.
    const double required_rate = remaining / time_left;
    const std::size_t idx = pick_config(required_rate, speed_scale);
    dispatch(idx, required_rate * std::min(dt, time_left));
  }
  // Last period (or catch-up): dispatch everything left in one task at the
  // config the schedule calls for.
  if (remaining > 0.0) {
    const double time_left = deadline_s - result.time_s;
    const double required_rate = time_left > 1e-6
                                     ? remaining / time_left
                                     : pht_.hull.back().rate * 1e9;
    dispatch(pick_config(required_rate, speed_scale), remaining);
  }
  result.deadline_error_pct =
      std::abs(result.time_s - deadline_s) / deadline_s * 100.0;
  return result;
}

}  // namespace fleet::profiler
