#include "fleet/device/allocation.hpp"

namespace fleet::device {

CoreAllocation fleet_allocation(const DeviceSpec& spec) {
  // big.LITTLE: big cores only. Symmetric chips keep all their cores in
  // n_big (n_little == 0), so "all cores" is the same expression.
  return {spec.n_big, 0};
}

}  // namespace fleet::device
