#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/device/thermal.hpp"
#include "fleet/stats/rng.hpp"

namespace fleet::device {

/// Static description of a phone model (substitution #3 in DESIGN.md §3).
struct DeviceSpec {
  std::string model_name;

  // Core topology. n_little == 0 models symmetric (non-big.LITTLE) chips.
  int n_big = 4;
  int n_little = 4;
  double big_core_ghz = 2.3;
  double little_core_ghz = 1.6;
  double little_speed_ratio = 0.40;  // little-core throughput vs big @ equal GHz

  // Throughput: samples/s = perf_per_ghz * quirk * effective_ghz * throttle.
  double perf_per_ghz = 55.0;
  double quirk = 1.0;  // vendor/SoC efficiency residual

  double total_memory_mb = 4096.0;

  // Energy model.
  double battery_mwh = 11000.0;
  double idle_power_w = 0.6;
  double big_core_power_w = 0.85;     // per busy big core
  double little_core_power_w = 0.22;  // per busy little core

  double task_overhead_s = 0.15;  // fixed JNI/setup cost per learning task
  double execution_noise = 0.04;  // relative stddev of run-to-run variation

  ThermalParams thermal;
};

/// Which cores a learning task runs on.
struct CoreAllocation {
  int n_big = 0;
  int n_little = 0;

  bool empty() const { return n_big == 0 && n_little == 0; }
};

/// Snapshot of what the (stock, non-rooted) Android API exposes — the exact
/// feature set I-Prof consumes (§2.2).
struct DeviceFeatures {
  double available_memory_mb = 0.0;
  double total_memory_mb = 0.0;
  double temperature_c = 0.0;
  double cpu_max_freq_sum_ghz = 0.0;
  double energy_per_cpu_s = 0.0;  // battery %-points per busy core-second

  /// Feature vector for the computation-time predictor: bias + the four
  /// compute-power features.
  std::vector<double> latency_features() const;
  /// Energy predictor adds the energy-efficiency feature (§2.2).
  std::vector<double> energy_features() const;

  static std::size_t latency_feature_count() { return 6; }
  static std::size_t energy_feature_count() { return 7; }
};

/// Result of executing one learning task on the simulated device.
struct TaskExecution {
  double time_s = 0.0;        // wall-clock computation time
  double energy_pct = 0.0;    // battery %-points consumed
  double energy_mwh = 0.0;
  double avg_power_w = 0.0;
  double cpu_time_s = 0.0;    // busy core-seconds
  std::size_t mini_batch = 0;
};

/// Stateful simulated device: thermals, battery and run-to-run noise evolve
/// across tasks, reproducing the up/down hysteresis of Fig 4.
class DeviceSim {
 public:
  DeviceSim(DeviceSpec spec, std::uint64_t seed);

  const DeviceSpec& spec() const { return spec_; }
  const std::string& model_name() const { return spec_.model_name; }

  /// Features as sampled at request time (available memory fluctuates with
  /// simulated background activity).
  DeviceFeatures features(stats::Rng* rng = nullptr);

  /// Execute a learning task of `n` samples on the given cores. Updates
  /// temperature and battery state.
  TaskExecution run_task(std::size_t n, const CoreAllocation& alloc);

  /// Let the device idle (cool down) for dt seconds.
  void idle(double dt_s);

  /// Ground-truth throughput (samples/s) for an allocation at the current
  /// temperature, before noise. Exposed for tests and for CALOREE profiling.
  double throughput(const CoreAllocation& alloc) const;

  /// Active power draw (watts) for an allocation.
  double power(const CoreAllocation& alloc) const;

  double temperature_c() const { return thermal_.temperature_c(); }
  double battery_pct_used() const { return battery_used_pct_; }

  /// All distinct core allocations the OS permits (used by CALOREE).
  std::vector<CoreAllocation> allowed_allocations() const;

 private:
  DeviceSpec spec_;
  ThermalModel thermal_;
  stats::Rng rng_;
  double battery_used_pct_ = 0.0;
};

}  // namespace fleet::device
