#pragma once

#include <string>
#include <vector>

#include "fleet/device/device_model.hpp"

namespace fleet::device {

/// Named device specs for the phones used in the paper's evaluation
/// (Figs 4, 12, 13, 14 and Table 2). Throughput/energy parameters are
/// plausible per-tier values calibrated so the *relations* the paper
/// reports hold: flagship >> mid-range >> legacy, Honor 10 runs hot with
/// high variance when throttling, Xperia E3 is an order of magnitude
/// slower than Galaxy S7 (Fig 4).
const DeviceSpec& spec(const std::string& model_name);

/// Every model in the catalog.
std::vector<std::string> catalog_names();

/// The 21 AWS Device Farm phones of Fig 12(a), in their log-in order.
std::vector<std::string> aws_fleet();

/// The 5 lab phones of the energy experiments (Fig 13/14), log-in order.
std::vector<std::string> lab_fleet();

/// The 15 devices used to pre-train the cold-start models (§3.3 says 15
/// separate AWS devices; we reuse catalog specs with distinct seeds).
std::vector<std::string> training_fleet();

}  // namespace fleet::device
