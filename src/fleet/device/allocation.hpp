#pragma once

#include "fleet/device/device_model.hpp"

namespace fleet::device {

/// FLeet's resource-allocation scheme (§2.4): schedule the gradient
/// computation on the "big" cores only for ARM big.LITTLE chips (big cores
/// finish compute-bound work faster and hence cheaper), and on all cores
/// for symmetric ARMv7 chips (energy per workload is constant there, so
/// maximum parallelism just finishes sooner).
CoreAllocation fleet_allocation(const DeviceSpec& spec);

}  // namespace fleet::device
