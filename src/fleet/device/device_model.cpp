#include "fleet/device/device_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleet::device {

std::vector<double> DeviceFeatures::latency_features() const {
  // The per-sample slope is inverse in aggregate clock speed, so the
  // inverse-frequency term lets a *linear* model fit the heterogeneous
  // fleet without extrapolating to negative slopes on fast devices.
  const double inv_freq = 10.0 / std::max(cpu_max_freq_sum_ghz, 0.1);
  // Available memory enters as a bounded ratio so its request-to-request
  // fluctuation cannot dominate the online regressors.
  const double avail_ratio =
      available_memory_mb / std::max(total_memory_mb, 1.0);
  return {1.0,
          avail_ratio,
          total_memory_mb / 1024.0,
          temperature_c / 10.0,
          cpu_max_freq_sum_ghz,
          inv_freq};
}

std::vector<double> DeviceFeatures::energy_features() const {
  auto f = latency_features();
  f.push_back(energy_per_cpu_s * 1e4);
  return f;
}

DeviceSim::DeviceSim(DeviceSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), thermal_(spec_.thermal), rng_(seed) {
  if (spec_.n_big < 0 || spec_.n_little < 0 ||
      (spec_.n_big == 0 && spec_.n_little == 0)) {
    throw std::invalid_argument("DeviceSim: device needs at least one core");
  }
  if (spec_.perf_per_ghz <= 0.0 || spec_.battery_mwh <= 0.0) {
    throw std::invalid_argument("DeviceSim: non-positive performance/battery");
  }
}

double DeviceSim::throughput(const CoreAllocation& alloc) const {
  if (alloc.empty()) {
    throw std::invalid_argument("DeviceSim::throughput: empty allocation");
  }
  if (alloc.n_big > spec_.n_big || alloc.n_little > spec_.n_little) {
    throw std::invalid_argument(
        "DeviceSim::throughput: allocation exceeds core topology");
  }
  const double effective_ghz =
      static_cast<double>(alloc.n_big) * spec_.big_core_ghz +
      static_cast<double>(alloc.n_little) * spec_.little_core_ghz *
          spec_.little_speed_ratio;
  return spec_.perf_per_ghz * spec_.quirk * effective_ghz *
         thermal_.throttle_factor();
}

double DeviceSim::power(const CoreAllocation& alloc) const {
  return spec_.idle_power_w +
         static_cast<double>(alloc.n_big) * spec_.big_core_power_w +
         static_cast<double>(alloc.n_little) * spec_.little_core_power_w;
}

DeviceFeatures DeviceSim::features(stats::Rng* rng) {
  stats::Rng* r = rng != nullptr ? rng : &rng_;
  DeviceFeatures f;
  f.total_memory_mb = spec_.total_memory_mb;
  // Background apps make free memory fluctuate between requests.
  f.available_memory_mb = spec_.total_memory_mb * r->uniform(0.25, 0.65);
  f.temperature_c = thermal_.temperature_c();
  f.cpu_max_freq_sum_ghz =
      static_cast<double>(spec_.n_big) * spec_.big_core_ghz +
      static_cast<double>(spec_.n_little) * spec_.little_core_ghz;
  // Battery %-points per busy core-second at big-core power:
  // J per core-second / J of battery capacity * 100.
  f.energy_per_cpu_s =
      spec_.big_core_power_w * 100.0 / (spec_.battery_mwh * 3.6);
  return f;
}

TaskExecution DeviceSim::run_task(std::size_t n, const CoreAllocation& alloc) {
  if (n == 0) throw std::invalid_argument("DeviceSim::run_task: n=0");
  const double rate = throughput(alloc);  // samples/s at current temperature
  const double noise_sd = spec_.execution_noise + thermal_.noise_stddev();
  const double noise = std::max(0.5, rng_.gaussian(1.0, noise_sd));
  const double compute_s =
      (static_cast<double>(n) / rate) * noise + spec_.task_overhead_s;

  const double watts = power(alloc);
  thermal_.advance(compute_s, watts);

  TaskExecution exec;
  exec.mini_batch = n;
  exec.time_s = compute_s;
  exec.avg_power_w = watts;
  const double joules = watts * compute_s;
  exec.energy_mwh = joules / 3.6;
  exec.energy_pct = exec.energy_mwh / spec_.battery_mwh * 100.0;
  exec.cpu_time_s =
      compute_s * static_cast<double>(alloc.n_big + alloc.n_little);
  battery_used_pct_ += exec.energy_pct;
  return exec;
}

void DeviceSim::idle(double dt_s) {
  thermal_.advance(dt_s, 0.0);
}

std::vector<CoreAllocation> DeviceSim::allowed_allocations() const {
  std::vector<CoreAllocation> allocs;
  for (int b = 0; b <= spec_.n_big; ++b) {
    for (int l = 0; l <= spec_.n_little; ++l) {
      if (b == 0 && l == 0) continue;
      allocs.push_back({b, l});
    }
  }
  return allocs;
}

}  // namespace fleet::device
