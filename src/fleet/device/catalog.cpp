#include "fleet/device/catalog.hpp"

#include <map>
#include <stdexcept>

namespace fleet::device {

namespace {

DeviceSpec base_spec(std::string name) {
  DeviceSpec s;
  s.model_name = std::move(name);
  return s;
}

/// Flagship tier (2017+): fast big.LITTLE octa-core, runs cool.
DeviceSpec flagship(std::string name, double perf, double big_ghz,
                    double little_ghz, double mem_mb, double battery) {
  DeviceSpec s = base_spec(std::move(name));
  s.n_big = 4;
  s.n_little = 4;
  s.big_core_ghz = big_ghz;
  s.little_core_ghz = little_ghz;
  s.perf_per_ghz = perf;
  s.total_memory_mb = mem_mb;
  s.battery_mwh = battery;
  s.big_core_power_w = 0.95;
  s.little_core_power_w = 0.25;
  s.thermal.throttle_start_c = 42.0;
  s.thermal.throttle_slope = 0.03;
  return s;
}

/// Mid-range tier: big.LITTLE or symmetric, moderate speed.
DeviceSpec midrange(std::string name, double perf, double big_ghz,
                    double little_ghz, double mem_mb, double battery) {
  DeviceSpec s = base_spec(std::move(name));
  s.n_big = 4;
  s.n_little = 4;
  s.big_core_ghz = big_ghz;
  s.little_core_ghz = little_ghz;
  s.perf_per_ghz = perf;
  s.total_memory_mb = mem_mb;
  s.battery_mwh = battery;
  s.big_core_power_w = 0.75;
  s.little_core_power_w = 0.22;
  s.thermal.throttle_start_c = 40.0;
  s.thermal.throttle_slope = 0.04;
  return s;
}

/// Legacy tier: symmetric ARMv7 quad (n_little = 0), slow and small.
DeviceSpec legacy(std::string name, double perf, double ghz, double mem_mb,
                  double battery) {
  DeviceSpec s = base_spec(std::move(name));
  s.n_big = 4;
  s.n_little = 0;
  s.big_core_ghz = ghz;
  s.little_core_ghz = 0.0;
  s.perf_per_ghz = perf;
  s.total_memory_mb = mem_mb;
  s.battery_mwh = battery;
  s.big_core_power_w = 0.55;
  s.thermal.throttle_start_c = 39.0;
  s.thermal.throttle_slope = 0.05;
  return s;
}

std::map<std::string, DeviceSpec> build_catalog() {
  std::map<std::string, DeviceSpec> c;
  const auto put = [&c](DeviceSpec s) { c.emplace(s.model_name, std::move(s)); };

  // --- Lab fleet (Figs 4, 13, 14, Table 2) --------------------------------
  {
    // Galaxy S7: the Fig 4 reference; mild throttling under sustained load.
    DeviceSpec s = flagship("Galaxy S7", 35.0, 2.3, 1.6, 4096, 11000);
    s.thermal.throttle_start_c = 38.0;
    s.thermal.throttle_slope = 0.045;
    put(s);
  }
  {
    // Honor 10: fastest of the lab fleet but runs hot — high variance near
    // the top of the "up" sweep in Fig 4(b).
    // Honor 10: fastest of the lab fleet when cool, but an aggressive
    // thermal governor bites hard under sustained load — the source of the
    // Fig 4(b) "up" variance and of Table 2's 255% cross-device error.
    DeviceSpec s = flagship("Honor 10", 60.0, 2.36, 1.8, 4096, 12700);
    s.quirk = 1.05;
    s.thermal.throttle_start_c = 33.0;
    s.thermal.throttle_slope = 0.30;
    s.thermal.heat_per_watt = 0.50;
    s.thermal.cooling_rate = 0.045;
    s.thermal.hot_noise = 0.012;
    put(s);
  }
  {
    DeviceSpec s = flagship("Galaxy S8", 48.0, 2.35, 1.9, 4096, 11550);
    put(s);
  }
  {
    DeviceSpec s = flagship("Honor 9", 42.0, 2.36, 1.84, 4096, 12320);
    s.thermal.throttle_start_c = 35.0;
    s.thermal.throttle_slope = 0.12;
    s.thermal.heat_per_watt = 0.38;
    put(s);
  }
  put(legacy("Galaxy S4 mini", 11.0, 1.7, 1536, 7030));
  {
    DeviceSpec s = legacy("Xperia E3", 7.0, 1.2, 1024, 8800);
    s.quirk = 0.9;
    put(s);
  }

  // --- AWS Device Farm fleet (Fig 12a, log-in order) ----------------------
  put(flagship("Galaxy S6", 30.0, 2.1, 1.5, 3072, 9870));
  put(flagship("Galaxy S6 Edge", 31.0, 2.1, 1.5, 3072, 9880));
  put(midrange("Nexus 6", 18.0, 2.7, 0.0, 3072, 12460));
  put(legacy("MotoG3", 9.0, 1.4, 2048, 9240));
  put(midrange("Moto G (4)", 14.0, 1.5, 1.2, 2048, 11550));
  put(flagship("Galaxy Note5", 32.0, 2.1, 1.5, 4096, 11550));
  put(midrange("XT1096", 13.0, 2.5, 0.0, 2048, 8960));
  put(midrange("Galaxy S5", 16.0, 2.5, 0.0, 2048, 10640));
  put(midrange("SM-N900P", 15.0, 2.3, 0.0, 3072, 12200));
  put(midrange("Nexus 5", 12.0, 2.3, 0.0, 2048, 8470));
  put(legacy("Lenovo TB-8504F", 10.0, 1.4, 2048, 18500));
  put(legacy("Venue 8", 8.5, 1.6, 1024, 15600));
  put(legacy("Moto G (2nd Gen)", 8.0, 1.2, 1024, 8140));
  put(flagship("Pixel", 44.0, 2.15, 1.6, 4096, 10660));
  put(flagship("HTC U11", 50.0, 2.45, 1.9, 4096, 11550));
  put(flagship("SM-G950U1", 47.0, 2.35, 1.9, 4096, 11550));
  put(midrange("XT1254", 20.0, 2.7, 0.0, 3072, 14780));
  put(midrange("HTC One A9", 19.0, 1.5, 1.2, 3072, 7770));
  put(flagship("LG-H910", 40.0, 2.15, 1.6, 4096, 12320));
  put(flagship("LG-H830", 36.0, 2.3, 1.6, 4096, 10780));

  // --- §3.1 worker --------------------------------------------------------
  {
    // Raspberry Pi 4: calibrated to the paper's measurements — 1.9 W idle,
    // 2.1-2.3 W active, 5.6 s at batch 1 vs 8.4 s at batch 100.
    DeviceSpec s = base_spec("Raspberry Pi 4");
    s.n_big = 4;
    s.n_little = 0;
    s.big_core_ghz = 1.5;
    s.perf_per_ghz = 5.9;
    s.total_memory_mb = 4096;
    s.battery_mwh = 11000;  // hypothetical phone-class battery for % figures
    s.idle_power_w = 1.9;
    s.big_core_power_w = 0.1;
    s.task_overhead_s = 5.57;
    s.execution_noise = 0.02;
    put(s);
  }
  return c;
}

const std::map<std::string, DeviceSpec>& catalog() {
  static const std::map<std::string, DeviceSpec> c = build_catalog();
  return c;
}

}  // namespace

const DeviceSpec& spec(const std::string& model_name) {
  const auto it = catalog().find(model_name);
  if (it == catalog().end()) {
    throw std::invalid_argument("device::spec: unknown model " + model_name);
  }
  return it->second;
}

std::vector<std::string> catalog_names() {
  std::vector<std::string> names;
  names.reserve(catalog().size());
  for (const auto& [name, _] : catalog()) names.push_back(name);
  return names;
}

std::vector<std::string> aws_fleet() {
  return {"Galaxy S6",   "Galaxy S6 Edge", "Nexus 6",
          "MotoG3",      "Moto G (4)",     "Galaxy Note5",
          "XT1096",      "Galaxy S5",      "SM-N900P",
          "Nexus 5",     "Lenovo TB-8504F", "Venue 8",
          "Moto G (2nd Gen)", "Pixel",     "HTC U11",
          "SM-G950U1",   "XT1254",         "HTC One A9",
          "Galaxy S7",   "LG-H910",        "LG-H830"};
}

std::vector<std::string> lab_fleet() {
  return {"Honor 10", "Galaxy S8", "Galaxy S7", "Galaxy S4 mini", "Xperia E3"};
}

std::vector<std::string> training_fleet() {
  return {"Galaxy S6", "Nexus 5",        "Pixel",        "Honor 9",
          "Galaxy S5", "Moto G (4)",     "Galaxy Note5", "HTC One A9",
          "Venue 8",   "Xperia E3",      "Galaxy S4 mini", "XT1096",
          "LG-H830",   "Lenovo TB-8504F", "HTC U11"};
}

}  // namespace fleet::device
