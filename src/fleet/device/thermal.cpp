#include "fleet/device/thermal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleet::device {

ThermalModel::ThermalModel(const ThermalParams& params)
    : params_(params), temperature_c_(params.ambient_c) {
  if (params.cooling_rate <= 0.0) {
    throw std::invalid_argument("ThermalModel: cooling_rate must be > 0");
  }
}

void ThermalModel::advance(double dt_s, double power_w) {
  if (dt_s < 0.0) throw std::invalid_argument("ThermalModel: negative dt");
  // Integrate in sub-steps small relative to the cooling time constant so
  // long tasks don't overshoot the equilibrium temperature.
  double remaining = dt_s;
  const double max_step = 0.5 / params_.cooling_rate;
  while (remaining > 0.0) {
    const double step = std::min(remaining, max_step);
    const double heat = params_.heat_per_watt * power_w;
    const double cool = params_.cooling_rate * (temperature_c_ - params_.ambient_c);
    temperature_c_ += step * (heat - cool);
    remaining -= step;
  }
}

double ThermalModel::throttle_factor() const {
  const double over = std::max(0.0, temperature_c_ - params_.throttle_start_c);
  return 1.0 / (1.0 + params_.throttle_slope * over);
}

double ThermalModel::noise_stddev() const {
  const double over = std::max(0.0, temperature_c_ - params_.throttle_start_c);
  return params_.hot_noise * over;
}

}  // namespace fleet::device
