#pragma once

namespace fleet::device {

/// First-order thermal model of a phone SoC.
///
/// Temperature relaxes toward ambient plus a power-dependent equilibrium:
///   dT/dt = heat_per_watt * P - cooling_rate * (T - ambient).
/// Above `throttle_start_c` the governor reduces clock speed, which is what
/// bends the time-vs-mini-batch line of Fig 4 for Honor 10 / Galaxy S7 and
/// produces the up/down hysteresis the paper observes.
struct ThermalParams {
  double ambient_c = 25.0;
  // Steady-state excess temperature is heat_per_watt / cooling_rate deg per
  // watt; the defaults give ~5 C/W (a 4 W sustained load settles ~45 C),
  // with a ~20 s time constant — typical for phone SoCs.
  double heat_per_watt = 0.25;    // deg C per second per watt
  double cooling_rate = 0.05;     // fraction of excess temperature shed per s
  double throttle_start_c = 38.0;
  double throttle_slope = 0.05;   // slowdown per degree above start
  double hot_noise = 0.0;         // extra execution-noise stddev when hot
};

class ThermalModel {
 public:
  explicit ThermalModel(const ThermalParams& params);

  double temperature_c() const { return temperature_c_; }

  /// Advance the model by dt seconds while dissipating `power_w`.
  void advance(double dt_s, double power_w);

  /// Multiplicative slowdown in (0, 1]: 1 when cool.
  double throttle_factor() const;

  /// Extra relative execution-time noise contributed by heat.
  double noise_stddev() const;

  const ThermalParams& params() const { return params_; }

 private:
  ThermalParams params_;
  double temperature_c_;
};

}  // namespace fleet::device
