#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fleet::telemetry {

/// Number of cache-line-separated cells each metric stripes its updates
/// across. Threads are assigned a cell round-robin on first touch, so up to
/// kStripes concurrent writers never share a line; beyond that they share
/// pairwise, never globally. Snapshot readers sum every cell.
inline constexpr std::size_t kMetricStripes = 16;

/// The stripe this thread writes metrics into (stable for the thread's
/// lifetime; assigned round-robin on first use).
std::size_t metric_stripe();

// ---- standard bucket layouts ---------------------------------------------

/// Latency buckets in nanoseconds: 1-2.5-5 per decade from 1us to 10s,
/// covering queue waits, fold spans and publishes on any hardware tier.
std::vector<double> latency_bounds_ns();

/// Staleness buckets (tau is a small non-negative integer under normal
/// load): unit steps to 8, then roughly x1.5 to 256.
std::vector<double> staleness_bounds();

/// Dampening-weight buckets in (0, 1]: log-ish steps so the decayed tail
/// (lambda^tau for large tau) stays resolvable.
std::vector<double> weight_bounds();

/// Drain-batch-size buckets: powers of two to 4096 (the default queue
/// capacity).
std::vector<double> batch_bounds();

/// Percentage buckets (0-100] for occupancy/fill ratios — e.g. how full a
/// planner's drain batches run against their limit ("planner.occupancy_pct").
std::vector<double> occupancy_bounds();

// ---- snapshot value types ------------------------------------------------

/// One merged histogram at a point in time. `bounds` are ascending upper
/// bounds (a value lands in the first bucket with value <= bound); the
/// final entry of `counts` is the overflow (+inf) bucket, so
/// counts.size() == bounds.size() + 1. An empty snapshot (count == 0,
/// bounds possibly empty) merges as the identity.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Approximate quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the q-th sample; the overflow bucket reports `max`.
  /// 0 when empty.
  double quantile(double q) const;

  /// Accumulate `other` into this snapshot. Both must share bucket bounds
  /// unless one side is empty (the empty side adopts the other's bounds).
  /// Mismatched non-empty bounds throw std::invalid_argument.
  void merge(const HistogramSnapshot& other);
};

/// Full registry snapshot, insertion-ordered (stable export key order).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// The named histogram, or nullptr.
  const HistogramSnapshot* histogram(const std::string& name) const;
  /// The named counter's value, or 0.
  std::uint64_t counter(const std::string& name) const;
};

// ---- live metric cells ---------------------------------------------------

/// Monotone counter: relaxed striped increments, summed at snapshot. The
/// snapshot is a consistent *per-cell* read, not a global atomic cut — by
/// design: the hot path never synchronizes with the reader.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[metric_stripe() % kMetricStripes].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t total() const;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  Cell cells_[kMetricStripes];
};

/// Last-writer-wins gauge (occupancy, depth, high-water marks). Writers are
/// expected to be rare relative to counters, so one atomic suffices.
class Gauge {
 public:
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raise-only update for high-water-mark gauges.
  void record_max(std::uint64_t v);
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket histogram with striped per-thread cells. record() is a
/// bucket search plus four relaxed atomic updates on this thread's own
/// cache line — no locks, no contention below kMetricStripes writers.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double value);
  HistogramSnapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Cell {
    explicit Cell(std::size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };

  std::size_t bucket_of(double value) const;

  std::vector<double> bounds_;
  std::deque<Cell> cells_;  // deque: Cell is not movable (atomics)
};

/// Single-writer histogram for code already serialized behind a lock or a
/// single-thread invariant (e.g. ModelSession's aggregation-side stats,
/// appended under trace_mu_): plain fields, zero atomics.
class LocalHistogram {
 public:
  explicit LocalHistogram(std::vector<double> bounds);

  void record(double value);
  HistogramSnapshot snapshot() const { return snap_; }

 private:
  HistogramSnapshot snap_;
};

// ---- registry ------------------------------------------------------------

/// Named metrics directory. Registration (startup / session-construction
/// rate) takes a mutex; the returned handles are stable pointers the hot
/// path uses lock-free for the registry's lifetime. Re-registering a name
/// returns the existing metric (histograms must agree on bounds).
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  /// Merge every metric's cells into one insertion-ordered snapshot. Each
  /// metric is internally consistent; the snapshot is not one atomic cut
  /// across metrics (the hot path never pays for one).
  MetricsSnapshot snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* find(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::deque<Entry> entries_;  // deque: handles must survive growth
};

}  // namespace fleet::telemetry
