#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "fleet/core/server.hpp"

namespace fleet::telemetry {

/// Gradient-lifecycle event vocabulary (DESIGN.md §11). A gradient's path
/// through the runtime is submit -> (reject |) dequeue -> fold -> publish;
/// the span phases wrap the aggregation loop's batch work and the fold
/// pool's tasks. Instant phases mark a point in time; complete phases carry
/// a duration in TraceEvent::a (their ts is the span's start), which maps
/// one fixed-size record to one Chrome "X" event — no begin/end pairing,
/// so overlapping sessions' spans on one thread need no nesting discipline.
enum class TracePhase : std::uint8_t {
  // instants
  kSubmit = 0,   ///< job admitted into the ingest queue (producer thread)
  kReject,       ///< job refused for capacity (backpressure)
  kDequeue,      ///< job drained by the aggregation thread; b = queue-wait ns
  kDrop,         ///< queued job dropped: its session was retired
  kFold,         ///< job's fold accounted against its session's clock
  kWireReject,   ///< malformed wire frame refused at decode; b = WireError
  kShedDrop,     ///< job lost to the overload shed policy (DESIGN.md §14):
                 ///< an evicted queued job (ticket = its retired ticket) or
                 ///< a refused incoming one (ticket = 0, never admitted)
  // complete spans (a = duration ns, ts = start)
  kDrainBatch,   ///< one drain batch end to end; b = batch size
  kSessionFold,  ///< one session's fold plan, submit -> latch; b = plan size
  kPublish,      ///< one dirty snapshot publication; b = published version
  kFoldTask,     ///< one (plan, span) task on a pool lane; b = span begin
};

/// True for span phases (duration in TraceEvent::a).
bool is_span(TracePhase phase);
const char* phase_name(TracePhase phase);

/// One fixed-size lifecycle record. 48 bytes, trivially copyable — a ring
/// slot is one struct assignment, never an allocation.
struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< steady_clock ns since the collector's epoch
  std::uint64_t ticket = 0;  ///< global admission ticket (0 when n/a)
  std::uint64_t a = 0;       ///< span duration ns (span phases), else free
  std::uint64_t b = 0;       ///< phase-specific payload (see TracePhase)
  core::ModelId model = core::kDefaultModelId;
  TracePhase phase = TracePhase::kSubmit;
};

/// A collected event plus the ring (thread) it came from.
struct TraceRecord {
  TraceEvent event;
  std::uint32_t tid = 0;
};

/// Bounded single-producer single-consumer ring of TraceEvents. The
/// producer is the one thread the ring was handed to; the consumer is the
/// collector's collect() (serialized there). A full ring drops the event
/// and counts it — the hot path never blocks on observation.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (>= 2).
  TraceRing(std::size_t capacity, std::uint32_t tid);

  /// Producer side. False (and one counted drop) when full.
  bool try_push(const TraceEvent& event);

  /// Consumer side: append everything currently in the ring to `out`
  /// (oldest first) and free the slots. Returns the number taken.
  std::size_t pop_into(std::vector<TraceRecord>& out);

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return slots_.size(); }
  std::uint32_t tid() const { return tid_; }

 private:
  std::vector<TraceEvent> slots_;
  std::uint32_t tid_;
  std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
  std::atomic<std::uint64_t> dropped_{0};
};

/// Owner of the per-thread rings. emit() finds (or lazily registers) the
/// calling thread's own ring — after the first event a thread's hot path
/// is one cached pointer plus an SPSC push, no locks. collect() drains
/// every ring; rings of exited threads stay owned here, so their tail
/// events are never lost.
class TraceCollector {
 public:
  explicit TraceCollector(std::size_t ring_capacity);

  /// steady_clock ns since this collector's construction — the timestamp
  /// base every TraceEvent::ts_ns uses.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Push one event into the calling thread's ring (dropped and counted
  /// when the ring is full).
  void emit(const TraceEvent& event) { local_ring().try_push(event); }

  /// Drain every thread's ring into one vector (per-ring chronological
  /// order preserved; rings appended in registration order). Serialized
  /// internally — any thread may call it, one at a time.
  std::vector<TraceRecord> collect();

  /// Total events dropped across all rings so far.
  std::uint64_t dropped() const;

  std::size_t ring_capacity() const { return ring_capacity_; }
  std::size_t ring_count() const;

 private:
  TraceRing& local_ring();

  const std::size_t ring_capacity_;
  const std::uint64_t collector_id_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  ///< guards ring registration + the ring list
  std::deque<std::unique_ptr<TraceRing>> rings_;
  std::uint32_t next_tid_ = 1;
  std::mutex collect_mu_;  ///< serializes consumers (SPSC per ring)
};

}  // namespace fleet::telemetry
