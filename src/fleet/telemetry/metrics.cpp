#include "fleet/telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace fleet::telemetry {

std::size_t metric_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

std::vector<double> latency_bounds_ns() {
  std::vector<double> bounds;
  for (double decade = 1e3; decade <= 1e10; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.5);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

std::vector<double> staleness_bounds() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256};
}

std::vector<double> weight_bounds() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
          0.1,  0.2,    0.3,  0.4,  0.5,    0.6,  0.7,  0.8,   0.9, 1.0};
}

std::vector<double> batch_bounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 4096.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> occupancy_bounds() {
  return {5, 10, 25, 50, 75, 90, 95, 100};
}

// ---- HistogramSnapshot ---------------------------------------------------

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t next = seen + counts[b];
    if (static_cast<double>(next) >= target) {
      if (b >= bounds.size()) return max;  // overflow bucket
      const double lo =
          b == 0 ? std::min(min, bounds[0]) : bounds[b - 1];
      const double hi = bounds[b];
      const double into =
          (target - static_cast<double>(seen)) / static_cast<double>(counts[b]);
      // Interpolate within the bucket, but never report a value outside
      // the observed range — p100 is the recorded max, not a bucket edge.
      return std::clamp(lo + (hi - lo) * std::clamp(into, 0.0, 1.0), min, max);
    }
    seen = next;
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0 && other.bounds.empty()) return;
  if (count == 0 && bounds.empty()) {
    *this = other;
    return;
  }
  if (bounds != other.bounds) {
    throw std::invalid_argument(
        "HistogramSnapshot::merge: bucket bounds mismatch");
  }
  for (std::size_t b = 0; b < counts.size(); ++b) counts[b] += other.counts[b];
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& [key, hist] : histograms) {
    if (key == name) return &hist;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

// ---- Counter / Gauge -----------------------------------------------------

std::uint64_t Counter::total() const {
  std::uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::record_max(std::uint64_t v) {
  std::uint64_t seen = value_.load(std::memory_order_relaxed);
  while (v > seen && !value_.compare_exchange_weak(
                         seen, v, std::memory_order_relaxed,
                         std::memory_order_relaxed)) {
  }
}

// ---- Histogram -----------------------------------------------------------

namespace {

/// Relaxed accumulate on an atomic double (fetch_add on floating atomics is
/// C++20 but not uniformly lock-free across libstdc++ versions; the CAS
/// loop is, on every target we build for).
void atomic_add(std::atomic<double>& cell, double v) {
  double seen = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(seen, seen + v,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& cell, double v) {
  double seen = cell.load(std::memory_order_relaxed);
  while (v < seen && !cell.compare_exchange_weak(seen, v,
                                                 std::memory_order_relaxed,
                                                 std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& cell, double v) {
  double seen = cell.load(std::memory_order_relaxed);
  while (v > seen && !cell.compare_exchange_weak(seen, v,
                                                 std::memory_order_relaxed,
                                                 std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  for (std::size_t s = 0; s < kMetricStripes; ++s) {
    cells_.emplace_back(bounds_.size() + 1);
  }
}

std::size_t Histogram::bucket_of(double value) const {
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::record(double value) {
  Cell& cell = cells_[metric_stripe() % kMetricStripes];
  cell.counts[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  atomic_add(cell.sum, value);
  atomic_min(cell.min, value);
  atomic_max(cell.max, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Cell& cell : cells_) {
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] += cell.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += cell.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, cell.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, cell.max.load(std::memory_order_relaxed));
  }
  for (const std::uint64_t c : snap.counts) snap.count += c;
  return snap;
}

// ---- LocalHistogram ------------------------------------------------------

LocalHistogram::LocalHistogram(std::vector<double> bounds) {
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument("LocalHistogram: bounds must be ascending");
  }
  snap_.bounds = std::move(bounds);
  snap_.counts.assign(snap_.bounds.size() + 1, 0);
}

void LocalHistogram::record(double value) {
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(snap_.bounds.begin(), snap_.bounds.end(), value) -
      snap_.bounds.begin());
  ++snap_.counts[b];
  ++snap_.count;
  snap_.sum += value;
  snap_.min = std::min(snap_.min, value);
  snap_.max = std::max(snap_.max, value);
}

// ---- MetricsRegistry -----------------------------------------------------

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name,
                                              Kind kind) {
  for (Entry& entry : entries_) {
    if (entry.name != name) continue;
    if (entry.kind != kind) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered as another kind");
    }
    return &entry;
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = find(name, Kind::kCounter)) return entry->counter.get();
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.kind = Kind::kCounter;
  entry.counter = std::make_unique<Counter>();
  return entry.counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = find(name, Kind::kGauge)) return entry->gauge.get();
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.kind = Kind::kGauge;
  entry.gauge = std::make_unique<Gauge>();
  return entry.gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = find(name, Kind::kHistogram)) {
    if (entry->histogram->bounds() != bounds) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' re-registered with different bounds");
    }
    return entry->histogram.get();
  }
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.kind = Kind::kHistogram;
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  return entry.histogram.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const Entry& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.emplace_back(entry.name, entry.counter->total());
        break;
      case Kind::kGauge:
        snap.gauges.emplace_back(entry.name, entry.gauge->value());
        break;
      case Kind::kHistogram:
        snap.histograms.emplace_back(entry.name, entry.histogram->snapshot());
        break;
    }
  }
  return snap;
}

}  // namespace fleet::telemetry
