#pragma once

#include <cstddef>
#include <cstdint>

#include "fleet/telemetry/metrics.hpp"
#include "fleet/telemetry/trace.hpp"

namespace fleet::telemetry {

/// Runtime knob block (RuntimeConfig::telemetry). Off by default: the
/// serving hot path then pays only the pre-existing relaxed counter
/// increments — no clock reads, no ring writes, no histogram updates.
struct TelemetryConfig {
  bool enabled = false;
  /// Per-thread trace-ring capacity in events (rounded up to a power of
  /// two). A full ring drops events and counts the drops; it never blocks.
  std::size_t trace_ring_capacity = 1u << 15;
};

/// One serving host's observability substrate: a metrics registry (named
/// counters / gauges / fixed-bucket histograms, striped cells, no hot-path
/// locks) plus a trace collector (per-thread bounded SPSC rings of
/// gradient-lifecycle events). Timing is *observed* here and never
/// consulted by any scheduling or learning decision — telemetry on/off is
/// bitwise-invisible in every model (the determinism matrix asserts it).
class Telemetry {
 public:
  explicit Telemetry(const TelemetryConfig& config = {})
      : tracer_(config.trace_ring_capacity) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceCollector& tracer() { return tracer_; }

  /// steady_clock ns since construction — the shared timestamp base.
  std::uint64_t now_ns() const { return tracer_.now_ns(); }

 private:
  MetricsRegistry metrics_;
  TraceCollector tracer_;
};

}  // namespace fleet::telemetry
