#pragma once

#include <string>
#include <vector>

#include "fleet/telemetry/metrics.hpp"
#include "fleet/telemetry/trace.hpp"

namespace fleet::telemetry {

/// Number formatting shared by every exporter: integral values print
/// without a fractional part ("42"), everything else round-trips through
/// max_digits10 ("0.25", "1e+300"). Deterministic for golden tests.
std::string format_number(double value);

/// One flat JSON object per snapshot:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"bounds": [...], "counts": [...],
///                            "count": N, "sum": S, "min": m, "max": M}}}
/// Empty histograms omit min/max (they would be infinities, which JSON
/// cannot carry). Key order is registry insertion order.
std::string metrics_to_json(const MetricsSnapshot& snapshot);

/// Prometheus text exposition (version 0.0.4). Metric names are prefixed
/// and sanitized ('.' and '-' become '_'): counters gain a _total suffix,
/// histograms expand into cumulative _bucket{le="..."} series (including
/// the +Inf bucket), _sum and _count.
std::string metrics_to_prometheus(const MetricsSnapshot& snapshot,
                                  const std::string& prefix = "fleet_");

/// Chrome trace-event JSON (the "traceEvents" array form), loadable in
/// Perfetto / chrome://tracing. Instant phases map to ph:"i" and span
/// phases to ph:"X" with their duration; each collector ring becomes one
/// tid lane. Timestamps are microseconds since the collector epoch.
std::string trace_to_chrome_json(const std::vector<TraceRecord>& records);

}  // namespace fleet::telemetry
