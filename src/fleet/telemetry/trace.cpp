#include "fleet/telemetry/trace.hpp"

#include <utility>

namespace fleet::telemetry {

bool is_span(TracePhase phase) {
  switch (phase) {
    case TracePhase::kDrainBatch:
    case TracePhase::kSessionFold:
    case TracePhase::kPublish:
    case TracePhase::kFoldTask:
      return true;
    default:
      return false;
  }
}

const char* phase_name(TracePhase phase) {
  switch (phase) {
    case TracePhase::kSubmit:
      return "submit";
    case TracePhase::kReject:
      return "reject";
    case TracePhase::kDequeue:
      return "dequeue";
    case TracePhase::kDrop:
      return "drop";
    case TracePhase::kFold:
      return "fold";
    case TracePhase::kWireReject:
      return "wire_reject";
    case TracePhase::kShedDrop:
      return "shed_drop";
    case TracePhase::kDrainBatch:
      return "drain_batch";
    case TracePhase::kSessionFold:
      return "session_fold";
    case TracePhase::kPublish:
      return "publish";
    case TracePhase::kFoldTask:
      return "fold_task";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity, std::uint32_t tid)
    : slots_(round_up_pow2(capacity)), tid_(tid) {}

bool TraceRing::try_push(const TraceEvent& event) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[tail & (slots_.size() - 1)] = event;
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

std::size_t TraceRing::pop_into(std::vector<TraceRecord>& out) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::size_t taken = static_cast<std::size_t>(tail - head);
  out.reserve(out.size() + taken);
  for (std::uint64_t i = head; i != tail; ++i) {
    out.push_back(TraceRecord{slots_[i & (slots_.size() - 1)], tid_});
  }
  head_.store(tail, std::memory_order_release);
  return taken;
}

namespace {

std::uint64_t next_collector_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceCollector::TraceCollector(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity),
      collector_id_(next_collector_id()),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRing& TraceCollector::local_ring() {
  // Keyed by a process-unique collector id, never by address: a cache entry
  // for a destroyed collector can then never alias a live one that reused
  // its storage. The cache grows by one entry per (thread, collector) pair
  // the thread ever emits into — bytes per server, not per event.
  struct CacheEntry {
    std::uint64_t collector_id;
    TraceRing* ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.collector_id == collector_id_) return *entry.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<TraceRing>(ring_capacity_, next_tid_++));
  TraceRing* ring = rings_.back().get();
  cache.push_back(CacheEntry{collector_id_, ring});
  return *ring;
}

std::vector<TraceRecord> TraceCollector::collect() {
  std::lock_guard<std::mutex> consumer(collect_mu_);
  std::vector<TraceRecord> out;
  // Snapshot the ring list under mu_, then drain outside it: a thread
  // registering a new ring mid-collect is picked up by the next collect.
  std::vector<TraceRing*> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings.reserve(rings_.size());
    for (const auto& ring : rings_) rings.push_back(ring.get());
  }
  for (TraceRing* ring : rings) ring->pop_into(out);
  return out;
}

std::uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

std::size_t TraceCollector::ring_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

}  // namespace fleet::telemetry
