#include "fleet/telemetry/export.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace fleet::telemetry {

std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  return buf;
}

namespace {

std::string quote(const std::string& s) {
  // Metric names are code-chosen identifiers; escape the JSON specials
  // anyway so a hostile name cannot break the document.
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void append_histogram_json(std::ostringstream& out,
                           const HistogramSnapshot& hist) {
  out << "{\"bounds\":[";
  for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
    if (i > 0) out << ',';
    out << format_number(hist.bounds[i]);
  }
  out << "],\"counts\":[";
  for (std::size_t i = 0; i < hist.counts.size(); ++i) {
    if (i > 0) out << ',';
    out << hist.counts[i];
  }
  out << "],\"count\":" << hist.count
      << ",\"sum\":" << format_number(hist.sum);
  if (hist.count > 0) {
    out << ",\"min\":" << format_number(hist.min)
        << ",\"max\":" << format_number(hist.max);
  }
  out << '}';
}

std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out += (c == '.' || c == '-') ? '_' : c;
  }
  return out;
}

}  // namespace

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ',';
    out << quote(snapshot.counters[i].first) << ':'
        << snapshot.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ',';
    out << quote(snapshot.gauges[i].first) << ':' << snapshot.gauges[i].second;
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) out << ',';
    out << quote(snapshot.histograms[i].first) << ':';
    append_histogram_json(out, snapshot.histograms[i].second);
  }
  out << "}}";
  return out.str();
}

std::string metrics_to_prometheus(const MetricsSnapshot& snapshot,
                                  const std::string& prefix) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string id = prefix + sanitize(name);
    out << "# TYPE " << id << "_total counter\n"
        << id << "_total " << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string id = prefix + sanitize(name);
    out << "# TYPE " << id << " gauge\n" << id << ' ' << value << '\n';
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string id = prefix + sanitize(name);
    out << "# TYPE " << id << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
      cumulative += hist.counts[b];
      out << id << "_bucket{le=\"" << format_number(hist.bounds[b]) << "\"} "
          << cumulative << '\n';
    }
    out << id << "_bucket{le=\"+Inf\"} " << hist.count << '\n'
        << id << "_sum " << format_number(hist.sum) << '\n'
        << id << "_count " << hist.count << '\n';
  }
  return out.str();
}

std::string trace_to_chrome_json(const std::vector<TraceRecord>& records) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceRecord& record : records) {
    const TraceEvent& ev = record.event;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << phase_name(ev.phase) << "\",\"ph\":\""
        << (is_span(ev.phase) ? 'X' : 'i') << "\",\"ts\":"
        << format_number(static_cast<double>(ev.ts_ns) / 1000.0)
        << ",\"pid\":1,\"tid\":" << record.tid;
    if (is_span(ev.phase)) {
      out << ",\"dur\":"
          << format_number(static_cast<double>(ev.a) / 1000.0);
    } else {
      out << ",\"s\":\"t\"";
    }
    out << ",\"args\":{\"ticket\":" << ev.ticket << ",\"model\":" << ev.model
        << ",\"b\":" << ev.b << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace fleet::telemetry
