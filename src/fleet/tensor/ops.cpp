#include "fleet/tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

namespace fleet::tensor {

namespace {

void require_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(name) + ": rank-2 tensor required");
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul");
  require_rank2(b, "matmul");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_at_b(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_at_b");
  require_rank2(b, "matmul_at_b");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul_at_b: inner dim mismatch");
  }
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    const float* brow = pb + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_a_bt(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_a_bt");
  require_rank2(b, "matmul_a_bt");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("matmul_a_bt: inner dim mismatch");
  }
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float s = 0.0f;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      pc[i * n + j] = s;
    }
  }
  return c;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  axpy(alpha, x.flat(), y.flat());
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

void scale(Tensor& x, float alpha) {
  scale(x.flat(), alpha);
}

void scale(std::span<float> x, float alpha) {
  float* p = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) p[i] *= alpha;
}

Tensor add(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("add: shape mismatch");
  }
  Tensor c = a;
  axpy(1.0f, b, c);
  return c;
}

double squared_norm(const Tensor& x) {
  double s = 0.0;
  const float* p = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    s += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  }
  return s;
}

void fill_gaussian(Tensor& x, stats::Rng& rng, float stddev) {
  float* p = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    p[i] = static_cast<float>(rng.gaussian(0.0, stddev));
  }
}

void fill_uniform(Tensor& x, stats::Rng& rng, float limit) {
  float* p = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    p[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_abs_diff: size mismatch");
  }
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace fleet::tensor
