#include "fleet/tensor/ops.hpp"

#include <stdexcept>

#include "fleet/tensor/kernels/kernels.hpp"

namespace fleet::tensor {

namespace {

void require_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(name) + ": rank-2 tensor required");
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul");
  require_rank2(b, "matmul");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});  // zero-initialized; the kernel accumulates into it
  kernels::active().matmul(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_at_b(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_at_b");
  require_rank2(b, "matmul_at_b");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul_at_b: inner dim mismatch");
  }
  Tensor c({m, n});
  kernels::active().matmul_at_b(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_a_bt(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_a_bt");
  require_rank2(b, "matmul_a_bt");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("matmul_a_bt: inner dim mismatch");
  }
  Tensor c({m, n});
  kernels::active().matmul_a_bt(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  axpy(alpha, x.flat(), y.flat());
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  kernels::active().axpy(alpha, x.data(), y.data(), x.size());
}

void scale(Tensor& x, float alpha) {
  scale(x.flat(), alpha);
}

void scale(std::span<float> x, float alpha) {
  kernels::active().scale(x.data(), alpha, x.size());
}

Tensor add(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("add: shape mismatch");
  }
  Tensor c(a.shape());
  kernels::active().add(a.data(), b.data(), c.data(), a.size());
  return c;
}

double squared_norm(const Tensor& x) {
  return squared_norm(x.flat());
}

double squared_norm(std::span<const float> x) {
  return kernels::active().squared_norm(x.data(), x.size());
}

void fill_gaussian(Tensor& x, stats::Rng& rng, float stddev) {
  float* p = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    p[i] = static_cast<float>(rng.gaussian(0.0, stddev));
  }
}

void fill_uniform(Tensor& x, stats::Rng& rng, float limit) {
  float* p = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    p[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_abs_diff: size mismatch");
  }
  return kernels::active().max_abs_diff(a.data(), b.data(), a.size());
}

}  // namespace fleet::tensor
