#include "fleet/tensor/tensor.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace fleet::tensor {

std::size_t Tensor::shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string Tensor::shape_string(const std::vector<std::size_t>& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << "x";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_size(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape " +
                                shape_string(shape_));
  }
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

float& Tensor::at2(std::size_t row, std::size_t col) {
  if (rank() != 2) throw std::logic_error("Tensor::at2 requires rank 2");
  if (row >= shape_[0] || col >= shape_[1]) {
    throw std::out_of_range("Tensor::at2 out of range");
  }
  return data_[row * shape_[1] + col];
}

float Tensor::at2(std::size_t row, std::size_t col) const {
  return const_cast<Tensor*>(this)->at2(row, col);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  if (shape_size(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch " +
                                shape_string(shape));
  }
  shape_ = std::move(shape);
}

}  // namespace fleet::tensor
