#include "fleet/tensor/tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace fleet::tensor {

std::size_t Tensor::shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string Tensor::shape_string(const std::vector<std::size_t>& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << "x";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), owned_(shape_size(shape_), 0.0f) {
  ptr_ = owned_.data();
  size_ = owned_.size();
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), owned_(std::move(data)) {
  if (owned_.size() != shape_size(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape " +
                                shape_string(shape_));
  }
  ptr_ = owned_.data();
  size_ = owned_.size();
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  // Copying a view materializes: the copy always owns its data.
  owned_.assign(other.ptr_, other.ptr_ + other.size_);
  ptr_ = owned_.data();
  size_ = other.size_;
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  owned_.assign(other.ptr_, other.ptr_ + other.size_);
  ptr_ = owned_.data();
  size_ = other.size_;
  external_ = false;
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      owned_(std::move(other.owned_)),
      ptr_(other.ptr_),
      size_(other.size_),
      external_(other.external_) {
  other.shape_.clear();
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.external_ = false;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = std::move(other.shape_);
  owned_ = std::move(other.owned_);
  ptr_ = other.ptr_;
  size_ = other.size_;
  external_ = other.external_;
  other.shape_.clear();
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.external_ = false;
  return *this;
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

float& Tensor::at(std::size_t i) {
  if (i >= size_) throw std::out_of_range("Tensor::at out of range");
  return ptr_[i];
}

float Tensor::at(std::size_t i) const {
  return const_cast<Tensor*>(this)->at(i);
}

float& Tensor::at2(std::size_t row, std::size_t col) {
  if (rank() != 2) throw std::logic_error("Tensor::at2 requires rank 2");
  if (row >= shape_[0] || col >= shape_[1]) {
    throw std::out_of_range("Tensor::at2 out of range");
  }
  return ptr_[row * shape_[1] + col];
}

float Tensor::at2(std::size_t row, std::size_t col) const {
  return const_cast<Tensor*>(this)->at2(row, col);
}

void Tensor::fill(float value) {
  std::fill(ptr_, ptr_ + size_, value);
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  if (shape_size(shape) != size_) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch " +
                                shape_string(shape));
  }
  shape_ = std::move(shape);
}

void Tensor::rebind(float* storage) {
  if (storage == nullptr && size_ != 0) {
    throw std::invalid_argument("Tensor::rebind: null storage");
  }
  if (storage == ptr_) {
    if (!external_ && size_ != 0) {
      // Adopting our own owned buffer would free the memory out from under
      // the "view" — the caller must supply storage it owns.
      throw std::invalid_argument(
          "Tensor::rebind: storage aliases this tensor's owned buffer");
    }
    return;  // already viewing that memory
  }
  std::copy(ptr_, ptr_ + size_, storage);
  owned_.clear();
  owned_.shrink_to_fit();
  ptr_ = storage;
  external_ = true;
}

}  // namespace fleet::tensor
