#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace fleet::tensor {

/// Dense row-major float32 tensor.
///
/// This is the minimal linear-algebra substrate the FLeet CNN/RNN library
/// (DESIGN.md §2) is built on. It is deliberately simple: value-semantic,
/// contiguous storage, with shape checked at API boundaries.
///
/// Storage is either *owned* (the default) or a *view* over external memory
/// established with rebind(). Views let a model consolidate the parameter
/// tensors of all its layers into one contiguous arena (DESIGN.md §4) so
/// the federated core can ship flat snapshots without per-layer gathers.
/// Copying a view materializes it into owned storage, so tensors keep value
/// semantics regardless of where their data lives; the owner of the external
/// arena must outlive every view bound to it.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;

  static Tensor zeros(std::vector<std::size_t> shape);
  static Tensor full(std::vector<std::size_t> shape, float value);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t axis) const { return shape_.at(axis); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  std::span<float> flat() { return {ptr_, size_}; }
  std::span<const float> flat() const { return {ptr_, size_}; }

  float& operator[](std::size_t i) { return ptr_[i]; }
  float operator[](std::size_t i) const { return ptr_[i]; }

  /// Bounds-checked element access.
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// 2-D indexed access (throws unless rank()==2).
  float& at2(std::size_t row, std::size_t col);
  float at2(std::size_t row, std::size_t col) const;

  void fill(float value);
  /// Reshape in place; total element count must be preserved.
  void reshape(std::vector<std::size_t> shape);

  /// True when the storage is a view over external memory.
  bool is_view() const { return external_; }

  /// Move this tensor's contents into `storage` (which must hold size()
  /// floats, owned by the caller and outliving this tensor) and adopt it as
  /// the backing memory. Subsequent reads and writes go through `storage`.
  void rebind(float* storage);

  /// Element count implied by a shape.
  static std::size_t shape_size(const std::vector<std::size_t>& shape);
  static std::string shape_string(const std::vector<std::size_t>& shape);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> owned_;
  float* ptr_ = nullptr;
  std::size_t size_ = 0;
  bool external_ = false;
};

}  // namespace fleet::tensor
