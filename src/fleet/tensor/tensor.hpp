#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace fleet::tensor {

/// Dense row-major float32 tensor.
///
/// This is the minimal linear-algebra substrate the FLeet CNN/RNN library
/// (S2/S3 in DESIGN.md) is built on. It is deliberately simple: owning,
/// value-semantic, contiguous storage, with shape checked at API boundaries.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  static Tensor zeros(std::vector<std::size_t> shape);
  static Tensor full(std::vector<std::size_t> shape, float value);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t axis) const { return shape_.at(axis); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked element access.
  float& at(std::size_t i) { return data_.at(i); }
  float at(std::size_t i) const { return data_.at(i); }

  /// 2-D indexed access (throws unless rank()==2).
  float& at2(std::size_t row, std::size_t col);
  float at2(std::size_t row, std::size_t col) const;

  void fill(float value);
  /// Reshape in place; total element count must be preserved.
  void reshape(std::vector<std::size_t> shape);

  /// Element count implied by a shape.
  static std::size_t shape_size(const std::vector<std::size_t>& shape);
  static std::string shape_string(const std::vector<std::size_t>& shape);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace fleet::tensor
