#pragma once

// Internal registry glue between the dispatch layer (kernels.cpp) and the
// per-backend translation units. Not part of the public kernel API.

#include <cstddef>

#include "fleet/tensor/kernels/kernels.hpp"

namespace fleet::tensor::kernels::detail {

/// The scalar reference table — always present, defines the numerical
/// contract every other backend is tested against.
const KernelTable& portable_table();

/// The AVX2 table, or nullptr when it was not compiled in
/// (FLEET_ENABLE_AVX2=OFF / non-x86 build) or this CPU lacks AVX2.
const KernelTable* avx2_table();

/// The NEON table, or nullptr when not compiled in (non-aarch64 build).
const KernelTable* neon_table();

/// Order-pinned reductions shared by every backend (DESIGN.md §10: the
/// accumulation order of reductions that feed control decisions is part
/// of the kernel contract, so these have exactly one definition —
/// compiled without auto-vectorization in portable.cpp).
double squared_norm_pinned(const float* x, std::size_t n);
double bhattacharyya_pinned(const double* p, const double* q, double denom,
                            std::size_t n);

}  // namespace fleet::tensor::kernels::detail
