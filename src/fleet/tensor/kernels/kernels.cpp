// Runtime kernel dispatch (DESIGN.md §10). Selection happens once, at
// first use: an explicit pin (config / tests) wins, else the FLEET_KERNEL
// environment variable, else the best backend the CPU supports. After
// that, every op is one atomic acquire-load of the active table — the
// backend never drifts mid-run, because summation order is part of the
// determinism contract.
#include "fleet/tensor/kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "fleet/tensor/kernels/backend_tables.hpp"

namespace fleet::tensor::kernels {

namespace {

std::atomic<const KernelTable*> g_active{nullptr};
std::mutex g_select_mu;
// Guarded by g_select_mu for writes; the string is only read through
// selection_source(), which takes the lock.
std::string g_source = "detected";

const KernelTable* table_or_null(Backend backend) {
  switch (backend) {
    case Backend::kPortable:
      return &detail::portable_table();
    case Backend::kAvx2:
      return detail::avx2_table();
    case Backend::kNeon:
      return detail::neon_table();
    case Backend::kAuto:
      return nullptr;
  }
  return nullptr;
}

/// Best backend this CPU supports: SIMD when present, scalar otherwise.
const KernelTable& detect_best() {
  if (const KernelTable* avx2 = detail::avx2_table()) return *avx2;
  if (const KernelTable* neon = detail::neon_table()) return *neon;
  return detail::portable_table();
}

/// The startup selection: FLEET_KERNEL env override (ignored with a fall
/// back to detection when it names an unavailable backend — a portable
/// binary must not crash on a stale env var), else detection.
const KernelTable& startup_selection(std::string* source) {
  if (const char* env = std::getenv("FLEET_KERNEL")) {
    if (const auto parsed = parse_backend(env)) {
      if (*parsed != Backend::kAuto) {
        if (const KernelTable* t = table_or_null(*parsed)) {
          *source = "env";
          return *t;
        }
      }
    }
  }
  *source = "detected";
  return detect_best();
}

const KernelTable& select_if_needed() {
  if (const KernelTable* t = g_active.load(std::memory_order_acquire)) {
    return *t;
  }
  std::lock_guard<std::mutex> lock(g_select_mu);
  if (const KernelTable* t = g_active.load(std::memory_order_acquire)) {
    return *t;
  }
  std::string source;
  const KernelTable& chosen = startup_selection(&source);
  g_source = source;
  g_active.store(&chosen, std::memory_order_release);
  return chosen;
}

}  // namespace

bool available(Backend backend) {
  return backend != Backend::kAuto && table_or_null(backend) != nullptr;
}

const KernelTable& table(Backend backend) {
  if (backend == Backend::kAuto) {
    throw std::invalid_argument(
        "kernels::table: kAuto is a selection request, not a backend");
  }
  if (const KernelTable* t = table_or_null(backend)) return *t;
  throw std::invalid_argument("kernels::table: backend '" +
                              std::string(name(backend)) +
                              "' is not available on this build/CPU");
}

const KernelTable& active() { return select_if_needed(); }

Backend active_backend() {
  const KernelTable& t = active();
  if (&t == detail::avx2_table()) return Backend::kAvx2;
  if (&t == detail::neon_table()) return Backend::kNeon;
  return Backend::kPortable;
}

void pin_backend(Backend backend) {
  std::lock_guard<std::mutex> lock(g_select_mu);
  if (backend == Backend::kAuto) {
    std::string source;
    const KernelTable& chosen = startup_selection(&source);
    g_source = source;
    g_active.store(&chosen, std::memory_order_release);
    return;
  }
  const KernelTable* t = table_or_null(backend);
  if (t == nullptr) {
    throw std::invalid_argument("kernels::pin_backend: backend '" +
                                std::string(name(backend)) +
                                "' is not available on this build/CPU");
  }
  g_source = "pinned";
  g_active.store(t, std::memory_order_release);
}

std::string selection_source() {
  active();  // force a selection so the source is meaningful
  std::lock_guard<std::mutex> lock(g_select_mu);
  return g_source;
}

std::string_view name(Backend backend) {
  switch (backend) {
    case Backend::kAuto:
      return "auto";
    case Backend::kPortable:
      return "portable";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view text) {
  if (text.empty() || text == "auto") return Backend::kAuto;
  if (text == "portable" || text == "scalar") return Backend::kPortable;
  if (text == "avx2") return Backend::kAvx2;
  if (text == "neon") return Backend::kNeon;
  return std::nullopt;
}

}  // namespace fleet::tensor::kernels
