// Portable scalar backend: the reference implementation every SIMD backend
// is parity-tested against, and the fallback on CPUs (or builds) without
// one. This file is compiled with auto-vectorization disabled (see the
// root CMakeLists) so the fallback stays an honest scalar baseline and the
// order-pinned reductions below keep their documented sequential
// accumulation order no matter what the optimizer would infer.
//
// Numerical contract (DESIGN.md §10): these loops DEFINE the per-element
// operation sequence. Elementwise kernels do one mul + one add per
// contribution; the accumulate-GEMMs feed each output element its k
// contributions in ascending order; reductions accumulate sequentially in
// ascending index order in double precision.
#include <cmath>

#include "fleet/tensor/kernels/backend_tables.hpp"

namespace fleet::tensor::kernels::detail {

namespace {

// Cache block over the reduction dimension: one block of B rows (~240 x n
// floats) stays L2-resident while every output row sweeps it. Blocking
// only reorders which (i, p) pairs are *visited* when — each output
// element still receives its p contributions in ascending order, which is
// what keeps the blocked GEMM bitwise identical to the naive triple loop.
constexpr std::size_t kBlockK = 240;

void axpy_portable(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale_portable(float* x, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void add_portable(const float* a, const float* b, float* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
}

float max_abs_diff_portable(const float* a, const float* b, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = std::fabs(a[i] - b[i]);
    if (d > m) m = d;
  }
  return m;
}

void matmul_portable(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) {
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t p1 = p0 + kBlockK < k ? p0 + kBlockK : k;
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (std::size_t p = p0; p < p1; ++p) {
        const float av = a[i * k + p];
        if (av == 0.0f) continue;  // im2col columns are often sparse
        const float* brow = b + p * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void matmul_at_b_portable(const float* a, const float* b, float* c,
                          std::size_t m, std::size_t k, std::size_t n) {
  // A is (k x m): C += A^T B walks A's rows once, accumulating rank-1
  // updates — ascending p per output element.
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_a_bt_portable(const float* a, const float* b, float* c,
                          std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float s = 0.0f;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      c[i * n + j] += s;
    }
  }
}

}  // namespace

double squared_norm_pinned(const float* x, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return s;
}

double bhattacharyya_pinned(const double* p, const double* q, double denom,
                            std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s += std::sqrt(p[i] * q[i] / denom);
  }
  return s;
}

const KernelTable& portable_table() {
  static const KernelTable t{
      "portable",
      axpy_portable,
      scale_portable,
      add_portable,
      max_abs_diff_portable,
      squared_norm_pinned,
      bhattacharyya_pinned,
      matmul_portable,
      matmul_at_b_portable,
      matmul_a_bt_portable,
  };
  return t;
}

}  // namespace fleet::tensor::kernels::detail
