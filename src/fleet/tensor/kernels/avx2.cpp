// AVX2 backend (x86-64). Compiled with -mavx2 -mfma -ffp-contract=off when
// FLEET_ENABLE_AVX2 is on; registered only when the running CPU reports
// AVX2 (__builtin_cpu_supports), so a binary built here stays safe on an
// older machine — it just selects the portable table.
//
// Bitwise discipline (DESIGN.md §10): the elementwise kernels and the
// accumulate-GEMMs use explicit mul-then-add vectors — NOT fmadd — so each
// lane performs the identical two-rounding sequence the portable scalar
// loop does, making them bitwise equal to portable for any input. FMA is
// used only inside matmul_a_bt's dot-product reduction, which the kernel
// contract already scopes as ULP-close (not bitwise) across backends. The
// order-pinned reductions (squared_norm, bhattacharyya) delegate to the
// shared sequential implementations.
#include "fleet/tensor/kernels/backend_tables.hpp"

#if defined(FLEET_HAVE_AVX2)
#include <immintrin.h>

#include <cmath>

namespace fleet::tensor::kernels::detail {

namespace {

constexpr std::size_t kBlockK = 240;  // same blocking as portable

void axpy_avx2(float alpha, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale_avx2(float* x, float alpha, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void add_avx2(const float* a, const float* b, float* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        c + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) c[i] = a[i] + b[i];
}

float max_abs_diff_avx2(const float* a, const float* b, std::size_t n) {
  // max is order-independent (no NaN inputs by contract), so a lane-wise
  // max followed by a horizontal max equals the sequential scan exactly.
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 vm = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    vm = _mm256_max_ps(vm, _mm256_andnot_ps(sign_mask, d));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vm);
  float m = 0.0f;
  for (float lane : lanes) {
    if (lane > m) m = lane;
  }
  for (; i < n; ++i) {
    const float d = std::fabs(a[i] - b[i]);
    if (d > m) m = d;
  }
  return m;
}

/// crow[0..n) += av * brow[0..n), the rank-1 row update both accumulate-
/// GEMMs are built from. mul + add keeps every element's two-rounding
/// sequence identical to scalar.
inline void row_update(float av, const float* brow, float* crow,
                       std::size_t n) {
  const __m256 va = _mm256_set1_ps(av);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vb = _mm256_loadu_ps(brow + j);
    const __m256 vc = _mm256_loadu_ps(crow + j);
    _mm256_storeu_ps(crow + j, _mm256_add_ps(vc, _mm256_mul_ps(va, vb)));
  }
  for (; j < n; ++j) crow[j] += av * brow[j];
}

void matmul_avx2(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n) {
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t p1 = p0 + kBlockK < k ? p0 + kBlockK : k;
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (std::size_t p = p0; p < p1; ++p) {
        const float av = a[i * k + p];
        if (av == 0.0f) continue;
        row_update(av, b + p * n, crow, n);
      }
    }
  }
}

void matmul_at_b_avx2(const float* a, const float* b, float* c, std::size_t m,
                      std::size_t k, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      row_update(av, brow, c + i * n, n);
    }
  }
}

void matmul_a_bt_avx2(const float* a, const float* b, float* c, std::size_t m,
                      std::size_t k, std::size_t n) {
  // Dot-product GEMM: 8 lane partial sums combined in a fixed order —
  // deterministic for this backend, ULP-close to portable (contract).
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      __m256 acc = _mm256_setzero_ps();
      std::size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                              _mm256_loadu_ps(brow + p), acc);
      }
      // Fixed combine order: (lo+hi) pairwise, then sequential tail.
      const __m128 lo = _mm256_castps256_ps128(acc);
      const __m128 hi = _mm256_extractf128_ps(acc, 1);
      __m128 s4 = _mm_add_ps(lo, hi);
      __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
      __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1));
      float s = _mm_cvtss_f32(s1);
      for (; p < k; ++p) s += arow[p] * brow[p];
      c[i * n + j] += s;
    }
  }
}

}  // namespace

const KernelTable* avx2_table() {
  if (!__builtin_cpu_supports("avx2")) return nullptr;
  static const KernelTable t{
      "avx2",
      axpy_avx2,
      scale_avx2,
      add_avx2,
      max_abs_diff_avx2,
      squared_norm_pinned,     // order-pinned reduction, shared
      bhattacharyya_pinned,    // order-pinned reduction, shared
      matmul_avx2,
      matmul_at_b_avx2,
      matmul_a_bt_avx2,
  };
  return &t;
}

}  // namespace fleet::tensor::kernels::detail

#else  // !FLEET_HAVE_AVX2

namespace fleet::tensor::kernels::detail {

const KernelTable* avx2_table() { return nullptr; }

}  // namespace fleet::tensor::kernels::detail

#endif
