#include "fleet/tensor/kernels/scratch.hpp"

#include <atomic>
#include <cstdint>

namespace fleet::tensor::kernels {

namespace {

std::atomic<std::size_t> g_global_bytes_peak{0};

void raise_global_peak(std::size_t candidate) {
  std::size_t seen = g_global_bytes_peak.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !g_global_bytes_peak.compare_exchange_weak(
             seen, candidate, std::memory_order_relaxed)) {
  }
}

std::size_t align_up(std::size_t value, std::size_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace

ScratchAllocator& ScratchAllocator::tls() {
  thread_local ScratchAllocator arena;
  return arena;
}

std::size_t ScratchAllocator::global_bytes_peak() {
  return g_global_bytes_peak.load(std::memory_order_relaxed);
}

void* ScratchAllocator::raw(std::size_t bytes) {
  if (current_slab_ < slabs_.size()) {
    Slab& slab = slabs_[current_slab_];
    const auto base = reinterpret_cast<std::uintptr_t>(slab.data.get());
    const std::size_t start =
        align_up(static_cast<std::size_t>(base) + offset_, kAlignment) -
        static_cast<std::size_t>(base);
    if (start + bytes <= slab.capacity) {
      offset_ = start + bytes;
      bytes_in_use_ += bytes;
      if (bytes_in_use_ > bytes_peak_) {
        bytes_peak_ = bytes_in_use_;
        raise_global_peak(bytes_peak_);
      }
      return slab.data.get() + start;
    }
  }
  return allocate_slow(bytes);
}

void* ScratchAllocator::allocate_slow(std::size_t bytes) {
  // Advance through already-owned slabs before growing: a rewound scope
  // re-walks the same slab sequence, so steady state allocates nothing.
  std::size_t next = current_slab_ < slabs_.size() ? current_slab_ + 1 : 0;
  while (next < slabs_.size()) {
    // A fresh slab bumps from 0; base is 16-byte aligned from new[], the
    // +kAlignment headroom below guarantees the aligned start still fits.
    if (align_up(bytes, kAlignment) + kAlignment <= slabs_[next].capacity) {
      current_slab_ = next;
      offset_ = 0;
      return raw(bytes);
    }
    ++next;
  }
  // Grow: geometric, never moving existing slabs (spans stay valid).
  std::size_t capacity = kMinSlabBytes;
  if (!slabs_.empty()) capacity = slabs_.back().capacity * 2;
  const std::size_t needed = align_up(bytes, kAlignment) + kAlignment;
  while (capacity < needed) capacity *= 2;
  slabs_.push_back(Slab{std::make_unique<std::byte[]>(capacity), capacity});
  ++slab_growths_;
  bytes_reserved_ += capacity;
  current_slab_ = slabs_.size() - 1;
  offset_ = 0;
  return raw(bytes);
}

}  // namespace fleet::tensor::kernels
