// NEON backend (aarch64). NEON is architecturally guaranteed on aarch64,
// so there is no runtime feature probe — the table exists whenever the
// build targets aarch64 with FLEET_ENABLE_NEON on.
//
// Bitwise discipline mirrors the AVX2 backend: explicit vmulq + vaddq (NOT
// vmlaq/vfmaq, which fuse) so every lane performs the portable loop's
// two-rounding sequence. The GEMMs and order-pinned reductions delegate to
// the portable implementations — this backend vectorizes the flat-span
// fold path (axpy/scale/add/max_abs_diff), which is what the aggregation
// runtime hammers; widening it to the GEMMs is a follow-up that needs
// aarch64 hardware to validate against the parity suite.
#include "fleet/tensor/kernels/backend_tables.hpp"

#if defined(FLEET_HAVE_NEON) && defined(__aarch64__)
#include <arm_neon.h>

#include <cmath>

namespace fleet::tensor::kernels::detail {

namespace {

void axpy_neon(float alpha, const float* x, float* y, std::size_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t vx = vld1q_f32(x + i);
    const float32x4_t vy = vld1q_f32(y + i);
    vst1q_f32(y + i, vaddq_f32(vy, vmulq_f32(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale_neon(float* x, float alpha, std::size_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmulq_f32(vld1q_f32(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void add_neon(const float* a, const float* b, float* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(c + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) c[i] = a[i] + b[i];
}

float max_abs_diff_neon(const float* a, const float* b, std::size_t n) {
  float32x4_t vm = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    vm = vmaxq_f32(vm, vabsq_f32(d));
  }
  float m = vmaxvq_f32(vm);
  for (; i < n; ++i) {
    const float d = std::fabs(a[i] - b[i]);
    if (d > m) m = d;
  }
  return m;
}

}  // namespace

const KernelTable* neon_table() {
  static const KernelTable t{
      "neon",
      axpy_neon,
      scale_neon,
      add_neon,
      max_abs_diff_neon,
      squared_norm_pinned,
      bhattacharyya_pinned,
      portable_table().matmul,
      portable_table().matmul_at_b,
      portable_table().matmul_a_bt,
  };
  return &t;
}

}  // namespace fleet::tensor::kernels::detail

#else  // !(FLEET_HAVE_NEON && __aarch64__)

namespace fleet::tensor::kernels::detail {

const KernelTable* neon_table() { return nullptr; }

}  // namespace fleet::tensor::kernels::detail

#endif
