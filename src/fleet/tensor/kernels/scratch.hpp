#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace fleet::tensor::kernels {

/// Per-thread arena for kernel temporaries (DESIGN.md §10): im2col
/// matrices, col2im staging, reduction staging — anything a hot loop
/// needs for the duration of one call. Extends PR 5's no-allocation drain
/// path down into the arithmetic: after warm-up, matmul/conv temporaries
/// come out of slabs this arena already owns, so the steady-state hot
/// loop never touches the heap.
///
/// Usage is strictly scoped:
///
///   auto& scratch = ScratchAllocator::tls();
///   ScratchAllocator::Scope scope(scratch);
///   std::span<float> col = scratch.floats(k * l);
///   ... use col ...
///   // scope destructor releases everything allocated inside it
///
/// Allocation is a bump pointer over a list of stable slabs: a request
/// that does not fit the current slab opens a new one (geometric growth,
/// never moving existing slabs), so spans handed out earlier in the scope
/// stay valid — unlike a std::vector arena, which would invalidate them
/// on growth. Scope exit rewinds the bump state; slabs are retained for
/// reuse. Scopes nest (each rewinds to its own entry point).
///
/// Ownership/lifetime rules (the §10 contract):
///  - a span is valid until its enclosing Scope is destroyed, no longer;
///  - never hold scratch across a call that may itself take a Scope and
///    return (re-entrancy is fine — nested scopes — but escaping isn't);
///  - the arena is thread-local: spans must not cross threads.
///
/// Not thread-safe (by design — one arena per thread via tls()); the
/// global peak gauge below is the only cross-thread state.
class ScratchAllocator {
 public:
  ScratchAllocator() = default;
  ScratchAllocator(const ScratchAllocator&) = delete;
  ScratchAllocator& operator=(const ScratchAllocator&) = delete;

  /// This thread's arena.
  static ScratchAllocator& tls();

  /// RAII rewind point. Every allocation made while a Scope is alive is
  /// released (for reuse, not to the heap) when it is destroyed.
  class Scope {
   public:
    explicit Scope(ScratchAllocator& arena)
        : arena_(arena),
          slab_(arena.current_slab_),
          offset_(arena.offset_),
          in_use_(arena.bytes_in_use_) {}
    ~Scope() {
      arena_.current_slab_ = slab_;
      arena_.offset_ = offset_;
      arena_.bytes_in_use_ = in_use_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchAllocator& arena_;
    std::size_t slab_;
    std::size_t offset_;
    std::size_t in_use_;
  };

  /// `n` floats, 64-byte aligned, zero-INITIALIZATION NOT performed.
  std::span<float> floats(std::size_t n) {
    return {static_cast<float*>(raw(n * sizeof(float))), n};
  }

  /// `n` doubles, 64-byte aligned, uninitialized.
  std::span<double> doubles(std::size_t n) {
    return {static_cast<double*>(raw(n * sizeof(double))), n};
  }

  /// Monotone gauges for the zero-steady-state-growth regression tests
  /// (mirrors RuntimeStats::fold_buffer_growths).
  struct Stats {
    std::size_t bytes_reserved = 0;  ///< total slab capacity held
    std::size_t bytes_peak = 0;      ///< high-water mark of live scratch
    std::size_t slab_growths = 0;    ///< slab allocations since construction
  };
  Stats stats() const {
    return {bytes_reserved_, bytes_peak_, slab_growths_};
  }

  /// High-water mark of live scratch bytes across ALL threads' arenas —
  /// the host-wide `scratch_bytes_peak` gauge RuntimeStats surfaces.
  static std::size_t global_bytes_peak();

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
  };

  void* raw(std::size_t bytes);
  void* allocate_slow(std::size_t bytes);

  static constexpr std::size_t kAlignment = 64;
  static constexpr std::size_t kMinSlabBytes = std::size_t{1} << 16;

  std::vector<Slab> slabs_;
  std::size_t current_slab_ = 0;  ///< index of the slab being bumped
  std::size_t offset_ = 0;        ///< bump offset within current_slab_
  std::size_t bytes_in_use_ = 0;
  std::size_t bytes_reserved_ = 0;
  std::size_t bytes_peak_ = 0;
  std::size_t slab_growths_ = 0;
};

}  // namespace fleet::tensor::kernels
