#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace fleet::tensor::kernels {

/// Which vectorized arithmetic backend the process runs on (DESIGN.md §10).
///
/// Exactly one backend is active at a time, selected once at startup
/// (explicit pin > FLEET_KERNEL env var > best the CPU supports) and pinned
/// for the run: floating-point summation order is part of the determinism
/// contract, so a run's kernel choice is configuration, not a per-call
/// heuristic. kAuto is only a *selection request* (re-detect), never an
/// active backend.
enum class Backend {
  kAuto,      ///< selection request: env override, else best available
  kPortable,  ///< scalar reference — always available, defines the contract
  kAvx2,      ///< x86-64 AVX2 (compiled in when FLEET_ENABLE_AVX2, used
              ///< when the CPU reports avx2)
  kNeon,      ///< aarch64 NEON
};

/// One backend's implementation of every arithmetic hot loop. All pointers
/// are non-null in a registered table (a backend may delegate entries to
/// the portable implementation, e.g. order-pinned reductions).
///
/// Numerical contract (DESIGN.md §10): for every elementwise op (axpy,
/// scale, add, max_abs_diff) and for the accumulate-style GEMMs (matmul,
/// matmul_at_b) each output element experiences the *identical* operation
/// sequence the portable scalar loop applies — one mul + one add per
/// contribution, contributions in ascending-k order, no FMA contraction,
/// no reassociation — so those kernels are bitwise identical across
/// backends. Reductions that feed control decisions (squared_norm,
/// bhattacharyya) are pinned to sequential ascending-index double
/// accumulation in every backend. Only matmul_a_bt (a dot-product GEMM)
/// may use backend-specific lane-partial reductions; it is deterministic
/// per backend but only ULP-close across backends.
struct KernelTable {
  const char* name;

  /// y[i] += alpha * x[i]. The weighted-fold workhorse: AsyncAggregator
  /// submit()/fold_into(), the ShardedAggregator apply step, and every
  /// model's apply_gradient run on this.
  void (*axpy)(float alpha, const float* x, float* y, std::size_t n);
  /// x[i] *= alpha.
  void (*scale)(float* x, float alpha, std::size_t n);
  /// c[i] = a[i] + b[i].
  void (*add)(const float* a, const float* b, float* c, std::size_t n);
  /// max_i |a[i] - b[i]|.
  float (*max_abs_diff)(const float* a, const float* b, std::size_t n);
  /// Sum of x[i]^2 accumulated in double, sequential ascending order in
  /// EVERY backend (order-pinned reduction; see contract above).
  double (*squared_norm)(const float* x, std::size_t n);
  /// Bhattacharyya coefficient term sum: sum_i sqrt(p[i] * q[i] / denom),
  /// accumulated in double, sequential ascending order in EVERY backend.
  /// Division (not multiplication by a reciprocal) is part of the pinned
  /// contract — it reproduces SimilarityTracker's (prob * count) / total
  /// rounding exactly. AdaSGD's boost weights ride on this, so it must be
  /// bitwise stable across backends.
  double (*bhattacharyya)(const double* p, const double* q, double denom,
                          std::size_t n);

  /// C (m x n) += A (m x k) * B (k x n), all row-major. Accumulate
  /// semantics: callers zero or pre-fill C (e.g. with a broadcast bias) —
  /// pre-filling reproduces "acc = bias; then ascending-k adds" exactly.
  void (*matmul)(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n);
  /// C (m x n) += A^T * B where A is (k x m): the dW = X^T dY shape.
  void (*matmul_at_b)(const float* a, const float* b, float* c,
                      std::size_t m, std::size_t k, std::size_t n);
  /// C (m x n) += A (m x k) * B^T where B is (n x k): the dX = dY W^T
  /// shape. Dot-product reduction — ULP-close (not bitwise) to portable.
  void (*matmul_a_bt)(const float* a, const float* b, float* c,
                      std::size_t m, std::size_t k, std::size_t n);
};

/// True when `backend`'s table is compiled in AND usable on this CPU.
/// kPortable is always available; kAuto is never "available" (it is a
/// selection request, not a backend).
bool available(Backend backend);

/// The table for a specific backend (parity tests compare tables without
/// touching the process-wide selection). Throws std::invalid_argument for
/// kAuto or an unavailable backend.
const KernelTable& table(Backend backend);

/// The process-wide active table. First use selects: FLEET_KERNEL env var
/// if set and available, else the best available backend. The load is one
/// atomic acquire — negligible against any span the kernels run over.
const KernelTable& active();

/// The Backend active() currently resolves to (never kAuto).
Backend active_backend();

/// Pin the process-wide backend (throws std::invalid_argument when
/// unavailable). kAuto re-runs the startup selection. The determinism
/// matrix pins one backend per run axis; RuntimeConfig::kernel_backend
/// routes here at server construction.
void pin_backend(Backend backend);

/// Where the current selection came from: "pinned", "env", or "detected".
std::string selection_source();

/// Human-readable backend name ("portable", "avx2", "neon", "auto").
std::string_view name(Backend backend);

/// Parse a backend name (the FLEET_KERNEL / config spelling). Empty or
/// "auto" yields kAuto; unknown spellings yield nullopt.
std::optional<Backend> parse_backend(std::string_view text);

}  // namespace fleet::tensor::kernels
