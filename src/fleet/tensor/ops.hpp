#pragma once

#include <span>

#include "fleet/stats/rng.hpp"
#include "fleet/tensor/tensor.hpp"

namespace fleet::tensor {

/// Every op below executes on the process-wide kernel backend
/// (tensor/kernels/: runtime-dispatched AVX2/NEON with a portable scalar
/// fallback, DESIGN.md §10). The backend is selected once at startup and
/// pinned for the run — kernel choice is part of the determinism
/// contract, so results are bitwise reproducible per pinned backend.

/// C = A (m x k) * B (k x n), row-major.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T * B where A is (k x m) — avoids materializing the transpose.
Tensor matmul_at_b(const Tensor& a, const Tensor& b);

/// C = A * B^T where B is (n x k).
Tensor matmul_a_bt(const Tensor& a, const Tensor& b);

/// y += alpha * x (flat, sizes must match).
void axpy(float alpha, const Tensor& x, Tensor& y);

/// y += alpha * x over flat spans (sizes must match). This is the fused
/// weighted-accumulate the zero-copy gradient pipeline runs on: the
/// aggregator folds a worker gradient into its accumulator and the model
/// applies an aggregate to its parameter arena in one pass, no staging
/// copies (DESIGN.md §4).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale(Tensor& x, float alpha);

/// x *= alpha over a flat span.
void scale(std::span<float> x, float alpha);

/// Elementwise sum into a fresh tensor.
Tensor add(const Tensor& a, const Tensor& b);

/// Sum of squares of all elements, accumulated in double. The
/// accumulation order is pinned — sequential, ascending index — in EVERY
/// kernel backend (DESIGN.md §10): this reduction feeds control decisions
/// (gradient clipping, similarity/dampening bookkeeping), which must not
/// shift by a ULP when the run is configured onto a different backend.
double squared_norm(const Tensor& x);

/// squared_norm over a flat span (same pinned accumulation order).
double squared_norm(std::span<const float> x);

/// Fill with i.i.d. N(0, stddev^2) samples.
void fill_gaussian(Tensor& x, stats::Rng& rng, float stddev);

/// Fill with i.i.d. U(-limit, limit) samples (Glorot-style init).
void fill_uniform(Tensor& x, stats::Rng& rng, float limit);

/// Max absolute difference between two tensors (for tests).
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace fleet::tensor
