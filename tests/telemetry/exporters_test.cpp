// Schema/golden tests for the telemetry exporters (DESIGN.md §11) and the
// histogram snapshot arithmetic they rest on. Deterministic by
// construction: inputs are hand-built snapshots, never live timings.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/telemetry/export.hpp"
#include "fleet/telemetry/metrics.hpp"
#include "fleet/telemetry/trace.hpp"

namespace fleet::telemetry {
namespace {

TEST(HistogramSnapshotTest, QuantilesInterpolateInsideBuckets) {
  LocalHistogram hist({10.0, 20.0, 40.0});
  for (int i = 0; i < 10; ++i) hist.record(5.0);    // bucket (..10]
  for (int i = 0; i < 10; ++i) hist.record(15.0);   // bucket (10..20]
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 20u);
  EXPECT_DOUBLE_EQ(snap.mean(), 10.0);
  EXPECT_DOUBLE_EQ(snap.min, 5.0);
  EXPECT_DOUBLE_EQ(snap.max, 15.0);
  // p50 sits at the first bucket's upper edge, p100 at the recorded max.
  EXPECT_LE(snap.quantile(0.5), 10.0);
  EXPECT_GT(snap.quantile(0.75), 10.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 15.0);
  // Empty histogram: quantile is 0, mean is 0.
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.mean(), 0.0);
}

TEST(HistogramSnapshotTest, OverflowValuesLandInTheLastBucket) {
  LocalHistogram hist({1.0, 2.0});
  hist.record(100.0);
  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);  // bounds + overflow
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), 100.0);  // overflow reports max
}

TEST(HistogramSnapshotTest, MergeRequiresMatchingBoundsAndSumsExactly) {
  LocalHistogram a({10.0, 20.0});
  LocalHistogram b({10.0, 20.0});
  a.record(5.0);
  b.record(15.0);
  b.record(25.0);
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.sum, 45.0);
  EXPECT_DOUBLE_EQ(merged.min, 5.0);
  EXPECT_DOUBLE_EQ(merged.max, 25.0);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 1u);
  EXPECT_EQ(merged.counts[2], 1u);

  // Empty side adopts the other's bounds (the merge identity) …
  HistogramSnapshot empty;
  empty.merge(a.snapshot());
  EXPECT_EQ(empty.count, 1u);
  ASSERT_EQ(empty.bounds.size(), 2u);
  // … but non-empty mismatched bounds throw instead of mis-bucketing.
  LocalHistogram c({1.0});
  c.record(0.5);
  HistogramSnapshot bad = c.snapshot();
  EXPECT_THROW(bad.merge(a.snapshot()), std::invalid_argument);
}

TEST(ExportersTest, MetricsJsonGolden) {
  MetricsRegistry registry;
  registry.counter("grads.processed")->add(3);
  registry.gauge("queue.depth")->set(7);
  Histogram* hist = registry.histogram("wait", {10.0, 20.0});
  hist->record(5.0);
  hist->record(25.0);
  const std::string json = metrics_to_json(registry.snapshot());
  EXPECT_EQ(json,
            "{\"counters\":{\"grads.processed\":3},"
            "\"gauges\":{\"queue.depth\":7},"
            "\"histograms\":{\"wait\":{\"bounds\":[10,20],"
            "\"counts\":[1,0,1],\"count\":2,\"sum\":30,"
            "\"min\":5,\"max\":25}}}");
}

TEST(ExportersTest, EmptyHistogramJsonOmitsMinMax) {
  MetricsRegistry registry;
  registry.histogram("empty", {1.0});
  const std::string json = metrics_to_json(registry.snapshot());
  // Infinities cannot be carried in JSON; an empty histogram simply has
  // no min/max keys.
  EXPECT_EQ(json.find("min"), std::string::npos);
  EXPECT_EQ(json.find("max"), std::string::npos);
  EXPECT_NE(json.find("\"count\":0"), std::string::npos);
}

TEST(ExportersTest, PrometheusExpositionGolden) {
  MetricsRegistry registry;
  registry.counter("grads.processed")->add(3);
  registry.gauge("queue.depth")->set(7);
  Histogram* hist = registry.histogram("queue.wait_ns", {10.0, 20.0});
  hist->record(5.0);
  hist->record(15.0);
  hist->record(25.0);
  const std::string text = metrics_to_prometheus(registry.snapshot());
  EXPECT_EQ(text,
            "# TYPE fleet_grads_processed_total counter\n"
            "fleet_grads_processed_total 3\n"
            "# TYPE fleet_queue_depth gauge\n"
            "fleet_queue_depth 7\n"
            "# TYPE fleet_queue_wait_ns histogram\n"
            "fleet_queue_wait_ns_bucket{le=\"10\"} 1\n"
            "fleet_queue_wait_ns_bucket{le=\"20\"} 2\n"
            "fleet_queue_wait_ns_bucket{le=\"+Inf\"} 3\n"
            "fleet_queue_wait_ns_sum 45\n"
            "fleet_queue_wait_ns_count 3\n");
}

TEST(ExportersTest, PrometheusBucketsAreCumulativeAndInfEqualsCount) {
  MetricsRegistry registry;
  Histogram* hist = registry.histogram("h", latency_bounds_ns());
  for (int i = 0; i < 100; ++i) hist->record(1e6);
  const HistogramSnapshot snap = registry.snapshot().histograms[0].second;
  const std::string text = metrics_to_prometheus(registry.snapshot());
  // The +Inf bucket must equal _count (the Prometheus invariant).
  const std::string inf_line =
      "fleet_h_bucket{le=\"+Inf\"} " + std::to_string(snap.count);
  EXPECT_NE(text.find(inf_line), std::string::npos);
  EXPECT_NE(text.find("fleet_h_count 100"), std::string::npos);
}

TEST(ExportersTest, ChromeTraceJsonGolden) {
  std::vector<TraceRecord> records;
  TraceRecord submit;
  submit.event.ts_ns = 2500;
  submit.event.ticket = 42;
  submit.event.model = 1;
  submit.event.phase = TracePhase::kSubmit;
  submit.tid = 3;
  records.push_back(submit);
  TraceRecord fold;
  fold.event.ts_ns = 5000;
  fold.event.a = 1500;  // span duration ns
  fold.event.b = 9;
  fold.event.phase = TracePhase::kSessionFold;
  fold.tid = 1;
  records.push_back(fold);
  const std::string json = trace_to_chrome_json(records);
  EXPECT_EQ(json,
            "{\"traceEvents\":["
            "{\"name\":\"submit\",\"ph\":\"i\",\"ts\":2.5,\"pid\":1,"
            "\"tid\":3,\"s\":\"t\",\"args\":{\"ticket\":42,\"model\":1,"
            "\"b\":0}},"
            "{\"name\":\"session_fold\",\"ph\":\"X\",\"ts\":5,\"pid\":1,"
            "\"tid\":1,\"dur\":1.5,\"args\":{\"ticket\":0,\"model\":0,"
            "\"b\":9}}"
            "]}");
}

TEST(ExportersTest, EveryPhaseHasANameAndSpanClassification) {
  // The Chrome exporter writes phase_name() verbatim; an unnamed phase
  // would corrupt the JSON. Walk the whole vocabulary.
  const TracePhase all[] = {
      TracePhase::kSubmit,     TracePhase::kReject,  TracePhase::kDequeue,
      TracePhase::kDrop,       TracePhase::kFold,    TracePhase::kWireReject,
      TracePhase::kShedDrop,   TracePhase::kDrainBatch,
      TracePhase::kSessionFold, TracePhase::kPublish,
      TracePhase::kFoldTask,
  };
  int spans = 0;
  for (const TracePhase phase : all) {
    EXPECT_NE(std::string(phase_name(phase)), "");
    if (is_span(phase)) ++spans;
  }
  EXPECT_EQ(spans, 4);
}

TEST(ExportersTest, FormatNumberIsStableForGoldenOutputs) {
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(-3.0), "-3");
  EXPECT_EQ(format_number(0.25), "0.25");
  EXPECT_EQ(format_number(2.5), "2.5");
}

}  // namespace
}  // namespace fleet::telemetry
