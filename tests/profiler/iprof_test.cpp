#include "fleet/profiler/iprof.hpp"

#include <gtest/gtest.h>

#include "fleet/device/allocation.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/profiler/training_data.hpp"

namespace fleet::profiler {
namespace {

IProf make_pretrained_iprof() {
  IProf::Config cfg;
  IProf iprof(cfg);
  const auto dataset =
      collect_profile_dataset(device::training_fleet(), cfg.slo, 100);
  iprof.pretrain(dataset);
  return iprof;
}

TEST(IProfTest, PredictBeforePretrainThrows) {
  IProf iprof{IProf::Config{}};
  device::DeviceSim dev(device::spec("Galaxy S7"), 1);
  EXPECT_THROW(iprof.predict_batch(dev.features(), "Galaxy S7"),
               std::logic_error);
}

TEST(IProfTest, PretrainRejectsEmptyDataset) {
  IProf iprof{IProf::Config{}};
  EXPECT_THROW(iprof.pretrain({}), std::invalid_argument);
}

TEST(IProfTest, ColdStartPredictsSensibleBatches) {
  IProf iprof = make_pretrained_iprof();
  device::DeviceSim fast(device::spec("Honor 10"), 2);
  device::DeviceSim slow(device::spec("Xperia E3"), 3);
  const std::size_t n_fast = iprof.predict_batch(fast.features(), "Honor 10");
  const std::size_t n_slow = iprof.predict_batch(slow.features(), "Xperia E3");
  EXPECT_GE(n_fast, 1u);
  EXPECT_GE(n_slow, 1u);
  // Faster device gets (much) more work.
  EXPECT_GT(n_fast, n_slow);
}

TEST(IProfTest, PersonalizationReducesSloDeviation) {
  // The Fig 12(c) effect: per-device PA models drive the measured latency
  // toward the SLO with every observed request.
  IProf iprof = make_pretrained_iprof();
  const Slo slo = iprof.config().slo;
  device::DeviceSim device(device::spec("Galaxy S7"), 4);
  const auto alloc = device::fleet_allocation(device.spec());

  double first_error = -1.0;
  double last_error = -1.0;
  for (int request = 0; request < 25; ++request) {
    const auto features = device.features();
    const std::size_t n = iprof.predict_batch(features, "Galaxy S7");
    const device::TaskExecution exec = device.run_task(n, alloc);
    const double error = std::abs(exec.time_s - slo.latency_s);
    if (first_error < 0.0) first_error = error;
    last_error = error;
    Observation ob;
    ob.device_model = "Galaxy S7";
    ob.features = features;
    ob.mini_batch = n;
    ob.time_s = exec.time_s;
    ob.energy_pct = exec.energy_pct;
    iprof.observe(ob);
    device.idle(120.0);
  }
  EXPECT_TRUE(iprof.has_personalized_model("Galaxy S7"));
  EXPECT_LT(last_error, 0.5);  // within 0.5 s of the 3 s SLO
  EXPECT_LE(last_error, std::max(first_error, 0.5));
}

TEST(IProfTest, RespectsEnergySloToo) {
  // With a very tight energy budget the energy constraint must bind and
  // shrink the mini-batch.
  IProf::Config tight;
  tight.slo.energy_pct = 1e-4;
  IProf iprof(tight);
  iprof.pretrain(collect_profile_dataset(device::training_fleet(),
                                         IProf::Config{}.slo, 101));
  IProf::Config loose;
  IProf iprof_loose(loose);
  iprof_loose.pretrain(collect_profile_dataset(device::training_fleet(),
                                               loose.slo, 101));
  device::DeviceSim device(device::spec("Galaxy S8"), 5);
  const auto features = device.features();
  EXPECT_LT(iprof.predict_batch(features, "Galaxy S8"),
            iprof_loose.predict_batch(features, "Galaxy S8"));
}

TEST(IProfTest, PredictionIsAlwaysWithinBounds) {
  IProf iprof = make_pretrained_iprof();
  for (const std::string& name : device::catalog_names()) {
    device::DeviceSim device(device::spec(name), 6);
    const std::size_t n = iprof.predict_batch(device.features(), name);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, iprof.config().max_batch);
  }
}

TEST(IProfTest, ObserveRejectsEmptyBatch) {
  IProf iprof = make_pretrained_iprof();
  Observation ob;
  ob.device_model = "Galaxy S7";
  ob.mini_batch = 0;
  EXPECT_THROW(iprof.observe(ob), std::invalid_argument);
}

TEST(IProfTest, RejectsBadConfig) {
  IProf::Config cfg;
  cfg.slo.latency_s = 0.0;
  EXPECT_THROW(IProf{cfg}, std::invalid_argument);
  cfg = IProf::Config{};
  cfg.max_batch = 0;
  EXPECT_THROW(IProf{cfg}, std::invalid_argument);
}

TEST(ObservationTest, AlphaComputations) {
  Observation ob;
  ob.mini_batch = 200;
  ob.time_s = 4.0;
  ob.energy_pct = 0.05;
  EXPECT_DOUBLE_EQ(ob.alpha_time(), 0.02);
  EXPECT_DOUBLE_EQ(ob.alpha_energy(), 0.00025);
  ob.mini_batch = 0;
  EXPECT_THROW(ob.alpha_time(), std::logic_error);
}

TEST(IProfTest, ColdStartAccurateAcrossTiers) {
  // Design goal (a): the cold model must serve *first* requests sensibly
  // for device tiers spanning an order of magnitude in speed.
  IProf iprof = make_pretrained_iprof();
  for (const char* name : {"HTC U11", "Galaxy S7", "Nexus 5", "MotoG3"}) {
    device::DeviceSpec s = device::spec(name);
    s.execution_noise = 0.0;
    device::DeviceSim dev(s, 11);
    const std::size_t n = iprof.predict_batch(dev.features(), name);
    const auto exec = dev.run_task(n, device::fleet_allocation(s));
    // First request within a factor ~2.5 of the 3 s SLO.
    EXPECT_GT(exec.time_s, 3.0 / 2.5) << name;
    EXPECT_LT(exec.time_s, 3.0 * 2.5) << name;
  }
}

TEST(IProfTest, PersonalizedPredictionsAreClampedAgainstFeatureNoise) {
  IProf iprof = make_pretrained_iprof();
  device::DeviceSim dev(device::spec("Galaxy S7"), 12);
  // One legitimate observation fixes the device's slope envelope.
  auto features = dev.features();
  Observation ob;
  ob.device_model = "Galaxy S7";
  ob.features = features;
  ob.mini_batch = 900;
  ob.time_s = 3.0;
  ob.energy_pct = 0.03;
  iprof.observe(ob);
  const double alpha = 3.0 / 900.0;
  // Wildly perturbed features must not move the prediction outside the
  // guarded envelope [alpha/4, 4*alpha].
  DeviceFeatures weird = features;
  weird.temperature_c = 90.0;
  weird.available_memory_mb = 1.0;
  const double predicted = iprof.predict_alpha_time(weird, "Galaxy S7");
  EXPECT_GE(predicted, alpha / 4.0 - 1e-12);
  EXPECT_LE(predicted, alpha * 4.0 + 1e-12);
}

TEST(TrainingDataTest, ExcludesOverheadDominatedProbes) {
  const Slo slo;
  const auto dataset = collect_profile_dataset({"HTC U11"}, slo, 9);
  for (const Observation& ob : dataset) {
    EXPECT_GE(ob.time_s, 0.4 * slo.latency_s);
  }
}

TEST(TrainingDataTest, SweepStopsAtTwiceTheSlo) {
  const Slo slo;
  const auto dataset = collect_profile_dataset({"Galaxy S7"}, slo, 7);
  ASSERT_FALSE(dataset.empty());
  // Last probe crossed 2x SLO (or the sweep cap); earlier ones did not.
  for (std::size_t i = 0; i + 1 < dataset.size(); ++i) {
    EXPECT_LT(dataset[i].time_s, 2.0 * slo.latency_s * 1.5);
  }
  EXPECT_GE(dataset.back().time_s, 2.0 * slo.latency_s * 0.5);
}

}  // namespace
}  // namespace fleet::profiler
