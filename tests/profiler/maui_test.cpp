#include "fleet/profiler/maui.hpp"

#include <gtest/gtest.h>

#include "fleet/device/catalog.hpp"
#include "fleet/profiler/training_data.hpp"

namespace fleet::profiler {
namespace {

TEST(MauiTest, FitsSlopeThroughOrigin) {
  MauiProfiler maui{MauiProfiler::Config{}};
  // Perfect linear data: t = 0.01 n, E = 0.0001 n.
  std::vector<Observation> obs;
  for (std::size_t n : {100u, 200u, 400u}) {
    Observation ob;
    ob.mini_batch = n;
    ob.time_s = 0.01 * static_cast<double>(n);
    ob.energy_pct = 1e-4 * static_cast<double>(n);
    obs.push_back(ob);
  }
  maui.pretrain(obs);
  EXPECT_NEAR(maui.theta_time(), 0.01, 1e-9);
  EXPECT_NEAR(maui.theta_energy(), 1e-4, 1e-12);
}

TEST(MauiTest, PredictionIgnoresDeviceIdentity) {
  MauiProfiler maui{MauiProfiler::Config{}};
  maui.pretrain(collect_profile_dataset(device::training_fleet(),
                                        MauiProfiler::Config{}.slo, 50));
  device::DeviceSim fast(device::spec("Honor 10"), 1);
  device::DeviceSim slow(device::spec("Xperia E3"), 2);
  // One global model: same output regardless of device — the weakness
  // Figs 12-13 demonstrate.
  EXPECT_EQ(maui.predict_batch(fast.features(), "Honor 10"),
            maui.predict_batch(slow.features(), "Xperia E3"));
}

TEST(MauiTest, PredictsBatchFromSlo) {
  MauiProfiler::Config cfg;
  cfg.slo.latency_s = 3.0;
  cfg.slo.energy_pct = 1.0;  // effectively unconstrained
  MauiProfiler maui(cfg);
  Observation ob;
  ob.mini_batch = 100;
  ob.time_s = 1.0;     // theta_t = 0.01
  ob.energy_pct = 0.001;
  maui.pretrain({ob});
  device::DeviceSim d(device::spec("Galaxy S7"), 1);
  EXPECT_EQ(maui.predict_batch(d.features(), "Galaxy S7"), 300u);
}

TEST(MauiTest, PredictBeforeDataThrows) {
  MauiProfiler maui{MauiProfiler::Config{}};
  device::DeviceSim d(device::spec("Galaxy S7"), 1);
  EXPECT_THROW(maui.predict_batch(d.features(), "Galaxy S7"),
               std::logic_error);
}

TEST(MauiTest, ObservationsShiftTheGlobalModel) {
  MauiProfiler maui{MauiProfiler::Config{}};
  Observation fast_ob;
  fast_ob.mini_batch = 100;
  fast_ob.time_s = 0.5;
  fast_ob.energy_pct = 0.001;
  maui.pretrain({fast_ob});
  const double before = maui.theta_time();
  Observation slow_ob;
  slow_ob.mini_batch = 100;
  slow_ob.time_s = 10.0;
  slow_ob.energy_pct = 0.01;
  maui.observe(slow_ob);
  EXPECT_GT(maui.theta_time(), before);
}

TEST(MauiTest, RejectsBadInput) {
  MauiProfiler maui{MauiProfiler::Config{}};
  EXPECT_THROW(maui.pretrain({}), std::invalid_argument);
  Observation ob;
  ob.mini_batch = 0;
  EXPECT_THROW(maui.observe(ob), std::invalid_argument);
  MauiProfiler::Config bad;
  bad.slo.latency_s = -1.0;
  EXPECT_THROW(MauiProfiler{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace fleet::profiler
