#include "fleet/profiler/caloree.hpp"

#include <gtest/gtest.h>

#include "fleet/device/allocation.hpp"
#include "fleet/device/catalog.hpp"

namespace fleet::profiler {
namespace {

device::DeviceSim quiet_device(const char* name, std::uint64_t seed) {
  device::DeviceSpec s = device::spec(name);
  s.execution_noise = 0.01;
  return device::DeviceSim(s, seed);
}

TEST(PhtTest, HullIsSortedAndParetoOptimal) {
  auto device = quiet_device("Galaxy S7", 1);
  const PerformanceHashTable pht = profile_device(device);
  ASSERT_GE(pht.hull.size(), 2u);
  for (std::size_t i = 1; i < pht.hull.size(); ++i) {
    EXPECT_GT(pht.hull[i].rate, pht.hull[i - 1].rate);
    EXPECT_GT(pht.hull[i].power, pht.hull[i - 1].power);
  }
  // Convexity: the power-vs-rate slope between consecutive hull points
  // must be non-decreasing.
  for (std::size_t i = 2; i < pht.hull.size(); ++i) {
    const auto slope = [&](std::size_t a, std::size_t b) {
      return (pht.hull[b].power - pht.hull[a].power) /
             (pht.hull[b].rate - pht.hull[a].rate);
    };
    EXPECT_GE(slope(i - 1, i), slope(i - 2, i - 1) - 1e-9);
  }
}

TEST(PhtTest, FastestReturnsMaxRate) {
  auto device = quiet_device("Galaxy S7", 2);
  const PerformanceHashTable pht = profile_device(device);
  for (const PerfPoint& p : pht.hull) {
    EXPECT_LE(p.rate, pht.fastest().rate);
  }
}

TEST(CaloreeTest, SameDeviceMeetsDeadline) {
  // Table 2, row 1: training and running on the same device -> small error.
  auto profile_dev = quiet_device("Galaxy S7", 3);
  const PerformanceHashTable pht = profile_device(profile_dev);
  auto run_dev = quiet_device("Galaxy S7", 4);
  CaloreeController caloree(pht);
  const std::size_t workload = 2000;
  const double deadline = 6.0;
  const auto result = caloree.run(run_dev, workload, deadline);
  EXPECT_LT(result.deadline_error_pct, 12.0);
  EXPECT_GT(result.energy_pct, 0.0);
}

TEST(CaloreeTest, CrossDeviceErrorIsMuchLarger) {
  // Table 2: a PHT from Galaxy S7 misfires on Honor 10 (hot, different
  // relative speeds) far worse than on the S7 itself.
  auto s7 = quiet_device("Galaxy S7", 5);
  const PerformanceHashTable pht = profile_device(s7);

  auto same = quiet_device("Galaxy S7", 6);
  auto cross = quiet_device("Honor 10", 7);
  // Long enough that the Honor's thermal governor bites mid-run.
  const std::size_t workload = 8000;
  const double deadline = 25.0;
  const auto same_result = CaloreeController(pht).run(same, workload, deadline);
  const auto cross_result =
      CaloreeController(pht).run(cross, workload, deadline);
  EXPECT_GT(cross_result.deadline_error_pct,
            same_result.deadline_error_pct * 2.0);
}

TEST(CaloreeTest, ImpossibleDeadlineRunsFlatOut) {
  auto device = quiet_device("Xperia E3", 8);
  auto profile_dev = quiet_device("Xperia E3", 9);
  const PerformanceHashTable pht = profile_device(profile_dev);
  CaloreeController caloree(pht);
  // Deadline far below what the device can do: must still complete.
  const auto result = caloree.run(device, 5000, 0.5);
  EXPECT_GT(result.time_s, 0.5);
  EXPECT_GT(result.deadline_error_pct, 100.0);
}

TEST(CaloreeTest, CompletesWorkloadExactly) {
  auto device = quiet_device("Galaxy S8", 10);
  auto profile_dev = quiet_device("Galaxy S8", 11);
  CaloreeController caloree(profile_device(profile_dev));
  const auto result = caloree.run(device, 1000, 5.0);
  EXPECT_GT(result.time_s, 0.0);
  // Energy within physical bounds: at most max power * time.
  const double max_power = device.power({device.spec().n_big,
                                         device.spec().n_little});
  EXPECT_LE(result.energy_pct,
            max_power * result.time_s / 3.6 /
                device.spec().battery_mwh * 100.0 * 1.5);
}

TEST(CaloreeTest, RejectsBadUsage) {
  auto profile_dev = quiet_device("Galaxy S7", 12);
  const PerformanceHashTable pht = profile_device(profile_dev);
  CaloreeController caloree(pht);
  auto device = quiet_device("Galaxy S7", 13);
  EXPECT_THROW(caloree.run(device, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(caloree.run(device, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(CaloreeController(PerformanceHashTable{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::profiler
