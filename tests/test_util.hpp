#pragma once

// Helpers shared by the runtime / stress / multitenant suites (each suite
// is its own gtest binary; this header keeps the copies from diverging).

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "fleet/device/catalog.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"

namespace fleet::test {

/// An I-Prof pretrained on the standard training fleet — what every
/// server/session under test uses as its profiler.
inline std::unique_ptr<profiler::Profiler> pretrained_iprof() {
  auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
  iprof->pretrain(profiler::collect_profile_dataset(
      device::training_fleet(), profiler::IProf::Config{}.slo, 20));
  return iprof;
}

/// FNV-1a over the raw parameter bits: two runs are "identical" only if
/// every float matches exactly.
inline std::uint64_t param_hash(std::span<const float> params) {
  std::uint64_t h = 1469598103934665603ULL;
  for (float value : params) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    h ^= bits;
    h *= 1099511628211ULL;
  }
  return h;
}

inline bool bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace fleet::test
