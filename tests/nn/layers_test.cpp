#include <gtest/gtest.h>

#include "fleet/nn/activations.hpp"
#include "fleet/nn/conv2d.hpp"
#include "fleet/nn/dense.hpp"
#include "fleet/nn/pooling.hpp"

namespace fleet::nn {
namespace {

TEST(DenseTest, ForwardComputesAffineMap) {
  Dense dense(2, 2);
  // W = [[1,2],[3,4]], b = [10, 20].
  dense.parameters()[0]->flat()[0] = 1;
  dense.parameters()[0]->flat()[1] = 2;
  dense.parameters()[0]->flat()[2] = 3;
  dense.parameters()[0]->flat()[3] = 4;
  dense.parameters()[1]->flat()[0] = 10;
  dense.parameters()[1]->flat()[1] = 20;
  Tensor x({1, 2}, {1, 1});
  Tensor y = dense.forward(x);
  EXPECT_EQ(y.at2(0, 0), 14.0f);  // 1*1 + 1*3 + 10
  EXPECT_EQ(y.at2(0, 1), 26.0f);  // 1*2 + 1*4 + 20
}

TEST(DenseTest, FlattensHigherRankInputs) {
  Dense dense(4, 3);
  stats::Rng rng(1);
  dense.init(rng);
  Tensor x({2, 1, 2, 2});
  EXPECT_NO_THROW(dense.forward(x));
}

TEST(DenseTest, RejectsWrongFeatureCount) {
  Dense dense(4, 3);
  Tensor x({2, 5});
  EXPECT_THROW(dense.forward(x), std::invalid_argument);
}

TEST(DenseTest, OutputShapeAndParams) {
  Dense dense(192, 10);
  EXPECT_EQ(dense.parameter_count(), 192u * 10u + 10u);
  EXPECT_EQ(dense.output_shape({192})[0], 10u);
  EXPECT_EQ(dense.output_shape({48, 2, 2})[0], 10u);  // flattened
}

TEST(Conv2DTest, KnownConvolution) {
  // 1x1 input channel, 3x3 image, single 2x2 kernel of ones, no bias:
  // each output = sum of the 2x2 patch.
  Conv2D conv(1, 1, 2, 2);
  for (std::size_t i = 0; i < 4; ++i) conv.parameters()[0]->flat()[i] = 1.0f;
  Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
  EXPECT_EQ(y[0], 12.0f);  // 1+2+4+5
  EXPECT_EQ(y[1], 16.0f);  // 2+3+5+6
  EXPECT_EQ(y[2], 24.0f);  // 4+5+7+8
  EXPECT_EQ(y[3], 28.0f);  // 5+6+8+9
}

TEST(Conv2DTest, StrideReducesOutput) {
  Conv2D conv(1, 2, 3, 3, 2, 2);
  const auto out = conv.output_shape({1, 7, 7});
  EXPECT_EQ(out, (std::vector<std::size_t>{2, 3, 3}));
}

TEST(Conv2DTest, Table1MnistShapes) {
  // Table 1 MNIST: 28x28x1 -> conv 5x5x8 -> 24x24x8.
  Conv2D conv(1, 8, 5, 5);
  EXPECT_EQ(conv.output_shape({1, 28, 28}),
            (std::vector<std::size_t>{8, 24, 24}));
  EXPECT_EQ(conv.parameter_count(), 5u * 5u * 8u + 8u);
}

TEST(Conv2DTest, RejectsWrongChannelCount) {
  Conv2D conv(3, 8, 3, 3);
  Tensor x({1, 1, 8, 8});
  EXPECT_THROW(conv.forward(x), std::invalid_argument);
  EXPECT_THROW(conv.output_shape({1, 8, 8}), std::invalid_argument);
}

TEST(MaxPool2DTest, SelectsMaxima) {
  MaxPool2D pool(2, 2, 2, 2);
  Tensor x({1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 1});
  Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 1, 2}));
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 8.0f);
}

TEST(MaxPool2DTest, BackwardRoutesGradientToArgmax) {
  MaxPool2D pool(2, 2, 2, 2);
  Tensor x({1, 1, 2, 2}, {1, 9, 2, 3});
  pool.forward(x);
  Tensor g({1, 1, 1, 1}, {7});
  Tensor gx = pool.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 7.0f);  // position of the max
  EXPECT_EQ(gx[2], 0.0f);
  EXPECT_EQ(gx[3], 0.0f);
}

TEST(MaxPool2DTest, Table1PoolShapes) {
  // MNIST pool1: 24x24x8 with 3x3 kernel stride 3 -> 8x8x8.
  MaxPool2D pool(3, 3, 3, 3);
  EXPECT_EQ(pool.output_shape({8, 24, 24}),
            (std::vector<std::size_t>{8, 8, 8}));
}

TEST(ReLUTest, ForwardAndBackwardMask) {
  ReLU relu;
  Tensor x({1, 4}, {-1, 2, 0, 3});
  Tensor y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 2.0f);
  EXPECT_EQ(y[2], 0.0f);
  EXPECT_EQ(y[3], 3.0f);
  Tensor g({1, 4}, {10, 10, 10, 10});
  Tensor gx = relu.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 10.0f);
  EXPECT_EQ(gx[2], 0.0f);
  EXPECT_EQ(gx[3], 10.0f);
}

TEST(TanhTest, ForwardValuesAndDerivative) {
  Tanh tanh_layer;
  Tensor x({1, 2}, {0.0f, 100.0f});
  Tensor y = tanh_layer.forward(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-6);
  EXPECT_NEAR(y[1], 1.0f, 1e-6);
  Tensor g({1, 2}, {1.0f, 1.0f});
  Tensor gx = tanh_layer.backward(g);
  EXPECT_NEAR(gx[0], 1.0f, 1e-6);   // 1 - tanh(0)^2
  EXPECT_NEAR(gx[1], 0.0f, 1e-6);   // saturated
}

TEST(FlattenTest, RoundTripsShape) {
  Flatten flatten;
  Tensor x({2, 3, 4, 4});
  Tensor y = flatten.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 48}));
  Tensor gx = flatten.backward(y);
  EXPECT_EQ(gx.shape(), (std::vector<std::size_t>{2, 3, 4, 4}));
}

TEST(LayerTest, ZeroGradClearsBuffers) {
  Dense dense(2, 2);
  stats::Rng rng(1);
  dense.init(rng);
  Tensor x({1, 2}, {1, 1});
  dense.forward(x);
  Tensor g({1, 2}, {1, 1});
  dense.backward(g);
  EXPECT_NE(dense.gradients()[0]->flat()[0], 0.0f);
  dense.zero_grad();
  for (Tensor* grad : dense.gradients()) {
    for (std::size_t i = 0; i < grad->size(); ++i) {
      EXPECT_EQ((*grad)[i], 0.0f);
    }
  }
}

}  // namespace
}  // namespace fleet::nn
