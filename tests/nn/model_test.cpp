#include "fleet/nn/model.hpp"

#include <gtest/gtest.h>

#include "fleet/nn/dense.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/tensor/ops.hpp"

namespace fleet::nn {
namespace {

TEST(SequentialTest, ParameterRoundTrip) {
  auto model = zoo::mlp(4, 8, 3);
  model->init(1);
  std::vector<float> params = model->parameters();
  EXPECT_EQ(params.size(), model->parameter_count());
  params[0] = 42.0f;
  model->set_parameters(params);
  EXPECT_EQ(model->parameters()[0], 42.0f);
}

TEST(SequentialTest, SetParametersRejectsWrongSize) {
  auto model = zoo::mlp(4, 8, 3);
  model->init(1);
  EXPECT_THROW(model->set_parameters(std::vector<float>(3)),
               std::invalid_argument);
}

TEST(SequentialTest, InitValidatesTopology) {
  // Network emits 5 outputs but claims 3 classes: init must fail fast.
  Sequential model({4}, 3);
  model.add(std::make_unique<Dense>(4, 5));
  EXPECT_THROW(model.init(1), std::invalid_argument);
}

TEST(SequentialTest, ApplyGradientMovesAgainstGradient) {
  auto model = zoo::linear(2, 2);
  model->init(2);
  const std::vector<float> before = model->parameters();
  std::vector<float> grad(model->parameter_count(), 1.0f);
  model->apply_gradient(grad, 0.5f);
  const std::vector<float> after = model->parameters();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i], before[i] - 0.5f, 1e-6);
  }
}

TEST(SequentialTest, TrainStepReducesLossOnFixedBatch) {
  auto model = zoo::mlp(4, 16, 2);
  model->init(3);
  stats::Rng rng(4);
  Batch batch{Tensor({8, 4}), {}};
  for (std::size_t i = 0; i < batch.inputs.size(); ++i) {
    batch.inputs[i] = static_cast<float>(rng.uniform());
  }
  for (int i = 0; i < 8; ++i) batch.labels.push_back(i % 2);
  const double initial = model->evaluate_loss(batch);
  for (int i = 0; i < 300; ++i) model->train_step(batch, 0.3f);
  EXPECT_LT(model->evaluate_loss(batch), initial * 0.5);
}

TEST(SequentialTest, PredictShape) {
  auto model = zoo::mlp(4, 8, 3);
  model->init(5);
  Tensor inputs({5, 4});
  EXPECT_EQ(model->predict(inputs).size(), 15u);
}

TEST(SequentialTest, GradientRejectsEmptyBatch) {
  auto model = zoo::linear(2, 2);
  model->init(1);
  Batch empty{Tensor({0, 2}), {}};
  std::vector<float> grad;
  EXPECT_THROW(model->gradient(empty, grad), std::invalid_argument);
}

// ---- Table 1 architectures -------------------------------------------------

TEST(ZooTest, MnistCnnMatchesTable1) {
  auto model = zoo::mnist_cnn();
  model->init(1);
  // conv1 5x5x8 (208) + conv2 5x5x8->48 (9648) + fc 192->10 (1930).
  EXPECT_EQ(model->parameter_count(), 208u + 9648u + 1930u);
  EXPECT_EQ(model->n_classes(), 10u);
}

TEST(ZooTest, EmnistCnnMatchesTable1) {
  auto model = zoo::emnist_cnn();
  model->init(1);
  // conv1 (260) + conv2 (2510) + fc1 160->15 (2415) + fc2 15->62 (992).
  EXPECT_EQ(model->parameter_count(), 260u + 2510u + 2415u + 992u);
  EXPECT_EQ(model->n_classes(), 62u);
}

TEST(ZooTest, CifarCnnMatchesTable1) {
  auto model = zoo::cifar_cnn(100);
  model->init(1);
  const std::size_t conv1 = 3u * 3u * 3u * 16u + 16u;
  const std::size_t conv2 = 3u * 3u * 16u * 64u + 64u;
  const std::size_t fc1 = 576u * 384u + 384u;
  const std::size_t fc2 = 384u * 192u + 192u;
  const std::size_t fc3 = 192u * 100u + 100u;
  EXPECT_EQ(model->parameter_count(), conv1 + conv2 + fc1 + fc2 + fc3);
}

TEST(ZooTest, Table1ForwardPassesWork) {
  stats::Rng rng(9);
  for (auto* build : {+[] { return zoo::mnist_cnn(); },
                      +[] { return zoo::emnist_cnn(); }}) {
    auto model = build();
    model->init(2);
    Tensor x({2, 1, 28, 28});
    tensor::fill_uniform(x, rng, 1.0f);
    const auto scores = model->predict(x);
    EXPECT_EQ(scores.size(), 2u * model->n_classes());
  }
  auto cifar = zoo::cifar_cnn(10);
  cifar->init(3);
  Tensor x({1, 3, 32, 32});
  tensor::fill_uniform(x, rng, 1.0f);
  EXPECT_EQ(cifar->predict(x).size(), 10u);
}

TEST(ZooTest, SummaryListsAllLayers) {
  auto model = zoo::mnist_cnn();
  const std::string summary = model->summary();
  EXPECT_NE(summary.find("Conv2D"), std::string::npos);
  EXPECT_NE(summary.find("MaxPool2D"), std::string::npos);
  EXPECT_NE(summary.find("Dense"), std::string::npos);
  EXPECT_NE(summary.find("Total parameters"), std::string::npos);
}

TEST(ZooTest, SmallCnnShapesAreConsistent) {
  auto model = zoo::small_cnn(1, 14, 14, 10);
  model->init(4);
  Tensor x({3, 1, 14, 14});
  EXPECT_EQ(model->predict(x).size(), 30u);
}

}  // namespace
}  // namespace fleet::nn
