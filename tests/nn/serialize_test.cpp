#include "fleet/nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fleet/nn/zoo.hpp"

namespace fleet::nn {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTripsParameters) {
  const std::string path = temp_path("params.flt");
  const std::vector<float> params{1.5f, -2.25f, 0.0f, 3.14f};
  save_parameters(params, path);
  EXPECT_EQ(load_parameters(path), params);
  std::remove(path.c_str());
}

TEST(SerializeTest, RoundTripsWholeModel) {
  const std::string path = temp_path("model.flt");
  auto model = zoo::mlp(6, 12, 3);
  model->init(7);
  const auto original = model->parameters();
  save_model(*model, path);

  auto restored = zoo::mlp(6, 12, 3);
  restored->init(99);  // different init — must be overwritten
  load_model(*restored, path);
  EXPECT_EQ(restored->parameters(), original);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadIntoWrongArchitectureThrows) {
  const std::string path = temp_path("mismatch.flt");
  auto model = zoo::mlp(6, 12, 3);
  model->init(1);
  save_model(*model, path);
  auto other = zoo::mlp(6, 24, 3);
  other->init(1);
  EXPECT_THROW(load_model(*other, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_parameters(temp_path("does_not_exist.flt")),
               std::runtime_error);
}

TEST(SerializeTest, CorruptMagicThrows) {
  const std::string path = temp_path("corrupt.flt");
  std::ofstream(path) << "not a checkpoint";
  EXPECT_THROW(load_parameters(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedPayloadThrows) {
  const std::string path = temp_path("truncated.flt");
  save_parameters(std::vector<float>{1.0f, 2.0f, 3.0f}, path);
  // Chop the last bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() - 5));
  out.close();
  EXPECT_THROW(load_parameters(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fleet::nn
