#include "fleet/nn/rnn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fleet/stats/rng.hpp"

namespace fleet::nn {
namespace {

TEST(RnnTest, ParameterCountIsExact) {
  RnnClassifier rnn(10, 4, 6, 3);
  // E(10x4) + Wx(4x6) + Wh(6x6) + bh(6) + Wo(6x3) + bo(3).
  EXPECT_EQ(rnn.parameter_count(), 40u + 24u + 36u + 6u + 18u + 3u);
}

TEST(RnnTest, PaperScaleModelIsBuildable) {
  // The paper's recommender has 123,330 parameters; ours is configurable —
  // check a configuration in that ballpark constructs and predicts.
  RnnClassifier rnn(2000, 32, 48, 500, 16);
  rnn.init(1);
  const auto scores = rnn.scores(std::vector<int>{1, 2, 3});
  EXPECT_EQ(scores.size(), 500u);
}

TEST(RnnTest, ParameterRoundTrip) {
  RnnClassifier rnn(8, 3, 4, 2);
  rnn.init(2);
  auto params = rnn.parameters();
  params[5] = 1.25f;
  rnn.set_parameters(params);
  EXPECT_EQ(rnn.parameters()[5], 1.25f);
}

TEST(RnnTest, RejectsBadTokensAndTargets) {
  RnnClassifier rnn(8, 3, 4, 2);
  rnn.init(3);
  EXPECT_THROW(rnn.scores(std::vector<int>{8}), std::out_of_range);
  EXPECT_THROW(rnn.scores(std::vector<int>{}), std::invalid_argument);
  std::vector<SequenceSample> batch{{{1, 2}, 5}};
  std::vector<float> grad;
  EXPECT_THROW(rnn.gradient(batch, grad), std::out_of_range);
}

TEST(RnnTest, GradientMatchesFiniteDifferences) {
  RnnClassifier rnn(6, 3, 4, 3, 8);
  rnn.init(4);
  std::vector<SequenceSample> batch{{{0, 1, 2, 3}, 1}, {{4, 5}, 2}};
  std::vector<float> analytic;
  rnn.gradient(batch, analytic);

  auto params = rnn.parameters();
  const double h = 1e-3;
  double worst = 0.0;
  std::vector<float> scratch;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float saved = params[i];
    params[i] = saved + static_cast<float>(h);
    rnn.set_parameters(params);
    const double up = rnn.gradient(batch, scratch);
    params[i] = saved - static_cast<float>(h);
    rnn.set_parameters(params);
    const double down = rnn.gradient(batch, scratch);
    params[i] = saved;
    const double numeric = (up - down) / (2.0 * h);
    const double denom =
        std::max({std::abs(numeric), std::abs(double(analytic[i])), 1e-4});
    worst = std::max(worst, std::abs(numeric - analytic[i]) / denom);
  }
  EXPECT_LT(worst, 3e-2);
}

TEST(RnnTest, LearnsTokenToClassAssociation) {
  // Three "topics": token t strongly indicates class t.
  RnnClassifier rnn(9, 4, 8, 3, 8);
  rnn.init(5);
  stats::Rng rng(6);
  std::vector<float> grad;
  for (int step = 0; step < 300; ++step) {
    std::vector<SequenceSample> batch;
    for (int i = 0; i < 8; ++i) {
      const int cls = static_cast<int>(rng.uniform_int(0, 2));
      SequenceSample s;
      for (int t = 0; t < 4; ++t) {
        s.tokens.push_back(cls * 3 +
                           static_cast<int>(rng.uniform_int(0, 2)));
      }
      s.target = cls;
      batch.push_back(std::move(s));
    }
    rnn.gradient(batch, grad);
    rnn.apply_gradient(grad, 0.3f);
  }
  // Class-0 tokens must now score class 0 highest.
  int correct = 0;
  for (int cls = 0; cls < 3; ++cls) {
    const auto scores =
        rnn.scores(std::vector<int>{cls * 3, cls * 3 + 1, cls * 3 + 2});
    const auto best = static_cast<int>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
    if (best == cls) ++correct;
  }
  EXPECT_EQ(correct, 3);
}

TEST(RnnTest, TruncatedBpttHandlesLongSequences) {
  RnnClassifier rnn(5, 3, 4, 2, /*max_bptt=*/4);
  rnn.init(7);
  std::vector<int> long_seq(100, 1);
  EXPECT_NO_THROW(rnn.scores(long_seq));
  std::vector<SequenceSample> batch{{long_seq, 0}};
  std::vector<float> grad;
  EXPECT_NO_THROW(rnn.gradient(batch, grad));
}

TEST(RnnTest, ApplyGradientRejectsWrongSize) {
  RnnClassifier rnn(5, 3, 4, 2);
  rnn.init(8);
  EXPECT_THROW(rnn.apply_gradient(std::vector<float>(3), 0.1f),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::nn
