// Numerical gradient checks: the analytic backward pass of every layer is
// verified against central finite differences through the full
// Sequential + softmax-cross-entropy pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fleet/nn/activations.hpp"
#include "fleet/nn/conv2d.hpp"
#include "fleet/nn/dense.hpp"
#include "fleet/nn/model.hpp"
#include "fleet/nn/pooling.hpp"

namespace fleet::nn {
namespace {

/// Relative L2 error between the analytic and central-finite-difference
/// gradients of the mean batch loss. The vector norm is robust to the
/// float32 noise that dominates individual near-zero entries.
double gradcheck(Sequential& model, const Batch& batch, double h = 1e-3) {
  std::vector<float> analytic;
  model.gradient(batch, analytic);
  std::vector<float> params = model.parameters();
  double diff_sq = 0.0;
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float saved = params[i];
    params[i] = saved + static_cast<float>(h);
    model.set_parameters(params);
    const double up = model.evaluate_loss(batch);
    params[i] = saved - static_cast<float>(h);
    model.set_parameters(params);
    const double down = model.evaluate_loss(batch);
    params[i] = saved;
    const double numeric = (up - down) / (2.0 * h);
    diff_sq += (numeric - analytic[i]) * (numeric - analytic[i]);
    norm_sq += static_cast<double>(analytic[i]) * analytic[i];
  }
  model.set_parameters(params);
  return std::sqrt(diff_sq) / (std::sqrt(norm_sq) + 1e-12);
}

Batch random_batch(std::vector<std::size_t> sample_shape, std::size_t n,
                   std::size_t classes, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<std::size_t> shape{n};
  shape.insert(shape.end(), sample_shape.begin(), sample_shape.end());
  Batch batch{Tensor(shape), {}};
  for (std::size_t i = 0; i < batch.inputs.size(); ++i) {
    batch.inputs[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  for (std::size_t i = 0; i < n; ++i) {
    batch.labels.push_back(static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1)));
  }
  return batch;
}

TEST(GradCheckTest, LinearSoftmax) {
  Sequential model({5}, 3);
  model.add(std::make_unique<Dense>(5, 3));
  model.init(7);
  const Batch batch = random_batch({5}, 4, 3, 1);
  EXPECT_LT(gradcheck(model, batch), 2e-2);
}

TEST(GradCheckTest, MlpWithRelu) {
  Sequential model({6}, 4);
  model.add(std::make_unique<Dense>(6, 8));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(8, 4));
  model.init(11);
  const Batch batch = random_batch({6}, 3, 4, 2);
  EXPECT_LT(gradcheck(model, batch), 2e-2);
}

TEST(GradCheckTest, MlpWithTanh) {
  Sequential model({4}, 3);
  model.add(std::make_unique<Dense>(4, 6));
  model.add(std::make_unique<Tanh>());
  model.add(std::make_unique<Dense>(6, 3));
  model.init(13);
  const Batch batch = random_batch({4}, 3, 3, 3);
  EXPECT_LT(gradcheck(model, batch), 2e-2);
}

TEST(GradCheckTest, ConvPoolStack) {
  Sequential model({1, 6, 6}, 2);
  model.add(std::make_unique<Conv2D>(1, 2, 3, 3));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2D>(2, 2, 2, 2));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(8, 2));
  model.init(17);
  const Batch batch = random_batch({1, 6, 6}, 2, 2, 4);
  EXPECT_LT(gradcheck(model, batch), 3e-2);
}

TEST(GradCheckTest, StridedConv) {
  Sequential model({2, 7, 7}, 3);
  model.add(std::make_unique<Conv2D>(2, 3, 3, 3, 2, 2));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(27, 3));
  model.init(19);
  const Batch batch = random_batch({2, 7, 7}, 2, 3, 5);
  EXPECT_LT(gradcheck(model, batch), 3e-2);
}

TEST(GradCheckTest, DeepStack) {
  // Miniature version of the Table 1 topology: conv-pool-conv-pool-fc.
  Sequential model({1, 10, 10}, 3);
  model.add(std::make_unique<Conv2D>(1, 3, 3, 3));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2D>(2, 2, 2, 2));
  model.add(std::make_unique<Conv2D>(3, 4, 2, 2));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2D>(3, 3, 3, 3));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(4, 3));
  model.init(23);
  const Batch batch = random_batch({1, 10, 10}, 2, 3, 6);
  EXPECT_LT(gradcheck(model, batch), 3e-2);
}

}  // namespace
}  // namespace fleet::nn
