// Determinism matrix over the concurrent serving runtime: the final model
// of a ParallelFleet drive must be bitwise identical across every
// {worker threads} x {aggregation shards} x {drain batch} configuration,
// and match the sequential AsyncAggregator fold (the default runtime's
// per-job submit() path) bit for bit. Weights are computed centrally at
// processing time and every parameter index sees the same operation
// sequence, so neither the shard fan-out nor the batch cadence may change
// a single ULP.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "../test_util.hpp"
#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/parallel_fleet.hpp"
#include "fleet/tensor/kernels/kernels.hpp"

namespace fleet::runtime {
namespace {

using test::param_hash;
using test::pretrained_iprof;

/// One dataset for the whole matrix — identical local data in every cell.
const data::TrainTestSplit& shared_split() {
  static const data::TrainTestSplit split = data::generate_synthetic_images([] {
    data::SyntheticImageConfig cfg;
    cfg.n_classes = 4;
    cfg.n_train = 240;
    cfg.n_test = 40;
    return cfg;
  }());
  return split;
}

/// Build a fresh, identically-initialized environment and drive it for a
/// fixed schedule; returns the final-model bit hash. `telemetry` turns the
/// observability substrate on — which must be invisible in the result
/// (timing is observed, never consulted; DESIGN.md §11).
/// An adaptive-batching config that actually moves during a short drive:
/// tight starting range, one-drain windows, no hysteresis damping.
AdaptiveBatchConfig live_adaptive_config() {
  AdaptiveBatchConfig config;
  config.enabled = true;
  config.min_batch = 2;
  config.max_batch = 64;
  config.window = 1;
  config.hysteresis = 1;
  return config;
}

std::uint64_t run_cell(std::size_t n_threads, std::size_t shards,
                       std::size_t max_batch, bool telemetry = false,
                       std::size_t planners = 1, bool adaptive = false) {
  const auto& split = shared_split();
  auto model = nn::zoo::small_cnn(1, 14, 14, 4);
  model->init(1);
  core::ServerConfig config;
  config.learning_rate = 0.05f;
  RuntimeConfig runtime;
  runtime.aggregation_shards = shards;
  runtime.max_drain_batch = max_batch;
  runtime.telemetry.enabled = telemetry;
  runtime.planner_threads = planners;
  if (adaptive) runtime.adaptive_batch = live_adaptive_config();
  ConcurrentFleetServer server(*model, pretrained_iprof(), config, runtime);

  stats::Rng rng(2);
  const auto partition = data::partition_iid(split.train.size(), 6, rng);
  const auto fleet = device::lab_fleet();
  std::vector<core::FleetWorker> workers;
  for (std::size_t u = 0; u < partition.size(); ++u) {
    auto replica = nn::zoo::small_cnn(1, 14, 14, 4);
    replica->init(1);
    workers.emplace_back(static_cast<int>(u), std::move(replica), split.train,
                         partition[u], device::spec(fleet[u % fleet.size()]),
                         100 + u);
  }

  ParallelFleet::Config cfg;
  cfg.n_threads = n_threads;
  cfg.rounds = 4;
  cfg.max_arrival_delay = 2;
  cfg.dropout_prob = 0.2;  // churn: some computed gradients never arrive
  cfg.seed = 11;
  ParallelFleet driver(server, workers, cfg);
  const auto stats = driver.run();
  EXPECT_GT(stats.gradients_submitted, 0u);
  EXPECT_EQ(stats.runtime.processed, stats.gradients_submitted);
  server.stop();
  return param_hash(model->parameters_view());
}

/// --- Multi-tenant concurrent-fold matrix (DESIGN.md §9) ---------------
/// {threads} x {shards} x {batches} x {tenants}: every session hosted
/// among others, folded concurrently on the shared scheduler, must end
/// bitwise identical to its solo sequential-fold run. Sessions are cheap
/// MLPs fed staged-value jobs from live producer threads (each session
/// owned by exactly one thread — per-session admission order is program
/// order, which is all the determinism argument needs).

GradientJob tenant_job(const nn::TrainableModel& model, core::ModelId id,
                       std::size_t tenant, std::size_t i) {
  GradientJob job;
  job.model_id = id;
  job.task_version = 0;
  job.gradient.resize(model.parameter_count());
  for (std::size_t p = 0; p < job.gradient.size(); ++p) {
    job.gradient[p] =
        0.001f * static_cast<float>((p * 7 + tenant * 31 + i * 13) % 23) -
        0.01f;
  }
  job.label_dist = stats::LabelDistribution(model.n_classes());
  job.label_dist.add(static_cast<int>((tenant + i) % model.n_classes()), 2);
  job.mini_batch = 4;
  return job;
}

core::ServerConfig tenant_server_config() {
  core::ServerConfig config;
  config.learning_rate = 0.1f;
  return config;
}

constexpr std::size_t kTenantJobs = 24;

/// Solo sequential reference for tenant `m`: shards = 1, unbatched.
std::vector<float> tenant_solo_reference(std::size_t m) {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(50 + m);
  RuntimeConfig runtime;
  runtime.start_paused = true;
  ConcurrentFleetServer server(*model, test::pretrained_iprof(),
                               tenant_server_config(), runtime);
  for (std::size_t i = 0; i < kTenantJobs; ++i) {
    GradientJob job = tenant_job(*model, core::kDefaultModelId, m, i);
    EXPECT_TRUE(server.try_submit(job).accepted);
  }
  server.resume();
  server.drain();
  server.stop();
  const auto view = model->parameters_view();
  return std::vector<float>(view.begin(), view.end());
}

/// One cell: `tenants` sessions on one host, driven live by `threads`
/// producer threads (session m belongs to thread m % threads). Returns
/// per-tenant final parameters.
std::vector<std::vector<float>> run_tenant_cell(std::size_t tenants,
                                                std::size_t threads,
                                                std::size_t shards,
                                                std::size_t batch,
                                                std::size_t planners = 1,
                                                bool adaptive = false) {
  std::vector<std::unique_ptr<nn::Sequential>> models;
  for (std::size_t m = 0; m < tenants; ++m) {
    models.push_back(nn::zoo::mlp(8, 4, 3));
    models.back()->init(50 + m);
  }
  RuntimeConfig runtime;
  runtime.aggregation_shards = shards;
  runtime.max_drain_batch = batch;
  runtime.planner_threads = planners;
  if (adaptive) runtime.adaptive_batch = live_adaptive_config();
  ConcurrentFleetServer host(runtime);
  std::vector<core::ModelId> ids;
  for (auto& model : models) {
    ids.push_back(host.register_model(*model, test::pretrained_iprof(),
                                      tenant_server_config()));
  }

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < std::min(threads, tenants); ++t) {
    producers.emplace_back([&, t] {
      // Round-robin over this thread's sessions so their jobs interleave
      // in the shared queue; each session's own order stays sequential.
      for (std::size_t i = 0; i < kTenantJobs; ++i) {
        for (std::size_t m = t; m < tenants; m += threads) {
          GradientJob job = tenant_job(*models[m], ids[m], m, i);
          while (!host.try_submit(job).accepted) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  host.drain();
  host.stop();

  std::vector<std::vector<float>> finals;
  for (auto& model : models) {
    const auto view = model->parameters_view();
    finals.emplace_back(view.begin(), view.end());
  }
  return finals;
}

TEST(DeterminismMatrixTest, TenantMatrixMatchesSoloRunsBitwise) {
  std::vector<std::vector<float>> references;
  for (std::size_t m = 0; m < 4; ++m) {
    references.push_back(tenant_solo_reference(m));
  }

  std::vector<std::string> mismatches;
  for (const std::size_t tenants : {1u, 2u, 4u}) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      for (const std::size_t shards : {1u, 2u, 4u}) {
        for (const std::size_t batch : {1u, 8u, 32u}) {
          const auto finals = run_tenant_cell(tenants, threads, shards, batch);
          for (std::size_t m = 0; m < tenants; ++m) {
            if (param_hash(finals[m]) != param_hash(references[m])) {
              mismatches.push_back(
                  "tenant " + std::to_string(m) + " of " +
                  std::to_string(tenants) + ": threads=" +
                  std::to_string(threads) + " shards=" +
                  std::to_string(shards) + " batch=" + std::to_string(batch));
            }
          }
        }
      }
    }
  }
  EXPECT_TRUE(mismatches.empty()) << [&] {
    std::string report = "sessions diverging from their solo runs:";
    for (const auto& cell : mismatches) report += "\n  " + cell;
    return report;
  }();
}

TEST(DeterminismMatrixTest, TenantMatrixInvariantAcrossPlannersAndAdaptive) {
  // The §13 axes: sessions shard across planner threads by id, each
  // planner drains its own queue group under its own (possibly moving)
  // batch limit — and every tenant must still end bitwise identical to
  // its solo single-planner sequential run. Tickets are host-global and
  // each group's drain is an exact admission-order prefix, so neither the
  // planner count nor the adaptive schedule may move a ULP.
  constexpr std::size_t kTenants = 4;
  std::vector<std::vector<float>> references;
  for (std::size_t m = 0; m < kTenants; ++m) {
    references.push_back(tenant_solo_reference(m));
  }

  std::vector<std::string> mismatches;
  for (const std::size_t planners : {1u, 2u, 4u}) {
    for (const bool adaptive : {false, true}) {
      const auto finals =
          run_tenant_cell(kTenants, /*threads=*/4, /*shards=*/2, /*batch=*/8,
                          planners, adaptive);
      for (std::size_t m = 0; m < kTenants; ++m) {
        if (param_hash(finals[m]) != param_hash(references[m])) {
          mismatches.push_back("tenant " + std::to_string(m) +
                               ": planners=" + std::to_string(planners) +
                               " adaptive=" + (adaptive ? "on" : "off"));
        }
      }
    }
  }
  EXPECT_TRUE(mismatches.empty()) << [&] {
    std::string report = "sessions diverging from their solo runs:";
    for (const auto& cell : mismatches) report += "\n  " + cell;
    return report;
  }();
}

TEST(DeterminismMatrixTest, PlannerAndAdaptiveAxesAreBitwiseInvisible) {
  // Single-model drive through the full ParallelFleet protocol: extra
  // planners idle (one model maps to one group) and the adaptive
  // controller only re-times drains — the final model must not notice.
  const std::uint64_t baseline = run_cell(2, 2, 8);
  for (const std::size_t planners : {2u, 4u}) {
    for (const bool adaptive : {false, true}) {
      EXPECT_EQ(baseline,
                run_cell(2, 2, 8, /*telemetry=*/false, planners, adaptive))
          << "planners=" << planners
          << " adaptive=" << (adaptive ? "on" : "off");
    }
  }
}

TEST(DeterminismMatrixTest, AdaptiveBatcherIsClockFreeUnderTelemetry) {
  // Acceptance check for the counters-not-clocks invariant: the adaptive
  // controller feeds on queue-depth and occupancy counters it owns, never
  // the §11 telemetry clocks — so enabling telemetry under full adaptive
  // mode cannot perturb the model. If the controller ever consulted a
  // clock, the extra clock reads telemetry induces would move the drain
  // schedule; the schedule is result-invisible anyway, but this axis
  // keeps the dependency structure honest end to end.
  for (const std::size_t planners : {1u, 2u}) {
    const std::uint64_t off =
        run_cell(2, 2, 8, /*telemetry=*/false, planners, /*adaptive=*/true);
    const std::uint64_t on =
        run_cell(2, 2, 8, /*telemetry=*/true, planners, /*adaptive=*/true);
    EXPECT_EQ(off, on) << "telemetry perturbed adaptive mode at planners="
                       << planners;
  }
}

TEST(DeterminismMatrixTest, KernelBackendAxisIsBitwiseStablePerBackend) {
  // Kernel-backend axis (DESIGN.md §10): per *pinned* backend, a full
  // drive — worker gradient computation, fold, model apply — is bitwise
  // reproducible across runs and across the concurrency axes. Backends are
  // NOT asserted equal to each other here: the workers' backward passes
  // run matmul_a_bt, the one kernel the contract scopes as deterministic
  // per backend but only ULP-close across backends. The cross-backend
  // bitwise guarantees (elementwise, accumulate-GEMMs, pinned reductions)
  // are enforced input-by-input in the kernel parity suite instead.
  namespace kernels = tensor::kernels;
  const kernels::Backend original = kernels::active_backend();

  std::vector<kernels::Backend> backends = {kernels::Backend::kPortable};
  for (const kernels::Backend b :
       {kernels::Backend::kAvx2, kernels::Backend::kNeon}) {
    if (kernels::available(b)) backends.push_back(b);
  }
  for (const kernels::Backend backend : backends) {
    kernels::pin_backend(backend);
    const std::uint64_t first = run_cell(2, 2, 8);
    EXPECT_EQ(first, run_cell(2, 2, 8))
        << kernels::name(backend) << " backend not reproducible";
    // The concurrency axes stay invariant under every backend.
    EXPECT_EQ(first, run_cell(4, 4, 32))
        << kernels::name(backend)
        << ": threads/shards/batch axis not invariant under this backend";
  }

  // Restore the startup selection for the rest of the suite.
  kernels::pin_backend(original);
}

TEST(DeterminismMatrixTest, TelemetryOnOffIsBitwiseIdentical) {
  // The telemetry axis (DESIGN.md §11): tracing reads clocks and writes
  // rings, but no scheduling or learning decision ever consults it, so
  // turning it on cannot move a single ULP — across the sequential path,
  // the sharded fold and batched drains alike.
  const std::tuple<std::size_t, std::size_t, std::size_t> cells[] = {
      {1, 1, 0}, {2, 2, 8}, {4, 4, 32}};
  for (const auto& [threads, shards, batch] : cells) {
    const std::uint64_t off = run_cell(threads, shards, batch, false);
    const std::uint64_t on = run_cell(threads, shards, batch, true);
    EXPECT_EQ(off, on) << "telemetry perturbed the model at threads="
                       << threads << " shards=" << shards
                       << " batch=" << batch;
  }
}

TEST(DeterminismMatrixTest, FinalModelInvariantAcrossThreadsShardsBatches) {
  // Baseline: one driver thread, the sequential AsyncAggregator fold
  // (shards = 1), unbatched drains — the PR-2 reference path.
  const std::uint64_t baseline = run_cell(1, 1, 0);

  std::map<std::string, std::uint64_t> mismatches;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (const std::size_t shards : {1u, 2u, 4u}) {
      for (const std::size_t batch : {1u, 8u, 32u}) {
        const std::uint64_t h = run_cell(threads, shards, batch);
        if (h != baseline) {
          mismatches["threads=" + std::to_string(threads) +
                     " shards=" + std::to_string(shards) +
                     " batch=" + std::to_string(batch)] = h;
        }
      }
    }
  }
  EXPECT_TRUE(mismatches.empty()) << [&] {
    std::string report = "cells diverging from the sequential baseline:";
    for (const auto& [cell, hash] : mismatches) {
      report += "\n  " + cell + " -> " + std::to_string(hash);
    }
    return report;
  }();
}

}  // namespace
}  // namespace fleet::runtime
