// Determinism matrix over the concurrent serving runtime: the final model
// of a ParallelFleet drive must be bitwise identical across every
// {worker threads} x {aggregation shards} x {drain batch} configuration,
// and match the sequential AsyncAggregator fold (the default runtime's
// per-job submit() path) bit for bit. Weights are computed centrally at
// processing time and every parameter index sees the same operation
// sequence, so neither the shard fan-out nor the batch cadence may change
// a single ULP.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "../test_util.hpp"
#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/parallel_fleet.hpp"

namespace fleet::runtime {
namespace {

using test::param_hash;
using test::pretrained_iprof;

/// One dataset for the whole matrix — identical local data in every cell.
const data::TrainTestSplit& shared_split() {
  static const data::TrainTestSplit split = data::generate_synthetic_images([] {
    data::SyntheticImageConfig cfg;
    cfg.n_classes = 4;
    cfg.n_train = 240;
    cfg.n_test = 40;
    return cfg;
  }());
  return split;
}

/// Build a fresh, identically-initialized environment and drive it for a
/// fixed schedule; returns the final-model bit hash.
std::uint64_t run_cell(std::size_t n_threads, std::size_t shards,
                       std::size_t max_batch) {
  const auto& split = shared_split();
  auto model = nn::zoo::small_cnn(1, 14, 14, 4);
  model->init(1);
  core::ServerConfig config;
  config.learning_rate = 0.05f;
  RuntimeConfig runtime;
  runtime.aggregation_shards = shards;
  runtime.max_drain_batch = max_batch;
  ConcurrentFleetServer server(*model, pretrained_iprof(), config, runtime);

  stats::Rng rng(2);
  const auto partition = data::partition_iid(split.train.size(), 6, rng);
  const auto fleet = device::lab_fleet();
  std::vector<core::FleetWorker> workers;
  for (std::size_t u = 0; u < partition.size(); ++u) {
    auto replica = nn::zoo::small_cnn(1, 14, 14, 4);
    replica->init(1);
    workers.emplace_back(static_cast<int>(u), std::move(replica), split.train,
                         partition[u], device::spec(fleet[u % fleet.size()]),
                         100 + u);
  }

  ParallelFleet::Config cfg;
  cfg.n_threads = n_threads;
  cfg.rounds = 4;
  cfg.max_arrival_delay = 2;
  cfg.dropout_prob = 0.2;  // churn: some computed gradients never arrive
  cfg.seed = 11;
  ParallelFleet driver(server, workers, cfg);
  const auto stats = driver.run();
  EXPECT_GT(stats.gradients_submitted, 0u);
  EXPECT_EQ(stats.runtime.processed, stats.gradients_submitted);
  server.stop();
  return param_hash(model->parameters_view());
}

TEST(DeterminismMatrixTest, FinalModelInvariantAcrossThreadsShardsBatches) {
  // Baseline: one driver thread, the sequential AsyncAggregator fold
  // (shards = 1), unbatched drains — the PR-2 reference path.
  const std::uint64_t baseline = run_cell(1, 1, 0);

  std::map<std::string, std::uint64_t> mismatches;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (const std::size_t shards : {1u, 2u, 4u}) {
      for (const std::size_t batch : {1u, 8u, 32u}) {
        const std::uint64_t h = run_cell(threads, shards, batch);
        if (h != baseline) {
          mismatches["threads=" + std::to_string(threads) +
                     " shards=" + std::to_string(shards) +
                     " batch=" + std::to_string(batch)] = h;
        }
      }
    }
  }
  EXPECT_TRUE(mismatches.empty()) << [&] {
    std::string report = "cells diverging from the sequential baseline:";
    for (const auto& [cell, hash] : mismatches) {
      report += "\n  " + cell + " -> " + std::to_string(hash);
    }
    return report;
  }();
}

}  // namespace
}  // namespace fleet::runtime
