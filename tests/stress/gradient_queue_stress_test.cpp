// Randomized stress tests for the runtime's bounded sharded MPSC queue:
// seeded (stats::Rng::stream) interleavings of pushes, bounded drains and
// backpressure, asserting global FIFO ticket order, exact accept/reject
// accounting and no lost receipts — 100+ seeds per scenario, in-loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "fleet/runtime/gradient_queue.hpp"
#include "fleet/stats/rng.hpp"

namespace fleet::runtime {
namespace {

GradientJob seq_job(std::size_t sequence) {
  GradientJob job;
  job.task_version = sequence;
  job.gradient = {static_cast<float>(sequence)};
  job.mini_batch = 1;
  return job;
}

TEST(GradientQueueStressTest, SeededScheduleFuzzKeepsGlobalFifoAndAccounting) {
  // Single-threaded schedule fuzzing: with a deterministic interleaving the
  // expected outcome of EVERY operation is computable — a push succeeds iff
  // the queue is below capacity, drains return exact admission-order
  // prefixes, and the reject counter matches the refusals we observed.
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    stats::Rng rng = stats::Rng::stream(0xF1EE7u, seed);
    const std::size_t capacity =
        static_cast<std::size_t>(rng.uniform_int(1, 8));
    const std::size_t shards = static_cast<std::size_t>(rng.uniform_int(1, 4));
    GradientQueue queue(capacity, shards);

    std::vector<std::size_t> expected_order;  // accepted sequence numbers
    std::vector<GradientJob> out;
    std::size_t next_sequence = 0;
    std::size_t in_queue = 0;
    std::size_t expected_rejects = 0;

    for (int op = 0; op < 200; ++op) {
      if (rng.bernoulli(0.6)) {
        GradientJob job = seq_job(next_sequence);
        const std::size_t hint =
            static_cast<std::size_t>(rng.uniform_int(0, 7));
        const bool pushed = queue.try_push(job, hint);
        ASSERT_EQ(pushed, in_queue < capacity)
            << "seed " << seed << " op " << op;
        if (pushed) {
          expected_order.push_back(next_sequence);
          ++in_queue;
        } else {
          ++expected_rejects;
          // A refused push must leave the job intact.
          ASSERT_EQ(job.task_version, next_sequence);
        }
        ++next_sequence;
      } else {
        const std::size_t max_batch =
            static_cast<std::size_t>(rng.uniform_int(1, 5));
        const std::size_t taken = queue.drain(out, max_batch);
        ASSERT_EQ(taken, std::min(max_batch, in_queue))
            << "seed " << seed << " op " << op;
        in_queue -= taken;
      }
    }
    queue.drain(out);  // everything left, unbounded

    ASSERT_EQ(out.size(), expected_order.size()) << "seed " << seed;
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i].task_version, expected_order[i])
          << "seed " << seed << " position " << i;
    }
    EXPECT_EQ(queue.rejected(), expected_rejects) << "seed " << seed;
    EXPECT_EQ(queue.size(), 0u) << "seed " << seed;
  }
}

TEST(GradientQueueStressTest, ConcurrentProducersUnderBackpressureLoseNothing) {
  // Multi-threaded: N producers with seeded randomized pacing against a
  // deliberately tight bound, a consumer draining in randomized bounded
  // batches concurrently. Across 100 seeds: every accepted push is drained
  // exactly once (no lost receipts), each producer's jobs drain in FIFO
  // order, and the queue's reject counter equals the rejections producers
  // actually observed.
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 25;
  constexpr std::size_t kSequenceStride = 100000;

  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    GradientQueue queue(8, 2);  // tight: backpressure is the common case
    std::atomic<std::size_t> observed_rejects{0};
    std::atomic<std::size_t> producers_done{0};

    std::vector<GradientJob> out;
    std::thread consumer([&] {
      stats::Rng rng = stats::Rng::stream(seed, 0xC0u);
      while (true) {
        const std::size_t max_batch =
            static_cast<std::size_t>(rng.uniform_int(1, 6));
        if (queue.drain(out, max_batch) == 0) {
          if (producers_done.load(std::memory_order_acquire) == kProducers &&
              queue.size() == 0) {
            break;
          }
          std::this_thread::yield();
        }
      }
      queue.drain(out);  // final sweep after the last producer finished
    });

    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        stats::Rng rng = stats::Rng::stream(seed, p);
        for (std::size_t i = 0; i < kPerProducer; ++i) {
          GradientJob job = seq_job(p * kSequenceStride + i);
          while (!queue.try_push(job)) {
            observed_rejects.fetch_add(1, std::memory_order_relaxed);
            if (rng.bernoulli(0.5)) std::this_thread::yield();
          }
          if (rng.bernoulli(0.2)) std::this_thread::yield();
        }
        producers_done.fetch_add(1, std::memory_order_release);
      });
    }
    for (auto& t : producers) t.join();
    consumer.join();

    // No lost receipts: every accepted push came back out exactly once.
    ASSERT_EQ(out.size(), kProducers * kPerProducer) << "seed " << seed;
    std::vector<std::size_t> next_seq(kProducers, 0);
    for (const GradientJob& job : out) {
      const std::size_t p = job.task_version / kSequenceStride;
      const std::size_t i = job.task_version % kSequenceStride;
      ASSERT_LT(p, kProducers) << "seed " << seed;
      // Bounded drains pop globally smallest tickets, so the concatenated
      // drain output preserves each producer's push order.
      ASSERT_EQ(i, next_seq[p]) << "seed " << seed << " producer " << p;
      ++next_seq[p];
    }
    EXPECT_EQ(queue.rejected(), observed_rejects.load()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace fleet::runtime
