// Multi-tenant runtime (DESIGN.md §7): several ModelSessions behind one
// ConcurrentFleetServer host must train exactly as solo servers would —
// per session, bitwise — while sharing the ingest queue, the aggregation
// thread and the sharded fold pool. Plus registry lifecycle: retiring a
// session with gradients still queued drops and counts them, never folds.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/parallel_fleet.hpp"

namespace fleet::runtime {
namespace {

using test::bitwise_equal;
using test::param_hash;
using test::pretrained_iprof;

core::ServerConfig server_config() {
  core::ServerConfig config;
  config.learning_rate = 0.1f;
  return config;
}

/// A job with parameter-index-varied gradient values, so fold-order or
/// span-partition mistakes change the model instead of cancelling out.
GradientJob varied_job(const nn::TrainableModel& model, core::ModelId id,
                       std::size_t task_version, std::size_t salt) {
  GradientJob job;
  job.model_id = id;
  job.task_version = task_version;
  job.gradient.resize(model.parameter_count());
  for (std::size_t i = 0; i < job.gradient.size(); ++i) {
    job.gradient[i] =
        0.001f * static_cast<float>((i * 7 + salt * 13) % 23) - 0.01f;
  }
  job.label_dist = stats::LabelDistribution(model.n_classes());
  job.label_dist.add(static_cast<int>(salt % model.n_classes()), 2);
  job.mini_batch = 4;
  return job;
}

std::vector<float> params_of(nn::TrainableModel& model) {
  const auto view = model.parameters_view();
  return std::vector<float>(view.begin(), view.end());
}

/// Solo reference: one model on a single-model server (the PR-2/3 shim),
/// fed `n_jobs` staged varied jobs, all against version 0.
std::vector<float> solo_run(std::size_t n_jobs, std::uint64_t init_seed,
                            const RuntimeConfig& base) {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(init_seed);
  RuntimeConfig runtime = base;
  runtime.start_paused = true;
  ConcurrentFleetServer server(*model, pretrained_iprof(), server_config(),
                               runtime);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    GradientJob job = varied_job(*model, core::kDefaultModelId, 0, i);
    EXPECT_TRUE(server.try_submit(job).accepted);
  }
  server.resume();
  server.drain();
  server.stop();
  return params_of(*model);
}

TEST(MultiTenantTest, InterleavedSessionsMatchSoloRunsBitwise) {
  // The isolation matrix: two sessions trained interleaved through one
  // host, across {1,4} aggregation shards x {1,8} drain batches — each
  // final model must be bitwise identical to its solo-server run.
  constexpr std::size_t kJobsA = 12;
  constexpr std::size_t kJobsB = 9;
  for (const std::size_t shards : {1u, 4u}) {
    for (const std::size_t batch : {1u, 8u}) {
      RuntimeConfig base;
      base.aggregation_shards = shards;
      base.max_drain_batch = batch;
      const auto ref_a = solo_run(kJobsA, 7, base);
      const auto ref_b = solo_run(kJobsB, 19, base);

      auto model_a = nn::zoo::mlp(8, 4, 3);
      model_a->init(7);
      auto model_b = nn::zoo::mlp(8, 4, 3);
      model_b->init(19);
      RuntimeConfig runtime = base;
      runtime.start_paused = true;
      ConcurrentFleetServer host(runtime);
      const core::ModelId id_a =
          host.register_model(*model_a, pretrained_iprof(), server_config());
      const core::ModelId id_b =
          host.register_model(*model_b, pretrained_iprof(), server_config());

      // Interleave admissions A,B,A,B,... — per session the relative order
      // (and so every weight, fold and staleness) matches its solo run.
      for (std::size_t i = 0; i < std::max(kJobsA, kJobsB); ++i) {
        if (i < kJobsA) {
          GradientJob job = varied_job(*model_a, id_a, 0, i);
          ASSERT_TRUE(host.try_submit(job).accepted);
        }
        if (i < kJobsB) {
          GradientJob job = varied_job(*model_b, id_b, 0, i);
          ASSERT_TRUE(host.try_submit(job).accepted);
        }
      }
      host.resume();
      host.drain();

      // Per-session clocks and stats evolved independently.
      EXPECT_EQ(host.version(id_a), kJobsA);
      EXPECT_EQ(host.version(id_b), kJobsB);
      const auto stats_a = host.stats(id_a);
      const auto stats_b = host.stats(id_b);
      EXPECT_EQ(stats_a.processed, kJobsA);
      EXPECT_EQ(stats_b.processed, kJobsB);
      ASSERT_EQ(stats_a.staleness_values.size(), kJobsA);
      for (std::size_t i = 0; i < kJobsA; ++i) {
        EXPECT_EQ(stats_a.staleness_values[i], static_cast<double>(i));
      }
      host.stop();

      EXPECT_TRUE(bitwise_equal(ref_a, params_of(*model_a)))
          << "A diverged: shards=" << shards << " batch=" << batch;
      EXPECT_TRUE(bitwise_equal(ref_b, params_of(*model_b)))
          << "B diverged: shards=" << shards << " batch=" << batch;
    }
  }
}

TEST(MultiTenantTest, RegistryLifecycle) {
  ConcurrentFleetServer host{RuntimeConfig{}};
  EXPECT_TRUE(host.model_ids().empty());
  EXPECT_THROW(host.stats(), std::out_of_range);
  EXPECT_THROW(host.version(0), std::out_of_range);

  auto model_a = nn::zoo::mlp(8, 4, 3);
  model_a->init(1);
  auto model_b = nn::zoo::mlp(8, 4, 3);
  model_b->init(2);
  const auto id_a =
      host.register_model(*model_a, pretrained_iprof(), server_config());
  const auto id_b =
      host.register_model(*model_b, pretrained_iprof(), server_config());
  EXPECT_EQ(id_a, core::kDefaultModelId);
  EXPECT_EQ(id_b, id_a + 1);
  EXPECT_EQ(host.model_ids(), (std::vector<core::ModelId>{id_a, id_b}));
  ASSERT_NE(host.session(id_b), nullptr);
  EXPECT_EQ(host.session(id_b)->id(), id_b);

  // Requests for unknown ids reject without touching any session.
  const auto rejected = host.handle_request(
      42, profiler::DeviceFeatures{}, "none", stats::LabelDistribution(3));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.model_id, 42u);

  // Retire B: lookups miss, submits reject permanently, ids shrink.
  EXPECT_TRUE(host.retire_model(id_b));
  EXPECT_FALSE(host.retire_model(id_b));  // already gone
  EXPECT_EQ(host.session(id_b), nullptr);
  EXPECT_EQ(host.model_ids(), (std::vector<core::ModelId>{id_a}));
  GradientJob job = varied_job(*model_b, id_b, 0, 0);
  const auto receipt = host.try_submit(job);
  EXPECT_FALSE(receipt.accepted);
  EXPECT_FALSE(receipt.retryable);
  EXPECT_EQ(receipt.model_id, id_b);

  // Re-registration gets a fresh id, never recycles a retired one.
  const auto id_c =
      host.register_model(*model_b, pretrained_iprof(), server_config());
  EXPECT_EQ(id_c, id_b + 1);
  host.stop();
}

TEST(MultiTenantTest, RetireWithQueuedGradientsDropsAndCountsThem) {
  // Gradients sitting in the queue when their session is retired must be
  // dropped and counted — the model is never touched — while the other
  // session's jobs in the same batch fold normally and drain() still
  // accounts for everything accepted.
  for (const std::size_t shards : {1u, 2u}) {
    RuntimeConfig runtime;
    runtime.start_paused = true;
    runtime.aggregation_shards = shards;
    ConcurrentFleetServer host(runtime);

    auto model_a = nn::zoo::mlp(8, 4, 3);
    model_a->init(1);
    auto model_b = nn::zoo::mlp(8, 4, 3);
    model_b->init(2);
    const auto id_a =
        host.register_model(*model_a, pretrained_iprof(), server_config());
    const auto id_b =
        host.register_model(*model_b, pretrained_iprof(), server_config());

    for (std::size_t i = 0; i < 3; ++i) {
      GradientJob job = varied_job(*model_a, id_a, 0, i);
      ASSERT_TRUE(host.try_submit(job).accepted);
    }
    for (std::size_t i = 0; i < 2; ++i) {
      GradientJob job = varied_job(*model_b, id_b, 0, i);
      ASSERT_TRUE(host.try_submit(job).accepted);
    }
    const auto frozen_b = params_of(*model_b);
    ASSERT_TRUE(host.retire_model(id_b));

    host.resume();
    host.drain();  // must complete although two accepted jobs were dropped
    const auto stats = host.stats(id_a);
    EXPECT_EQ(stats.processed, 3u);
    EXPECT_EQ(stats.retired_drops, 2u);
    // The id-free host view reports the drops too — the fallback a caller
    // uses once every session it drove has been retired.
    EXPECT_EQ(host.host_stats().retired_drops, 2u);
    EXPECT_EQ(host.version(id_a), 3u);
    // The retired model was never folded into.
    EXPECT_TRUE(bitwise_equal(frozen_b, params_of(*model_b)))
        << "shards=" << shards;
    host.stop();
  }
}

/// Solo reference with seeded dropout churn: jobs whose (session_seed, i)
/// draw says "dropped" are never submitted — the same churn pattern the
/// stress test applies on the host, so the reference sees the identical
/// surviving sequence.
bool churn_drops(std::uint64_t session_seed, std::size_t i) {
  stats::Rng rng = stats::Rng::stream(session_seed, i);
  return rng.uniform() < 0.2;
}

std::vector<float> solo_run_with_churn(std::size_t n_jobs,
                                       std::uint64_t init_seed,
                                       std::uint64_t churn_seed,
                                       const RuntimeConfig& base) {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(init_seed);
  RuntimeConfig runtime = base;
  runtime.start_paused = true;
  ConcurrentFleetServer server(*model, pretrained_iprof(), server_config(),
                               runtime);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    if (churn_drops(churn_seed, i)) continue;
    GradientJob job = varied_job(*model, core::kDefaultModelId, 0, i);
    EXPECT_TRUE(server.try_submit(job).accepted);
  }
  server.resume();
  server.drain();
  server.stop();
  return params_of(*model);
}

TEST(MultiTenantTest, ConcurrentFoldStressStaysBitwiseUnderChurnAndRetire) {
  // Fold-scheduler stress (DESIGN.md §9): four mixed tenants — two sizes
  // of model — driven by one producer thread each, concurrently, with
  // dropout churn, while a fifth session is retired mid-drain. The four
  // surviving sessions' final models must be bitwise identical to their
  // solo runs; the host's accounting must settle despite the mid-flight
  // retirement.
  constexpr std::size_t kJobs = 48;
  for (const std::size_t shards : {2u, 4u}) {
    for (const std::size_t batch : {0u, 8u}) {
      RuntimeConfig base;
      base.aggregation_shards = shards;
      base.max_drain_batch = batch;

      std::vector<std::vector<float>> refs;
      for (std::size_t m = 0; m < 4; ++m) {
        refs.push_back(solo_run_with_churn(kJobs, 7 + m, 1000 + m, base));
      }

      std::vector<std::unique_ptr<nn::Sequential>> models;
      for (std::size_t m = 0; m < 4; ++m) {
        models.push_back(nn::zoo::mlp(8, 4, 3));
        models.back()->init(7 + m);
      }
      // The doomed tenant is a different shape — retiring it mid-drain
      // must not disturb the differently-partitioned survivors.
      auto doomed = nn::zoo::mlp(16, 6, 5);
      doomed->init(99);

      ConcurrentFleetServer host(base);
      std::vector<core::ModelId> ids;
      for (auto& model : models) {
        ids.push_back(
            host.register_model(*model, pretrained_iprof(), server_config()));
      }
      const core::ModelId doomed_id =
          host.register_model(*doomed, pretrained_iprof(), server_config());

      // One producer thread per tenant — per-session admission order is
      // each thread's program order, which is all determinism needs; the
      // cross-tenant interleaving is whatever the scheduler makes of it.
      std::vector<std::thread> producers;
      for (std::size_t m = 0; m < 4; ++m) {
        producers.emplace_back([&, m] {
          for (std::size_t i = 0; i < kJobs; ++i) {
            if (churn_drops(1000 + m, i)) continue;
            GradientJob job = varied_job(*models[m], ids[m], 0, i);
            while (!host.try_submit(job).accepted) {
              std::this_thread::yield();
            }
          }
        });
      }
      std::atomic<std::size_t> doomed_accepted{0};
      producers.emplace_back([&] {
        for (std::size_t i = 0; i < kJobs; ++i) {
          GradientJob job = varied_job(*doomed, doomed_id, 0, i);
          const auto receipt = host.try_submit(job);
          if (receipt.accepted) {
            doomed_accepted.fetch_add(1, std::memory_order_relaxed);
          } else if (!receipt.retryable) {
            return;  // retired underneath us: permanent reject
          }
        }
      });
      // Retire the fifth tenant while drains are in full flight.
      host.retire_model(doomed_id);
      for (auto& producer : producers) producer.join();

      host.drain();  // settles even though some accepted jobs were dropped
      for (std::size_t m = 0; m < 4; ++m) {
        EXPECT_EQ(host.stats(ids[m]).invalid_jobs, 0u);
      }
      // The retire cut is batch-granular: accepted doomed jobs either
      // folded before the cut or were dropped and counted, never lost.
      EXPECT_EQ(host.session(doomed_id), nullptr);
      EXPECT_LE(host.host_stats().retired_drops, doomed_accepted.load());
      host.stop();

      for (std::size_t m = 0; m < 4; ++m) {
        EXPECT_TRUE(bitwise_equal(refs[m], params_of(*models[m])))
            << "tenant " << m << " diverged: shards=" << shards
            << " batch=" << batch;
      }
    }
  }
}

TEST(MultiTenantTest, SteadyStateDrainsReuseHotPathBuffers) {
  // The demux slots and fold-plan buffers must stop allocating once
  // warmed: drive two identical waves and require the growth counter to
  // hold still across the second (DESIGN.md §9 hot-path contract).
  RuntimeConfig runtime;
  runtime.aggregation_shards = 2;
  runtime.max_drain_batch = 8;
  runtime.start_paused = true;
  ConcurrentFleetServer host(runtime);

  auto model_a = nn::zoo::mlp(8, 4, 3);
  model_a->init(1);
  auto model_b = nn::zoo::mlp(8, 4, 3);
  model_b->init(2);
  const auto id_a =
      host.register_model(*model_a, pretrained_iprof(), server_config());
  const auto id_b =
      host.register_model(*model_b, pretrained_iprof(), server_config());

  const auto wave = [&] {
    for (std::size_t i = 0; i < 24; ++i) {
      GradientJob job_a = varied_job(*model_a, id_a, 0, i);
      ASSERT_TRUE(host.try_submit(job_a).accepted);
      GradientJob job_b = varied_job(*model_b, id_b, 0, i);
      ASSERT_TRUE(host.try_submit(job_b).accepted);
    }
    host.resume();
    host.drain();
    host.pause();
  };

  wave();
  const std::size_t after_warmup = host.host_stats().fold_buffer_growths;
  wave();
  EXPECT_EQ(host.host_stats().fold_buffer_growths, after_warmup)
      << "the aggregation hot path allocated during a steady-state wave";
  // The gauges surface through per-session stats too, and the fold
  // scheduler's occupancy counters moved.
  EXPECT_EQ(host.stats(id_a).fold_buffer_growths, after_warmup);
  EXPECT_GT(host.host_stats().fold_tasks_executed, 0u);
  EXPECT_GE(host.host_stats().fold_peak_pending, 1u);
  EXPECT_GE(host.host_stats().queue_max_depth_seen, 8u);
  host.stop();
}

/// Mixed-workload fleet fixture: six CNN workers over one host, the first
/// three assigned to model A, the last three to model B. `active_*` turn a
/// tenant's workers off by pointing them at an unregistered id (their
/// requests are rejected, they compute nothing, draw nothing) — which is
/// how we isolate one session's drive while keeping every worker's
/// RNG-stream index identical across runs.
struct MixedFleetRun {
  std::uint64_t hash_a = 0;
  std::uint64_t hash_b = 0;
  ParallelFleet::Stats stats;
};

MixedFleetRun run_mixed_fleet(bool active_a, bool active_b,
                              std::size_t n_threads,
                              const RuntimeConfig& runtime) {
  static const data::TrainTestSplit split = data::generate_synthetic_images([] {
    data::SyntheticImageConfig cfg;
    cfg.n_classes = 4;
    cfg.n_train = 240;
    cfg.n_test = 40;
    return cfg;
  }());

  auto model_a = nn::zoo::small_cnn(1, 14, 14, 4);
  model_a->init(1);
  auto model_b = nn::zoo::small_cnn(1, 14, 14, 4);
  model_b->init(2);
  core::ServerConfig config;
  config.learning_rate = 0.05f;
  ConcurrentFleetServer host(runtime);
  const auto id_a = host.register_model(*model_a, pretrained_iprof(), config);
  const auto id_b = host.register_model(*model_b, pretrained_iprof(), config);
  constexpr core::ModelId kInertId = 99;  // never registered: rejects

  stats::Rng rng(2);
  const auto partition = data::partition_iid(split.train.size(), 6, rng);
  const auto fleet = device::lab_fleet();
  std::vector<core::FleetWorker> workers;
  std::vector<core::ModelId> worker_models;
  for (std::size_t u = 0; u < partition.size(); ++u) {
    auto replica = nn::zoo::small_cnn(1, 14, 14, 4);
    replica->init(1);
    workers.emplace_back(static_cast<int>(u), std::move(replica), split.train,
                         partition[u], device::spec(fleet[u % fleet.size()]),
                         100 + u);
    const bool first_half = u < partition.size() / 2;
    if (first_half) {
      worker_models.push_back(active_a ? id_a : kInertId);
    } else {
      worker_models.push_back(active_b ? id_b : kInertId);
    }
  }

  ParallelFleet::Config cfg;
  cfg.n_threads = n_threads;
  cfg.rounds = 4;
  cfg.max_arrival_delay = 2;
  cfg.dropout_prob = 0.2;
  cfg.seed = 11;
  cfg.worker_models = worker_models;
  ParallelFleet driver(host, workers, cfg);
  MixedFleetRun run;
  run.stats = driver.run();
  host.stop();
  run.hash_a = param_hash(model_a->parameters_view());
  run.hash_b = param_hash(model_b->parameters_view());
  return run;
}

TEST(MultiTenantTest, MixedFleetSessionsAreIsolatedAndThreadCountInvariant) {
  RuntimeConfig runtime;
  runtime.aggregation_shards = 2;
  runtime.max_drain_batch = 8;

  const MixedFleetRun both = run_mixed_fleet(true, true, 2, runtime);
  EXPECT_GT(both.stats.gradients_submitted, 0u);
  ASSERT_EQ(both.stats.per_model.size(), 2u);
  EXPECT_GT(both.stats.per_model[0].runtime.processed, 0u);
  EXPECT_GT(both.stats.per_model[1].runtime.processed, 0u);
  EXPECT_EQ(both.stats.runtime.processed, both.stats.gradients_submitted);

  // Isolation: a session's final model must not depend on whether the
  // OTHER tenant was training on the same host at the same time.
  const MixedFleetRun only_a = run_mixed_fleet(true, false, 2, runtime);
  const MixedFleetRun only_b = run_mixed_fleet(false, true, 2, runtime);
  EXPECT_EQ(both.hash_a, only_a.hash_a);
  EXPECT_EQ(both.hash_b, only_b.hash_b);
  // The solo run only drove one session (the inert workers' placeholder id
  // resolves to no session), and B really did train in the mixed run.
  ASSERT_EQ(only_a.stats.per_model.size(), 1u);
  EXPECT_EQ(only_a.stats.per_model[0].id, core::kDefaultModelId);
  EXPECT_NE(only_a.hash_b, both.hash_b);

  // Thread-count invariance holds for the mixed drive as a whole.
  const MixedFleetRun threads_1 = run_mixed_fleet(true, true, 1, runtime);
  const MixedFleetRun threads_4 = run_mixed_fleet(true, true, 4, runtime);
  EXPECT_EQ(threads_1.hash_a, threads_4.hash_a);
  EXPECT_EQ(threads_1.hash_b, threads_4.hash_b);
  EXPECT_EQ(threads_1.hash_a, both.hash_a);
  EXPECT_EQ(threads_1.hash_b, both.hash_b);
}

}  // namespace
}  // namespace fleet::runtime
