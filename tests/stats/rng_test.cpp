#include "fleet/stats/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace fleet::stats {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.15);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(17);
  const std::array<double, 3> weights{1.0, 2.0, 7.0};
  std::array<int, 3> counts{0, 0, 0};
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    counts[rng.categorical(weights)]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(RngTest, CategoricalRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  const std::array<double, 2> zeros{0.0, 0.0};
  EXPECT_THROW(rng.categorical(zeros), std::invalid_argument);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 50u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream differs from the parent's subsequent draws.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.uniform() == child.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, StreamSplittingIsPureAndOrderFree) {
  // stream(base, i) consumes no generator state: the same (base, id) pair
  // yields the same sequence no matter how many other streams were made
  // first or from which thread — the property ParallelFleet's per-worker
  // seed derivation rests on.
  Rng direct = Rng::stream(42, 7);
  Rng::stream(42, 0);  // constructing other streams must not interfere
  Rng::stream(42, 3);
  Rng again = Rng::stream(42, 7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(direct.uniform(), again.uniform());
  }
}

TEST(RngTest, StreamSplittingSeparatesAdjacentStreams) {
  // Adjacent stream ids and adjacent base seeds must decorrelate — the
  // naive `seed + id` construction fails this (stream(s, i+1) would equal
  // stream(s+1, i)); the SplitMix64 mix with a golden-ratio stride breaks
  // the collision.
  Rng a = Rng::stream(5, 1);
  Rng b = Rng::stream(5, 2);
  Rng c = Rng::stream(6, 1);
  int ab = 0, ac = 0;
  for (int i = 0; i < 50; ++i) {
    const double ua = a.uniform();
    if (ua == b.uniform()) ++ab;
    if (ua == c.uniform()) ++ac;
  }
  EXPECT_LT(ab, 3);
  EXPECT_LT(ac, 3);
}

}  // namespace
}  // namespace fleet::stats
