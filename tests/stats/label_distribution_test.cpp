#include "fleet/stats/label_distribution.hpp"

#include <gtest/gtest.h>

#include "fleet/stats/rng.hpp"

namespace fleet::stats {
namespace {

TEST(LabelDistributionTest, PaperExampleFromSection23) {
  // §2.3: 4 labels, 1 example of label 0 and 2 of label 1
  // => LD = [1/3, 2/3, 0, 0].
  LabelDistribution ld(4);
  ld.add(0, 1);
  ld.add(1, 2);
  const auto p = ld.probabilities();
  EXPECT_NEAR(p[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(p[1], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
  EXPECT_DOUBLE_EQ(p[3], 0.0);
}

TEST(LabelDistributionTest, FromLabelsCounts) {
  const std::vector<int> labels{0, 1, 1, 2, 2, 2};
  const auto ld = LabelDistribution::from_labels(labels, 3);
  EXPECT_EQ(ld.count(0), 1u);
  EXPECT_EQ(ld.count(1), 2u);
  EXPECT_EQ(ld.count(2), 3u);
  EXPECT_EQ(ld.total(), 6u);
}

TEST(LabelDistributionTest, MergeAggregatesCounts) {
  LabelDistribution a(2), b(2);
  a.add(0, 3);
  b.add(1, 5);
  a.merge(b);
  EXPECT_EQ(a.count(0), 3u);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.total(), 8u);
}

TEST(LabelDistributionTest, RejectsInvalidInput) {
  EXPECT_THROW(LabelDistribution(0), std::invalid_argument);
  LabelDistribution ld(2);
  EXPECT_THROW(ld.add(-1), std::out_of_range);
  EXPECT_THROW(ld.add(2), std::out_of_range);
  LabelDistribution other(3);
  EXPECT_THROW(ld.merge(other), std::invalid_argument);
}

TEST(BhattacharyyaTest, IdenticalDistributionsGiveOne) {
  LabelDistribution a(3), b(3);
  a.add(0, 2);
  a.add(1, 3);
  a.add(2, 5);
  b.add(0, 4);
  b.add(1, 6);
  b.add(2, 10);  // same proportions
  EXPECT_NEAR(bhattacharyya_coefficient(a, b), 1.0, 1e-12);
}

TEST(BhattacharyyaTest, DisjointSupportGivesZero) {
  LabelDistribution a(4), b(4);
  a.add(0, 5);
  a.add(1, 5);
  b.add(2, 5);
  b.add(3, 5);
  EXPECT_DOUBLE_EQ(bhattacharyya_coefficient(a, b), 0.0);
}

TEST(BhattacharyyaTest, KnownIntermediateValue) {
  // p = [1/2, 1/2], q = [1, 0]: BC = sqrt(1/2).
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{1.0, 0.0};
  EXPECT_NEAR(bhattacharyya_coefficient(p, q), std::sqrt(0.5), 1e-12);
}

TEST(BhattacharyyaTest, SymmetricInArguments) {
  const std::vector<double> p{0.7, 0.2, 0.1};
  const std::vector<double> q{0.1, 0.3, 0.6};
  EXPECT_DOUBLE_EQ(bhattacharyya_coefficient(p, q),
                   bhattacharyya_coefficient(q, p));
}

TEST(BhattacharyyaTest, SizeMismatchThrows) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{1.0};
  EXPECT_THROW(bhattacharyya_coefficient(p, q), std::invalid_argument);
}

/// Property sweep: BC of random distributions stays in [0, 1] and equals 1
/// only for (near-)identical inputs.
class BhattacharyyaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BhattacharyyaPropertyTest, BoundedAndNormalized) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t classes = 2 + static_cast<std::size_t>(GetParam()) % 9;
  LabelDistribution a(classes), b(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    a.add(static_cast<int>(c), static_cast<std::size_t>(rng.uniform_int(0, 20)));
    b.add(static_cast<int>(c), static_cast<std::size_t>(rng.uniform_int(0, 20)));
  }
  if (a.total() == 0) a.add(0, 1);
  if (b.total() == 0) b.add(0, 1);
  const double bc = bhattacharyya_coefficient(a, b);
  EXPECT_GE(bc, 0.0);
  EXPECT_LE(bc, 1.0);
  EXPECT_NEAR(bhattacharyya_coefficient(a, a), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomDistributions, BhattacharyyaPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace fleet::stats
