#include "fleet/stats/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fleet/stats/rng.hpp"

namespace fleet::stats {
namespace {

TEST(SolveLinearSystemTest, SolvesKnownSystem) {
  // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4].
  const auto x = solve_linear_system({2, 1, 1, 3}, {3, 5}, 2);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(SolveLinearSystemTest, PivotsWhenLeadingZero) {
  // [0 1; 1 0] x = [2; 3] -> x = [3, 2].
  const auto x = solve_linear_system({0, 1, 1, 0}, {2, 3}, 2);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinearSystemTest, SingularThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 2, 4}, {1, 2}, 2),
               std::runtime_error);
}

TEST(OlsRegressionTest, RecoversExactLinearModel) {
  OlsRegression ols(3);
  Rng rng(1);
  const std::vector<double> truth{2.0, -1.5, 0.5};
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{1.0, rng.uniform(0, 10), rng.uniform(0, 10)};
    ols.add_observation(x, dot(x, truth));
  }
  ols.fit();
  for (std::size_t j = 0; j < truth.size(); ++j) {
    EXPECT_NEAR(ols.coefficients()[j], truth[j], 1e-6);
  }
}

TEST(OlsRegressionTest, RobustToNoise) {
  OlsRegression ols(2);
  Rng rng(2);
  const std::vector<double> truth{1.0, 3.0};
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> x{1.0, rng.uniform(0, 5)};
    ols.add_observation(x, dot(x, truth) + rng.gaussian(0.0, 0.1));
  }
  ols.fit();
  EXPECT_NEAR(ols.coefficients()[0], 1.0, 0.05);
  EXPECT_NEAR(ols.coefficients()[1], 3.0, 0.02);
}

TEST(OlsRegressionTest, WeightsFavorRelativeAccuracy) {
  // Two clusters: y ~ 100 (slow devices) and y ~ 1 (fast devices), each
  // perfectly explained by its own feature. With w = 1/y^2 the fit must
  // be accurate for the small-y cluster too, not just in absolute terms.
  OlsRegression weighted(2);
  OlsRegression plain(2);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    // Feature x1 in [0.9, 1.1] drives the fast cluster; x0 the slow one.
    const bool slow = i % 2 == 0;
    const std::vector<double> x{slow ? 1.0 : 0.0,
                                slow ? 0.0 : rng.uniform(0.9, 1.1)};
    const double y = slow ? rng.uniform(95.0, 105.0) : x[1];
    weighted.add_observation(x, y, 1.0 / (y * y));
    plain.add_observation(x, y);
  }
  weighted.fit();
  const std::vector<double> fast_x{0.0, 1.0};
  EXPECT_NEAR(weighted.predict(fast_x), 1.0, 0.1);
}

TEST(OlsRegressionTest, RejectsNonPositiveWeight) {
  OlsRegression ols(1);
  EXPECT_THROW(ols.add_observation(std::vector<double>{1.0}, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ols.add_observation(std::vector<double>{1.0}, 1.0, -2.0),
               std::invalid_argument);
}

TEST(OlsRegressionTest, FitWithoutDataThrows) {
  OlsRegression ols(2);
  EXPECT_THROW(ols.fit(), std::runtime_error);
}

TEST(OlsRegressionTest, FeatureSizeMismatchThrows) {
  OlsRegression ols(2);
  EXPECT_THROW(ols.add_observation(std::vector<double>{1.0}, 1.0),
               std::invalid_argument);
}

TEST(PassiveAggressiveTest, PassiveInsideEpsilonBand) {
  PassiveAggressiveRegression pa({1.0, 1.0}, /*epsilon=*/0.5);
  const std::vector<double> x{1.0, 1.0};
  // Prediction is 2.0; target 2.3 is within the 0.5 band: no update.
  const double loss = pa.update(x, 2.3);
  EXPECT_DOUBLE_EQ(loss, 0.0);
  EXPECT_DOUBLE_EQ(pa.coefficients()[0], 1.0);
}

TEST(PassiveAggressiveTest, AggressiveUpdateLandsOnEpsilonBoundary) {
  PassiveAggressiveRegression pa({0.0, 0.0}, /*epsilon=*/0.1);
  const std::vector<double> x{1.0, 2.0};
  pa.update(x, 10.0);
  // After a PA update the new prediction sits exactly epsilon away.
  EXPECT_NEAR(pa.predict(x), 10.0 - 0.1, 1e-9);
}

TEST(PassiveAggressiveTest, ConvergesToStationaryTarget) {
  PassiveAggressiveRegression pa({0.0, 0.0, 0.0}, 0.01);
  Rng rng(3);
  const std::vector<double> truth{0.5, 1.5, -2.0};
  double final_loss = 0.0;
  for (int i = 0; i < 400; ++i) {
    const std::vector<double> x{1.0, rng.uniform(0, 2), rng.uniform(0, 2)};
    final_loss = pa.update(x, dot(x, truth));
  }
  EXPECT_LT(final_loss, 0.1);
}

TEST(PassiveAggressiveTest, TracksDriftingTarget) {
  // The reason I-Prof uses PA: it adapts when the device slope drifts
  // (e.g., thermal throttling).
  PassiveAggressiveRegression pa({1.0}, 0.01);
  const std::vector<double> x{1.0};
  for (int i = 0; i < 50; ++i) pa.update(x, 5.0);
  EXPECT_NEAR(pa.predict(x), 5.0, 0.1);
  for (int i = 0; i < 50; ++i) pa.update(x, 9.0);
  EXPECT_NEAR(pa.predict(x), 9.0, 0.1);
}

TEST(PassiveAggressiveTest, SmallerEpsilonIsMoreAggressive) {
  PassiveAggressiveRegression tight({0.0}, 0.01);
  PassiveAggressiveRegression loose({0.0}, 1.0);
  const std::vector<double> x{1.0};
  tight.update(x, 2.0);
  loose.update(x, 2.0);
  EXPECT_GT(tight.coefficients()[0], loose.coefficients()[0]);
}

TEST(PassiveAggressiveTest, RejectsBadConstruction) {
  EXPECT_THROW(PassiveAggressiveRegression({}, 0.1), std::invalid_argument);
  EXPECT_THROW(PassiveAggressiveRegression({1.0}, -0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::stats
