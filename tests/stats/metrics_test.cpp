#include "fleet/stats/metrics.hpp"

#include <gtest/gtest.h>

namespace fleet::stats {
namespace {

TEST(MetricsTest, AccuracyOnPerfectPredictions) {
  // 3 samples, 2 classes, logits put mass on the true label.
  const std::vector<float> scores{0.9f, 0.1f, 0.2f, 0.8f, 0.7f, 0.3f};
  const std::vector<int> labels{0, 1, 0};
  EXPECT_DOUBLE_EQ(accuracy(scores, labels, 2), 1.0);
}

TEST(MetricsTest, AccuracyOnMixedPredictions) {
  const std::vector<float> scores{0.9f, 0.1f, 0.9f, 0.1f};
  const std::vector<int> labels{0, 1};
  EXPECT_DOUBLE_EQ(accuracy(scores, labels, 2), 0.5);
}

TEST(MetricsTest, AccuracyShapeMismatchThrows) {
  const std::vector<float> scores{0.9f, 0.1f};
  const std::vector<int> labels{0, 1};
  EXPECT_THROW(accuracy(scores, labels, 2), std::invalid_argument);
}

TEST(MetricsTest, ClassAccuracyRestrictsToClass) {
  // Two class-0 samples (one right), one class-1 sample (right).
  const std::vector<float> scores{0.9f, 0.1f, 0.2f, 0.8f, 0.1f, 0.9f};
  const std::vector<int> labels{0, 0, 1};
  EXPECT_DOUBLE_EQ(class_accuracy(scores, labels, 2, 0), 0.5);
  EXPECT_DOUBLE_EQ(class_accuracy(scores, labels, 2, 1), 1.0);
}

TEST(MetricsTest, ClassAccuracyAbsentClassReturnsSentinel) {
  const std::vector<float> scores{0.9f, 0.1f};
  const std::vector<int> labels{0};
  EXPECT_DOUBLE_EQ(class_accuracy(scores, labels, 2, 1), -1.0);
}

TEST(MetricsTest, TopKOrdersByScore) {
  const std::vector<float> scores{0.1f, 0.9f, 0.5f, 0.7f};
  const auto top = top_k(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(MetricsTest, TopKClampsToSize) {
  const std::vector<float> scores{0.1f, 0.9f};
  EXPECT_EQ(top_k(scores, 10).size(), 2u);
}

TEST(MetricsTest, PrecisionRecallPerfect) {
  const std::vector<std::size_t> rec{1, 2, 3};
  const std::vector<std::size_t> rel{1, 2, 3};
  const auto pr = precision_recall_at_k(rec, rel);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.f1, 1.0);
}

TEST(MetricsTest, PrecisionRecallPartialOverlap) {
  // 5 recommended, 2 relevant, 1 hit: P=0.2, R=0.5, F1=2*.2*.5/.7.
  const std::vector<std::size_t> rec{1, 2, 3, 4, 5};
  const std::vector<std::size_t> rel{1, 99};
  const auto pr = precision_recall_at_k(rec, rel);
  EXPECT_DOUBLE_EQ(pr.precision, 0.2);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
  EXPECT_NEAR(pr.f1, 2.0 * 0.2 * 0.5 / 0.7, 1e-12);
}

TEST(MetricsTest, PrecisionRecallNoOverlapIsZero) {
  const std::vector<std::size_t> rec{1, 2};
  const std::vector<std::size_t> rel{3};
  const auto pr = precision_recall_at_k(rec, rel);
  EXPECT_DOUBLE_EQ(pr.f1, 0.0);
}

TEST(MetricsTest, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

}  // namespace
}  // namespace fleet::stats
