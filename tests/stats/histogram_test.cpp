#include "fleet/stats/histogram.hpp"

#include <gtest/gtest.h>

namespace fleet::stats {
namespace {

TEST(HistogramTest, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.7);
  h.add(9.9);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(HistogramTest, TracksUnderAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(HistogramTest, ProbabilitiesSumToOneWithinRange) {
  Histogram h(0.0, 1.0, 5);
  for (int i = 0; i < 100; ++i) h.add((i % 10) / 10.0);
  double total = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) total += h.probability(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, BinGeometry) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 7.0);
}

TEST(HistogramTest, RejectsDegenerateConfigs) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(EmpiricalCdfTest, QuantilesOfKnownSequence) {
  EmpiricalCdf cdf({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.0);
}

TEST(EmpiricalCdfTest, FractionBelow) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(10.0), 1.0);
}

TEST(EmpiricalCdfTest, RejectsEmptyAndBadQuantile) {
  EXPECT_THROW(EmpiricalCdf({}), std::invalid_argument);
  EmpiricalCdf cdf({1.0});
  EXPECT_THROW(cdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(cdf.quantile(1.1), std::invalid_argument);
}

}  // namespace
}  // namespace fleet::stats
