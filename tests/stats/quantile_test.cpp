#include "fleet/stats/quantile.hpp"

#include <gtest/gtest.h>

#include "fleet/stats/rng.hpp"

namespace fleet::stats {
namespace {

TEST(RunningQuantileTest, FallbackBeforeAnyValue) {
  RunningQuantile q;
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.percentile(50.0, 7.0), 7.0);
}

TEST(RunningQuantileTest, ExactOnSmallSets) {
  RunningQuantile q;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) q.add(v);
  EXPECT_DOUBLE_EQ(q.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(q.percentile(100.0), 5.0);
}

TEST(RunningQuantileTest, WindowEvictsOldest) {
  RunningQuantile q(4);
  for (double v : {100.0, 100.0, 100.0, 100.0}) q.add(v);
  // Push 4 small values; all the 100s must be gone.
  for (double v : {1.0, 2.0, 3.0, 4.0}) q.add(v);
  EXPECT_DOUBLE_EQ(q.percentile(100.0), 4.0);
}

TEST(RunningQuantileTest, PercentileOfGaussianStream) {
  RunningQuantile q(4096);
  Rng rng(5);
  for (int i = 0; i < 4096; ++i) q.add(rng.gaussian(12.0, 4.0));
  // 99.7th percentile of N(12,4) is approximately mu + 2.75 sigma = 23.
  EXPECT_NEAR(q.percentile(99.7), 23.0, 1.8);
}

TEST(RunningQuantileTest, RejectsBadInputs) {
  EXPECT_THROW(RunningQuantile(0), std::invalid_argument);
  RunningQuantile q;
  q.add(1.0);
  EXPECT_THROW(q.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW(q.percentile(101.0), std::invalid_argument);
}

TEST(RunningQuantileTest, CountSaturatesAtWindow) {
  RunningQuantile q(8);
  for (int i = 0; i < 20; ++i) q.add(i);
  EXPECT_EQ(q.count(), 8u);
}

}  // namespace
}  // namespace fleet::stats
