#include "fleet/stats/distributions.hpp"

#include <gtest/gtest.h>

namespace fleet::stats {
namespace {

TEST(GaussianDistributionTest, SamplesRespectFloor) {
  GaussianDistribution d(1.0, 5.0, 0.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(d.sample(rng), 0.0);
  }
}

TEST(GaussianDistributionTest, EmpiricalMeanMatches) {
  GaussianDistribution d(12.0, 4.0);
  Rng rng(2);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, 12.0, 0.2);
}

TEST(GaussianDistributionTest, RejectsNegativeStddev) {
  EXPECT_THROW(GaussianDistribution(0.0, -1.0), std::invalid_argument);
}

TEST(ShiftedExponentialTest, PaperRoundTripParameters) {
  // §3.1: minimum 7.1 s, mean 8.45 s.
  ShiftedExponentialDistribution d(7.1, 8.45);
  Rng rng(3);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 7.1);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 8.45, 0.05);
}

TEST(ShiftedExponentialTest, RejectsMeanBelowMinimum) {
  EXPECT_THROW(ShiftedExponentialDistribution(5.0, 4.0),
               std::invalid_argument);
}

TEST(ConstantDistributionTest, AlwaysSameValue) {
  ConstantDistribution d(4.2);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 4.2);
  EXPECT_DOUBLE_EQ(d.mean(), 4.2);
}

TEST(LongTailGaussianTest, TailSamplesAppearAtExpectedRate) {
  // Body N(10,2), 5% tail starting at 65 (the Fig 7 shape).
  LongTailGaussianDistribution d(10.0, 2.0, 0.05, 65.0, 120.0);
  Rng rng(5);
  int tail_count = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) >= 65.0) ++tail_count;
  }
  EXPECT_NEAR(tail_count / static_cast<double>(n), 0.05, 0.01);
}

TEST(LongTailGaussianTest, MeanCombinesBodyAndTail) {
  LongTailGaussianDistribution d(10.0, 2.0, 0.1, 50.0, 100.0);
  EXPECT_NEAR(d.mean(), 0.9 * 10.0 + 0.1 * 100.0, 1e-9);
}

TEST(LongTailGaussianTest, RejectsBadTailConfig) {
  EXPECT_THROW(LongTailGaussianDistribution(10, 2, 1.5, 50, 100),
               std::invalid_argument);
  EXPECT_THROW(LongTailGaussianDistribution(10, 2, 0.1, 100, 50),
               std::invalid_argument);
}

TEST(DistributionTest, DescribeIsInformative) {
  EXPECT_NE(GaussianDistribution(6, 2).describe().find("6"),
            std::string::npos);
  EXPECT_NE(ShiftedExponentialDistribution(7.1, 8.45).describe().find("7.1"),
            std::string::npos);
}

}  // namespace
}  // namespace fleet::stats
