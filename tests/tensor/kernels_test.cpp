// Parity, dispatch and scratch-arena tests for the kernel layer
// (src/fleet/tensor/kernels/, DESIGN.md §10).
//
// The parity suite is the enforcement arm of the §10 numerical contract:
// every available SIMD backend is compared against the portable scalar
// reference — bitwise for the elementwise kernels and the accumulate-GEMMs
// (odd lengths, unaligned span offsets, empty/1-element edges included, so
// both the vector body and the scalar tail are exercised), tight-ULP for
// matmul_a_bt's dot-product reduction, and bitwise for the order-pinned
// reductions (squared_norm, bhattacharyya).
#include "fleet/tensor/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "fleet/nn/conv2d.hpp"
#include "fleet/stats/rng.hpp"
#include "fleet/tensor/kernels/scratch.hpp"
#include "fleet/tensor/ops.hpp"

namespace fleet::tensor::kernels {
namespace {

// Lengths that cover empty, single-element, below/at/above every SIMD
// width (4 for NEON, 8 for AVX2), and sizes with long vector bodies plus
// ragged tails.
const std::size_t kLengths[] = {0,  1,  2,  3,  7,   8,   9,    15,  16,
                                17, 31, 32, 33, 63,  64,  65,   100, 127,
                                128, 129, 255, 256, 257, 1000, 1023};

// Span offsets into an overaligned buffer: 0 plus misalignments that break
// 16/32-byte alignment, so the loadu/storeu paths are truly unaligned.
const std::size_t kOffsets[] = {0, 1, 3, 5};

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.gaussian(0.0, 1.0));
  return v;
}

std::vector<Backend> simd_backends() {
  std::vector<Backend> backends;
  for (const Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (available(b)) backends.push_back(b);
  }
  return backends;
}

bool bitwise_equal(const float* a, const float* b, std::size_t n) {
  // The n = 0 sweep cell hands over an empty vector's data(), which may be
  // null — memcmp requires non-null pointers even for zero sizes.
  return n == 0 || std::memcmp(a, b, n * sizeof(float)) == 0;
}

TEST(KernelParityTest, AxpyBitwiseAtEveryLengthAndOffset) {
  for (const Backend backend : simd_backends()) {
    const KernelTable& simd = table(backend);
    const KernelTable& ref = table(Backend::kPortable);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        const std::vector<float> x = random_floats(n + off, n * 31 + off);
        std::vector<float> y_ref = random_floats(n + off, n * 37 + off + 1);
        std::vector<float> y_simd = y_ref;
        ref.axpy(0.37f, x.data() + off, y_ref.data() + off, n);
        simd.axpy(0.37f, x.data() + off, y_simd.data() + off, n);
        EXPECT_TRUE(bitwise_equal(y_ref.data(), y_simd.data(), n + off))
            << simd.name << " axpy n=" << n << " off=" << off;
      }
    }
  }
}

TEST(KernelParityTest, ScaleBitwiseAtEveryLengthAndOffset) {
  for (const Backend backend : simd_backends()) {
    const KernelTable& simd = table(backend);
    const KernelTable& ref = table(Backend::kPortable);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        std::vector<float> x_ref = random_floats(n + off, n * 41 + off);
        std::vector<float> x_simd = x_ref;
        ref.scale(x_ref.data() + off, -1.7f, n);
        simd.scale(x_simd.data() + off, -1.7f, n);
        EXPECT_TRUE(bitwise_equal(x_ref.data(), x_simd.data(), n + off))
            << simd.name << " scale n=" << n << " off=" << off;
      }
    }
  }
}

TEST(KernelParityTest, AddBitwiseAtEveryLengthAndOffset) {
  for (const Backend backend : simd_backends()) {
    const KernelTable& simd = table(backend);
    const KernelTable& ref = table(Backend::kPortable);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        const std::vector<float> a = random_floats(n + off, n * 43 + off);
        const std::vector<float> b = random_floats(n + off, n * 47 + off + 1);
        std::vector<float> c_ref(n + off, 0.0f);
        std::vector<float> c_simd(n + off, 0.0f);
        ref.add(a.data() + off, b.data() + off, c_ref.data() + off, n);
        simd.add(a.data() + off, b.data() + off, c_simd.data() + off, n);
        EXPECT_TRUE(bitwise_equal(c_ref.data(), c_simd.data(), n + off))
            << simd.name << " add n=" << n << " off=" << off;
      }
    }
  }
}

TEST(KernelParityTest, MaxAbsDiffExactAtEveryLengthAndOffset) {
  for (const Backend backend : simd_backends()) {
    const KernelTable& simd = table(backend);
    const KernelTable& ref = table(Backend::kPortable);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        const std::vector<float> a = random_floats(n + off, n * 53 + off);
        const std::vector<float> b = random_floats(n + off, n * 59 + off + 1);
        const float expected = ref.max_abs_diff(a.data() + off, b.data() + off, n);
        const float got = simd.max_abs_diff(a.data() + off, b.data() + off, n);
        EXPECT_EQ(expected, got)
            << simd.name << " max_abs_diff n=" << n << " off=" << off;
      }
    }
  }
}

TEST(KernelParityTest, OrderPinnedReductionsBitwiseAcrossBackends) {
  // squared_norm and bhattacharyya are pinned to ONE sequential
  // implementation shared by every backend — exact equality, any input.
  for (const Backend backend : simd_backends()) {
    const KernelTable& simd = table(backend);
    const KernelTable& ref = table(Backend::kPortable);
    for (const std::size_t n : kLengths) {
      const std::vector<float> x = random_floats(n, n * 61 + 7);
      EXPECT_EQ(ref.squared_norm(x.data(), n), simd.squared_norm(x.data(), n))
          << simd.name << " squared_norm n=" << n;
      std::vector<double> p(n), q(n);
      stats::Rng rng(n * 67 + 11);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = rng.uniform(0.0, 1.0);
        q[i] = rng.uniform(0.0, 50.0);
      }
      EXPECT_EQ(ref.bhattacharyya(p.data(), q.data(), 50.0, n),
                simd.bhattacharyya(p.data(), q.data(), 50.0, n))
          << simd.name << " bhattacharyya n=" << n;
    }
  }
}

// GEMM shapes covering: tiny/degenerate, ragged n (vector tail), k above
// the cache-block size (so blocking engages), and m=1 (the RNN step shape).
struct GemmShape {
  std::size_t m, k, n;
};
const GemmShape kGemmShapes[] = {{1, 1, 1},  {1, 7, 5},    {3, 301, 17},
                                 {4, 8, 8},  {5, 240, 33}, {1, 64, 96},
                                 {8, 241, 9}, {2, 500, 1}};

TEST(KernelParityTest, MatmulBitwise) {
  for (const Backend backend : simd_backends()) {
    const KernelTable& simd = table(backend);
    const KernelTable& ref = table(Backend::kPortable);
    for (const GemmShape& s : kGemmShapes) {
      const std::vector<float> a = random_floats(s.m * s.k, s.m * 71 + s.k);
      const std::vector<float> b = random_floats(s.k * s.n, s.k * 73 + s.n);
      std::vector<float> c_ref = random_floats(s.m * s.n, 5);  // pre-filled
      std::vector<float> c_simd = c_ref;
      ref.matmul(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
      simd.matmul(a.data(), b.data(), c_simd.data(), s.m, s.k, s.n);
      EXPECT_TRUE(bitwise_equal(c_ref.data(), c_simd.data(), s.m * s.n))
          << simd.name << " matmul " << s.m << "x" << s.k << "x" << s.n;
    }
  }
}

TEST(KernelParityTest, MatmulAtBBitwise) {
  for (const Backend backend : simd_backends()) {
    const KernelTable& simd = table(backend);
    const KernelTable& ref = table(Backend::kPortable);
    for (const GemmShape& s : kGemmShapes) {
      // A is (k x m) for the A^T B shape.
      const std::vector<float> a = random_floats(s.k * s.m, s.m * 79 + s.k);
      const std::vector<float> b = random_floats(s.k * s.n, s.k * 83 + s.n);
      std::vector<float> c_ref = random_floats(s.m * s.n, 6);
      std::vector<float> c_simd = c_ref;
      ref.matmul_at_b(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
      simd.matmul_at_b(a.data(), b.data(), c_simd.data(), s.m, s.k, s.n);
      EXPECT_TRUE(bitwise_equal(c_ref.data(), c_simd.data(), s.m * s.n))
          << simd.name << " matmul_at_b " << s.m << "x" << s.k << "x" << s.n;
    }
  }
}

TEST(KernelParityTest, MatmulABtTightUlp) {
  // The dot-product GEMM may reassociate (lane partials + FMA): compare
  // both backends against a double-precision reference and require each to
  // sit within a tight relative band of it.
  for (const Backend backend : simd_backends()) {
    const KernelTable& simd = table(backend);
    const KernelTable& ref = table(Backend::kPortable);
    for (const GemmShape& s : kGemmShapes) {
      const std::vector<float> a = random_floats(s.m * s.k, s.m * 89 + s.k);
      // B is (n x k) for the A B^T shape.
      const std::vector<float> b = random_floats(s.n * s.k, s.k * 97 + s.n);
      std::vector<float> c_ref(s.m * s.n, 0.0f);
      std::vector<float> c_simd(s.m * s.n, 0.0f);
      ref.matmul_a_bt(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
      simd.matmul_a_bt(a.data(), b.data(), c_simd.data(), s.m, s.k, s.n);
      for (std::size_t i = 0; i < s.m; ++i) {
        for (std::size_t j = 0; j < s.n; ++j) {
          double exact = 0.0;
          for (std::size_t p = 0; p < s.k; ++p) {
            exact += static_cast<double>(a[i * s.k + p]) *
                     static_cast<double>(b[j * s.k + p]);
          }
          // ~8 float ULPs of headroom around the magnitude of the exact
          // dot product (k partial rounds at most).
          const double tol =
              8.0 * 1.19209290e-07 *
              std::max(1.0, std::abs(exact) + static_cast<double>(s.k));
          EXPECT_NEAR(c_ref[i * s.n + j], exact, tol) << "portable a_bt";
          EXPECT_NEAR(c_simd[i * s.n + j], exact, tol)
              << simd.name << " a_bt " << s.m << "x" << s.k << "x" << s.n;
        }
      }
    }
  }
}

// ---- dispatch --------------------------------------------------------------

TEST(KernelDispatchTest, PortableAlwaysAvailable) {
  EXPECT_TRUE(available(Backend::kPortable));
  EXPECT_EQ(table(Backend::kPortable).name, std::string("portable"));
}

TEST(KernelDispatchTest, AutoIsNotABackend) {
  EXPECT_FALSE(available(Backend::kAuto));
  EXPECT_THROW(table(Backend::kAuto), std::invalid_argument);
}

TEST(KernelDispatchTest, UnavailableBackendThrows) {
  for (const Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (available(b)) continue;
    EXPECT_THROW(table(b), std::invalid_argument);
    EXPECT_THROW(pin_backend(b), std::invalid_argument);
  }
}

TEST(KernelDispatchTest, ParseBackendSpellings) {
  EXPECT_EQ(parse_backend(""), Backend::kAuto);
  EXPECT_EQ(parse_backend("auto"), Backend::kAuto);
  EXPECT_EQ(parse_backend("portable"), Backend::kPortable);
  EXPECT_EQ(parse_backend("scalar"), Backend::kPortable);
  EXPECT_EQ(parse_backend("avx2"), Backend::kAvx2);
  EXPECT_EQ(parse_backend("neon"), Backend::kNeon);
  EXPECT_FALSE(parse_backend("sse9").has_value());
  EXPECT_EQ(name(Backend::kAuto), "auto");
  EXPECT_EQ(name(Backend::kAvx2), "avx2");
}

TEST(KernelDispatchTest, PinSwitchesActiveTableAndAutoRestores) {
  const Backend original = active_backend();
  pin_backend(Backend::kPortable);
  EXPECT_EQ(active_backend(), Backend::kPortable);
  EXPECT_EQ(selection_source(), "pinned");
  EXPECT_EQ(&active(), &table(Backend::kPortable));
  pin_backend(Backend::kAuto);  // back to the startup selection
  EXPECT_EQ(active_backend(), original);
}

TEST(KernelDispatchTest, ActiveBackendIsSelfConsistent) {
  const Backend b = active_backend();
  EXPECT_NE(b, Backend::kAuto);
  EXPECT_TRUE(available(b));
  EXPECT_EQ(&table(b), &active());
}

// ---- scratch arena ---------------------------------------------------------

TEST(ScratchAllocatorTest, ScopeRewindsAndSlabsAreReused) {
  ScratchAllocator& arena = ScratchAllocator::tls();
  std::size_t growths_after_wave1 = 0;
  std::size_t reserved_after_wave1 = 0;
  {
    ScratchAllocator::Scope scope(arena);
    auto a = arena.floats(1000);
    auto b = arena.doubles(500);
    a[0] = 1.0f;
    b[499] = 2.0;
    growths_after_wave1 = arena.stats().slab_growths;
    reserved_after_wave1 = arena.stats().bytes_reserved;
    EXPECT_GE(arena.stats().bytes_peak, 1000 * sizeof(float));
  }
  // Wave 2: the identical allocation pattern must be served entirely from
  // slabs wave 1 left behind — zero growth, zero new reservation. This is
  // the "two-wave zero-steady-state-growth" contract.
  {
    ScratchAllocator::Scope scope(arena);
    auto a = arena.floats(1000);
    auto b = arena.doubles(500);
    a[999] = 3.0f;
    b[0] = 4.0;
    EXPECT_EQ(arena.stats().slab_growths, growths_after_wave1);
    EXPECT_EQ(arena.stats().bytes_reserved, reserved_after_wave1);
  }
}

TEST(ScratchAllocatorTest, SpansStayValidAcrossSlabGrowth) {
  ScratchAllocator& arena = ScratchAllocator::tls();
  ScratchAllocator::Scope scope(arena);
  auto first = arena.floats(64);
  for (std::size_t i = 0; i < 64; ++i) first[i] = static_cast<float>(i);
  // Force at least one new slab: far larger than the minimum slab size.
  auto huge = arena.floats(1u << 20);
  huge[0] = 1.0f;
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(first[i], static_cast<float>(i)) << "span moved on growth";
  }
}

TEST(ScratchAllocatorTest, ScopesNest) {
  ScratchAllocator& arena = ScratchAllocator::tls();
  ScratchAllocator::Scope outer(arena);
  auto a = arena.floats(100);
  a[0] = 7.0f;
  {
    ScratchAllocator::Scope inner(arena);
    auto b = arena.floats(5000);
    b[0] = 8.0f;
  }
  // Inner scope rewound; outer allocation is untouched and the next
  // allocation reuses the inner scope's space.
  auto c = arena.floats(5000);
  c[0] = 9.0f;
  EXPECT_EQ(a[0], 7.0f);
}

TEST(ScratchAllocatorTest, AlignmentIs64Bytes) {
  ScratchAllocator& arena = ScratchAllocator::tls();
  ScratchAllocator::Scope scope(arena);
  for (int i = 0; i < 8; ++i) {
    auto s = arena.floats(3);  // odd size so naive bumping would misalign
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % 64, 0u);
  }
}

TEST(ScratchAllocatorTest, GlobalPeakTracksThisThread) {
  ScratchAllocator& arena = ScratchAllocator::tls();
  ScratchAllocator::Scope scope(arena);
  auto s = arena.floats(4096);
  s[0] = 1.0f;
  EXPECT_GE(ScratchAllocator::global_bytes_peak(), 4096 * sizeof(float));
  EXPECT_GE(ScratchAllocator::global_bytes_peak(), arena.stats().bytes_peak);
}

// ---- layer-level integration ----------------------------------------------

TEST(KernelConsumerTest, Conv2dForwardBitwiseEqualsNaiveConvolution) {
  // The im2col+GEMM forward claims bitwise equality with the direct
  // convolution (bias first, ascending (ic, ky, kx) contributions). Verify
  // against an in-test naive reference, including a strided case.
  struct Case {
    std::size_t in_c, out_c, kh, kw, sh, sw, h, w, batch;
  };
  for (const Case& cs : {Case{3, 4, 3, 3, 1, 1, 9, 9, 2},
                         Case{2, 3, 3, 2, 2, 2, 8, 7, 1},
                         Case{1, 2, 1, 1, 1, 1, 5, 5, 2}}) {
    nn::Conv2D conv(cs.in_c, cs.out_c, cs.kh, cs.kw, cs.sh, cs.sw);
    stats::Rng rng(123);
    conv.init(rng);
    Tensor input({cs.batch, cs.in_c, cs.h, cs.w});
    fill_gaussian(input, rng, 1.0f);
    const Tensor out = conv.forward(input);

    const std::size_t oh = (cs.h - cs.kh) / cs.sh + 1;
    const std::size_t ow = (cs.w - cs.kw) / cs.sw + 1;
    const float* pin = input.data();
    const float* pw = conv.parameters()[0]->data();  // [out_c, in_c, kh, kw]
    const float* pb = conv.parameters()[1]->data();
    for (std::size_t b = 0; b < cs.batch; ++b) {
      for (std::size_t oc = 0; oc < cs.out_c; ++oc) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            float acc = pb[oc];
            for (std::size_t ic = 0; ic < cs.in_c; ++ic) {
              for (std::size_t ky = 0; ky < cs.kh; ++ky) {
                for (std::size_t kx = 0; kx < cs.kw; ++kx) {
                  const float iv =
                      pin[((b * cs.in_c + ic) * cs.h + oy * cs.sh + ky) *
                              cs.w +
                          ox * cs.sw + kx];
                  const float wv =
                      pw[((oc * cs.in_c + ic) * cs.kh + ky) * cs.kw + kx];
                  acc += wv * iv;
                }
              }
            }
            const float got =
                out.data()[((b * cs.out_c + oc) * oh + oy) * ow + ox];
            EXPECT_EQ(acc, got)
                << "b=" << b << " oc=" << oc << " oy=" << oy << " ox=" << ox;
          }
        }
      }
    }
  }
}

TEST(KernelConsumerTest, OpsRouteThroughActiveBackendDeterministically) {
  // Same inputs, two calls: the dispatched path must be exactly
  // reproducible within a run (the per-backend determinism contract).
  Tensor a({7, 13}), b({13, 5});
  stats::Rng rng(9);
  fill_gaussian(a, rng, 1.0f);
  fill_gaussian(b, rng, 1.0f);
  const Tensor c1 = matmul(a, b);
  const Tensor c2 = matmul(a, b);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
  EXPECT_EQ(squared_norm(a), squared_norm(a));
}

}  // namespace
}  // namespace fleet::tensor::kernels
