#include "fleet/tensor/ops.hpp"

#include <gtest/gtest.h>

namespace fleet::tensor {
namespace {

TEST(OpsTest, MatmulKnownResult) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50].
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 19.0f);
  EXPECT_EQ(c.at2(0, 1), 22.0f);
  EXPECT_EQ(c.at2(1, 0), 43.0f);
  EXPECT_EQ(c.at2(1, 1), 50.0f);
}

TEST(OpsTest, MatmulRectangular) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 4.0f);
  EXPECT_EQ(c.at2(0, 1), 5.0f);
}

TEST(OpsTest, MatmulDimensionMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(OpsTest, TransposedVariantsAgreeWithExplicitTranspose) {
  stats::Rng rng(1);
  Tensor a({4, 3});
  Tensor b({4, 5});
  fill_gaussian(a, rng, 1.0f);
  fill_gaussian(b, rng, 1.0f);
  // a^T b via matmul_at_b must equal matmul(transpose(a), b).
  Tensor at({3, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) at.at2(j, i) = a.at2(i, j);
  }
  EXPECT_LT(max_abs_diff(matmul_at_b(a, b), matmul(at, b)), 1e-5f);

  Tensor c({3, 4});
  fill_gaussian(c, rng, 1.0f);
  Tensor ct({4, 3});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) ct.at2(j, i) = c.at2(i, j);
  }
  // a (4x3) * c^T where c is (3x4) -> matmul_a_bt(a, ct') with ct' = (4,3)?
  // Verify matmul_a_bt(x, y) == matmul(x, transpose(y)).
  EXPECT_LT(max_abs_diff(matmul_a_bt(a, ct), matmul(a, c)), 1e-5f);
}

TEST(OpsTest, AxpyAndScale) {
  Tensor x({3}, {1, 2, 3});
  Tensor y({3}, {10, 20, 30});
  axpy(2.0f, x, y);
  EXPECT_EQ(y[0], 12.0f);
  EXPECT_EQ(y[2], 36.0f);
  scale(y, 0.5f);
  EXPECT_EQ(y[0], 6.0f);
}

TEST(OpsTest, AddChecksShape) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_THROW(add(a, b), std::invalid_argument);
}

TEST(OpsTest, SquaredNorm) {
  Tensor x({3}, {3, 4, 0});
  EXPECT_DOUBLE_EQ(squared_norm(x), 25.0);
}

TEST(OpsTest, FillGaussianStatistics) {
  stats::Rng rng(2);
  Tensor x({10000});
  fill_gaussian(x, rng, 2.0f);
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i];
    sum_sq += static_cast<double>(x[i]) * x[i];
  }
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.1);
  EXPECT_NEAR(sum_sq / 10000.0, 4.0, 0.3);
}

TEST(OpsTest, FillUniformRespectsLimit) {
  stats::Rng rng(3);
  Tensor x({1000});
  fill_uniform(x, rng, 0.5f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x[i], -0.5f);
    EXPECT_LE(x[i], 0.5f);
  }
}

}  // namespace
}  // namespace fleet::tensor
