#include "fleet/tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace fleet::tensor {
namespace {

TEST(TensorTest, ConstructsZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ConstructsFromData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at2(0, 1), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
}

TEST(TensorTest, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(TensorTest, At2RequiresRank2) {
  Tensor t({4});
  EXPECT_THROW(t.at2(0, 0), std::logic_error);
  Tensor m({2, 2});
  EXPECT_THROW(m.at2(2, 0), std::out_of_range);
}

TEST(TensorTest, FillAndFull) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  t.fill(0.0f);
  EXPECT_EQ(t[2], 0.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at2(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(TensorTest, ShapeSizeAndString) {
  EXPECT_EQ(Tensor::shape_size({2, 3, 4}), 24u);
  EXPECT_EQ(Tensor::shape_size({}), 0u);
  EXPECT_EQ(Tensor::shape_string({1, 28, 28}), "[1x28x28]");
}

TEST(TensorTest, ValueSemantics) {
  Tensor a({2}, {1, 2});
  Tensor b = a;
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);  // deep copy
}

TEST(TensorTest, RebindMovesContentsIntoExternalArena) {
  std::vector<float> arena(4, 0.0f);
  Tensor t({2, 2}, {1, 2, 3, 4});
  t.rebind(arena.data());
  EXPECT_TRUE(t.is_view());
  // Contents moved into the arena; writes go through it in both directions.
  EXPECT_EQ(arena[3], 4.0f);
  arena[0] = 9.0f;
  EXPECT_EQ(t[0], 9.0f);
  t.at2(1, 1) = 7.0f;
  EXPECT_EQ(arena[3], 7.0f);
}

TEST(TensorTest, CopyOfViewMaterializes) {
  std::vector<float> arena(2, 0.0f);
  Tensor view({2}, {5, 6});
  view.rebind(arena.data());
  Tensor copy = view;
  EXPECT_FALSE(copy.is_view());
  arena[0] = -1.0f;
  EXPECT_EQ(copy[0], 5.0f);  // detached from the arena
  EXPECT_EQ(view[0], -1.0f);
}

TEST(TensorTest, RebindToOwnBufferThrows) {
  Tensor t({2}, {1, 2});
  // Adopting the tensor's own owned storage would free it; must throw.
  EXPECT_THROW(t.rebind(t.data()), std::invalid_argument);
  // Re-binding a view to the same external storage is a no-op.
  std::vector<float> arena(2, 0.0f);
  t.rebind(arena.data());
  EXPECT_NO_THROW(t.rebind(arena.data()));
  EXPECT_EQ(t.data(), arena.data());
}

}  // namespace
}  // namespace fleet::tensor
